//! The size-limited flow table.

use crate::FlowRule;
use sdnbuf_openflow::{msg::FlowRemovedReason, Match, MatchView};
use sdnbuf_sim::{FastHashMap, Nanos};

/// What the table does when an insert arrives while full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Reject the new rule (the switch would return an `OFPET_FLOW_MOD_FAILED`
    /// error).
    #[default]
    RejectNew,
    /// Evict the least-recently-hit rule to make room — the behaviour the
    /// paper's Section VI.B TCP-eviction scenario relies on.
    EvictLru,
}

/// Outcome of [`FlowTable::insert`].
#[derive(Clone, Debug, PartialEq)]
pub enum InsertOutcome {
    /// The rule was added to a free slot.
    Installed,
    /// A rule with the same match and priority was overwritten.
    Replaced,
    /// The table was full; this rule was evicted to make room.
    Evicted(
        /// The victim.
        FlowRule,
    ),
    /// The table was full and the policy rejects new rules.
    Rejected,
}

/// A rule removed by expiry or deletion, with the reason — the payload a
/// `flow_removed` message is built from.
#[derive(Clone, Debug, PartialEq)]
pub struct RemovedRule {
    /// The removed rule (with final statistics).
    pub rule: FlowRule,
    /// Why it was removed.
    pub reason: FlowRemovedReason,
}

/// A size-limited, priority-ordered flow table.
///
/// Lookup returns the highest-priority matching rule (ties broken by
/// insertion order, matching Open vSwitch). The capacity limit plus the
/// eviction policy produce the "rule kicked out of a size-limited table"
/// behaviour the paper discusses for TCP flows.
///
/// # Example
///
/// ```
/// use sdnbuf_flowtable::{EvictionPolicy, FlowRule, FlowTable, InsertOutcome};
/// use sdnbuf_openflow::Match;
/// use sdnbuf_sim::Nanos;
///
/// let mut t = FlowTable::with_eviction(1, EvictionPolicy::EvictLru);
/// t.insert(Nanos::ZERO, FlowRule::new(Match::any(), 1));
/// // Table is full; the next insert evicts the LRU rule.
/// let outcome = t.insert(Nanos::from_secs(1), FlowRule::new(Match::any(), 2));
/// assert!(matches!(outcome, InsertOutcome::Evicted(_)));
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct FlowTable {
    capacity: usize,
    policy: EvictionPolicy,
    /// Rule storage in insertion order. Removal leaves a tombstone
    /// (`None`) so the index positions of every other rule stay valid —
    /// expiry storms would otherwise force a full index rebuild per
    /// sweep. Tombstones are compacted away once they outnumber live
    /// rules (amortized O(1) per removal); compaction preserves relative
    /// order, so position comparisons keep encoding insertion order.
    rules: Vec<Option<FlowRule>>,
    /// Number of live (non-tombstone) rules.
    live: usize,
    /// Index into `rules` of the first exact-match rule per concrete
    /// field tuple. An exact rule matches a packet iff the packet's
    /// [`MatchView`] equals the rule's — so lookup is one hash probe
    /// instead of a scan. Single-slot on purpose: a second exact rule
    /// with the same fields (different priority) is legal but rare, and
    /// goes to `exact_dups` instead of allocating per-key buckets.
    exact: FastHashMap<MatchView, usize>,
    /// Exact rules whose field tuple already had an index entry; scanned
    /// like `wild` and empty in practice. Unordered.
    exact_dups: Vec<usize>,
    /// Indices into `rules` of rules with at least one wildcarded field,
    /// unordered. These still need a matches() scan, but reactive tables
    /// hold at most a handful (table-miss, ARP, flow-key rules).
    wild: Vec<usize>,
    lookups: u64,
    hits: u64,
}

/// The concrete field tuple of an exact-match rule — the packet view it
/// (and only it) matches.
fn exact_key(m: &Match) -> MatchView {
    MatchView {
        in_port: m.in_port,
        dl_src: m.dl_src,
        dl_dst: m.dl_dst,
        dl_type: m.dl_type,
        nw_src: u32::from(m.nw_src),
        nw_dst: u32::from(m.nw_dst),
        nw_tos: m.nw_tos,
        nw_proto: m.nw_proto,
        tp_src: m.tp_src,
        tp_dst: m.tp_dst,
    }
}

impl FlowTable {
    /// Creates an empty table holding at most `capacity` rules, rejecting
    /// inserts when full.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> FlowTable {
        FlowTable::with_eviction(capacity, EvictionPolicy::RejectNew)
    }

    /// Creates an empty table with an explicit eviction policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_eviction(capacity: usize, policy: EvictionPolicy) -> FlowTable {
        assert!(capacity > 0, "flow table capacity must be positive");
        FlowTable {
            capacity,
            policy,
            rules: Vec::new(),
            live: 0,
            exact: FastHashMap::default(),
            exact_dups: Vec::new(),
            wild: Vec::new(),
            lookups: 0,
            hits: 0,
        }
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Maximum number of rules.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` when at capacity.
    pub fn is_full(&self) -> bool {
        self.live >= self.capacity
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that found a matching rule.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Iterates over installed rules in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowRule> {
        self.rules.iter().flatten()
    }

    /// Installs `rule` at time `now`.
    ///
    /// A rule with an identical match and priority is replaced in place
    /// (standard `OFPFC_ADD` overlap semantics). When the table is full the
    /// eviction policy decides between rejecting and evicting the
    /// least-recently-active rule.
    pub fn insert(&mut self, now: Nanos, mut rule: FlowRule) -> InsertOutcome {
        rule.installed_at = now;
        rule.last_hit = now;
        // Identical wildcards are part of Match equality, so a duplicate of
        // an exact rule can only live in its exact bucket and a duplicate
        // of a wildcard rule only in the wild list.
        let duplicate = if rule.match_fields.is_exact() {
            self.exact
                .get(&exact_key(&rule.match_fields))
                .copied()
                .into_iter()
                .chain(self.exact_dups.iter().copied())
                .find(|&i| {
                    let r = self.rule(i);
                    r.match_fields == rule.match_fields && r.priority == rule.priority
                })
        } else {
            self.wild.iter().copied().find(|&i| {
                let r = self.rule(i);
                r.match_fields == rule.match_fields && r.priority == rule.priority
            })
        };
        if let Some(i) = duplicate {
            let existing = self.rules[i].as_mut().expect("indexed slot is live");
            // Re-adding an identical rule must not make it stop matching
            // while the new install is processed: keep the earlier effect
            // time (OVS treats the duplicate as a modify of the live rule).
            rule.installed_at = existing.installed_at.min(rule.installed_at);
            *existing = rule;
            return InsertOutcome::Replaced;
        }
        if self.is_full() {
            match self.policy {
                EvictionPolicy::RejectNew => return InsertOutcome::Rejected,
                EvictionPolicy::EvictLru => {
                    let victim_idx = self
                        .rules
                        .iter()
                        .enumerate()
                        .filter_map(|(i, r)| r.as_ref().map(|r| (i, r.last_hit)))
                        .min_by_key(|&(_, hit)| hit)
                        .map(|(i, _)| i)
                        .expect("full table is non-empty");
                    let victim = self.remove_at(victim_idx);
                    self.rules.push(Some(rule));
                    let idx = self.rules.len() - 1;
                    self.live += 1;
                    self.index_rule(idx);
                    self.maybe_compact();
                    return InsertOutcome::Evicted(victim);
                }
            }
        }
        self.rules.push(Some(rule));
        let idx = self.rules.len() - 1;
        self.live += 1;
        self.index_rule(idx);
        InsertOutcome::Installed
    }

    /// The live rule at `idx`. Only called with indices held by the
    /// lookup index, which never point at tombstones.
    fn rule(&self, idx: usize) -> &FlowRule {
        self.rules[idx].as_ref().expect("indexed slot is live")
    }

    /// Tombstones the rule at `idx` and removes its index entry in O(1)
    /// (plus a scan of the small dup/wildcard side lists).
    fn remove_at(&mut self, idx: usize) -> FlowRule {
        let rule = self.rules[idx].take().expect("removing a live rule");
        self.live -= 1;
        if rule.match_fields.is_exact() {
            let key = exact_key(&rule.match_fields);
            if self.exact.get(&key) == Some(&idx) {
                // Promote a same-key duplicate into the primary slot, if
                // one exists; otherwise clear the entry.
                match self
                    .exact_dups
                    .iter()
                    .position(|&d| exact_key(&self.rule(d).match_fields) == key)
                {
                    Some(j) => {
                        let d = self.exact_dups.swap_remove(j);
                        self.exact.insert(key, d);
                    }
                    None => {
                        self.exact.remove(&key);
                    }
                }
            } else {
                let j = self
                    .exact_dups
                    .iter()
                    .position(|&d| d == idx)
                    .expect("exact rule is indexed");
                self.exact_dups.swap_remove(j);
            }
        } else {
            let j = self
                .wild
                .iter()
                .position(|&w| w == idx)
                .expect("wildcard rule is indexed");
            self.wild.swap_remove(j);
        }
        rule
    }

    /// Compacts tombstones away once they outnumber live rules, keeping
    /// iteration O(live) amortized. Relative order (and thus insertion-
    /// order tie-breaking) is preserved.
    fn maybe_compact(&mut self) {
        let dead = self.rules.len() - self.live;
        if dead > self.live && dead > 8 {
            self.rules.retain(Option::is_some);
            self.rebuild_index();
        }
    }

    /// Classifies the rule at `idx` into the lookup index.
    fn index_rule(&mut self, idx: usize) {
        if self.rule(idx).match_fields.is_exact() {
            match self.exact.entry(exact_key(&self.rule(idx).match_fields)) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(idx);
                }
                std::collections::hash_map::Entry::Occupied(_) => self.exact_dups.push(idx),
            }
        } else {
            self.wild.push(idx);
        }
    }

    /// Recomputes the exact/wildcard index from scratch after a
    /// compaction shifts positions. All slots are live at that point.
    fn rebuild_index(&mut self) {
        self.exact.clear();
        self.exact_dups.clear();
        self.wild.clear();
        for i in 0..self.rules.len() {
            self.index_rule(i);
        }
    }

    /// Looks up the best rule for a packet **and** updates that rule's hit
    /// statistics — the datapath's per-packet operation.
    ///
    /// Rules whose installation completes in the future (`installed_at >
    /// now`) do not match yet: this reproduces the paper's `t_e` semantics,
    /// where packets arriving before a `flow_mod` takes effect still miss
    /// and trigger further requests.
    pub fn match_packet(
        &mut self,
        now: Nanos,
        view: &MatchView,
        packet_bytes: usize,
    ) -> Option<&FlowRule> {
        self.lookups += 1;
        let best = self.best_index(now, view)?;
        self.hits += 1;
        let rule = self.rules[best].as_mut().expect("indexed slot is live");
        rule.last_hit = now;
        rule.packet_count += 1;
        rule.byte_count += packet_bytes as u64;
        Some(self.rule(best))
    }

    /// Looks up without touching statistics (for inspection and tests),
    /// ignoring rule effect times.
    pub fn peek(&self, view: &MatchView) -> Option<&FlowRule> {
        self.best_index(Nanos::MAX, view).map(|i| self.rule(i))
    }

    /// The winning rule for `view`: highest priority among matches, ties
    /// broken by insertion order (smallest index). Exact candidates come
    /// from one hash probe; only wildcard rules are scanned.
    fn best_index(&self, now: Nanos, view: &MatchView) -> Option<usize> {
        let exact = self.exact.get(view).copied();
        let mut best: Option<usize> = None;
        for i in exact
            .into_iter()
            .chain(self.wild.iter().copied())
            .chain(self.exact_dups.iter().copied())
        {
            let rule = self.rule(i);
            if rule.installed_at > now || !rule.match_fields.matches(view) {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    let (bp, rp) = (self.rule(b).priority, rule.priority);
                    // Equivalent to the old full scan's "first rule with
                    // the maximum priority", regardless of visit order.
                    if rp > bp || (rp == bp && i < b) {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best
    }

    /// Removes every rule whose idle or hard timeout has elapsed at `now`;
    /// returns them with the applicable reason.
    pub fn expire(&mut self, now: Nanos) -> Vec<RemovedRule> {
        let mut removed = Vec::new();
        // Position order is insertion order, so removals are reported in
        // the same order the old retain-based sweep produced.
        for i in 0..self.rules.len() {
            let Some(r) = self.rules[i].as_ref() else {
                continue;
            };
            let last_activity = r.installed_at.max(r.last_hit);
            if r.is_expired(now, last_activity) {
                let reason =
                    if r.hard_timeout != Nanos::ZERO && now >= r.installed_at + r.hard_timeout {
                        FlowRemovedReason::HardTimeout
                    } else {
                        FlowRemovedReason::IdleTimeout
                    };
                let rule = self.remove_at(i);
                removed.push(RemovedRule { rule, reason });
            }
        }
        if !removed.is_empty() {
            self.maybe_compact();
        }
        removed
    }

    /// The earliest moment any installed rule can expire, for scheduling the
    /// next expiry sweep. `None` when no rule has a timeout.
    pub fn next_expiry(&self) -> Option<Nanos> {
        self.rules
            .iter()
            .flatten()
            .filter_map(|r| r.expiry_deadline(r.installed_at.max(r.last_hit)))
            .min()
    }

    /// Deletes rules matching `pattern` (`OFPFC_DELETE` semantics: a rule is
    /// deleted when `pattern` is equal to or more general than its match).
    /// With `strict`, only an exact match+priority match deletes.
    pub fn delete(&mut self, pattern: &Match, priority: u16, strict: bool) -> Vec<RemovedRule> {
        let mut removed = Vec::new();
        for i in 0..self.rules.len() {
            let Some(r) = self.rules[i].as_ref() else {
                continue;
            };
            let doomed = if strict {
                r.match_fields == *pattern && r.priority == priority
            } else {
                // Non-strict OpenFlow delete: the pattern removes every
                // rule whose match it subsumes (is equal to or more
                // general than).
                pattern.subsumes(&r.match_fields)
            };
            if doomed {
                let rule = self.remove_at(i);
                removed.push(RemovedRule {
                    rule,
                    reason: FlowRemovedReason::Delete,
                });
            }
        }
        if !removed.is_empty() {
            self.maybe_compact();
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnbuf_net::PacketBuilder;
    use sdnbuf_openflow::{Action, PortNo};

    fn exact_rule(src_port: u16, priority: u16) -> (FlowRule, MatchView) {
        let pkt = PacketBuilder::udp().src_port(src_port).build();
        let m = Match::exact_from_packet(PortNo(1), &pkt);
        let view = MatchView::of(PortNo(1), &pkt);
        (
            FlowRule::new(m, priority).with_actions(vec![Action::output(PortNo(2))]),
            view,
        )
    }

    #[test]
    fn insert_and_match() {
        let mut t = FlowTable::new(10);
        let (rule, view) = exact_rule(5, 100);
        assert_eq!(t.insert(Nanos::ZERO, rule), InsertOutcome::Installed);
        let hit = t.match_packet(Nanos::from_micros(3), &view, 500).unwrap();
        assert_eq!(hit.packet_count, 1);
        assert_eq!(hit.byte_count, 500);
        assert_eq!(hit.last_hit, Nanos::from_micros(3));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.lookups(), 1);
    }

    #[test]
    fn miss_counts_lookup_only() {
        let mut t = FlowTable::new(10);
        let (_, view) = exact_rule(5, 100);
        assert!(t.match_packet(Nanos::ZERO, &view, 100).is_none());
        assert_eq!(t.lookups(), 1);
        assert_eq!(t.hits(), 0);
    }

    #[test]
    fn highest_priority_wins() {
        let mut t = FlowTable::new(10);
        let (low, view) = exact_rule(5, 1);
        t.insert(Nanos::ZERO, low);
        let mut high = FlowRule::new(Match::any(), 50);
        high.actions = vec![Action::output(PortNo(9))];
        t.insert(Nanos::ZERO, high);
        let hit = t.peek(&view).unwrap();
        assert_eq!(hit.priority, 50);
    }

    #[test]
    fn equal_priority_first_installed_wins() {
        let mut t = FlowTable::new(10);
        let a = FlowRule::new(Match::any(), 5).with_cookie(1);
        let b = FlowRule::new(
            Match::from_flow_key(&sdnbuf_net::FlowKey::of(&PacketBuilder::udp().build()).unwrap()),
            5,
        )
        .with_cookie(2);
        t.insert(Nanos::ZERO, a);
        t.insert(Nanos::ZERO, b);
        let view = MatchView::of(PortNo(1), &PacketBuilder::udp().build());
        assert_eq!(t.peek(&view).unwrap().cookie, 1);
    }

    #[test]
    fn same_match_same_priority_replaces() {
        let mut t = FlowTable::new(10);
        let (r1, view) = exact_rule(5, 100);
        let (mut r2, _) = exact_rule(5, 100);
        r2.cookie = 77;
        t.insert(Nanos::ZERO, r1);
        assert_eq!(t.insert(Nanos::from_secs(1), r2), InsertOutcome::Replaced);
        assert_eq!(t.len(), 1);
        assert_eq!(t.peek(&view).unwrap().cookie, 77);
    }

    #[test]
    fn reject_policy_refuses_when_full() {
        let mut t = FlowTable::new(1);
        let (r1, _) = exact_rule(1, 1);
        let (r2, _) = exact_rule(2, 1);
        t.insert(Nanos::ZERO, r1);
        assert!(t.is_full());
        assert_eq!(t.insert(Nanos::ZERO, r2), InsertOutcome::Rejected);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lru_policy_evicts_least_recently_hit() {
        let mut t = FlowTable::with_eviction(2, EvictionPolicy::EvictLru);
        let (r1, v1) = exact_rule(1, 1);
        let (r2, _) = exact_rule(2, 1);
        let (r3, _) = exact_rule(3, 1);
        t.insert(Nanos::ZERO, r1);
        t.insert(Nanos::ZERO, r2);
        // Hit rule 1 so rule 2 becomes the LRU victim.
        t.match_packet(Nanos::from_secs(1), &v1, 100);
        match t.insert(Nanos::from_secs(2), r3) {
            InsertOutcome::Evicted(victim) => {
                // Victim must be rule 2 (src port 2 in its match).
                assert_eq!(victim.match_fields.tp_src, 2);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(t.len(), 2);
        // Rule 1 survived.
        assert!(t.peek(&v1).is_some());
    }

    #[test]
    fn idle_expiry_removes_and_reports() {
        let mut t = FlowTable::new(10);
        let (rule, view) = exact_rule(5, 1);
        t.insert(Nanos::ZERO, rule.with_idle_timeout(Nanos::from_secs(5)));
        assert!(t.expire(Nanos::from_secs(4)).is_empty());
        // A hit resets the idle clock.
        t.match_packet(Nanos::from_secs(4), &view, 100);
        assert!(t.expire(Nanos::from_secs(8)).is_empty());
        let removed = t.expire(Nanos::from_secs(9));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, FlowRemovedReason::IdleTimeout);
        assert!(t.is_empty());
    }

    #[test]
    fn hard_expiry_ignores_hits() {
        let mut t = FlowTable::new(10);
        let (rule, view) = exact_rule(5, 1);
        t.insert(Nanos::ZERO, rule.with_hard_timeout(Nanos::from_secs(10)));
        for s in 1..10 {
            t.match_packet(Nanos::from_secs(s), &view, 100);
        }
        let removed = t.expire(Nanos::from_secs(10));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, FlowRemovedReason::HardTimeout);
        // Final stats ride along for the flow_removed message.
        assert_eq!(removed[0].rule.packet_count, 9);
    }

    #[test]
    fn next_expiry_is_earliest_deadline() {
        let mut t = FlowTable::new(10);
        assert_eq!(t.next_expiry(), None);
        let (r1, _) = exact_rule(1, 1);
        let (r2, _) = exact_rule(2, 1);
        t.insert(Nanos::ZERO, r1.with_idle_timeout(Nanos::from_secs(7)));
        t.insert(Nanos::ZERO, r2.with_hard_timeout(Nanos::from_secs(3)));
        assert_eq!(t.next_expiry(), Some(Nanos::from_secs(3)));
    }

    #[test]
    fn strict_delete_requires_exact_identity() {
        let mut t = FlowTable::new(10);
        let (r, _) = exact_rule(5, 100);
        let m = r.match_fields;
        t.insert(Nanos::ZERO, r);
        assert!(t.delete(&m, 99, true).is_empty()); // wrong priority
        let removed = t.delete(&m, 100, true);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, FlowRemovedReason::Delete);
        assert!(t.is_empty());
    }

    #[test]
    fn nonstrict_delete_uses_subsumption() {
        let mut t = FlowTable::new(10);
        let (r5, _) = exact_rule(5, 1);
        let (r6, _) = exact_rule(6, 1);
        t.insert(Nanos::ZERO, r5.clone());
        t.insert(Nanos::ZERO, r6);
        // A 5-tuple pattern for src port 5 deletes only that rule.
        let pkt = PacketBuilder::udp().src_port(5).build();
        let tuple = Match::from_flow_key(&sdnbuf_net::FlowKey::of(&pkt).unwrap());
        let removed = t.delete(&tuple, 0, false);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].rule.match_fields, r5.match_fields);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn wildcard_delete_clears_table() {
        let mut t = FlowTable::new(10);
        for p in 0..5 {
            let (r, _) = exact_rule(p, 1);
            t.insert(Nanos::ZERO, r);
        }
        let removed = t.delete(&Match::any(), 0, false);
        assert_eq!(removed.len(), 5);
        assert!(t.is_empty());
    }

    #[test]
    fn iter_walks_rules() {
        let mut t = FlowTable::new(10);
        for p in 0..3 {
            let (r, _) = exact_rule(p, 1);
            t.insert(Nanos::ZERO, r);
        }
        assert_eq!(t.iter().count(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = FlowTable::new(0);
    }
}
