//! The SDN flow table for `sdn-buffer-lab`.
//!
//! A size-limited, priority-ordered rule table with OpenFlow semantics:
//! wildcard matching, idle/hard timeouts, per-rule statistics, and an
//! eviction policy. The **size limit** is load-bearing for the paper:
//! Section VI.B's TCP discussion hinges on rules being "kicked out from the
//! size limited flow tables" while a connection is briefly idle, so eviction
//! and timeouts are first-class here.
//!
//! # Example
//!
//! ```
//! use sdnbuf_flowtable::{FlowRule, FlowTable, InsertOutcome};
//! use sdnbuf_openflow::{Action, Match, MatchView, PortNo};
//! use sdnbuf_net::PacketBuilder;
//! use sdnbuf_sim::Nanos;
//!
//! let mut table = FlowTable::new(1024);
//! let pkt = PacketBuilder::udp().build();
//! let rule = FlowRule::new(Match::exact_from_packet(PortNo(1), &pkt), 100)
//!     .with_actions(vec![Action::output(PortNo(2))]);
//! assert_eq!(table.insert(Nanos::ZERO, rule), InsertOutcome::Installed);
//!
//! let view = MatchView::of(PortNo(1), &pkt);
//! let hit = table.match_packet(Nanos::from_micros(1), &view, 1000).unwrap();
//! assert_eq!(hit.actions, vec![Action::output(PortNo(2))]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rule;
mod table;

pub use rule::FlowRule;
pub use table::{EvictionPolicy, FlowTable, InsertOutcome, RemovedRule};
