//! A single flow rule.

use sdnbuf_openflow::{Action, Match};
use sdnbuf_sim::Nanos;
use std::fmt;

/// One rule in a flow table: match, priority, actions, timeouts and
/// per-rule traffic statistics.
///
/// # Example
///
/// ```
/// use sdnbuf_flowtable::FlowRule;
/// use sdnbuf_openflow::{Action, Match, PortNo};
/// use sdnbuf_sim::Nanos;
///
/// let rule = FlowRule::new(Match::any(), 10)
///     .with_actions(vec![Action::output(PortNo(2))])
///     .with_idle_timeout(Nanos::from_secs(5));
/// assert_eq!(rule.priority, 10);
/// assert!(!rule.is_expired(Nanos::ZERO, Nanos::ZERO));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowRule {
    /// Fields this rule matches.
    pub match_fields: Match,
    /// Priority; higher wins among overlapping rules.
    pub priority: u16,
    /// Actions applied to matching packets (empty = drop).
    pub actions: Vec<Action>,
    /// Controller cookie.
    pub cookie: u64,
    /// Remove after this long without a hit (`Nanos::ZERO` = never).
    pub idle_timeout: Nanos,
    /// Remove this long after installation regardless of hits
    /// (`Nanos::ZERO` = never).
    pub hard_timeout: Nanos,
    /// When the rule was installed (set by the table).
    pub installed_at: Nanos,
    /// When the rule last matched a packet (set by the table).
    pub last_hit: Nanos,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// Whether expiry should emit a `flow_removed` message.
    pub notify_on_removal: bool,
}

impl FlowRule {
    /// Creates a rule with no actions (drop), no timeouts and zero stats.
    pub fn new(match_fields: Match, priority: u16) -> FlowRule {
        FlowRule {
            match_fields,
            priority,
            actions: Vec::new(),
            cookie: 0,
            idle_timeout: Nanos::ZERO,
            hard_timeout: Nanos::ZERO,
            installed_at: Nanos::ZERO,
            last_hit: Nanos::ZERO,
            packet_count: 0,
            byte_count: 0,
            notify_on_removal: false,
        }
    }

    /// Sets the action list.
    #[must_use]
    pub fn with_actions(mut self, actions: Vec<Action>) -> FlowRule {
        self.actions = actions;
        self
    }

    /// Sets the controller cookie.
    #[must_use]
    pub fn with_cookie(mut self, cookie: u64) -> FlowRule {
        self.cookie = cookie;
        self
    }

    /// Sets the idle timeout.
    #[must_use]
    pub fn with_idle_timeout(mut self, timeout: Nanos) -> FlowRule {
        self.idle_timeout = timeout;
        self
    }

    /// Sets the hard timeout.
    #[must_use]
    pub fn with_hard_timeout(mut self, timeout: Nanos) -> FlowRule {
        self.hard_timeout = timeout;
        self
    }

    /// Requests a `flow_removed` notification on expiry.
    #[must_use]
    pub fn with_removal_notification(mut self) -> FlowRule {
        self.notify_on_removal = true;
        self
    }

    /// Whether the rule has timed out at `now`. `last_activity` is the later
    /// of installation and last hit (tracked by the table).
    pub fn is_expired(&self, now: Nanos, last_activity: Nanos) -> bool {
        if self.hard_timeout != Nanos::ZERO && now >= self.installed_at + self.hard_timeout {
            return true;
        }
        if self.idle_timeout != Nanos::ZERO && now >= last_activity + self.idle_timeout {
            return true;
        }
        false
    }

    /// The moment this rule will expire if it receives no further hits
    /// (`None` when it has no timeouts).
    pub fn expiry_deadline(&self, last_activity: Nanos) -> Option<Nanos> {
        let hard =
            (self.hard_timeout != Nanos::ZERO).then(|| self.installed_at + self.hard_timeout);
        let idle = (self.idle_timeout != Nanos::ZERO).then(|| last_activity + self.idle_timeout);
        match (hard, idle) {
            (Some(h), Some(i)) => Some(h.min(i)),
            (Some(h), None) => Some(h),
            (None, Some(i)) => Some(i),
            (None, None) => None,
        }
    }

    /// Rule age at `now`.
    pub fn age(&self, now: Nanos) -> Nanos {
        now.saturating_sub(self.installed_at)
    }
}

impl fmt::Display for FlowRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rule(pri {}, {}, {} actions, {} pkts)",
            self.priority,
            self.match_fields,
            self.actions.len(),
            self.packet_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnbuf_openflow::PortNo;

    #[test]
    fn builder_chain() {
        let r = FlowRule::new(Match::any(), 5)
            .with_actions(vec![Action::output(PortNo(1))])
            .with_cookie(9)
            .with_idle_timeout(Nanos::from_secs(5))
            .with_hard_timeout(Nanos::from_secs(30))
            .with_removal_notification();
        assert_eq!(r.priority, 5);
        assert_eq!(r.cookie, 9);
        assert_eq!(r.idle_timeout, Nanos::from_secs(5));
        assert_eq!(r.hard_timeout, Nanos::from_secs(30));
        assert!(r.notify_on_removal);
    }

    #[test]
    fn no_timeouts_never_expire() {
        let r = FlowRule::new(Match::any(), 0);
        assert!(!r.is_expired(Nanos::from_secs(1_000_000), Nanos::ZERO));
        assert_eq!(r.expiry_deadline(Nanos::ZERO), None);
    }

    #[test]
    fn hard_timeout_expires_regardless_of_hits() {
        let mut r = FlowRule::new(Match::any(), 0).with_hard_timeout(Nanos::from_secs(10));
        r.installed_at = Nanos::from_secs(5);
        let recent_hit = Nanos::from_secs(14);
        assert!(!r.is_expired(Nanos::from_secs(14), recent_hit));
        assert!(r.is_expired(Nanos::from_secs(15), recent_hit));
    }

    #[test]
    fn idle_timeout_resets_on_activity() {
        let r = FlowRule::new(Match::any(), 0).with_idle_timeout(Nanos::from_secs(5));
        assert!(!r.is_expired(Nanos::from_secs(4), Nanos::ZERO));
        assert!(r.is_expired(Nanos::from_secs(5), Nanos::ZERO));
        // A hit at t=3 pushes expiry to t=8.
        assert!(!r.is_expired(Nanos::from_secs(7), Nanos::from_secs(3)));
        assert!(r.is_expired(Nanos::from_secs(8), Nanos::from_secs(3)));
    }

    #[test]
    fn expiry_deadline_is_earliest() {
        let mut r = FlowRule::new(Match::any(), 0)
            .with_idle_timeout(Nanos::from_secs(5))
            .with_hard_timeout(Nanos::from_secs(30));
        r.installed_at = Nanos::ZERO;
        assert_eq!(
            r.expiry_deadline(Nanos::from_secs(2)),
            Some(Nanos::from_secs(7))
        );
        assert_eq!(
            r.expiry_deadline(Nanos::from_secs(28)),
            Some(Nanos::from_secs(30))
        );
    }

    #[test]
    fn age_saturates() {
        let mut r = FlowRule::new(Match::any(), 0);
        r.installed_at = Nanos::from_secs(10);
        assert_eq!(r.age(Nanos::from_secs(15)), Nanos::from_secs(5));
        assert_eq!(r.age(Nanos::from_secs(5)), Nanos::ZERO);
    }

    #[test]
    fn display_mentions_priority() {
        assert!(FlowRule::new(Match::any(), 7).to_string().contains("pri 7"));
    }
}
