//! Property-based tests: flow-table invariants under arbitrary operation
//! sequences.

use proptest::prelude::*;
use sdnbuf_flowtable::{EvictionPolicy, FlowRule, FlowTable, InsertOutcome};
use sdnbuf_net::PacketBuilder;
use sdnbuf_openflow::{Match, MatchView, PortNo};
use sdnbuf_sim::Nanos;

#[derive(Clone, Debug)]
enum Op {
    Insert {
        src_port: u16,
        priority: u16,
        idle_s: u64,
    },
    Packet {
        src_port: u16,
    },
    Expire,
    DeleteAll,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..40, 0u16..8, 0u64..5).prop_map(|(src_port, priority, idle_s)| Op::Insert {
            src_port,
            priority,
            idle_s
        }),
        (0u16..40).prop_map(|src_port| Op::Packet { src_port }),
        Just(Op::Expire),
        Just(Op::DeleteAll),
    ]
}

fn rule_for(src_port: u16, priority: u16, idle_s: u64) -> FlowRule {
    let pkt = PacketBuilder::udp().src_port(src_port).build();
    FlowRule::new(Match::exact_from_packet(PortNo(1), &pkt), priority)
        .with_idle_timeout(Nanos::from_secs(idle_s))
}

proptest! {
    #[test]
    fn table_never_exceeds_capacity(
        ops in proptest::collection::vec(arb_op(), 1..200),
        capacity in 1usize..16,
        lru in any::<bool>(),
    ) {
        let policy = if lru { EvictionPolicy::EvictLru } else { EvictionPolicy::RejectNew };
        let mut t = FlowTable::with_eviction(capacity, policy);
        let mut now = Nanos::ZERO;
        for op in ops {
            now += Nanos::from_millis(100);
            match op {
                Op::Insert { src_port, priority, idle_s } => {
                    let outcome = t.insert(now, rule_for(src_port, priority, idle_s));
                    if let InsertOutcome::Rejected = outcome {
                        prop_assert!(!lru, "LRU policy must never reject");
                    }
                }
                Op::Packet { src_port } => {
                    let pkt = PacketBuilder::udp().src_port(src_port).build();
                    let view = MatchView::of(PortNo(1), &pkt);
                    let _ = t.match_packet(now, &view, pkt.wire_len());
                }
                Op::Expire => { let _ = t.expire(now); }
                Op::DeleteAll => { let _ = t.delete(&Match::any(), 0, false); }
            }
            prop_assert!(t.len() <= capacity, "len {} > capacity {}", t.len(), capacity);
        }
    }

    #[test]
    fn hits_never_exceed_lookups(ops in proptest::collection::vec(arb_op(), 1..100)) {
        let mut t = FlowTable::new(8);
        let mut now = Nanos::ZERO;
        for op in ops {
            now += Nanos::from_millis(10);
            match op {
                Op::Insert { src_port, priority, idle_s } => {
                    let _ = t.insert(now, rule_for(src_port, priority, idle_s));
                }
                Op::Packet { src_port } => {
                    let pkt = PacketBuilder::udp().src_port(src_port).build();
                    let _ = t.match_packet(now, &MatchView::of(PortNo(1), &pkt), 100);
                }
                Op::Expire => { let _ = t.expire(now); }
                Op::DeleteAll => { let _ = t.delete(&Match::any(), 0, false); }
            }
        }
        prop_assert!(t.hits() <= t.lookups());
    }

    #[test]
    fn expired_rules_never_match(
        idle_s in 1u64..10,
        gap_s in 0u64..20,
        src_port in 0u16..100,
    ) {
        let mut t = FlowTable::new(4);
        t.insert(Nanos::ZERO, rule_for(src_port, 1, idle_s));
        let now = Nanos::from_secs(gap_s);
        let _ = t.expire(now);
        let pkt = PacketBuilder::udp().src_port(src_port).build();
        let hit = t.match_packet(now, &MatchView::of(PortNo(1), &pkt), 100).is_some();
        if gap_s >= idle_s {
            prop_assert!(!hit, "rule idle for {gap_s}s with timeout {idle_s}s must be gone");
        } else {
            prop_assert!(hit);
        }
    }

    #[test]
    fn match_packet_agrees_with_peek(
        inserts in proptest::collection::vec((0u16..20, 0u16..8), 1..20),
        probe in 0u16..20,
    ) {
        let mut t = FlowTable::with_eviction(32, EvictionPolicy::EvictLru);
        let mut now = Nanos::ZERO;
        for (sp, pr) in inserts {
            now += Nanos::from_millis(1);
            let _ = t.insert(now, rule_for(sp, pr, 0));
        }
        let pkt = PacketBuilder::udp().src_port(probe).build();
        let view = MatchView::of(PortNo(1), &pkt);
        let peeked = t.peek(&view).map(|r| (r.match_fields, r.priority));
        let matched = t.match_packet(now, &view, 100).map(|r| (r.match_fields, r.priority));
        prop_assert_eq!(peeked, matched);
    }
}
