//! Lenient header parsing for (possibly truncated) `packet_in` data.
//!
//! A buffered `packet_in` carries only the first `miss_send_len` bytes of
//! the frame, so the full-packet decoder (which validates total lengths)
//! cannot be used. Real controllers parse layer by layer and stop at the
//! headers they need; this module does the same.

use sdnbuf_net::{
    DecodeError, EtherType, EthernetHeader, FlowKey, Ipv4Header, MacAddr, TcpHeader, UdpHeader,
    ETHERNET_HEADER_LEN, IPV4_HEADER_LEN,
};
use std::net::Ipv4Addr;

/// The header fields a reactive forwarding application needs, extracted
/// from possibly-truncated packet bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParsedHeaders {
    /// Ethernet source.
    pub src_mac: MacAddr,
    /// Ethernet destination.
    pub dst_mac: MacAddr,
    /// EtherType.
    pub ethertype: EtherType,
    /// IPv4 addresses and protocol, when the frame is IPv4.
    pub ip: Option<IpInfo>,
}

/// IPv4-level fields of a parsed header stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IpInfo {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// IP ToS byte.
    pub tos: u8,
    /// Protocol number.
    pub protocol: u8,
    /// Transport ports, when TCP/UDP headers were present in the slice.
    pub ports: Option<(u16, u16)>,
}

impl ParsedHeaders {
    /// Parses as many layers as the byte slice contains.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`DecodeError`] when even the Ethernet header
    /// is incomplete or an inner header is malformed.
    pub fn parse(data: &[u8]) -> Result<ParsedHeaders, DecodeError> {
        let eth = EthernetHeader::decode(data)?;
        let mut parsed = ParsedHeaders {
            src_mac: eth.src,
            dst_mac: eth.dst,
            ethertype: eth.ethertype,
            ip: None,
        };
        if eth.ethertype == EtherType::Ipv4 {
            let rest = &data[ETHERNET_HEADER_LEN..];
            let ip = Ipv4Header::decode(rest)?;
            let body = &rest[IPV4_HEADER_LEN..];
            let ports = match ip.protocol {
                17 => UdpHeader::decode(body)
                    .ok()
                    .map(|u| (u.src_port, u.dst_port)),
                6 => TcpHeader::decode(body)
                    .ok()
                    .map(|t| (t.src_port, t.dst_port)),
                _ => None,
            };
            parsed.ip = Some(IpInfo {
                src: ip.src,
                dst: ip.dst,
                tos: ip.dscp_ecn & 0xfc,
                protocol: ip.protocol,
                ports,
            });
        }
        Ok(parsed)
    }

    /// The flow 5-tuple, when the slice contained TCP/UDP over IPv4.
    pub fn flow_key(&self) -> Option<FlowKey> {
        let ip = self.ip?;
        let (src_port, dst_port) = ip.ports?;
        Some(FlowKey {
            src_ip: ip.src,
            dst_ip: ip.dst,
            src_port,
            dst_port,
            protocol: ip.protocol.into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnbuf_net::PacketBuilder;

    #[test]
    fn parses_truncated_udp_slice() {
        let pkt = PacketBuilder::udp()
            .src_port(7)
            .dst_port(8)
            .frame_size(1000)
            .build();
        let slice = pkt.header_slice(128);
        let h = ParsedHeaders::parse(&slice).unwrap();
        assert_eq!(h.src_mac, pkt.ethernet.src);
        assert_eq!(h.dst_mac, pkt.ethernet.dst);
        let key = h.flow_key().unwrap();
        assert_eq!(key, FlowKey::of(&pkt).unwrap());
    }

    #[test]
    fn parses_full_frame_too() {
        let pkt = PacketBuilder::tcp().frame_size(200).build();
        let h = ParsedHeaders::parse(&pkt.encode()).unwrap();
        assert!(h.flow_key().is_some());
    }

    #[test]
    fn arp_has_no_flow_key() {
        let arp =
            PacketBuilder::gratuitous_arp(MacAddr::from_host_index(1), Ipv4Addr::new(10, 0, 0, 1));
        let h = ParsedHeaders::parse(&arp.encode()).unwrap();
        assert_eq!(h.ethertype, EtherType::Arp);
        assert_eq!(h.flow_key(), None);
        assert_eq!(h.ip, None);
    }

    #[test]
    fn slice_without_transport_header_still_yields_ips() {
        let pkt = PacketBuilder::udp().frame_size(1000).build();
        // 34 bytes: Ethernet + IPv4 only, UDP header cut off.
        let h = ParsedHeaders::parse(&pkt.header_slice(34)).unwrap();
        let ip = h.ip.unwrap();
        assert_eq!(ip.protocol, 17);
        assert_eq!(ip.ports, None);
        assert_eq!(h.flow_key(), None);
    }

    #[test]
    fn too_short_fails() {
        assert!(ParsedHeaders::parse(&[0u8; 10]).is_err());
    }
}
