//! The Floodlight controller model for `sdn-buffer-lab`.
//!
//! Reproduces Floodlight's reactive forwarding module with an explicit
//! processing-cost model:
//!
//! * Every `packet_in` is parsed at a cost **proportional to the message
//!   size** — the paper's Section IV.B observation: "Without buffer, the
//!   controller needs to capture the header fields of each miss-match
//!   packet from the `pkt_in` messages", and encapsulating the full packet
//!   back into the `pkt_out` is "more time consuming than adopting the
//!   buffer".
//! * The L2 learning table maps MAC addresses to switch ports (learned from
//!   `packet_in`s, seeded by the hosts' gratuitous ARPs at testbed start).
//! * A known destination yields the `flow_mod` + `packet_out` pair the
//!   paper describes; an unknown destination yields a flood `packet_out`
//!   with no rule.
//!
//! Controller CPU usage (Figs. 3 and 10) is the busy fraction of the
//! modeled cores, `top`-style.
//!
//! # Example
//!
//! ```
//! use sdnbuf_controller::{Controller, ControllerConfig, ControllerOutput};
//! use sdnbuf_net::{MacAddr, PacketBuilder};
//! use sdnbuf_openflow::{msg, BufferId, OfpMessage, PortNo};
//! use sdnbuf_sim::Nanos;
//! use std::net::Ipv4Addr;
//!
//! let mut ctrl = Controller::new(ControllerConfig::default());
//! // Teach it where host 2 lives.
//! ctrl.learn(MacAddr::from_host_index(2), PortNo(2));
//!
//! let pkt = PacketBuilder::udp().frame_size(1000).build();
//! let pin = OfpMessage::PacketIn(msg::PacketIn {
//!     buffer_id: BufferId::new(1),
//!     total_len: 1000,
//!     in_port: PortNo(1),
//!     reason: msg::PacketInReason::NoMatch,
//!     data: pkt.header_slice(128),
//! });
//! let outs = ctrl.handle_message(Nanos::ZERO, pin, 42);
//! // A known destination: flow_mod + packet_out.
//! assert_eq!(outs.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod controller;
mod headers;
mod stats;

pub use config::{AdmissionPolicy, ControllerConfig, ForwardingMode};
pub use controller::{Controller, ControllerOutput, SwitchFeatures};
pub use headers::ParsedHeaders;
pub use stats::{ControllerStats, EchoRtt};
