//! Controller-side measurement counters.

use sdnbuf_metrics::{Counter, Histogram};
use sdnbuf_sim::Nanos;

/// Lazily allocated echo round-trip histogram. The ~15 KiB bucket array
/// only exists once a sample lands, so controllers that never run
/// keepalives (every default configuration) pay no allocation for it —
/// neither at construction nor when run results clone the stats.
#[derive(Clone, Debug, Default)]
pub struct EchoRtt(Option<Box<Histogram>>);

impl EchoRtt {
    /// Record one round trip, allocating the histogram on first use.
    pub fn record(&mut self, d: Nanos) {
        self.0
            .get_or_insert_with(|| Box::new(Histogram::new()))
            .record(d);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.count())
    }

    /// Upper bound of the bucket holding quantile `q` (zero when empty).
    pub fn quantile(&self, q: f64) -> Nanos {
        self.0.as_ref().map_or(Nanos::ZERO, |h| h.quantile(q))
    }

    /// `quantile` in fractional milliseconds.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.0.as_ref().map_or(0.0, |h| h.quantile_ms(q))
    }

    /// Fold another echo-RTT record into this one. Allocates only when
    /// the other side actually holds samples.
    pub fn merge(&mut self, other: &EchoRtt) {
        if let Some(theirs) = other.0.as_deref() {
            self.0
                .get_or_insert_with(|| Box::new(Histogram::new()))
                .merge(theirs);
        }
    }
}

/// Running statistics kept by the controller model.
#[derive(Clone, Debug, Default)]
pub struct ControllerStats {
    /// `packet_in` messages received.
    pub pkt_ins: Counter,
    /// `packet_in` payload bytes received.
    pub pkt_in_bytes: Counter,
    /// `flow_mod` messages sent.
    pub flow_mods: Counter,
    /// `packet_out` messages sent.
    pub pkt_outs: Counter,
    /// Floods issued for unknown/broadcast destinations.
    pub floods: Counter,
    /// `flow_removed` notifications received.
    pub flow_removed: Counter,
    /// `error` messages received.
    pub errors: Counter,
    /// `packet_in`s whose data could not be parsed.
    pub parse_failures: Counter,
    /// `packet_in`s shed by the bounded ingress queue's admission policy.
    pub admission_sheds: Counter,
    /// Probes originated (echo keepalives and stats polls).
    pub probes_sent: Counter,
    /// `echo_reply` messages received.
    pub echo_replies: Counter,
    /// `stats_reply` messages received.
    pub stats_replies: Counter,
    /// Round-trip time of the controller's own echo keepalives, from the
    /// `echo_request` leaving the controller to its `echo_reply` arriving
    /// back — the control channel's health signal.
    pub echo_rtt: EchoRtt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = ControllerStats::default();
        assert_eq!(s.pkt_ins.get(), 0);
        assert_eq!(s.errors.get(), 0);
    }
}
