//! Controller-side measurement counters.

use sdnbuf_metrics::Counter;

/// Running statistics kept by the controller model.
#[derive(Clone, Debug, Default)]
pub struct ControllerStats {
    /// `packet_in` messages received.
    pub pkt_ins: Counter,
    /// `packet_in` payload bytes received.
    pub pkt_in_bytes: Counter,
    /// `flow_mod` messages sent.
    pub flow_mods: Counter,
    /// `packet_out` messages sent.
    pub pkt_outs: Counter,
    /// Floods issued for unknown/broadcast destinations.
    pub floods: Counter,
    /// `flow_removed` notifications received.
    pub flow_removed: Counter,
    /// `error` messages received.
    pub errors: Counter,
    /// `packet_in`s whose data could not be parsed.
    pub parse_failures: Counter,
    /// `packet_in`s shed by the bounded ingress queue's admission policy.
    pub admission_sheds: Counter,
    /// Probes originated (echo keepalives and stats polls).
    pub probes_sent: Counter,
    /// `echo_reply` messages received.
    pub echo_replies: Counter,
    /// `stats_reply` messages received.
    pub stats_replies: Counter,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = ControllerStats::default();
        assert_eq!(s.pkt_ins.get(), 0);
        assert_eq!(s.errors.get(), 0);
    }
}
