//! The controller state machine.

use crate::{AdmissionPolicy, ControllerConfig, ControllerStats, ForwardingMode, ParsedHeaders};
use sdnbuf_net::MacAddr;
use sdnbuf_openflow::{
    msg::{FlowMod, FlowModCommand, PacketIn, PacketOut},
    Action, BufferId, Match, OfpMessage, PortNo, Wildcards,
};
use sdnbuf_sim::{Bus, CpuResource, EventKind, FastHashMap, Nanos, Tracer};
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// A timed effect produced by the controller.
#[derive(Clone, Debug, PartialEq)]
pub enum ControllerOutput {
    /// Send `msg` to the switch at time `at`.
    ToSwitch {
        /// When the message leaves the controller.
        at: Nanos,
        /// Transaction id (replies echo the request's id, so the testbed
        /// can measure per-request controller delay switch-side, exactly as
        /// the paper does).
        xid: u32,
        /// The message.
        msg: OfpMessage,
    },
}

/// The Floodlight model: reactive L2 forwarding with cost accounting.
pub struct Controller {
    config: ControllerConfig,
    cpu: CpuResource,
    ingest: Bus,
    mac_table: FastHashMap<MacAddr, PortNo>,
    next_xid: u32,
    /// Learned from `features_reply` during the handshake.
    switch_features: Option<SwitchFeatures>,
    /// The session epoch this instance currently serves (`0` until the
    /// crash plane assigns one; see [`Controller::set_epoch`]).
    epoch: u32,
    /// Departure times of in-flight echo keepalives, keyed by xid, so the
    /// matching `echo_reply` yields a round-trip sample.
    pending_echoes: FastHashMap<u32, Nanos>,
    /// Admission slots of the bounded ingress queue: one per admitted
    /// `packet_in`, held from arrival until its modeled service completion.
    /// Only maintained when `ingress_queue_capacity > 0`.
    backlog: VecDeque<AdmissionSlot>,
    stats: ControllerStats,
    tracer: Tracer,
}

/// One occupied slot of the bounded ingress queue.
#[derive(Clone, Copy, Debug)]
struct AdmissionSlot {
    /// When the slot frees: the admitted message's response-departure time.
    done_at: Nanos,
    xid: u32,
    bytes: usize,
    buffered: bool,
}

/// What the controller learned about its switch from the handshake.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchFeatures {
    /// The switch's datapath id.
    pub datapath_id: u64,
    /// How many packets the switch advertises it can buffer.
    pub n_buffers: u32,
    /// Number of physical ports.
    pub n_ports: usize,
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Controller")
            .field("known_macs", &self.mac_table.len())
            .field("pkt_ins", &self.stats.pkt_ins.get())
            .finish_non_exhaustive()
    }
}

impl Controller {
    /// Creates a controller from its configuration.
    ///
    /// # Panics
    /// When [`ControllerConfig::validate`] rejects the configuration. See
    /// [`Controller::try_new`] for the non-panicking form.
    pub fn new(config: ControllerConfig) -> Controller {
        match Controller::try_new(config) {
            Ok(c) => c,
            Err(e) => panic!("invalid ControllerConfig: {e}"),
        }
    }

    /// [`Controller::new`] with the validation error returned instead of
    /// panicking — the single validation path for controller construction.
    pub fn try_new(config: ControllerConfig) -> Result<Controller, String> {
        config.validate()?;
        Ok(Controller {
            cpu: CpuResource::new(config.cpu_cores),
            ingest: Bus::new(config.ingest_rate),
            mac_table: FastHashMap::default(),
            next_xid: 0x8000_0000, // distinct from switch-allocated xids
            switch_features: None,
            epoch: 0,
            pending_echoes: FastHashMap::default(),
            backlog: VecDeque::new(),
            stats: ControllerStats::default(),
            tracer: Tracer::off(),
            config,
        })
    }

    /// Attaches an event tracer, propagating it to the ingest pipe so the
    /// controller's socket-drain stage reports into the same stream.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.ingest.set_tracer(tracer.clone(), "controller-ingest");
        self.tracer = tracer;
    }

    /// What the handshake learned about the switch, once the
    /// `features_reply` has arrived.
    pub fn switch_features(&self) -> Option<SwitchFeatures> {
        self.switch_features
    }

    /// Opens the OpenFlow session: `hello`, `features_request`, then
    /// `set_config` pinning the `miss_send_len` the experiments use — the
    /// sequence Floodlight performs when a switch connects.
    pub fn initiate_handshake(&mut self, now: Nanos, miss_send_len: u16) -> Vec<ControllerOutput> {
        let at = self.submit(now, self.config.cost_parse_base);
        [
            OfpMessage::Hello,
            OfpMessage::FeaturesRequest,
            OfpMessage::SetConfig(sdnbuf_openflow::msg::SwitchConfig {
                flags: 0,
                miss_send_len,
            }),
            OfpMessage::GetConfigRequest,
        ]
        .into_iter()
        .map(|msg| ControllerOutput::ToSwitch {
            at,
            xid: self.fresh_xid(),
            msg,
        })
        .collect()
    }

    fn fresh_xid(&mut self) -> u32 {
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        xid
    }

    /// Originates a liveness probe — Floodlight pings its switches with
    /// periodic `echo_request`s.
    pub fn keepalive(&mut self, now: Nanos) -> ControllerOutput {
        let at = self.submit(now, self.config.cost_parse_base);
        self.stats.probes_sent.incr();
        let xid = self.fresh_xid();
        self.pending_echoes.insert(xid, at);
        ControllerOutput::ToSwitch {
            at,
            xid,
            msg: OfpMessage::EchoRequest(vec![0x5a; 8]),
        }
    }

    /// Originates a flow-statistics poll — Floodlight's statistics
    /// collector requests aggregate counters on a timer.
    pub fn poll_flow_stats(&mut self, now: Nanos) -> ControllerOutput {
        let at = self.submit(now, self.config.cost_parse_base);
        self.stats.probes_sent.incr();
        ControllerOutput::ToSwitch {
            at,
            xid: self.fresh_xid(),
            msg: OfpMessage::StatsRequest(sdnbuf_openflow::msg::StatsRequest::Aggregate {
                match_fields: Match::any(),
                table_id: 0xff,
                out_port: PortNo::NONE,
            }),
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Controller-side counters.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// `top`-style CPU utilization over `[ZERO, horizon]`, in percent.
    pub fn cpu_percent(&self, horizon: Nanos) -> f64 {
        self.cpu.utilization().percent(horizon)
    }

    /// Models a controller crash: every piece of volatile state — the
    /// learned MAC table, the admission backlog, the handshake's switch
    /// knowledge, in-flight echo probes — is lost. Unlike a stall, which
    /// merely delays the process, nothing survives a crash except the xid
    /// counter (a restarted process keeps allocating from the same
    /// monotonic space, so transaction correlation stays unambiguous) and
    /// the measurement counters, which belong to the experiment rather
    /// than the process.
    pub fn crash(&mut self) {
        self.mac_table.clear();
        self.backlog.clear();
        self.switch_features = None;
        self.pending_echoes.clear();
    }

    /// The session epoch this instance currently serves; `0` until the
    /// crash plane assigns one.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Assigns the session epoch (crash orchestration: bumped on every
    /// restart and failover takeover).
    pub fn set_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    /// Re-bases the xid allocator. The warm standby mints from a distinct
    /// range (`0xC000_0000`) so its transactions never collide with the
    /// primary's.
    pub fn set_xid_base(&mut self, base: u32) {
        self.next_xid = base;
    }

    /// Copies another controller's learned forwarding knowledge into this
    /// one — the warm-standby snapshot sync at takeover time.
    pub fn sync_from(&mut self, other: &Controller) {
        self.mac_table = other.mac_table.clone();
    }

    /// Seeds the learning table (or records a learned location).
    pub fn learn(&mut self, mac: MacAddr, port: PortNo) {
        self.mac_table.insert(mac, port);
    }

    /// Where the controller believes `mac` is attached.
    pub fn location_of(&self, mac: MacAddr) -> Option<PortNo> {
        self.mac_table.get(&mac).copied()
    }

    /// Handles a message arriving from the switch at `now`.
    pub fn handle_message(
        &mut self,
        now: Nanos,
        msg: OfpMessage,
        xid: u32,
    ) -> Vec<ControllerOutput> {
        let wire_len = msg.wire_len();
        // Admission control happens at the socket, before the IO thread
        // spends any time draining the message.
        if let OfpMessage::PacketIn(pin) = msg {
            if self.config.ingress_queue_capacity > 0 && !self.admit(now, &pin, xid) {
                return Vec::new();
            }
            let now = self.ingest.transfer(now, wire_len);
            return self.handle_packet_in(now, pin, xid);
        }
        // The message is first drained off the socket by the IO thread —
        // a serial, size-proportional stage.
        let now = self.ingest.transfer(now, wire_len);
        match msg {
            OfpMessage::PacketIn(_) => unreachable!("handled above"),
            OfpMessage::EchoRequest(data) => {
                let at = self.submit(now, self.config.cost_parse_base);
                vec![ControllerOutput::ToSwitch {
                    at,
                    xid,
                    msg: OfpMessage::EchoReply(data),
                }]
            }
            OfpMessage::FlowRemoved(_) => {
                self.stats.flow_removed.incr();
                self.submit(now, self.config.cost_parse_base);
                Vec::new()
            }
            OfpMessage::Error(_) => {
                self.stats.errors.incr();
                self.submit(now, self.config.cost_parse_base);
                Vec::new()
            }
            OfpMessage::FeaturesReply(fr) => {
                self.switch_features = Some(SwitchFeatures {
                    datapath_id: fr.datapath_id,
                    n_buffers: fr.n_buffers,
                    n_ports: fr.ports.len(),
                });
                self.submit(now, self.config.cost_parse_base);
                Vec::new()
            }
            ref vendor @ OfpMessage::Vendor(_) => {
                // The flow-granularity capability announcement: acknowledge
                // by enabling the mechanism with the announced timeout.
                let reply = sdnbuf_openflow::FlowBufferExt::from_message(vendor);
                let at = self.submit(now, self.config.cost_parse_base);
                match reply {
                    Some(Ok(sdnbuf_openflow::FlowBufferExt::Announce { timeout_ms, .. })) => {
                        vec![ControllerOutput::ToSwitch {
                            at,
                            xid: self.fresh_xid(),
                            msg: OfpMessage::from(sdnbuf_openflow::FlowBufferExt::Configure {
                                enabled: true,
                                timeout_ms,
                            }),
                        }]
                    }
                    _ => Vec::new(),
                }
            }
            OfpMessage::StatsReply(_) => {
                self.stats.stats_replies.incr();
                self.submit(now, self.config.cost_parse_base);
                Vec::new()
            }
            OfpMessage::EchoReply(_) => {
                self.stats.echo_replies.incr();
                if let Some(sent) = self.pending_echoes.remove(&xid) {
                    self.stats.echo_rtt.record(now.saturating_sub(sent));
                }
                self.submit(now, self.config.cost_parse_base);
                Vec::new()
            }
            // Handshake replies and other housekeeping: consume quietly.
            _ => {
                self.submit(now, self.config.cost_parse_base);
                Vec::new()
            }
        }
    }

    /// Decides whether a `packet_in` arriving at `now` gets an admission
    /// slot. Returns `false` when the arrival is shed. Only called when
    /// `ingress_queue_capacity > 0`.
    fn admit(&mut self, now: Nanos, pin: &PacketIn, xid: u32) -> bool {
        while self.backlog.front().is_some_and(|s| s.done_at <= now) {
            self.backlog.pop_front();
        }
        if self.backlog.len() < self.config.ingress_queue_capacity {
            return true;
        }
        let buffered = pin.buffer_id.is_buffered();
        match self.config.admission {
            AdmissionPolicy::DropTail => {
                self.shed(now, xid, pin.data.len(), buffered);
                false
            }
            AdmissionPolicy::DropHead => {
                // The evicted head's response is already scheduled; the
                // eviction frees its slot and books the work as wasted.
                let head = self.backlog.pop_front().expect("queue is full");
                self.shed(now, head.xid, head.bytes, head.buffered);
                true
            }
            AdmissionPolicy::PreferRerequests => {
                if buffered {
                    // A buffered re-request frees a switch buffer unit when
                    // served: admit it even over capacity.
                    true
                } else {
                    self.shed(now, xid, pin.data.len(), buffered);
                    false
                }
            }
        }
    }

    /// Books one shed `packet_in`.
    fn shed(&mut self, now: Nanos, xid: u32, bytes: usize, buffered: bool) {
        self.stats.admission_sheds.incr();
        self.tracer.emit(
            now,
            EventKind::AdmissionShed {
                xid,
                bytes,
                buffered,
            },
        );
    }

    /// Submits a CPU job with the contention scaling applied.
    fn submit(&mut self, now: Nanos, cost: Nanos) -> Nanos {
        let busy = self.cpu.busy_cores(now) as f64;
        let scaled = cost.scale(1.0 + self.config.contention * busy);
        self.cpu.submit(now, scaled.max(cost))
    }

    fn handle_packet_in(
        &mut self,
        now: Nanos,
        mut pin: PacketIn,
        xid: u32,
    ) -> Vec<ControllerOutput> {
        self.stats.pkt_ins.incr();
        self.stats.pkt_in_bytes.add(pin.data.len() as u64);
        self.tracer.emit(
            now,
            EventKind::PacketInReceived {
                xid,
                bytes: pin.data.len(),
                buffered: pin.buffer_id.is_buffered(),
            },
        );
        let Ok(headers) = ParsedHeaders::parse(&pin.data) else {
            self.stats.parse_failures.incr();
            self.submit(now, self.config.cost_parse_base);
            return Vec::new();
        };
        // L2 learning: the source lives behind the ingress port.
        if !headers.src_mac.is_multicast() {
            self.learn(headers.src_mac, pin.in_port);
        }
        let destination =
            if self.config.mode == ForwardingMode::Hub || headers.dst_mac.is_multicast() {
                None
            } else {
                self.location_of(headers.dst_mac)
            };
        // Cost: parse (size-dependent) + decision + encode; unbuffered
        // responses additionally pay to re-encapsulate the packet bytes.
        let mut cost = self.config.packet_in_cost(pin.data.len());
        let mut handled_bytes = pin.data.len();
        if !pin.buffer_id.is_buffered() {
            cost += self.config.cost_per_byte * pin.data.len() as u64;
            handled_bytes += pin.data.len();
        }
        // Allocation/GC stall: latency proportional to the bytes handled,
        // added after the CPU work completes.
        let at = self.submit(now, cost) + self.config.latency_per_byte * handled_bytes as u64;
        if self.config.ingress_queue_capacity > 0 {
            self.backlog.push_back(AdmissionSlot {
                done_at: at,
                xid,
                bytes: pin.data.len(),
                buffered: pin.buffer_id.is_buffered(),
            });
        }

        let out_data = if pin.buffer_id.is_buffered() {
            Vec::new()
        } else {
            // Unbuffered miss: the frame rides back inside the packet_out.
            // `pin` is owned, so move the bytes instead of copying them.
            std::mem::take(&mut pin.data)
        };
        match destination {
            Some(out_port) => {
                self.tracer.emit(
                    at,
                    EventKind::Decision {
                        xid,
                        action: "install",
                    },
                );
                // The paper's response pair: flow_mod installing the rule
                // for subsequent packets, packet_out forwarding the
                // miss-match packet itself.
                let flow_mod = OfpMessage::FlowMod(FlowMod {
                    match_fields: match_from_headers(&headers, pin.in_port),
                    cookie: 0,
                    command: FlowModCommand::Add,
                    idle_timeout: self.config.rule_idle_timeout,
                    hard_timeout: self.config.rule_hard_timeout,
                    priority: self.config.rule_priority,
                    buffer_id: BufferId::NO_BUFFER,
                    out_port: PortNo::NONE,
                    flags: 0,
                    actions: vec![Action::output(out_port)],
                });
                let pkt_out = OfpMessage::PacketOut(PacketOut {
                    buffer_id: pin.buffer_id,
                    in_port: pin.in_port,
                    actions: vec![Action::output(out_port)],
                    data: out_data,
                });
                self.stats.flow_mods.incr();
                self.stats.pkt_outs.incr();
                self.tracer.emit(at, EventKind::FlowModSent { xid });
                self.tracer.emit(
                    at,
                    EventKind::PacketOutSent {
                        xid,
                        buffer_id: pin.buffer_id.as_u32(),
                    },
                );
                vec![
                    ControllerOutput::ToSwitch {
                        at,
                        xid,
                        msg: flow_mod,
                    },
                    ControllerOutput::ToSwitch {
                        at,
                        xid,
                        msg: pkt_out,
                    },
                ]
            }
            None => {
                // Unknown or broadcast destination: flood, install nothing.
                self.stats.floods.incr();
                self.stats.pkt_outs.incr();
                self.tracer.emit(
                    at,
                    EventKind::Decision {
                        xid,
                        action: "flood",
                    },
                );
                self.tracer.emit(
                    at,
                    EventKind::PacketOutSent {
                        xid,
                        buffer_id: pin.buffer_id.as_u32(),
                    },
                );
                vec![ControllerOutput::ToSwitch {
                    at,
                    xid,
                    msg: OfpMessage::PacketOut(PacketOut {
                        buffer_id: pin.buffer_id,
                        in_port: pin.in_port,
                        actions: vec![Action::output(PortNo::FLOOD)],
                        data: out_data,
                    }),
                }]
            }
        }
    }
}

/// Builds the match for a reactive rule from the parsed headers — exact on
/// every field the `packet_in` slice contained, like Floodlight's
/// forwarding module.
fn match_from_headers(h: &ParsedHeaders, in_port: PortNo) -> Match {
    let mut m = Match::any();
    m.in_port = in_port;
    m.dl_src = h.src_mac;
    m.dl_dst = h.dst_mac;
    m.dl_type = h.ethertype.as_u16();
    let mut w = Wildcards::NONE
        .with(Wildcards::DL_VLAN)
        .with(Wildcards::DL_VLAN_PCP);
    match h.ip {
        Some(ip) => {
            m.nw_src = ip.src;
            m.nw_dst = ip.dst;
            m.nw_tos = ip.tos;
            m.nw_proto = ip.protocol;
            match ip.ports {
                Some((src, dst)) => {
                    m.tp_src = src;
                    m.tp_dst = dst;
                }
                None => {
                    w = w.with(Wildcards::TP_SRC).with(Wildcards::TP_DST);
                }
            }
        }
        None => {
            m.nw_src = Ipv4Addr::UNSPECIFIED;
            m.nw_dst = Ipv4Addr::UNSPECIFIED;
            w = w
                .with(Wildcards::NW_PROTO)
                .with(Wildcards::NW_TOS)
                .with(Wildcards::TP_SRC)
                .with(Wildcards::TP_DST)
                .with_nw_src_bits(63)
                .with_nw_dst_bits(63);
        }
    }
    m.wildcards = w;
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnbuf_net::PacketBuilder;
    use sdnbuf_openflow::msg::PacketInReason;
    use sdnbuf_openflow::MatchView;

    fn pkt_in_for(data: Vec<u8>, buffer_id: BufferId, total_len: u16) -> OfpMessage {
        OfpMessage::PacketIn(PacketIn {
            buffer_id,
            total_len,
            in_port: PortNo(1),
            reason: PacketInReason::NoMatch,
            data,
        })
    }

    #[test]
    fn try_new_returns_typed_errors() {
        assert!(Controller::try_new(ControllerConfig::default()).is_ok());
        let err = Controller::try_new(ControllerConfig {
            cpu_cores: 0,
            ..ControllerConfig::default()
        })
        .unwrap_err();
        assert!(err.contains("CPU core"), "{err}");
    }

    fn seeded() -> Controller {
        let mut c = Controller::new(ControllerConfig::default());
        c.learn(MacAddr::from_host_index(2), PortNo(2));
        c
    }

    #[test]
    fn known_destination_yields_flow_mod_and_pkt_out() {
        let mut c = seeded();
        let pkt = PacketBuilder::udp().frame_size(1000).build();
        let outs = c.handle_message(
            Nanos::ZERO,
            pkt_in_for(pkt.header_slice(128), BufferId::new(1), 1000),
            42,
        );
        assert_eq!(outs.len(), 2);
        match &outs[0] {
            ControllerOutput::ToSwitch {
                xid,
                msg: OfpMessage::FlowMod(fm),
                ..
            } => {
                assert_eq!(*xid, 42);
                assert_eq!(fm.command, FlowModCommand::Add);
                assert_eq!(fm.idle_timeout, 5);
                assert_eq!(fm.actions, vec![Action::output(PortNo(2))]);
                // The installed rule must actually match the packet.
                assert!(fm.match_fields.matches(&MatchView::of(PortNo(1), &pkt)));
            }
            other => panic!("{other:?}"),
        }
        match &outs[1] {
            ControllerOutput::ToSwitch {
                msg: OfpMessage::PacketOut(po),
                ..
            } => {
                assert_eq!(po.buffer_id, BufferId::new(1));
                assert!(po.data.is_empty(), "buffered pkt_out carries no data");
                assert_eq!(po.actions, vec![Action::output(PortNo(2))]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbuffered_pkt_in_returns_full_packet_in_pkt_out() {
        let mut c = seeded();
        let pkt = PacketBuilder::udp().frame_size(1000).build();
        let outs = c.handle_message(
            Nanos::ZERO,
            pkt_in_for(pkt.encode(), BufferId::NO_BUFFER, 1000),
            7,
        );
        match &outs[1] {
            ControllerOutput::ToSwitch {
                msg: OfpMessage::PacketOut(po),
                ..
            } => {
                assert_eq!(po.buffer_id, BufferId::NO_BUFFER);
                assert_eq!(po.data, pkt.encode());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_destination_floods_without_rule() {
        let mut c = Controller::new(ControllerConfig::default());
        let pkt = PacketBuilder::udp().frame_size(100).build();
        let outs = c.handle_message(
            Nanos::ZERO,
            pkt_in_for(pkt.encode(), BufferId::NO_BUFFER, 100),
            1,
        );
        assert_eq!(outs.len(), 1);
        match &outs[0] {
            ControllerOutput::ToSwitch {
                msg: OfpMessage::PacketOut(po),
                ..
            } => {
                assert_eq!(po.actions, vec![Action::output(PortNo::FLOOD)]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(c.stats().floods.get(), 1);
        assert_eq!(c.stats().flow_mods.get(), 0);
    }

    #[test]
    fn learns_source_locations_from_pkt_ins() {
        let mut c = Controller::new(ControllerConfig::default());
        let arp =
            PacketBuilder::gratuitous_arp(MacAddr::from_host_index(9), Ipv4Addr::new(10, 0, 0, 9));
        c.handle_message(
            Nanos::ZERO,
            pkt_in_for(arp.encode(), BufferId::NO_BUFFER, 42),
            1,
        );
        assert_eq!(c.location_of(MacAddr::from_host_index(9)), Some(PortNo(1)));
        // Now traffic *to* host 9 gets a rule instead of a flood.
        let pkt = PacketBuilder::udp()
            .dst_mac(MacAddr::from_host_index(9))
            .build();
        let outs = c.handle_message(
            Nanos::from_millis(1),
            pkt_in_for(pkt.encode(), BufferId::NO_BUFFER, 100),
            2,
        );
        assert_eq!(outs.len(), 2);
    }

    #[test]
    fn larger_pkt_ins_take_longer() {
        let mut small_ctrl = seeded();
        let mut large_ctrl = seeded();
        let pkt = PacketBuilder::udp().frame_size(1000).build();
        let t_small = match &small_ctrl.handle_message(
            Nanos::ZERO,
            pkt_in_for(pkt.header_slice(128), BufferId::new(1), 1000),
            1,
        )[0]
        {
            ControllerOutput::ToSwitch { at, .. } => *at,
        };
        let t_large = match &large_ctrl.handle_message(
            Nanos::ZERO,
            pkt_in_for(pkt.encode(), BufferId::NO_BUFFER, 1000),
            1,
        )[0]
        {
            ControllerOutput::ToSwitch { at, .. } => *at,
        };
        assert!(
            t_large > t_small,
            "full-packet pkt_in ({t_large}) must cost more than buffered ({t_small})"
        );
    }

    #[test]
    fn hub_mode_floods_and_never_installs() {
        let mut c = Controller::new(ControllerConfig {
            mode: ForwardingMode::Hub,
            ..ControllerConfig::default()
        });
        c.learn(MacAddr::from_host_index(2), PortNo(2)); // known, but ignored
        let pkt = PacketBuilder::udp().frame_size(1000).build();
        let outs = c.handle_message(
            Nanos::ZERO,
            pkt_in_for(pkt.encode(), BufferId::NO_BUFFER, 1000),
            1,
        );
        assert_eq!(outs.len(), 1);
        assert!(matches!(
            &outs[0],
            ControllerOutput::ToSwitch { msg: OfpMessage::PacketOut(po), .. }
                if po.actions == vec![Action::output(PortNo::FLOOD)]
        ));
        assert_eq!(c.stats().flow_mods.get(), 0);
        assert_eq!(c.stats().floods.get(), 1);
    }

    #[test]
    fn keepalive_and_stats_poll_originate_messages() {
        let mut c = Controller::new(ControllerConfig::default());
        let ControllerOutput::ToSwitch { msg, xid, .. } = c.keepalive(Nanos::ZERO);
        assert!(matches!(msg, OfpMessage::EchoRequest(_)));
        let ControllerOutput::ToSwitch {
            msg: m2, xid: x2, ..
        } = c.poll_flow_stats(Nanos::from_millis(1));
        assert!(matches!(m2, OfpMessage::StatsRequest(_)));
        assert_ne!(xid, x2, "probes use distinct xids");
        assert_eq!(c.stats().probes_sent.get(), 2);
        // Replies are consumed and counted.
        c.handle_message(
            Nanos::from_millis(2),
            OfpMessage::EchoReply(vec![0x5a; 8]),
            xid,
        );
        c.handle_message(
            Nanos::from_millis(2),
            OfpMessage::StatsReply(sdnbuf_openflow::msg::StatsReply::Aggregate {
                packet_count: 0,
                byte_count: 0,
                flow_count: 0,
            }),
            x2,
        );
        assert_eq!(c.stats().echo_replies.get(), 1);
        assert_eq!(c.stats().stats_replies.get(), 1);
    }

    #[test]
    fn echo_is_answered() {
        let mut c = Controller::new(ControllerConfig::default());
        let outs = c.handle_message(Nanos::ZERO, OfpMessage::EchoRequest(vec![9]), 4);
        assert!(matches!(
            &outs[0],
            ControllerOutput::ToSwitch { xid: 4, msg: OfpMessage::EchoReply(d), .. } if d == &vec![9]
        ));
    }

    #[test]
    fn garbage_pkt_in_is_counted_not_crashed() {
        let mut c = Controller::new(ControllerConfig::default());
        let outs = c.handle_message(
            Nanos::ZERO,
            pkt_in_for(vec![1, 2, 3], BufferId::NO_BUFFER, 3),
            1,
        );
        assert!(outs.is_empty());
        assert_eq!(c.stats().parse_failures.get(), 1);
    }

    #[test]
    fn flow_removed_and_errors_are_counted() {
        let mut c = Controller::new(ControllerConfig::default());
        c.handle_message(
            Nanos::ZERO,
            OfpMessage::Error(sdnbuf_openflow::msg::ErrorMsg {
                err_type: 1,
                code: 1,
                data: vec![],
            }),
            1,
        );
        assert_eq!(c.stats().errors.get(), 1);
    }

    #[test]
    fn admission_drop_tail_sheds_overflow() {
        let mut c = Controller::new(ControllerConfig {
            ingress_queue_capacity: 1,
            ..ControllerConfig::default()
        });
        c.learn(MacAddr::from_host_index(2), PortNo(2));
        let pkt = PacketBuilder::udp().frame_size(1000).build();
        let outs = c.handle_message(
            Nanos::ZERO,
            pkt_in_for(pkt.header_slice(128), BufferId::new(1), 1000),
            1,
        );
        assert_eq!(outs.len(), 2, "first arrival is served");
        // The slot is still held: a same-instant arrival is shed.
        let outs = c.handle_message(
            Nanos::ZERO,
            pkt_in_for(pkt.header_slice(128), BufferId::new(2), 1000),
            2,
        );
        assert!(outs.is_empty());
        assert_eq!(c.stats().admission_sheds.get(), 1);
        assert_eq!(c.stats().pkt_ins.get(), 1, "shed messages are not parsed");
        // Once the first response has left, capacity frees up.
        let outs = c.handle_message(
            Nanos::from_millis(10),
            pkt_in_for(pkt.header_slice(128), BufferId::new(3), 1000),
            3,
        );
        assert_eq!(outs.len(), 2);
    }

    #[test]
    fn admission_drop_head_keeps_the_newest() {
        let mut c = Controller::new(ControllerConfig {
            ingress_queue_capacity: 1,
            admission: AdmissionPolicy::DropHead,
            ..ControllerConfig::default()
        });
        c.learn(MacAddr::from_host_index(2), PortNo(2));
        let pkt = PacketBuilder::udp().frame_size(1000).build();
        c.handle_message(
            Nanos::ZERO,
            pkt_in_for(pkt.header_slice(128), BufferId::new(1), 1000),
            1,
        );
        let outs = c.handle_message(
            Nanos::ZERO,
            pkt_in_for(pkt.header_slice(128), BufferId::new(2), 1000),
            2,
        );
        assert_eq!(outs.len(), 2, "drop-head admits the newest arrival");
        assert_eq!(c.stats().admission_sheds.get(), 1, "…evicting the oldest");
    }

    #[test]
    fn admission_prefer_rerequests_admits_buffered_over_capacity() {
        let mut c = Controller::new(ControllerConfig {
            ingress_queue_capacity: 1,
            admission: AdmissionPolicy::PreferRerequests,
            ..ControllerConfig::default()
        });
        c.learn(MacAddr::from_host_index(2), PortNo(2));
        let pkt = PacketBuilder::udp().frame_size(1000).build();
        c.handle_message(
            Nanos::ZERO,
            pkt_in_for(pkt.encode(), BufferId::NO_BUFFER, 1000),
            1,
        );
        // A full-packet arrival over capacity is shed…
        let outs = c.handle_message(
            Nanos::ZERO,
            pkt_in_for(pkt.encode(), BufferId::NO_BUFFER, 1000),
            2,
        );
        assert!(outs.is_empty());
        // …but a buffered re-request is always admitted.
        let outs = c.handle_message(
            Nanos::ZERO,
            pkt_in_for(pkt.header_slice(128), BufferId::new(7), 1000),
            3,
        );
        assert_eq!(outs.len(), 2);
        assert_eq!(c.stats().admission_sheds.get(), 1);
    }

    #[test]
    fn echo_rtt_is_recorded_per_matched_reply() {
        let mut c = Controller::new(ControllerConfig::default());
        let ControllerOutput::ToSwitch { xid, at, .. } = c.keepalive(Nanos::ZERO);
        c.handle_message(
            at + Nanos::from_micros(300),
            OfpMessage::EchoReply(vec![0x5a; 8]),
            xid,
        );
        assert_eq!(c.stats().echo_rtt.count(), 1);
        assert!(c.stats().echo_rtt.quantile(0.5) >= Nanos::from_micros(300));
        // A reply with an unknown xid (e.g. answering a crashed
        // predecessor's probe) records no sample.
        c.handle_message(Nanos::from_millis(1), OfpMessage::EchoReply(vec![]), 0xdead);
        assert_eq!(c.stats().echo_rtt.count(), 1);
        assert_eq!(c.stats().echo_replies.get(), 2);
    }

    #[test]
    fn crash_drops_volatile_state_but_keeps_the_xid_space() {
        let mut c = seeded();
        c.handle_message(
            Nanos::ZERO,
            OfpMessage::FeaturesReply(sdnbuf_openflow::msg::FeaturesReply {
                datapath_id: 1,
                n_buffers: 16,
                n_tables: 1,
                capabilities: 0,
                actions: 0,
                ports: vec![],
            }),
            1,
        );
        assert!(c.switch_features().is_some());
        let ControllerOutput::ToSwitch { xid: x1, .. } = c.keepalive(Nanos::ZERO);
        c.set_epoch(1);
        c.crash();
        assert_eq!(c.location_of(MacAddr::from_host_index(2)), None);
        assert!(c.switch_features().is_none());
        // The in-flight probe died with the process: its late reply is
        // ignored.
        c.handle_message(Nanos::from_millis(1), OfpMessage::EchoReply(vec![]), x1);
        assert_eq!(c.stats().echo_rtt.count(), 0);
        // The xid space is monotonic across the crash.
        let ControllerOutput::ToSwitch { xid: x2, .. } = c.keepalive(Nanos::from_millis(2));
        assert!(x2 > x1);
    }

    #[test]
    fn standby_mints_from_its_own_xid_range_and_syncs_warm() {
        let mut primary = seeded();
        let mut standby = Controller::new(ControllerConfig::default());
        standby.set_xid_base(0xC000_0000);
        let ControllerOutput::ToSwitch { xid, .. } = standby.keepalive(Nanos::ZERO);
        assert_eq!(xid, 0xC000_0000);
        assert_eq!(standby.location_of(MacAddr::from_host_index(2)), None);
        standby.sync_from(&primary);
        assert_eq!(
            standby.location_of(MacAddr::from_host_index(2)),
            Some(PortNo(2))
        );
        // Sync copies knowledge, not identity: the primary is unaffected.
        let ControllerOutput::ToSwitch { xid, .. } = primary.keepalive(Nanos::ZERO);
        assert_eq!(xid, 0x8000_0000);
    }

    #[test]
    fn cpu_accumulates() {
        let mut c = seeded();
        let pkt = PacketBuilder::udp().frame_size(1000).build();
        for i in 0..10 {
            c.handle_message(
                Nanos::from_micros(i * 50),
                pkt_in_for(pkt.encode(), BufferId::NO_BUFFER, 1000),
                i as u32,
            );
        }
        assert!(c.cpu_percent(Nanos::from_millis(1)) > 0.0);
    }
}
