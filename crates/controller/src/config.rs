//! Controller configuration and cost model.

use sdnbuf_sim::{BitRate, Nanos};

/// What the controller's IO thread does with a `packet_in` that arrives
/// while the bounded ingress queue is full.
///
/// The queue is modeled as admission slots: each admitted `packet_in`
/// occupies a slot from its arrival until its modeled service completion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Shed the newest arrival (classic bounded-queue behaviour).
    #[default]
    DropTail,
    /// Evict the oldest occupied slot and admit the newest arrival. In
    /// this synchronous model the evicted message's response has already
    /// been scheduled, so the eviction is accounted as wasted work: the
    /// slot is freed and the eviction counted as a shed.
    DropHead,
    /// Shed only full-packet (unbuffered) `packet_in`s; buffered
    /// re-requests are always admitted, even over capacity — they are
    /// cheap to serve and unblock switch buffer units.
    PreferRerequests,
}

impl AdmissionPolicy {
    /// A short label for result tables and CLI round-trips.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::DropTail => "drop-tail",
            AdmissionPolicy::DropHead => "drop-head",
            AdmissionPolicy::PreferRerequests => "prefer-rerequests",
        }
    }

    /// Parses a [`label`](Self::label) back into a policy.
    pub fn parse(s: &str) -> Option<AdmissionPolicy> {
        match s {
            "drop-tail" => Some(AdmissionPolicy::DropTail),
            "drop-head" => Some(AdmissionPolicy::DropHead),
            "prefer-rerequests" => Some(AdmissionPolicy::PreferRerequests),
            _ => None,
        }
    }
}

/// How the controller decides where packets go.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ForwardingMode {
    /// Floodlight's reactive forwarding: learn MAC locations, install an
    /// exact-match rule + `packet_out` per new flow.
    #[default]
    Learning,
    /// A hub: flood every miss, never install rules. The degenerate
    /// baseline in which *every* packet of *every* flow stays a miss —
    /// useful for ablations of how much reactive rules themselves save.
    Hub,
}

/// Static configuration and processing-cost model of the controller.
///
/// Costs are per-`packet_in` CPU service times on the controller's cores.
/// The per-byte term is the lever the paper's Section IV.B identifies: a
/// 1018-byte full-packet `packet_in` costs markedly more to parse — and its
/// full-packet `packet_out` more to build — than a 146-byte buffered one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ControllerConfig {
    /// CPU cores of the controller PC (quad-core in Table I).
    pub cpu_cores: usize,
    /// Base cost to receive and dispatch any message.
    pub cost_parse_base: Nanos,
    /// Additional cost per byte of `packet_in` payload parsed and,
    /// symmetrically, per byte of `packet_out` payload encapsulated.
    pub cost_per_byte: Nanos,
    /// Cost of the forwarding decision (learning-table lookups).
    pub cost_decision: Nanos,
    /// Cost of building the `flow_mod` + `packet_out` pair.
    pub cost_encode: Nanos,
    /// Superlinear load penalty: effective cost is scaled by
    /// `1 + contention × (queued jobs)`. Models thread contention and GC
    /// pressure under bursts; zero disables it.
    pub contention: f64,
    /// Idle timeout installed in reactive rules, seconds (Floodlight's
    /// forwarding default is 5 s).
    pub rule_idle_timeout: u16,
    /// Hard timeout installed in reactive rules, seconds (0 = none).
    pub rule_hard_timeout: u16,
    /// Priority of reactive rules.
    pub rule_priority: u16,
    /// Throughput of the controller's message-ingest path (the single
    /// netty/IO thread draining the OpenFlow socket in Floodlight). With
    /// full-packet `packet_in`s this path saturates near the link rate and
    /// is where the paper's no-buffer controller delay starts climbing
    /// (Fig. 6, beginning at 60 Mbps).
    pub ingest_rate: BitRate,
    /// Forwarding behaviour.
    pub mode: ForwardingMode,
    /// Response latency added per byte of packet data handled (the
    /// `packet_in` payload plus any full packet re-encapsulated into the
    /// `packet_out`). Models the JVM allocation/GC stalls that scale with
    /// message size on the real Floodlight — pure latency, not CPU work,
    /// so it shapes the controller-delay figures without inflating CPU
    /// usage.
    pub latency_per_byte: Nanos,
    /// Bound on the `packet_in` ingress queue (admission slots held from
    /// arrival to modeled service completion). `0` (the default) leaves the
    /// queue unbounded — the pre-admission-control behaviour.
    pub ingress_queue_capacity: usize,
    /// What to shed when the bounded ingress queue is full.
    pub admission: AdmissionPolicy,
}

impl Default for ControllerConfig {
    /// The Table I testbed controller: a quad-core PC running Floodlight
    /// with its default reactive-forwarding parameters.
    fn default() -> Self {
        ControllerConfig {
            cpu_cores: 4,
            cost_parse_base: Nanos::from_micros(40),
            cost_per_byte: Nanos::from_nanos(110),
            cost_decision: Nanos::from_micros(25),
            cost_encode: Nanos::from_micros(20),
            contention: 0.08,
            rule_idle_timeout: 5,
            rule_hard_timeout: 0,
            rule_priority: 100,
            ingest_rate: BitRate::from_mbps(105),
            mode: ForwardingMode::default(),
            latency_per_byte: Nanos::from_nanos(400),
            ingress_queue_capacity: 0,
            admission: AdmissionPolicy::DropTail,
        }
    }
}

impl ControllerConfig {
    /// Total service time for a `packet_in` whose data field has
    /// `payload_bytes` bytes, before the contention scaling.
    pub fn packet_in_cost(&self, payload_bytes: usize) -> Nanos {
        // Parsing only; the controller adds a second per-byte term when it
        // must re-encapsulate the packet into an unbuffered packet_out.
        self.cost_parse_base
            + self.cost_decision
            + self.cost_encode
            + self.cost_per_byte * (payload_bytes as u64)
    }

    /// Checks the configuration for values that would wedge or corrupt the
    /// queueing model at runtime.
    pub fn validate(&self) -> Result<(), String> {
        if self.cpu_cores == 0 {
            return Err("controller needs at least one CPU core".to_owned());
        }
        if !self.contention.is_finite() || self.contention < 0.0 {
            return Err(format!(
                "contention factor must be finite and non-negative, got {}",
                self.contention
            ));
        }
        if self.ingest_rate.as_mbps_f64() <= 0.0 {
            return Err("controller ingest rate must be positive".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_testbed() {
        let c = ControllerConfig::default();
        assert_eq!(c.cpu_cores, 4);
        assert_eq!(c.rule_idle_timeout, 5);
    }

    #[test]
    fn validate_accepts_default_and_rejects_nonsense() {
        assert!(ControllerConfig::default().validate().is_ok());
        let c = ControllerConfig {
            cpu_cores: 0,
            ..ControllerConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ControllerConfig {
            contention: f64::NAN,
            ..ControllerConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ControllerConfig {
            contention: -1.0,
            ..ControllerConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn admission_policy_labels_round_trip() {
        for p in [
            AdmissionPolicy::DropTail,
            AdmissionPolicy::DropHead,
            AdmissionPolicy::PreferRerequests,
        ] {
            assert_eq!(AdmissionPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(AdmissionPolicy::parse("random-early"), None);
        assert_eq!(
            ControllerConfig::default().ingress_queue_capacity,
            0,
            "admission control defaults off"
        );
    }

    #[test]
    fn cost_scales_with_message_size() {
        let c = ControllerConfig::default();
        let small = c.packet_in_cost(128);
        let large = c.packet_in_cost(1018);
        assert!(large > small);
        assert_eq!(large - small, c.cost_per_byte * (1018 - 128));
    }
}
