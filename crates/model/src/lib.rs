//! # sdnbuf-model — an analytic oracle for the Section IV control loop
//!
//! Everything else in this workspace checks the simulator against *itself*
//! (golden traces, chaos invariants, perf digests). This crate is the
//! independent yardstick: a closed-form, single-node queueing model of the
//! Fig. 1 testbed in the style of Mahmood et al.'s M/M/1 OpenFlow model,
//! adapted to the near-deterministic arrivals our pktgen workload actually
//! produces. Given the same `SwitchConfig` / `ControllerConfig` / link
//! parameters the simulator runs with, [`Oracle::predict`] returns the mean
//! flow-setup delay, per-direction control-path load, controller CPU
//! utilization and control-message counts that a no-fault Section IV cell
//! *must* converge to — for all three buffer mechanisms.
//!
//! ## Model shape
//!
//! The paper's workload is constant-bit-rate with a small mean-preserving
//! jitter (±2 %), not Poisson. Below saturation a near-deterministic
//! arrival stream sees almost no stochastic queueing, so an M/M/1 waiting
//! term would *overpredict* delay by orders of magnitude. The model is
//! therefore:
//!
//! 1. **A deterministic path floor**: the sum of every service, bus,
//!    serialization and propagation latency one flow's setup experiences
//!    on an idle system — derived station by station from the same config
//!    structs the simulator reads (see [`Oracle::predict`] internals and
//!    DESIGN §13 for the derivation).
//! 2. **A fluid overload term**: each station is a FIFO server with a
//!    per-flow service demand; the path's throughput is capped by its
//!    slowest station (`μ`). When the offered flow rate `λ` exceeds `μ`,
//!    backlog grows linearly and the i-th flow waits
//!    `i × (1/μ − 1/λ)`; averaged over `n` flows the mean extra delay is
//!    `(n−1)/2 × (1/μ − 1/λ)`.
//! 3. **A contention fixed point** for the controller CPU, whose effective
//!    service cost is inflated by `1 + contention × busy_cores` exactly as
//!    in [`sdnbuf_controller`]; the model solves the resulting fixed point
//!    by iteration.
//!
//! Message sizes are not hard-coded: the oracle builds representative
//! `packet_in` / `flow_mod` / `packet_out` messages and asks the real
//! codec for their [`OfpMessage::wire_len`], so a codec change moves the
//! prediction the same way it moves the simulator.
//!
//! The model covers single-packet-flow workloads (the Section IV grid).
//! Its one structural statement about mechanisms, per the paper: the
//! flow-granularity mechanism emits one `packet_in` per *flow*, the other
//! two one per *miss* — identical on this grid, divergent on Section V's
//! multi-packet flows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sdnbuf_controller::ControllerConfig;
use sdnbuf_openflow::msg::{FlowMod, FlowModCommand, PacketIn, PacketInReason, PacketOut};
use sdnbuf_openflow::{Action, BufferId, Match, OfpMessage, PortNo};
use sdnbuf_sim::{BitRate, LinkConfig};
use sdnbuf_switch::{BufferChoice, SwitchConfig};

/// Offered utilization band treated as "near critical": within it, small
/// service-time differences flip a station between idle and overloaded, so
/// the differential harness widens its tolerances (see DESIGN §13).
pub const NEAR_CRITICAL_BAND: (f64, f64) = (0.85, 1.15);

/// One no-fault Section IV cell, described by the same configuration
/// structs the simulator consumes.
///
/// Build it from a `TestbedConfig`'s parts (the validate harness does) or
/// from scratch; the oracle reads only these fields.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The switch model (includes the buffer mechanism under test).
    pub switch: SwitchConfig,
    /// The controller model.
    pub controller: ControllerConfig,
    /// Host ↔ switch link.
    pub data_link: LinkConfig,
    /// Switch ↔ controller channel.
    pub control_link: LinkConfig,
    /// Offered sending rate on the data link.
    pub rate: BitRate,
    /// Wire length of one workload frame in bytes.
    pub frame_len: usize,
    /// Number of single-packet flows in the run.
    pub flows: u64,
}

/// One station of the flow-setup path: a FIFO server with a per-flow
/// service demand.
#[derive(Clone, Debug)]
pub struct Station {
    /// Human-readable station name (stable, used in reports).
    pub name: &'static str,
    /// Service demand one flow places on this station, in seconds.
    pub demand_secs: f64,
    /// Parallel servers at this station (CPU cores; 1 for serial lines).
    pub servers: f64,
    /// Offered utilization `λ_in × demand / servers` where `λ_in` is the
    /// flow rate *arriving* at this station (upstream stations throttle).
    /// May exceed 1 at the bottleneck.
    pub utilization: f64,
    /// Whether the station gates the flow-setup latency. The serial
    /// rule-install pipeline is tracked but off-path: on single-packet
    /// flows the packet leaves before the rule's effect time matters.
    pub on_setup_path: bool,
}

/// The oracle's closed-form prediction for one [`Scenario`].
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Predicted mean flow-setup delay (switch entry → switch egress), ms.
    pub flow_setup_delay_ms: f64,
    /// The deterministic idle-path component of the delay, ms.
    pub setup_floor_ms: f64,
    /// Predicted mean controller delay (`packet_in` leaves the switch →
    /// first response arrives back), ms.
    pub controller_delay_ms: f64,
    /// Predicted switch → controller control-path load, Mbps.
    pub ctrl_load_to_controller_mbps: f64,
    /// Predicted controller → switch control-path load, Mbps.
    pub ctrl_load_to_switch_mbps: f64,
    /// Predicted controller CPU utilization, percent (top-style: sums
    /// across cores, may exceed 100).
    pub controller_cpu_percent: f64,
    /// Predicted `packet_in` count over the measured span.
    pub pkt_in_count: u64,
    /// Predicted `flow_mod` count.
    pub flow_mod_count: u64,
    /// Predicted `packet_out` count.
    pub pkt_out_count: u64,
    /// Predicted measured span of the run, ms.
    pub active_span_ms: f64,
    /// Offered flow rate λ, flows/sec.
    pub lambda_flows_per_sec: f64,
    /// Path service capacity μ (slowest on-path station), flows/sec.
    pub mu_flows_per_sec: f64,
    /// Name of the μ-defining station.
    pub bottleneck: &'static str,
    /// Highest offered utilization across on-path stations.
    pub max_path_utilization: f64,
    /// True when the cell saturates (`λ > μ`): delay is then dominated by
    /// the fluid backlog term.
    pub saturated: bool,
    /// True when any on-path station sits in [`NEAR_CRITICAL_BAND`]:
    /// the harness widens tolerances for these knife-edge cells.
    pub near_critical: bool,
    /// Every station of the path with its demand and utilization.
    pub stations: Vec<Station>,
}

/// Which model the oracle runs: the faithful derivation, or a deliberately
/// broken variant used by `sdnlab validate --broken` to prove the
/// differential harness can actually fail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelFidelity {
    /// The real model.
    Faithful,
    /// A classic modeling bug, injected on purpose: the control channel's
    /// propagation delay is dropped from the delay floor in both
    /// directions (as if the modeler forgot the 2×300 µs channel RTT).
    /// Every low-rate cell's predicted delay collapses well past any
    /// sane tolerance — a validator that still passes has no teeth.
    ForgottenPropagation,
}

/// The analytic oracle. Stateless apart from its [`ModelFidelity`].
#[derive(Clone, Copy, Debug)]
pub struct Oracle {
    fidelity: ModelFidelity,
}

impl Default for Oracle {
    fn default() -> Self {
        Oracle::faithful()
    }
}

impl Oracle {
    /// The real model.
    pub fn faithful() -> Self {
        Oracle {
            fidelity: ModelFidelity::Faithful,
        }
    }

    /// The deliberately broken model (see [`ModelFidelity`]).
    pub fn broken() -> Self {
        Oracle {
            fidelity: ModelFidelity::ForgottenPropagation,
        }
    }

    /// Whether this oracle carries the injected modeling bug.
    pub fn is_broken(&self) -> bool {
        self.fidelity != ModelFidelity::Faithful
    }

    /// Predicts the mean Section IV measurements for `s`.
    ///
    /// Panics if `s.flows == 0` or `s.frame_len == 0` — an empty cell has
    /// no means to predict.
    pub fn predict(&self, s: &Scenario) -> Prediction {
        assert!(s.flows > 0, "oracle needs at least one flow");
        assert!(s.frame_len > 0, "oracle needs a nonzero frame size");

        let buffered = !matches!(s.switch.buffer, BufferChoice::NoBuffer);
        let frame = s.frame_len;
        // Bytes of the packet that travel inside the packet_in: the
        // miss_send_len prefix when buffered, the whole frame otherwise.
        let slice = if buffered {
            (s.switch.miss_send_len as usize).min(frame)
        } else {
            frame
        };

        // -- Wire sizes straight from the codec -------------------------
        let pkt_in_wire = wire_len_packet_in(slice);
        let flow_mod_wire = wire_len_flow_mod();
        let pkt_out_wire = wire_len_packet_out(if buffered { 0 } else { frame });

        // -- Per-station service demands (seconds per flow) -------------
        let bus = |bytes: usize| s.switch.bus_rate.transmission_time(bytes).as_secs_f64();
        let ctrl_tx = |bytes: usize| {
            s.control_link
                .bandwidth
                .transmission_time(bytes)
                .as_secs_f64()
        };

        // ASIC↔CPU bus: the miss slice rides up; no-buffer also carries
        // the full packet_out payload back down.
        let bus_up = bus(slice);
        let bus_down = if buffered { 0.0 } else { bus(frame) };

        // Switch management CPU, three touches per flow: assemble the
        // packet_in (+ park the packet when buffered), parse the flow_mod,
        // parse the packet_out (+ release or re-inject the payload).
        let cpu_in = if buffered {
            (s.switch.cost_buffer_store + s.switch.cost_pkt_in_base + s.switch.payload_cost(slice))
                .as_secs_f64()
        } else {
            (s.switch.cost_pkt_in_base + s.switch.payload_cost(frame)).as_secs_f64()
        };
        let cpu_fm = s.switch.cost_flow_mod.as_secs_f64();
        let cpu_po = if buffered {
            (s.switch.cost_pkt_out_base + s.switch.cost_buffer_release).as_secs_f64()
        } else {
            (s.switch.cost_pkt_out_base + s.switch.payload_cost(frame)).as_secs_f64()
        };

        // Controller: serial ingest bus, then the CPU pool. Unbuffered
        // packet_outs pay the re-encapsulation per-byte term and double
        // the GC-latency byte count, exactly as the controller model does.
        let ingest = s
            .controller
            .ingest_rate
            .transmission_time(pkt_in_wire)
            .as_secs_f64();
        let mut ctrl_cpu_base = s.controller.packet_in_cost(slice).as_secs_f64();
        let mut handled_bytes = slice;
        if !buffered {
            ctrl_cpu_base += (s.controller.cost_per_byte * frame as u64).as_secs_f64();
            handled_bytes += frame;
        }
        let gc_latency = (s.controller.latency_per_byte * handled_bytes as u64).as_secs_f64();

        let uplink = ctrl_tx(pkt_in_wire);
        let downlink = ctrl_tx(flow_mod_wire) + ctrl_tx(pkt_out_wire);
        let ctrl_prop = s.control_link.propagation.as_secs_f64();

        // -- Offered flow rate ------------------------------------------
        // pktgen spaces departures by frame_bits / sending_rate; the data
        // link cannot deliver flows faster than its own serialization.
        let lambda_offered = s.rate.as_mbps_f64() * 1e6 / (frame as f64 * 8.0);
        let data_tx = s.data_link.bandwidth.transmission_time(frame).as_secs_f64();
        let lambda = lambda_offered.min(1.0 / data_tx);

        // -- Controller contention fixed point --------------------------
        // Effective cost = base × (1 + contention × busy_cores), where
        // busy_cores is sampled *at submit time* — not the time-average
        // erlangs. The serial ingest line delivers packets to the CPU
        // pool with near-deterministic spacing 1/λ, so the cores still
        // busy when a new packet is submitted number
        // ceil(scaled_cost / spacing) − 1: zero whenever one service
        // fits inside one inter-arrival gap, which is the whole
        // below-saturation grid. Iterate the integer fixed point (the
        // map is monotone in the busy count, bounded by the core count).
        let ctrl_cores = s.controller.cpu_cores.max(1) as f64;
        let sw_cores = s.switch.cpu_cores.max(1) as f64;
        // Flow rate actually reaching the controller CPU: upstream serial
        // stations throttle it.
        let lambda_at_ctrl = lambda
            .min(1.0 / (bus_up + bus_down))
            .min(sw_cores / (cpu_in + cpu_fm + cpu_po))
            .min(1.0 / uplink)
            .min(1.0 / ingest);
        let spacing = if lambda_at_ctrl > 0.0 {
            1.0 / lambda_at_ctrl
        } else {
            f64::INFINITY
        };
        let mut busy_at_submit = 0.0f64;
        for _ in 0..=s.controller.cpu_cores.max(1) {
            let scaled = ctrl_cpu_base * (1.0 + s.controller.contention * busy_at_submit);
            let next = ((scaled / spacing).ceil() - 1.0).clamp(0.0, ctrl_cores - 1.0);
            if next == busy_at_submit {
                break;
            }
            busy_at_submit = next;
        }
        let contention_scale = 1.0 + s.controller.contention * busy_at_submit;
        let ctrl_cpu = ctrl_cpu_base * contention_scale;

        // -- Station table, path order ----------------------------------
        let mut stations = vec![
            // The ingress data link is off the setup path (it paces
            // arrivals, it doesn't add setup latency), but it is tracked
            // because a cell driving it at ρ ≈ 1 is a knife edge: the
            // standing queue absorbs the workload jitter and the
            // resulting back-to-back departures resonate through the
            // switch CPU pool, bunching packet_ins at the controller.
            Station {
                name: "data-link",
                demand_secs: data_tx,
                servers: 1.0,
                utilization: 0.0,
                on_setup_path: false,
            },
            Station {
                name: "switch-bus",
                demand_secs: bus_up + bus_down,
                servers: 1.0,
                utilization: 0.0,
                on_setup_path: true,
            },
            Station {
                name: "switch-cpu",
                demand_secs: cpu_in + cpu_fm + cpu_po,
                servers: sw_cores,
                utilization: 0.0,
                on_setup_path: true,
            },
            Station {
                name: "ctrl-link-up",
                demand_secs: uplink,
                servers: 1.0,
                utilization: 0.0,
                on_setup_path: true,
            },
            Station {
                name: "ctrl-ingest",
                demand_secs: ingest,
                servers: 1.0,
                utilization: 0.0,
                on_setup_path: true,
            },
            Station {
                name: "ctrl-cpu",
                demand_secs: ctrl_cpu,
                servers: ctrl_cores,
                utilization: 0.0,
                on_setup_path: true,
            },
            Station {
                name: "ctrl-link-down",
                demand_secs: downlink,
                servers: 1.0,
                utilization: 0.0,
                on_setup_path: true,
            },
            Station {
                name: "rule-install",
                demand_secs: s.switch.cost_rule_install.as_secs_f64(),
                servers: 1.0,
                utilization: 0.0,
                on_setup_path: false,
            },
        ];

        // Offered utilization per station, throttling the flow rate as it
        // passes each one; μ and the bottleneck fall out of the same walk.
        let mut thr = lambda;
        let mut mu = f64::INFINITY;
        let mut bottleneck = "none";
        let mut max_rho = 0.0f64;
        for st in stations.iter_mut() {
            if !st.on_setup_path {
                st.utilization = thr * st.demand_secs / st.servers;
                continue;
            }
            let cap = if st.demand_secs > 0.0 {
                st.servers / st.demand_secs
            } else {
                f64::INFINITY
            };
            st.utilization = thr * st.demand_secs / st.servers;
            max_rho = max_rho.max(st.utilization);
            if cap < mu {
                mu = cap;
                bottleneck = st.name;
            }
            thr = thr.min(cap);
        }

        // -- Delay ------------------------------------------------------
        // The idle-path floor: every latency one flow's setup serializes
        // through, at contention-free service costs (one flow alone never
        // sees a busy core). The flow_mod parse is *not* here — it runs
        // on a spare core while the packet_out is still on the wire.
        let mut floor = bus_up
            + cpu_in
            + uplink
            + ingest
            + ctrl_cpu_base
            + gc_latency
            + downlink
            + cpu_po
            + bus_down;
        match self.fidelity {
            ModelFidelity::Faithful => floor += 2.0 * ctrl_prop,
            ModelFidelity::ForgottenPropagation => {}
        }
        // Contention inflates the *mean* beyond the floor once submits
        // start landing on busy cores.
        let contention_extra = ctrl_cpu - ctrl_cpu_base;

        let n = s.flows as f64;
        let saturated = lambda > mu;
        let extra_mean = if saturated {
            (n - 1.0) / 2.0 * (1.0 / mu - 1.0 / lambda)
        } else {
            0.0
        };
        let delay = floor + contention_extra + extra_mean;

        // -- Span and the rates derived from it -------------------------
        // Measured span: first switch arrival → last delivery. Departures
        // cover (n−1) spacings (stretched to 1/μ when saturated), plus one
        // data-link leg in, the last flow's setup, and one leg out.
        let data_leg = data_tx + s.data_link.propagation.as_secs_f64();
        let span = (n - 1.0) * (1.0 / lambda).max(1.0 / mu) + floor + 2.0 * data_leg;

        let up_bytes = n * pkt_in_wire as f64;
        let down_bytes = n * (flow_mod_wire + pkt_out_wire) as f64;

        // Knife-edge detection covers the on-path stations plus the
        // arrival-pacing data link (see the station table above); the
        // off-path rule installer lags harmlessly and is excluded.
        let near_critical = stations
            .iter()
            .filter(|st| st.on_setup_path || st.name == "data-link")
            .any(|st| {
                st.utilization >= NEAR_CRITICAL_BAND.0 && st.utilization <= NEAR_CRITICAL_BAND.1
            });

        // The controller-delay span runs from the packet_in leaving the
        // switch to the response arriving back: the fluid backlog only
        // inflates it when the bottleneck sits *inside* that span —
        // a saturated switch bus queues packets upstream of the span's
        // start, so the controller never sees the overload.
        let ctrl_span_bottleneck = matches!(
            bottleneck,
            "ctrl-link-up" | "ctrl-ingest" | "ctrl-cpu" | "ctrl-link-down"
        );
        let ctrl_span_extra = if saturated && ctrl_span_bottleneck {
            extra_mean
        } else {
            0.0
        };

        Prediction {
            flow_setup_delay_ms: delay * 1e3,
            setup_floor_ms: floor * 1e3,
            controller_delay_ms: (uplink
                + ingest
                + ctrl_cpu
                + gc_latency
                + downlink
                + match self.fidelity {
                    ModelFidelity::Faithful => 2.0 * ctrl_prop,
                    ModelFidelity::ForgottenPropagation => 0.0,
                }
                + ctrl_span_extra)
                * 1e3,
            ctrl_load_to_controller_mbps: up_bytes * 8.0 / span / 1e6,
            ctrl_load_to_switch_mbps: down_bytes * 8.0 / span / 1e6,
            controller_cpu_percent: 100.0 * n * ctrl_cpu / span,
            pkt_in_count: s.flows,
            flow_mod_count: s.flows,
            pkt_out_count: s.flows,
            active_span_ms: span * 1e3,
            lambda_flows_per_sec: lambda,
            mu_flows_per_sec: mu,
            bottleneck,
            max_path_utilization: max_rho,
            saturated,
            near_critical,
            stations,
        }
    }
}

/// `packet_in` wire length for a payload of `data_len` bytes, from the
/// real codec.
fn wire_len_packet_in(data_len: usize) -> usize {
    OfpMessage::PacketIn(PacketIn {
        buffer_id: BufferId::NO_BUFFER,
        total_len: data_len as u16,
        in_port: PortNo(1),
        reason: PacketInReason::NoMatch,
        data: vec![0; data_len],
    })
    .wire_len()
}

/// Wire length of the reactive `flow_mod` (exact match, one output
/// action) the controller installs per flow.
fn wire_len_flow_mod() -> usize {
    OfpMessage::FlowMod(FlowMod {
        match_fields: Match::any(),
        cookie: 0,
        command: FlowModCommand::Add,
        idle_timeout: 5,
        hard_timeout: 0,
        priority: 100,
        buffer_id: BufferId::NO_BUFFER,
        out_port: PortNo::NONE,
        flags: 0,
        actions: vec![Action::output(PortNo(2))],
    })
    .wire_len()
}

/// `packet_out` wire length: `data_len` is 0 for a buffered release, the
/// full frame when the packet rides back inside the message.
fn wire_len_packet_out(data_len: usize) -> usize {
    OfpMessage::PacketOut(PacketOut {
        buffer_id: BufferId::NO_BUFFER,
        in_port: PortNo(1),
        actions: vec![Action::output(PortNo(2))],
        data: vec![0; data_len],
    })
    .wire_len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnbuf_sim::Nanos;

    fn paper_scenario(buffer: BufferChoice, rate_mbps: u64) -> Scenario {
        // Mirrors TestbedConfig::default()'s calibration closely enough
        // for unit sanity checks; the integration tests use the real one.
        let mut switch = SwitchConfig {
            bus_rate: BitRate::from_mbps(135),
            cost_forward: Nanos::from_micros(5),
            cost_pkt_in_base: Nanos::from_micros(100),
            cost_per_payload_byte: Nanos::from_nanos(8),
            cost_buffer_store: Nanos::from_micros(8),
            cost_buffer_release: Nanos::from_micros(6),
            cost_pkt_out_base: Nanos::from_micros(50),
            cost_flow_mod: Nanos::from_micros(40),
            cost_rule_install: Nanos::from_micros(350),
            buffer_free_lag: Nanos::from_millis(4),
            ..SwitchConfig::default()
        };
        switch.buffer = buffer;
        let controller = ControllerConfig {
            cost_parse_base: Nanos::from_micros(20),
            cost_decision: Nanos::from_micros(15),
            cost_encode: Nanos::from_micros(15),
            cost_per_byte: Nanos::from_nanos(20),
            contention: 0.55,
            latency_per_byte: Nanos::from_nanos(400),
            ..ControllerConfig::default()
        };
        Scenario {
            switch,
            controller,
            data_link: LinkConfig::fast_ethernet(),
            control_link: LinkConfig {
                bandwidth: BitRate::from_mbps(100),
                propagation: Nanos::from_micros(300),
                queue_capacity_bytes: 512 * 1024,
            },
            rate: BitRate::from_mbps(rate_mbps),
            frame_len: 1000,
            flows: 1000,
        }
    }

    #[test]
    fn buffered_floor_matches_hand_derivation() {
        let p = Oracle::faithful().predict(&paper_scenario(
            BufferChoice::PacketGranularity { capacity: 256 },
            10,
        ));
        // Hand-derived in DESIGN §13: ≈ 0.9075 ms plus a whisper of
        // contention at 10 Mbps.
        assert!(
            (0.89..0.95).contains(&p.setup_floor_ms),
            "buffered floor {} ms",
            p.setup_floor_ms
        );
        assert!(!p.saturated);
        assert_eq!(p.pkt_in_count, 1000);
    }

    #[test]
    fn no_buffer_floor_is_dominated_by_full_packet_handling() {
        let p = Oracle::faithful().predict(&paper_scenario(BufferChoice::NoBuffer, 10));
        // ≈ 2.02 ms hand-derived; the 0.8 ms GC-latency term (2 KB at
        // 400 ns/B) is the biggest single piece.
        assert!(
            (1.95..2.15).contains(&p.setup_floor_ms),
            "no-buffer floor {} ms",
            p.setup_floor_ms
        );
    }

    #[test]
    fn no_buffer_saturates_at_the_bus_near_the_papers_66_mbps() {
        let p60 = Oracle::faithful().predict(&paper_scenario(BufferChoice::NoBuffer, 60));
        let p80 = Oracle::faithful().predict(&paper_scenario(BufferChoice::NoBuffer, 80));
        assert!(!p60.saturated, "60 Mbps should ride just under the knee");
        assert!(p80.saturated, "80 Mbps must be past the knee");
        assert_eq!(p80.bottleneck, "switch-bus");
        let knee = p80.mu_flows_per_sec * 8000.0 / 1e6;
        assert!(
            (60.0..72.0).contains(&knee),
            "predicted knee at {knee} Mbps, paper calibration says ~66"
        );
        assert!(p80.flow_setup_delay_ms > 4.0 * p60.flow_setup_delay_ms);
    }

    #[test]
    fn buffered_mechanisms_never_saturate_on_the_grid() {
        for rate in [5u64, 50, 100] {
            let p = Oracle::faithful().predict(&paper_scenario(
                BufferChoice::FlowGranularity {
                    capacity: 256,
                    timeout: Nanos::from_millis(50),
                },
                rate,
            ));
            assert!(!p.saturated, "{rate} Mbps: {:?}", p.bottleneck);
            assert!(p.flow_setup_delay_ms < 1.2);
        }
    }

    #[test]
    fn delay_is_monotone_in_rate() {
        for buffer in [
            BufferChoice::NoBuffer,
            BufferChoice::PacketGranularity { capacity: 256 },
        ] {
            let mut last = 0.0;
            for rate in (1..=20).map(|i| i * 5) {
                let p = Oracle::faithful().predict(&paper_scenario(buffer, rate));
                assert!(
                    p.flow_setup_delay_ms >= last - 1e-9,
                    "{} at {rate} Mbps went down: {} < {last}",
                    buffer.label(),
                    p.flow_setup_delay_ms
                );
                last = p.flow_setup_delay_ms;
            }
        }
    }

    #[test]
    fn broken_oracle_forgets_the_channel_rtt() {
        let s = paper_scenario(BufferChoice::PacketGranularity { capacity: 256 }, 10);
        let good = Oracle::faithful().predict(&s);
        let bad = Oracle::broken().predict(&s);
        let missing = good.flow_setup_delay_ms - bad.flow_setup_delay_ms;
        assert!(
            (0.59..0.61).contains(&missing),
            "the bug must remove exactly the 2×300 µs propagation, got {missing} ms"
        );
    }

    #[test]
    fn wire_lengths_come_from_the_codec() {
        assert_eq!(wire_len_packet_in(128), 146);
        assert_eq!(wire_len_packet_in(1000), 1018);
        assert_eq!(wire_len_flow_mod(), 80);
        assert_eq!(wire_len_packet_out(0), 24);
        assert_eq!(wire_len_packet_out(1000), 1024);
    }

    #[test]
    fn control_load_scales_with_rate_below_saturation() {
        let p20 = Oracle::faithful().predict(&paper_scenario(
            BufferChoice::PacketGranularity { capacity: 256 },
            20,
        ));
        let p40 = Oracle::faithful().predict(&paper_scenario(
            BufferChoice::PacketGranularity { capacity: 256 },
            40,
        ));
        let ratio = p40.ctrl_load_to_controller_mbps / p20.ctrl_load_to_controller_mbps;
        assert!(
            (1.9..2.1).contains(&ratio),
            "doubling the rate should double the control load, got ×{ratio}"
        );
    }
}
