//! Property-based tests for the measurement substrate, checked against
//! naive reference implementations.

use proptest::prelude::*;
use sdnbuf_metrics::{ByteMeter, Gauge, Summary, TimeSeries};
use sdnbuf_sim::Nanos;

proptest! {
    #[test]
    fn summary_matches_naive_reference(
        samples in proptest::collection::vec(-1e6f64..1e6, 1..200),
    ) {
        let s = Summary::of(&samples);
        let n = samples.len();
        prop_assert_eq!(s.n, n);
        let mean = samples.iter().sum::<f64>() / n as f64;
        prop_assert!((s.mean - mean).abs() < 1e-6 * mean.abs().max(1.0));
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min, min);
        prop_assert_eq!(s.max, max);
        prop_assert!(s.min <= s.p50 && s.p50 <= s.max);
        prop_assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        if n >= 2 {
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            prop_assert!((s.std - var.sqrt()).abs() < 1e-6 * var.sqrt().max(1.0));
        } else {
            prop_assert_eq!(s.std, 0.0);
        }
    }

    #[test]
    fn summary_is_permutation_invariant(
        mut samples in proptest::collection::vec(-1e3f64..1e3, 2..50),
        seed in any::<u64>(),
    ) {
        let a = Summary::of(&samples);
        let mut rng = sdnbuf_sim::SimRng::seed_from(seed);
        rng.shuffle(&mut samples);
        let b = Summary::of(&samples);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn gauge_time_weighted_mean_matches_reference(
        steps in proptest::collection::vec((1u64..1000, 0.0f64..100.0), 1..50),
    ) {
        // Build a piecewise-constant signal and integrate it by hand.
        let mut g = Gauge::new();
        let mut t = Nanos::ZERO;
        let mut integral = 0.0;
        let mut value = 0.0;
        let mut timeline = Vec::new();
        for (dt_us, v) in steps {
            let next = t + Nanos::from_micros(dt_us);
            timeline.push((t, next, value));
            t = next;
            g.set(t, v);
            value = v;
        }
        let horizon = t + Nanos::from_micros(100);
        timeline.push((t, horizon, value));
        for (from, to, v) in timeline {
            integral += v * (to - from).as_secs_f64();
        }
        let expected = integral / horizon.as_secs_f64();
        let got = g.time_weighted_mean(horizon);
        prop_assert!(
            (got - expected).abs() < 1e-6 * expected.abs().max(1.0),
            "expected {expected}, got {got}"
        );
    }

    #[test]
    fn byte_meter_totals_and_rate(
        msgs in proptest::collection::vec((0u64..1_000_000, 1usize..2000), 1..100),
    ) {
        let mut m = ByteMeter::new();
        let mut total = 0u64;
        for &(at, bytes) in &msgs {
            m.record(Nanos::from_micros(at), bytes);
            total += bytes as u64;
        }
        prop_assert_eq!(m.bytes(), total);
        prop_assert_eq!(m.messages(), msgs.len() as u64);
        let horizon = Nanos::from_secs(1);
        let mbps = m.mbps(horizon);
        prop_assert!((mbps - total as f64 * 8.0 / 1e6).abs() < 1e-9);
    }

    #[test]
    fn time_series_buckets_preserve_mass_for_uniform_samples(
        values in proptest::collection::vec(0.0f64..100.0, 10..200),
        buckets in 1usize..20,
    ) {
        // Evenly spaced samples: the mean of bucket means must equal the
        // overall mean when the bucket count divides the sample count.
        let mut s = TimeSeries::new();
        for (i, v) in values.iter().enumerate() {
            s.record(Nanos::from_micros(i as u64), *v);
        }
        let b = s.bucketed(buckets);
        prop_assert_eq!(b.len(), buckets);
        // Every bucket mean lies within the sample range.
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for (_, v) in b {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}
