//! Time-weighted occupancy gauges.

use sdnbuf_sim::Nanos;

/// A sampled occupancy value (e.g. buffer units in use) with time-weighted
/// mean and observed maximum.
///
/// Every [`Gauge::set`] closes the interval since the previous sample and
/// weights the previous value by its duration, so the mean is exact for a
/// piecewise-constant signal — which buffer occupancy is.
///
/// # Example
///
/// ```
/// use sdnbuf_metrics::Gauge;
/// use sdnbuf_sim::Nanos;
///
/// let mut g = Gauge::new();
/// g.set(Nanos::ZERO, 0.0);
/// g.set(Nanos::from_secs(1), 10.0);     // value was 0 for 1 s
/// g.set(Nanos::from_secs(3), 0.0);      // value was 10 for 2 s
/// let mean = g.time_weighted_mean(Nanos::from_secs(4)); // then 0 for 1 s
/// assert!((mean - 5.0).abs() < 1e-9);
/// assert_eq!(g.max(), 10.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Gauge {
    value: f64,
    last_at: Nanos,
    integral: f64, // value-seconds
    max: f64,
    samples: u64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Updates the value at time `now`. Out-of-order updates (earlier than
    /// the previous sample) are treated as happening at the previous time.
    pub fn set(&mut self, now: Nanos, value: f64) {
        let dt = now.saturating_sub(self.last_at);
        self.integral += self.value * dt.as_secs_f64();
        self.last_at = self.last_at.max(now);
        self.value = value;
        self.max = self.max.max(value);
        self.samples += 1;
    }

    /// Adds `delta` to the current value at time `now`.
    pub fn add(&mut self, now: Nanos, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// The current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The largest value ever set.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Number of updates.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Time-weighted mean over `[ZERO, horizon]`, extending the current
    /// value to the horizon.
    pub fn time_weighted_mean(&self, horizon: Nanos) -> f64 {
        if horizon == Nanos::ZERO {
            return 0.0;
        }
        let tail = horizon.saturating_sub(self.last_at);
        let integral = self.integral + self.value * tail.as_secs_f64();
        integral / horizon.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piecewise_constant_mean_is_exact() {
        let mut g = Gauge::new();
        g.set(Nanos::ZERO, 4.0);
        g.set(Nanos::from_secs(2), 8.0);
        // 4 for 2 s, 8 for 2 s => mean 6.
        assert!((g.time_weighted_mean(Nanos::from_secs(4)) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn max_tracks_peak_not_current() {
        let mut g = Gauge::new();
        g.set(Nanos::ZERO, 42.0);
        g.set(Nanos::from_secs(1), 1.0);
        assert_eq!(g.max(), 42.0);
        assert_eq!(g.value(), 1.0);
    }

    #[test]
    fn add_is_relative() {
        let mut g = Gauge::new();
        g.add(Nanos::ZERO, 3.0);
        g.add(Nanos::from_secs(1), 2.0);
        g.add(Nanos::from_secs(2), -4.0);
        assert_eq!(g.value(), 1.0);
        assert_eq!(g.max(), 5.0);
        assert_eq!(g.samples(), 3);
    }

    #[test]
    fn mean_extends_current_value_to_horizon() {
        let mut g = Gauge::new();
        g.set(Nanos::ZERO, 10.0);
        // Value 10 held for the whole horizon.
        assert!((g.time_weighted_mean(Nanos::from_secs(5)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_horizon_is_zero() {
        let mut g = Gauge::new();
        g.set(Nanos::ZERO, 10.0);
        assert_eq!(g.time_weighted_mean(Nanos::ZERO), 0.0);
    }

    #[test]
    fn out_of_order_updates_do_not_go_negative() {
        let mut g = Gauge::new();
        g.set(Nanos::from_secs(2), 5.0);
        g.set(Nanos::from_secs(1), 7.0); // earlier than previous
        assert_eq!(g.value(), 7.0);
        // Mean must stay finite and sane.
        let m = g.time_weighted_mean(Nanos::from_secs(3));
        assert!((0.0..=7.0).contains(&m));
    }
}
