//! Measurement substrate for `sdn-buffer-lab` — the reproduction's
//! `tcpdump`/`top` stand-in.
//!
//! The paper derives every figure from passive measurements: control-path
//! load from packet captures, CPU usages from `top`, delays from message
//! timestamps, buffer utilization from occupancy samples. This crate
//! provides the equivalent instruments:
//!
//! * [`Counter`] — monotonic event counts.
//! * [`ByteMeter`] — byte/message volume on a link tap, with Mbps rates.
//! * [`Gauge`] — a sampled occupancy value with time-weighted mean and max
//!   (used for buffer utilization, Figs. 8 and 13).
//! * [`DelayRecorder`] — latency samples with summary statistics (used for
//!   flow-setup, controller and switch delay, Figs. 5–7 and 12).
//! * [`Histogram`] — fixed-memory log-bucketed latency histogram with a
//!   bounded relative error and deterministic merge (used by the latency
//!   anatomy reports, where per-phase sample vectors would be unbounded).
//! * [`Summary`] — n/mean/std/min/max/percentiles of a sample set, the
//!   format the paper reports ("mean of 1.17 ms, standard deviation of
//!   0.37 ms, maximum of 5.35 ms").
//! * [`Table`] — fixed-width text tables and TSV output for the figure
//!   harness.
//!
//! # Example
//!
//! ```
//! use sdnbuf_metrics::DelayRecorder;
//! use sdnbuf_sim::Nanos;
//!
//! let mut d = DelayRecorder::new();
//! d.record(Nanos::from_millis(1));
//! d.record(Nanos::from_millis(3));
//! let s = d.summary();
//! assert_eq!(s.n, 2);
//! assert!((s.mean_ms() - 2.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod delay;
mod gauge;
mod histogram;
mod meter;
mod series;
mod summary;
mod table;

pub use counter::Counter;
pub use delay::DelayRecorder;
pub use gauge::Gauge;
pub use histogram::Histogram;
pub use meter::ByteMeter;
pub use series::TimeSeries;
pub use summary::Summary;
pub use table::Table;
