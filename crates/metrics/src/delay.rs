//! Latency sample recorders.

use crate::Summary;
use sdnbuf_sim::Nanos;

/// Collects latency samples and summarizes them.
///
/// Used for the paper's flow-setup delay, controller delay, switch delay and
/// flow-forwarding delay figures.
///
/// # Example
///
/// ```
/// use sdnbuf_metrics::DelayRecorder;
/// use sdnbuf_sim::Nanos;
///
/// let mut d = DelayRecorder::new();
/// d.record(Nanos::from_micros(500));
/// d.record(Nanos::from_micros(1500));
/// assert_eq!(d.len(), 2);
/// assert!((d.summary().mean - 1.0).abs() < 1e-9); // summarized in ms
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DelayRecorder {
    samples_ms: Vec<f64>,
}

impl DelayRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        DelayRecorder::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, delay: Nanos) {
        self.samples_ms.push(delay.as_millis_f64());
    }

    /// Records the difference `end - start`. A reversed span is always a
    /// bookkeeping bug upstream, so debug builds assert `end >= start`;
    /// release builds keep the historical saturate-to-zero behavior so a
    /// long production sweep degrades instead of aborting.
    pub fn record_span(&mut self, start: Nanos, end: Nanos) {
        debug_assert!(end >= start, "reversed span: start={start:?} end={end:?}");
        self.record(end.saturating_sub(start));
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_ms.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ms.is_empty()
    }

    /// The raw samples in milliseconds, in recording order.
    pub fn samples_ms(&self) -> &[f64] {
        &self.samples_ms
    }

    /// Summary statistics, in milliseconds.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.samples_ms)
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &DelayRecorder) {
        self.samples_ms.extend_from_slice(&other.samples_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_millis() {
        let mut d = DelayRecorder::new();
        d.record(Nanos::from_millis(2));
        assert_eq!(d.samples_ms(), &[2.0]);
    }

    #[test]
    fn span_records_difference() {
        let mut d = DelayRecorder::new();
        d.record_span(Nanos::from_millis(5), Nanos::from_millis(7));
        d.record_span(Nanos::from_millis(5), Nanos::from_millis(5));
        assert_eq!(d.samples_ms(), &[2.0, 0.0]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "reversed span")]
    fn reversed_span_asserts_in_debug() {
        let mut d = DelayRecorder::new();
        d.record_span(Nanos::from_millis(7), Nanos::from_millis(5));
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn reversed_span_saturates_in_release() {
        let mut d = DelayRecorder::new();
        d.record_span(Nanos::from_millis(7), Nanos::from_millis(5));
        assert_eq!(d.samples_ms(), &[0.0]);
    }

    #[test]
    fn summary_over_samples() {
        let mut d = DelayRecorder::new();
        for ms in [1u64, 2, 3] {
            d.record(Nanos::from_millis(ms));
        }
        let s = d.summary();
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = DelayRecorder::new();
        a.record(Nanos::from_millis(1));
        let mut b = DelayRecorder::new();
        b.record(Nanos::from_millis(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!((a.summary().mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_recorder() {
        let d = DelayRecorder::new();
        assert!(d.is_empty());
        assert_eq!(d.summary().n, 0);
    }
}
