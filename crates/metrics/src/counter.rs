//! Monotonic event counters.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use sdnbuf_metrics::Counter;
/// let mut c = Counter::new();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.incr();
        c.add(10);
        assert_eq!(c.get(), 12);
        assert_eq!(c.to_string(), "12");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Counter::default().get(), 0);
    }
}
