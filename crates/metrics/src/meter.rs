//! Byte/message meters — the packet-capture tap on a link.

use sdnbuf_sim::Nanos;
use std::fmt;

/// Measures traffic volume at a tap point: total bytes, total messages, and
/// the average bit-rate over an observation horizon.
///
/// The paper's control-path-load figures (Figs. 2 and 9) are exactly this:
/// `tcpdump` on the controller-facing interface, reduced to Mbps per
/// direction.
///
/// # Example
///
/// ```
/// use sdnbuf_metrics::ByteMeter;
/// use sdnbuf_sim::Nanos;
///
/// let mut m = ByteMeter::new();
/// m.record(Nanos::ZERO, 500_000);
/// m.record(Nanos::from_millis(10), 750_000);
/// assert_eq!(m.messages(), 2);
/// assert_eq!(m.bytes(), 1_250_000);
/// // 10 Mbit over 1 s = 10 Mbps.
/// assert!((m.mbps(Nanos::from_secs(1)) - 10.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ByteMeter {
    bytes: u64,
    messages: u64,
    last_at: Nanos,
}

impl ByteMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        ByteMeter::default()
    }

    /// Records a message of `bytes` bytes observed at `now`.
    pub fn record(&mut self, now: Nanos, bytes: usize) {
        self.bytes += bytes as u64;
        self.messages += 1;
        self.last_at = self.last_at.max(now);
    }

    /// Total bytes observed.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total messages observed.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Timestamp of the latest observation.
    pub fn last_at(&self) -> Nanos {
        self.last_at
    }

    /// Average rate over `[ZERO, horizon]` in Mbps (10^6 bits per second).
    pub fn mbps(&self, horizon: Nanos) -> f64 {
        if horizon == Nanos::ZERO {
            return 0.0;
        }
        (self.bytes as f64 * 8.0) / horizon.as_secs_f64() / 1e6
    }

    /// Mean message size in bytes (zero when no messages were seen).
    pub fn mean_message_size(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.bytes as f64 / self.messages as f64
        }
    }
}

impl fmt::Display for ByteMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} msgs, {} bytes", self.messages, self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut m = ByteMeter::new();
        m.record(Nanos::from_micros(1), 100);
        m.record(Nanos::from_micros(5), 200);
        assert_eq!(m.bytes(), 300);
        assert_eq!(m.messages(), 2);
        assert_eq!(m.last_at(), Nanos::from_micros(5));
        assert_eq!(m.mean_message_size(), 150.0);
    }

    #[test]
    fn rate_math() {
        let mut m = ByteMeter::new();
        m.record(Nanos::ZERO, 12_500_000); // 100 Mbit
        assert!((m.mbps(Nanos::from_secs(1)) - 100.0).abs() < 1e-9);
        assert!((m.mbps(Nanos::from_secs(2)) - 50.0).abs() < 1e-9);
        assert_eq!(m.mbps(Nanos::ZERO), 0.0);
    }

    #[test]
    fn empty_meter() {
        let m = ByteMeter::new();
        assert_eq!(m.mean_message_size(), 0.0);
        assert_eq!(m.mbps(Nanos::from_secs(1)), 0.0);
        assert_eq!(m.to_string(), "0 msgs, 0 bytes");
    }

    #[test]
    fn last_at_is_monotonic() {
        let mut m = ByteMeter::new();
        m.record(Nanos::from_secs(2), 1);
        m.record(Nanos::from_secs(1), 1); // out of order
        assert_eq!(m.last_at(), Nanos::from_secs(2));
    }
}
