//! Fixed-memory log-bucketed latency histogram.
//!
//! [`Histogram`] records nanosecond durations into log-linear buckets —
//! every power of two is split into 32 linear sub-buckets — so quantile
//! estimates carry a bounded *relative* error of at most 1/64 ≈ 1.6%
//! (comfortably inside the 2.5% budget the latency reports quote) while
//! the whole structure stays a fixed ~15 KiB regardless of how many
//! samples it absorbs. This is the bounded replacement for the unbounded
//! `Vec<f64>` sample buffers in [`crate::DelayRecorder`] on paths that
//! see one sample per flow per phase across a whole sweep.
//!
//! Merging is element-wise counter addition, so it is associative and
//! commutative: parallel sweep workers can each fill a histogram and the
//! executor can fold them back together *in deterministic grid order*
//! with a byte-identical result to a serial run.
//!
//! # Example
//!
//! ```
//! use sdnbuf_metrics::Histogram;
//! use sdnbuf_sim::Nanos;
//!
//! let mut h = Histogram::new();
//! for ms in 1..=100u64 {
//!     h.record(Nanos::from_millis(ms));
//! }
//! let p50 = h.quantile(0.50).as_nanos() as f64 / 1e6;
//! assert!((p50 - 50.0).abs() / 50.0 <= Histogram::RELATIVE_ERROR);
//! ```

use sdnbuf_sim::Nanos;

/// Number of linear sub-buckets per power of two. 32 sub-buckets bound
/// the quantile relative error by `1 / (2 * 32) = 1.56%`.
const SUB_BUCKETS: u64 = 32;
/// `log2(SUB_BUCKETS)`.
const SUB_BITS: u32 = 5;
/// Total bucket count: values below `SUB_BUCKETS` get exact unit buckets,
/// every octave above contributes `SUB_BUCKETS` buckets, up to `u64::MAX`
/// (octave 63). Index arithmetic in [`bucket_index`] tops out at
/// `(63 - 5 + 1) * 32 + 31 = 1919`.
const BUCKETS: usize = 1920;

/// A fixed-memory log-bucketed histogram of nanosecond durations.
///
/// See this module's source-level docs for the bucket scheme and error
/// bound.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min_ns", &self.min_ns)
            .field("max_ns", &self.max_ns)
            .finish_non_exhaustive()
    }
}

/// Maps a duration in nanoseconds to its bucket index. Pure integer
/// arithmetic — no floating point touches the recording path, so the
/// same sample always lands in the same bucket on every platform.
#[inline]
fn bucket_index(ns: u64) -> usize {
    if ns < SUB_BUCKETS {
        ns as usize
    } else {
        let exp = 63 - ns.leading_zeros(); // floor(log2(ns)), >= SUB_BITS
        let shift = exp - SUB_BITS;
        let mantissa = ns >> shift; // in [SUB_BUCKETS, 2 * SUB_BUCKETS)
        ((shift as u64 + 1) * SUB_BUCKETS + (mantissa - SUB_BUCKETS)) as usize
    }
}

/// Lower edge and width of a bucket, inverting [`bucket_index`].
#[inline]
fn bucket_range(idx: usize) -> (u64, u64) {
    let idx = idx as u64;
    if idx < 2 * SUB_BUCKETS {
        (idx, 1)
    } else {
        let shift = (idx / SUB_BUCKETS - 1) as u32;
        let mantissa = SUB_BUCKETS + idx % SUB_BUCKETS;
        (mantissa << shift, 1u64 << shift)
    }
}

impl Histogram {
    /// Worst-case relative error of a quantile estimate: half a bucket
    /// width over the bucket's lower edge, `1 / (2 · 32)`.
    pub const RELATIVE_ERROR: f64 = 1.0 / (2 * SUB_BUCKETS) as f64;

    /// Creates an empty histogram. Allocates its full fixed footprint
    /// (~15 KiB) up front; recording never allocates.
    pub fn new() -> Histogram {
        Histogram {
            counts: Box::new([0u64; BUCKETS]),
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one duration.
    #[inline]
    pub fn record(&mut self, d: Nanos) {
        self.record_ns(d.as_nanos());
    }

    /// Records a span, i.e. `end - start`. Debug-asserts that the span is
    /// not reversed; release builds saturate to zero like
    /// [`crate::DelayRecorder::record_span`].
    #[inline]
    pub fn record_span(&mut self, start: Nanos, end: Nanos) {
        debug_assert!(end >= start, "reversed span: start={start:?} end={end:?}");
        self.record_ns(end.as_nanos().saturating_sub(start.as_nanos()));
    }

    /// Records one duration given in raw nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest recorded duration ([`Nanos::ZERO`] when empty).
    pub fn min(&self) -> Nanos {
        if self.is_empty() {
            Nanos::ZERO
        } else {
            Nanos::from_nanos(self.min_ns)
        }
    }

    /// Exact largest recorded duration ([`Nanos::ZERO`] when empty).
    pub fn max(&self) -> Nanos {
        Nanos::from_nanos(self.max_ns)
    }

    /// Exact arithmetic mean in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64 / 1e6
        }
    }

    /// Nearest-rank quantile estimate, `0.0 <= q <= 1.0`. Walks the
    /// cumulative bucket counts to the sample of rank `ceil(q · n)` and
    /// returns that bucket's midpoint, clamped to the exact observed
    /// `[min, max]` so `quantile(0.0)` / `quantile(1.0)` are exact.
    /// Returns [`Nanos::ZERO`] when empty.
    pub fn quantile(&self, q: f64) -> Nanos {
        if self.is_empty() {
            return Nanos::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // Rank 1 is the smallest sample and rank n the largest — both are
        // tracked exactly, so the edge quantiles carry no bucket error.
        if rank == 1 {
            return self.min();
        }
        if rank == self.count {
            return self.max();
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, width) = bucket_range(idx);
                let mid = lo + width / 2;
                return Nanos::from_nanos(mid.clamp(self.min_ns, self.max_ns));
            }
        }
        self.max()
    }

    /// Quantile expressed in milliseconds.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile(q).as_nanos() as f64 / 1e6
    }

    /// Folds `other` into `self` by element-wise counter addition.
    /// Associative and commutative, so any merge tree over the same
    /// multiset of samples produces the same histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Appends the histogram as a JSON object to `out` with a stable
    /// field order: count, exact extrema/mean, the p50/p95/p99 estimates,
    /// and the sparse non-empty buckets as `[index, count]` pairs in
    /// ascending index order. Byte-stable for identical histograms.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"count\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ms\":{:.6},\
             \"p50_ms\":{:.6},\"p95_ms\":{:.6},\"p99_ms\":{:.6},\"buckets\":[",
            self.count,
            if self.is_empty() { 0 } else { self.min_ns },
            self.max_ns,
            self.mean_ms(),
            self.quantile_ms(0.50),
            self.quantile_ms(0.95),
            self.quantile_ms(0.99)
        );
        let mut first = true;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{idx},{c}]");
            }
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Exhaustive over the interesting low range, then spot checks at
        // octave boundaries across the full u64 range.
        let mut prev = bucket_index(0);
        assert_eq!(prev, 0);
        for v in 1..=4096u64 {
            let idx = bucket_index(v);
            assert!(idx == prev || idx == prev + 1, "gap at {v}");
            prev = idx;
        }
        for exp in SUB_BITS..63 {
            let v = 1u64 << exp;
            assert_eq!(bucket_index(v - 1) + 1, bucket_index(v), "boundary {v}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_range_inverts_index() {
        for v in [0u64, 1, 31, 32, 63, 64, 1000, 1 << 20, u64::MAX / 3] {
            let idx = bucket_index(v);
            let (lo, width) = bucket_range(idx);
            assert!(lo <= v && v < lo.saturating_add(width), "v={v} idx={idx}");
        }
    }

    #[test]
    fn relative_error_bound_holds() {
        // Record 1..=10_000 µs; every quantile estimate must sit within
        // the advertised relative error of the exact nearest-rank value.
        let mut h = Histogram::new();
        for us in 1..=10_000u64 {
            h.record_ns(us * 1_000);
        }
        for q in [0.01, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999] {
            let exact = ((q * 10_000f64).ceil().max(1.0)) * 1_000.0;
            let est = h.quantile(q).as_nanos() as f64;
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= Histogram::RELATIVE_ERROR,
                "q={q}: est={est} exact={exact} rel={rel}"
            );
        }
    }

    #[test]
    fn extrema_and_mean_are_exact() {
        let mut h = Histogram::new();
        for ms in [5u64, 1, 9] {
            h.record(Nanos::from_millis(ms));
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Nanos::from_millis(1));
        assert_eq!(h.max(), Nanos::from_millis(9));
        assert!((h.mean_ms() - 5.0).abs() < 1e-12);
        assert_eq!(h.quantile(0.0), Nanos::from_millis(1));
        assert_eq!(h.quantile(1.0), Nanos::from_millis(9));
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), Nanos::ZERO);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.min(), Nanos::ZERO);
        assert_eq!(h.max(), Nanos::ZERO);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let fill = |lo: u64, hi: u64| {
            let mut h = Histogram::new();
            for v in lo..hi {
                h.record_ns(v * 7919); // spread across many buckets
            }
            h
        };
        let (a, b, c) = (fill(0, 100), fill(50, 400), fill(300, 1000));

        // (a + b) + c == a + (b + c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert!(left == right);

        // a + b == b + a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert!(ab == ba);

        // Merge equals recording everything into one histogram.
        let mut serial = Histogram::new();
        for v in (0..100).chain(50..400).chain(300..1000) {
            serial.record_ns(v * 7919);
        }
        assert!(left == serial);
    }

    #[test]
    fn merged_json_is_byte_identical_to_serial() {
        let mut serial = Histogram::new();
        let mut part1 = Histogram::new();
        let mut part2 = Histogram::new();
        for v in 0..500u64 {
            let ns = v * 104_729;
            serial.record_ns(ns);
            if v % 2 == 0 {
                part1.record_ns(ns);
            } else {
                part2.record_ns(ns);
            }
        }
        let mut merged = part1.clone();
        merged.merge(&part2);
        let (mut a, mut b) = (String::new(), String::new());
        serial.write_json(&mut a);
        merged.write_json(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut h = Histogram::new();
        h.record_ns(10);
        let mut s = String::new();
        h.write_json(&mut s);
        assert!(s.starts_with("{\"count\":1,\"min_ns\":10,\"max_ns\":10,"));
        assert!(s.ends_with("\"buckets\":[[10,1]]}"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "reversed span")]
    fn reversed_span_asserts_in_debug() {
        let mut h = Histogram::new();
        h.record_span(Nanos::from_millis(7), Nanos::from_millis(5));
    }
}
