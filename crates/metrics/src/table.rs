//! Fixed-width text tables and TSV output for the figure harness.

use std::fmt;

/// A simple column-aligned table that renders as readable text or as TSV —
/// the format every figure-reproduction binary prints its data series in.
///
/// # Example
///
/// ```
/// use sdnbuf_metrics::Table;
/// let mut t = Table::new(vec!["rate_mbps", "no_buffer", "buffer_256"]);
/// t.row(vec!["5".into(), "5.1".into(), "0.9".into()]);
/// t.row(vec!["100".into(), "96.2".into(), "10.6".into()]);
/// let text = t.to_text();
/// assert!(text.contains("rate_mbps"));
/// let tsv = t.to_tsv();
/// assert!(tsv.starts_with("rate_mbps\tno_buffer\tbuffer_256\n"));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Appends a row of floats formatted with `decimals` decimal places,
    /// after a leading label cell.
    pub fn row_f64<S: Into<String>>(&mut self, label: S, values: &[f64], decimals: usize) {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(label.into());
        cells.extend(values.iter().map(|v| format!("{v:.decimals$}")));
        self.row(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with space-padded, aligned columns.
    pub fn to_text(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            out.push('\n');
        };
        render(&mut out, &self.headers);
        let rule_len = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            render(&mut out, row);
        }
        out
    }

    /// Renders as tab-separated values with a header line.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join("\t"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        t
    }

    #[test]
    fn text_is_aligned() {
        let text = sample().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 rows
        assert_eq!(lines[0], "  a  bb");
        assert_eq!(lines[2], "  1   2");
        assert_eq!(lines[3], "333   4");
    }

    #[test]
    fn tsv_round_trips_cells() {
        let tsv = sample().to_tsv();
        assert_eq!(tsv, "a\tbb\n1\t2\n333\t4\n");
    }

    #[test]
    fn row_f64_formats() {
        let mut t = Table::new(vec!["rate", "x", "y"]);
        t.row_f64("10", &[1.23456, 2.0], 2);
        assert_eq!(t.to_tsv(), "rate\tx\ty\n10\t1.23\t2.00\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn len_and_empty() {
        let t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        assert_eq!(sample().len(), 2);
    }

    #[test]
    fn display_matches_text() {
        let t = sample();
        assert_eq!(t.to_string(), t.to_text());
    }
}
