//! Time series of sampled values.

use sdnbuf_sim::Nanos;

/// An append-only time series of `(time, value)` samples with bucketed
/// down-sampling — used to look *inside* a run (e.g. buffer occupancy over
/// time) rather than only at run-level aggregates.
///
/// # Example
///
/// ```
/// use sdnbuf_metrics::TimeSeries;
/// use sdnbuf_sim::Nanos;
///
/// let mut s = TimeSeries::new();
/// for ms in 0..10u64 {
///     s.record(Nanos::from_millis(ms), ms as f64);
/// }
/// let buckets = s.bucketed(5);
/// assert_eq!(buckets.len(), 5);
/// // Each bucket averages two consecutive samples.
/// assert!((buckets[0].1 - 0.5).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(Nanos, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample. Out-of-order timestamps are accepted and sorted
    /// lazily by readers.
    pub fn record(&mut self, at: Nanos, value: f64) {
        self.points.push((at, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw samples in recording order.
    pub fn points(&self) -> &[(Nanos, f64)] {
        &self.points
    }

    /// The time span covered by the samples.
    pub fn span(&self) -> Option<(Nanos, Nanos)> {
        let min = self.points.iter().map(|p| p.0).min()?;
        let max = self.points.iter().map(|p| p.0).max()?;
        Some((min, max))
    }

    /// Down-samples into `n` equal-width time buckets; each bucket carries
    /// its midpoint time and the mean of the samples falling into it
    /// (empty buckets repeat the previous bucket's value, starting at 0).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn bucketed(&self, n: usize) -> Vec<(Nanos, f64)> {
        assert!(n > 0, "bucket count must be positive");
        let Some((start, end)) = self.span() else {
            return Vec::new();
        };
        let width = (end.saturating_sub(start) / n as u64).max(Nanos::from_nanos(1));
        let mut sums = vec![0.0f64; n];
        let mut counts = vec![0usize; n];
        for &(at, v) in &self.points {
            let idx = ((at.saturating_sub(start)).as_nanos() / width.as_nanos()) as usize;
            let idx = idx.min(n - 1);
            sums[idx] += v;
            counts[idx] += 1;
        }
        let mut out = Vec::with_capacity(n);
        let mut last = 0.0;
        for i in 0..n {
            let value = if counts[i] > 0 {
                last = sums[i] / counts[i] as f64;
                last
            } else {
                last
            };
            let mid = start + width * i as u64 + width / 2;
            out.push((mid, value));
        }
        out
    }

    /// Renders the series as a unicode sparkline over `n` buckets, scaled
    /// to the observed maximum. Returns an empty string for an empty
    /// series.
    pub fn sparkline(&self, n: usize) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let buckets = self.bucketed(n.max(1));
        let max = buckets.iter().map(|b| b.1).fold(0.0f64, f64::max);
        if buckets.is_empty() || max <= 0.0 {
            return buckets.iter().map(|_| BARS[0]).collect();
        }
        buckets
            .iter()
            .map(|&(_, v)| {
                let idx = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
                BARS[idx]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> TimeSeries {
        let mut s = TimeSeries::new();
        for i in 0..100u64 {
            s.record(Nanos::from_millis(i), i as f64);
        }
        s
    }

    #[test]
    fn records_and_spans() {
        let s = ramp();
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
        assert_eq!(s.span(), Some((Nanos::ZERO, Nanos::from_millis(99))));
    }

    #[test]
    fn bucketed_means_are_monotone_for_a_ramp() {
        let b = ramp().bucketed(10);
        assert_eq!(b.len(), 10);
        for w in b.windows(2) {
            assert!(w[1].1 > w[0].1, "ramp buckets must increase");
            assert!(w[1].0 > w[0].0, "bucket times must increase");
        }
    }

    #[test]
    fn empty_buckets_repeat_previous_value() {
        let mut s = TimeSeries::new();
        s.record(Nanos::ZERO, 4.0);
        s.record(Nanos::from_millis(100), 8.0);
        let b = s.bucketed(10);
        // Middle buckets hold the last seen value (4.0).
        assert_eq!(b[5].1, 4.0);
        assert_eq!(b[9].1, 8.0);
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.span(), None);
        assert!(s.bucketed(5).is_empty());
        assert_eq!(s.sparkline(5), "");
    }

    #[test]
    fn sparkline_shape() {
        let line = ramp().sparkline(8);
        assert_eq!(line.chars().count(), 8);
        let chars: Vec<char> = line.chars().collect();
        assert_eq!(*chars.last().unwrap(), '█');
        assert!(chars[0] < chars[7]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_buckets_panics() {
        ramp().bucketed(0);
    }

    #[test]
    fn single_point_series() {
        let mut s = TimeSeries::new();
        s.record(Nanos::from_millis(5), 3.0);
        assert_eq!(
            s.span(),
            Some((Nanos::from_millis(5), Nanos::from_millis(5)))
        );
        // A degenerate (zero-width) span still yields n buckets; the point
        // lands in the first and the rest repeat its value.
        let b = s.bucketed(4);
        assert_eq!(b.len(), 4);
        for &(_, v) in &b {
            assert_eq!(v, 3.0);
        }
        // Single bucket averages everything.
        let b1 = s.bucketed(1);
        assert_eq!(b1.len(), 1);
        assert_eq!(b1[0].1, 3.0);
    }

    #[test]
    fn one_bucket_averages_whole_series() {
        let b = ramp().bucketed(1);
        assert_eq!(b.len(), 1);
        assert!((b[0].1 - 49.5).abs() < 1e-9, "mean of 0..100 is 49.5");
    }

    #[test]
    fn sparkline_clamps_zero_buckets_to_one() {
        // sparkline(0) must not panic: it clamps to one bucket.
        let line = ramp().sparkline(0);
        assert_eq!(line.chars().count(), 1);
        assert_eq!(ramp().sparkline(1).chars().count(), 1);
    }

    #[test]
    fn sparkline_single_point_is_full_bar() {
        let mut s = TimeSeries::new();
        s.record(Nanos::from_millis(1), 2.0);
        assert_eq!(s.sparkline(3), "███");
    }

    #[test]
    fn sparkline_all_zero_is_floor_bars() {
        let mut s = TimeSeries::new();
        s.record(Nanos::ZERO, 0.0);
        s.record(Nanos::from_millis(2), 0.0);
        assert_eq!(s.sparkline(4), "▁▁▁▁");
    }
}
