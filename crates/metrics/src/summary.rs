//! Sample-set summary statistics in the format the paper reports.

use std::fmt;

/// Summary statistics of a sample set: count, mean, sample standard
/// deviation, extrema and percentiles.
///
/// # Example
///
/// ```
/// use sdnbuf_metrics::Summary;
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.n, 4);
/// assert!((s.mean - 2.5).abs() < 1e-9);
/// assert!((s.std - 1.2909944).abs() < 1e-6);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes a summary of `samples`. Returns the zero summary for an
    /// empty slice. Non-finite samples are ignored.
    pub fn of(samples: &[f64]) -> Summary {
        let mut v: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return Summary::default();
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        let std = if n < 2 {
            0.0
        } else {
            (v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        };
        Summary {
            n,
            mean,
            std,
            min: v[0],
            max: v[n - 1],
            p50: percentile(&v, 0.50),
            p95: percentile(&v, 0.95),
            p99: percentile(&v, 0.99),
        }
    }

    /// Mean expressed in milliseconds when the samples were milliseconds —
    /// identity helper that makes figure code read like the paper's prose.
    pub fn mean_ms(&self) -> f64 {
        self.mean
    }
}

/// Linear-interpolation percentile of a sorted slice: `pos = q·(n−1)`
/// interpolated between the neighbouring order statistics (the same
/// convention as numpy's default), *not* nearest-rank — the pinned
/// `percentiles_interpolate` test relies on p95 of 1..=100 being 95.05.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} std={:.3} min={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
            self.n, self.mean, self.std, self.min, self.p50, self.p95, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        // Report code relies on the zero default for empty sample sets —
        // every field, not just the moments, must be exactly zero.
        let s = Summary::of(&[]);
        assert_eq!(s, Summary::default());
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.p95, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p99, 7.0);
    }

    #[test]
    fn known_statistics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std of this classic set is sqrt(32/7).
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.p50 - 4.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&v);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p95 - 95.05).abs() < 1e-9);
        assert!((s.p99 - 99.01).abs() < 1e-9);
    }

    #[test]
    fn order_does_not_matter() {
        let a = Summary::of(&[3.0, 1.0, 2.0]);
        let b = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn non_finite_samples_ignored() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn display_is_complete() {
        let text = Summary::of(&[1.0, 2.0]).to_string();
        for field in [
            "n=2", "mean=", "std=", "min=", "p50=", "p95=", "p99=", "max=",
        ] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }
}
