//! Property-based tests of the switch state machine: arbitrary interleaved
//! frames and control messages never panic, outputs are causally timed,
//! and buffered packets are conserved.

use proptest::prelude::*;
use sdnbuf_net::PacketBuilder;
use sdnbuf_openflow::{
    msg::{FlowMod, FlowModCommand, PacketOut},
    Action, BufferId, Match, OfpMessage, PortNo,
};
use sdnbuf_sim::Nanos;
use sdnbuf_switch::{BufferChoice, PacketPool, Switch, SwitchConfig, SwitchOutput};

#[derive(Clone, Debug)]
enum Op {
    Frame { flow: u16, size: usize },
    FlowModAdd { flow: u16 },
    PacketOutFor { nth_buffer_id: usize },
    PacketOutInvalid { raw: u32 },
    Timer,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u16..6, 60usize..1400).prop_map(|(flow, size)| Op::Frame { flow, size }),
        2 => (0u16..6).prop_map(|flow| Op::FlowModAdd { flow }),
        2 => (0usize..8).prop_map(|nth_buffer_id| Op::PacketOutFor { nth_buffer_id }),
        1 => any::<u32>().prop_map(|raw| Op::PacketOutInvalid { raw }),
        1 => Just(Op::Timer),
    ]
}

fn arb_buffer() -> impl Strategy<Value = BufferChoice> {
    prop_oneof![
        Just(BufferChoice::NoBuffer),
        (1usize..32).prop_map(|capacity| BufferChoice::PacketGranularity { capacity }),
        (1usize..32).prop_map(|capacity| BufferChoice::FlowGranularity {
            capacity,
            timeout: Nanos::from_millis(20),
        }),
    ]
}

/// Checks outputs for causality and wire validity, releasing the pool
/// references `Forward`/`Drop` outputs hand to the caller; returns
/// buffered ids.
fn check_outputs(
    now: Nanos,
    outs: &[SwitchOutput],
    pool: &mut PacketPool,
) -> Result<Vec<BufferId>, TestCaseError> {
    let mut ids = Vec::new();
    for out in outs {
        match out {
            SwitchOutput::Forward { at, packet, .. } => {
                prop_assert!(*at >= now, "forward scheduled in the past");
                prop_assert!(pool.get(*packet).is_some(), "forwarded a stale handle");
                pool.release(*packet);
            }
            SwitchOutput::ToController { at, msg, .. } => {
                prop_assert!(*at >= now, "message scheduled in the past");
                // Every emitted message must be wire-encodable.
                let bytes = msg.encode(1);
                prop_assert_eq!(bytes.len(), msg.wire_len());
                if let OfpMessage::PacketIn(pin) = msg {
                    if pin.buffer_id.is_buffered() {
                        ids.push(pin.buffer_id);
                    }
                }
            }
            SwitchOutput::Drop { packet } => {
                if let Some(p) = packet {
                    prop_assert!(pool.get(*p).is_some(), "dropped a stale handle");
                    pool.release(*p);
                }
            }
        }
    }
    Ok(ids)
}

proptest! {
    #[test]
    fn switch_never_panics_and_outputs_are_causal(
        ops in proptest::collection::vec(arb_op(), 1..120),
        buffer in arb_buffer(),
    ) {
        let mut sw = Switch::new(SwitchConfig { buffer, ..SwitchConfig::default() });
        let mut pool = PacketPool::new();
        let mut now = Nanos::ZERO;
        let mut seen_buffer_ids: Vec<BufferId> = Vec::new();
        for op in ops {
            now += Nanos::from_micros(200);
            match op {
                Op::Frame { flow, size } => {
                    let pkt = PacketBuilder::udp().src_port(flow).frame_size(size).build();
                    let outs = sw.handle_frame(now, PortNo(1), pool.insert(pkt), &mut pool);
                    seen_buffer_ids.extend(check_outputs(now, &outs, &mut pool)?);
                }
                Op::FlowModAdd { flow } => {
                    let pkt = PacketBuilder::udp().src_port(flow).build();
                    let fm = OfpMessage::FlowMod(FlowMod {
                        match_fields: Match::exact_from_packet(PortNo(1), &pkt),
                        cookie: 0,
                        command: FlowModCommand::Add,
                        idle_timeout: 1,
                        hard_timeout: 0,
                        priority: 10,
                        buffer_id: BufferId::NO_BUFFER,
                        out_port: PortNo::NONE,
                        flags: 0,
                        actions: vec![Action::output(PortNo(2))],
                    });
                    let outs = sw.handle_controller_msg(now, fm, 1, &mut pool);
                    seen_buffer_ids.extend(check_outputs(now, &outs, &mut pool)?);
                }
                Op::PacketOutFor { nth_buffer_id } => {
                    if !seen_buffer_ids.is_empty() {
                        let id = seen_buffer_ids.remove(nth_buffer_id % seen_buffer_ids.len());
                        let po = OfpMessage::PacketOut(PacketOut {
                            buffer_id: id,
                            in_port: PortNo(1),
                            actions: vec![Action::output(PortNo(2))],
                            data: vec![],
                        });
                        let outs = sw.handle_controller_msg(now, po, 2, &mut pool);
                        check_outputs(now, &outs, &mut pool)?;
                    }
                }
                Op::PacketOutInvalid { raw } => {
                    let po = OfpMessage::PacketOut(PacketOut {
                        buffer_id: BufferId::from_wire(raw),
                        in_port: PortNo(1),
                        actions: vec![Action::output(PortNo(2))],
                        data: vec![],
                    });
                    let outs = sw.handle_controller_msg(now, po, 3, &mut pool);
                    check_outputs(now, &outs, &mut pool)?;
                }
                Op::Timer => {
                    if let Some(t) = sw.next_timer() {
                        let t = t.max(now);
                        let outs = sw.on_timer(t, &mut pool);
                        check_outputs(t, &outs, &mut pool)?;
                        now = t;
                    }
                }
            }
            prop_assert!(sw.buffer().occupancy() <= sw.buffer().capacity());
            prop_assert_eq!(
                pool.len(), sw.buffer().occupancy(),
                "pool live count must equal buffer occupancy"
            );
        }
    }

    #[test]
    fn switch_buffered_packet_conservation(
        frames in proptest::collection::vec((0u16..4, 100usize..1200), 1..60),
        capacity in 1usize..24,
    ) {
        // Buffer everything, then release everything: every buffered packet
        // must come back out exactly once.
        let mut sw = Switch::new(SwitchConfig {
            buffer: BufferChoice::FlowGranularity {
                capacity,
                timeout: Nanos::from_secs(10),
            },
            ..SwitchConfig::default()
        });
        let mut pool = PacketPool::new();
        let mut now = Nanos::ZERO;
        let mut ids = Vec::new();
        for (flow, size) in frames {
            now += Nanos::from_micros(50);
            let pkt = PacketBuilder::udp().src_port(flow).frame_size(size).build();
            for out in sw.handle_frame(now, PortNo(1), pool.insert(pkt), &mut pool) {
                if let SwitchOutput::ToController {
                    msg: OfpMessage::PacketIn(pin),
                    ..
                } = out
                {
                    if pin.buffer_id.is_buffered() {
                        ids.push(pin.buffer_id);
                    }
                }
            }
        }
        let buffered = sw.buffer().occupancy() as u64;
        let mut released = 0u64;
        for id in ids {
            now += Nanos::from_micros(50);
            let po = OfpMessage::PacketOut(PacketOut {
                buffer_id: id,
                in_port: PortNo(1),
                actions: vec![Action::output(PortNo(2))],
                data: vec![],
            });
            for out in sw.handle_controller_msg(now, po, 1, &mut pool) {
                if let SwitchOutput::Forward { packet, .. } = out {
                    released += 1;
                    pool.release(packet);
                }
            }
        }
        prop_assert_eq!(released, buffered);
        prop_assert_eq!(sw.buffer().occupancy(), 0);
        prop_assert_eq!(pool.len(), 0, "every pooled packet was reclaimed");
    }
}
