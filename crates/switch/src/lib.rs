//! The Open vSwitch model for `sdn-buffer-lab`.
//!
//! A synchronous state machine reproducing how an OpenFlow switch handles
//! traffic and control messages, with an explicit timing model:
//!
//! * **Fast path** — table-hit packets are forwarded after a per-packet
//!   datapath CPU cost (this is a software switch, like the OVS the paper
//!   measures, so data forwarding competes with control processing for the
//!   same cores).
//! * **Slow path** — table-miss packets go to the configured
//!   [`BufferMechanism`]; generating a `packet_in` moves the packet (or
//!   only its header slice, when buffered) across the ASIC↔CPU bus and
//!   then occupies the CPU proportionally to the bytes handled. This
//!   size-dependent cost is the entire Section IV story: without buffering,
//!   1000-byte frames cross the bus and inflate every downstream stage.
//! * **Control plane** — `flow_mod` installs rules that only become
//!   effective when the install job completes (the paper's `t_e`);
//!   `packet_out` releases buffered packets (one for packet-granularity,
//!   the whole flow queue for flow-granularity) or carries the full frame
//!   back across the bus when nothing was buffered.
//!
//! The switch never performs I/O: every handler returns timed
//! [`SwitchOutput`]s that the caller (the testbed in `sdnbuf-core`)
//! schedules. This keeps the model deterministic and unit-testable.
//!
//! # Example
//!
//! ```
//! use sdnbuf_switch::{BufferChoice, PacketPool, Switch, SwitchConfig, SwitchOutput};
//! use sdnbuf_net::PacketBuilder;
//! use sdnbuf_openflow::PortNo;
//! use sdnbuf_sim::Nanos;
//!
//! let mut sw = Switch::new(SwitchConfig {
//!     buffer: BufferChoice::PacketGranularity { capacity: 256 },
//!     ..SwitchConfig::default()
//! });
//! // Packets live in a shared pool; handlers pass 8-byte handles around.
//! let mut pool = PacketPool::new();
//! let pkt = pool.insert(PacketBuilder::udp().frame_size(1000).build());
//! let outputs = sw.handle_frame(Nanos::ZERO, PortNo(1), pkt, &mut pool);
//! // A miss: the only output is a packet_in to the controller.
//! assert!(matches!(outputs[0], SwitchOutput::ToController { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod stats;
mod switch;

pub use config::{BufferChoice, SwitchConfig};
pub use stats::{PortCounters, SwitchStats};
pub use switch::{Switch, SwitchOutput};

pub use sdnbuf_switchbuf::{BufferMechanism, PacketHandle, PacketPool};
