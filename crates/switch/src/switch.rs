//! The switch state machine.

use crate::{BufferChoice, SwitchConfig, SwitchStats};
use sdnbuf_flowtable::{FlowRule, FlowTable, InsertOutcome, RemovedRule};
use sdnbuf_net::Packet;
use sdnbuf_openflow::{
    msg::{self, FlowModCommand, FlowRemoved, PacketIn, PacketInReason, StatsReply, StatsRequest},
    Action, BufferId, FlowBufferExt, Match, MatchView, OfpMessage, PortNo,
};
use sdnbuf_sim::{Bus, CpuResource, EventKind, Nanos, Tracer};
use sdnbuf_switchbuf::{
    BufferMechanism, FlowGranularityBuffer, GiveUp, MissAction, NoBuffer, PacketGranularityBuffer,
    PacketHandle, PacketPool, Rerequest,
};
use std::collections::VecDeque;

/// A timed effect produced by the switch, to be scheduled by the caller.
///
/// Packets travel by [`PacketHandle`] into the shared [`PacketPool`]: every
/// `Forward` and `Drop { packet: Some(_) }` output carries its own pool
/// reference, which the caller inherits (forward it onward, or release it).
#[derive(Clone, Debug, PartialEq)]
pub enum SwitchOutput {
    /// Emit the packet behind `packet` on `port` at time `at` (the caller
    /// puts it on the egress link).
    Forward {
        /// When the packet leaves the switch.
        at: Nanos,
        /// Egress port.
        port: PortNo,
        /// Egress queue on that port selected by an `ENQUEUE` action;
        /// `None` = the port's default (best-effort) queue.
        queue: Option<u32>,
        /// Handle of the packet; the caller inherits this pool reference.
        packet: PacketHandle,
    },
    /// Send `msg` to the controller at time `at` (the caller puts it on the
    /// control channel).
    ToController {
        /// When the message leaves the switch.
        at: Nanos,
        /// Transaction id.
        xid: u32,
        /// The message.
        msg: OfpMessage,
    },
    /// The packet was dropped (empty action list or undecodable
    /// `packet_out` payload).
    Drop {
        /// Handle of the dropped packet, when it could be reconstructed;
        /// the caller inherits the pool reference.
        packet: Option<PacketHandle>,
    },
}

/// Expands an action list into concrete (egress port, queue) pairs for a
/// packet that arrived on `in_port`, given `data_ports` physical ports.
/// `ENQUEUE` actions select a QoS queue; plain `OUTPUT` uses the port's
/// default queue. A free function so the fast path can expand a matched
/// rule's actions in place instead of cloning them out of the table.
fn egress_ports(
    data_ports: usize,
    actions: &[Action],
    in_port: PortNo,
) -> Vec<(PortNo, Option<u32>)> {
    let mut ports = Vec::new();
    for action in actions {
        let (port, queue) = match action {
            Action::Output { port, .. } => (*port, None),
            Action::Enqueue { port, queue_id } => (*port, Some(*queue_id)),
            Action::SetNwTos(_) => continue,
        };
        match port {
            PortNo::FLOOD | PortNo::ALL => {
                ports.extend(
                    (1..=data_ports as u16)
                        .map(PortNo)
                        .filter(|&p| p != in_port)
                        .map(|p| (p, queue)),
                );
            }
            PortNo::IN_PORT => ports.push((in_port, queue)),
            p if p.is_physical() => ports.push((p, queue)),
            _ => {}
        }
    }
    ports
}

/// The Open vSwitch model: flow table, buffer mechanism, CPU, bus.
///
/// See the crate docs for the timing model. All handlers take the current
/// virtual time and return timed [`SwitchOutput`]s with `at >= now`.
pub struct Switch {
    config: SwitchConfig,
    table: FlowTable,
    buffer: Box<dyn BufferMechanism>,
    cpu: CpuResource,
    bus: Bus,
    /// The serial rule-install pipeline (ofproto): one rule at a time.
    installer: CpuResource,
    next_xid: u32,
    miss_send_len: u16,
    stats: SwitchStats,
    tracer: Tracer,
    /// Degraded-mode state machine (active only when
    /// `config.degraded_threshold > 0`): consecutive flow give-ups without
    /// an intervening controller response. A `flow_mod`/`packet_out`
    /// arrival resets it.
    consecutive_giveups: u32,
    /// Whether the switch is currently degraded: fresh misses are shed
    /// instead of announced, except for periodic probes.
    degraded: bool,
    /// When the next liveness probe may be admitted; `None` while a probe
    /// is pending or no miss has been shed since the last one.
    next_probe: Option<Nanos>,
    /// Set by the probe timer: the next fresh miss goes through the normal
    /// slow path as a probe of controller liveness.
    probe_pending: bool,
    /// Misses shed during the current degraded episode (reported in
    /// `DegradedExit`).
    suppressed_this_episode: u64,
    /// Controller↔switch session epoch; `0` until the crash plane is
    /// armed ([`Switch::arm_crash_plane`]), then `1` and bumped on every
    /// completed re-handshake.
    session_epoch: u32,
    /// Whether the crash plane is armed: epoch tagging, the liveness
    /// detector and post-restart reconciliation all hang off this flag, so
    /// unarmed runs stay byte-identical to the pre-crash-plane switch.
    epoch_armed: bool,
    /// The first `Hello` has been consumed; any later `Hello` with a
    /// *fresh* xid is a re-handshake from a restarted (or failed-over)
    /// controller.
    hello_seen: bool,
    /// Highest `Hello` xid consumed so far. Controller xid allocators
    /// only move forward (the standby mints from a higher base and no
    /// restart rewinds a counter), so a `Hello` at or below this mark is
    /// a network duplicate — answered, but never mistaken for a
    /// re-handshake.
    hello_xid_high: u32,
    /// A re-handshake `Hello` arrived; the epoch bump and buffer
    /// reconciliation run when the handshake's `SetConfig` lands —
    /// handshake completes before the new session serves buffer state.
    pending_reconcile: bool,
    /// Last time any controller message arrived (liveness detector input).
    last_ctrl_heard: Nanos,
    /// The liveness detector tripped: the controller has been silent past
    /// `liveness_timeout`. Fresh misses are shed until it speaks again.
    ctrl_suspect: bool,
    /// Surviving buffer ids still to re-announce after an epoch bump, in
    /// ascending raw-id order; drained one per `reconcile_interval`.
    reconcile_queue: VecDeque<BufferId>,
    /// When the next queued reconciliation re-announce goes out.
    next_reconcile: Option<Nanos>,
}

impl std::fmt::Debug for Switch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Switch")
            .field("buffer", &self.buffer.name())
            .field("rules", &self.table.len())
            .field("occupancy", &self.buffer.occupancy())
            .finish_non_exhaustive()
    }
}

impl Switch {
    /// Creates a switch from its configuration.
    ///
    /// # Panics
    /// When [`SwitchConfig::validate`] rejects the configuration. See
    /// [`Switch::try_new`] for the non-panicking form.
    pub fn new(config: SwitchConfig) -> Switch {
        match Switch::try_new(config) {
            Ok(sw) => sw,
            Err(e) => panic!("invalid SwitchConfig: {e}"),
        }
    }

    /// [`Switch::new`] with the validation error returned instead of
    /// panicking — the single validation path for switch construction.
    pub fn try_new(config: SwitchConfig) -> Result<Switch, String> {
        config.validate()?;
        let buffer: Box<dyn BufferMechanism> = match config.buffer {
            BufferChoice::NoBuffer => Box::new(NoBuffer::new()),
            BufferChoice::PacketGranularity { capacity } => Box::new(
                PacketGranularityBuffer::with_free_lag(capacity, config.buffer_free_lag)
                    .with_ttl(config.buffer_ttl),
            ),
            BufferChoice::FlowGranularity { capacity, timeout } => Box::new(
                FlowGranularityBuffer::new(capacity, timeout)
                    .with_retry_policy(config.retry)
                    .with_ttl(config.buffer_ttl),
            ),
        };
        Ok(Switch {
            table: FlowTable::with_eviction(config.flow_table_capacity, config.eviction),
            buffer,
            cpu: CpuResource::new(config.cpu_cores),
            bus: Bus::new(config.bus_rate),
            installer: CpuResource::new(1),
            next_xid: 1,
            miss_send_len: config.miss_send_len,
            stats: SwitchStats::default(),
            tracer: Tracer::off(),
            consecutive_giveups: 0,
            degraded: false,
            next_probe: None,
            probe_pending: false,
            suppressed_this_episode: 0,
            session_epoch: 0,
            epoch_armed: false,
            hello_seen: false,
            hello_xid_high: 0,
            pending_reconcile: false,
            last_ctrl_heard: Nanos::ZERO,
            ctrl_suspect: false,
            reconcile_queue: VecDeque::new(),
            next_reconcile: None,
            config,
        })
    }

    /// Whether the switch is currently in degraded mode (shedding fresh
    /// misses, probing periodically).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Arms the controller-crash plane: buffer allocations are stamped
    /// with the session epoch (starting at 1), the liveness detector runs
    /// (when `liveness_timeout > 0`), and a controller re-handshake bumps
    /// the epoch and reconciles surviving buffer state. Off by default —
    /// unarmed runs are byte-identical to the pre-crash-plane switch.
    pub fn arm_crash_plane(&mut self) {
        self.epoch_armed = true;
        self.session_epoch = 1;
        self.buffer.set_epoch(1);
    }

    /// The current controller↔switch session epoch (`0` = crash plane
    /// unarmed).
    pub fn session_epoch(&self) -> u32 {
        self.session_epoch
    }

    /// Whether the liveness detector currently suspects the controller is
    /// dead (fresh misses are being shed).
    pub fn is_ctrl_suspect(&self) -> bool {
        self.ctrl_suspect
    }

    /// Attaches an event tracer, propagating it to the bus and the buffer
    /// mechanism so the whole switch reports into one stream.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.bus.set_tracer(tracer.clone(), "switch-bus");
        self.buffer.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The switch's configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// The flow table (for inspection).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// The buffer mechanism (for inspection).
    pub fn buffer(&self) -> &dyn BufferMechanism {
        self.buffer.as_ref()
    }

    /// Mutable access to the buffer mechanism, for fault-injection hooks
    /// (pressure windows, disabling re-requests in the chaos harness).
    pub fn buffer_mut(&mut self) -> &mut dyn BufferMechanism {
        self.buffer.as_mut()
    }

    /// Toggles buffer-capacity pressure on the mechanism: while on, new
    /// misses fall back to full-packet `packet_in`s as if buffer memory
    /// were exhausted.
    pub fn set_buffer_pressure(&mut self, on: bool) {
        self.buffer.set_pressure(on);
    }

    /// Switch-side counters and gauges.
    pub fn stats(&self) -> &SwitchStats {
        &self.stats
    }

    /// `top`-style CPU utilization over `[ZERO, horizon]`, in percent
    /// (up to `cores × 100`).
    pub fn cpu_percent(&self, horizon: Nanos) -> f64 {
        self.cpu.utilization().percent(horizon)
    }

    /// The current `miss_send_len` (mutable via `set_config`).
    pub fn miss_send_len(&self) -> u16 {
        self.miss_send_len
    }

    fn fresh_xid(&mut self) -> u32 {
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        xid
    }

    fn touch_gauge(&mut self, now: Nanos) {
        let occupancy = self.buffer.occupancy() as f64;
        self.stats.buffer_occupancy.set(now, occupancy);
        self.stats.occupancy_series.record(now, occupancy);
    }

    fn data_ports(&self) -> impl Iterator<Item = PortNo> {
        (1..=self.config.data_ports as u16).map(PortNo)
    }

    /// Handles a frame arriving on a data port at time `now`. The caller
    /// passes one pool reference in with `packet`; it comes back out in the
    /// outputs (each `Forward`/`Drop` carries its own reference) or is
    /// absorbed by the buffer mechanism / the encoded `packet_in` payload.
    pub fn handle_frame(
        &mut self,
        now: Nanos,
        in_port: PortNo,
        packet: PacketHandle,
        pool: &mut PacketPool,
    ) -> Vec<SwitchOutput> {
        let data_ports = self.config.data_ports;
        let (wire_len, matched) = {
            let pk = pool.get(packet).expect("live packet handle");
            let view = MatchView::of(in_port, pk);
            let wire_len = pk.wire_len();
            let matched = self
                .table
                .match_packet(now, &view, wire_len)
                .map(|rule| egress_ports(data_ports, &rule.actions, in_port));
            (wire_len, matched)
        };
        self.stats.count_rx(in_port.as_u16(), wire_len);
        if let Some(ports) = matched {
            // Fast path: datapath CPU cost, then out the rule's ports.
            let done = self.cpu.submit(now, self.config.cost_forward);
            if ports.is_empty() {
                self.stats.drops.incr();
                return vec![SwitchOutput::Drop {
                    packet: Some(packet),
                }];
            }
            self.stats.fastpath_forwards.add(ports.len() as u64);
            // One reference per egress: the handle we hold covers the first,
            // each additional port shares the same pooled packet.
            for _ in 1..ports.len() {
                pool.retain(packet);
            }
            return ports
                .into_iter()
                .map(|(port, queue)| {
                    self.stats.count_tx(port.as_u16(), wire_len);
                    SwitchOutput::Forward {
                        at: done,
                        port,
                        queue,
                        packet,
                    }
                })
                .collect();
        }
        // Slow path: table miss.
        self.stats.table_misses.incr();
        self.tracer.emit(
            now,
            EventKind::TableMiss {
                in_port: in_port.as_u16(),
                bytes: wire_len,
            },
        );
        if self.ctrl_suspect {
            // The liveness detector tripped: the controller has been
            // silent past its deadline, so announcing this miss would be
            // shouting into a dead session. Shed it (an accounted drop);
            // already-buffered state is kept for post-restart
            // reconciliation.
            self.stats.suspect_sheds.incr();
            self.stats.drops.incr();
            return vec![SwitchOutput::Drop {
                packet: Some(packet),
            }];
        }
        if self.degraded {
            if self.probe_pending {
                // The probe timer fired: let exactly this miss through the
                // normal slow path to test controller liveness.
                self.probe_pending = false;
            } else {
                // Shed: neither buffered nor announced. The probe timer is
                // re-armed lazily on the first shed after a probe, so an
                // idle degraded switch schedules no timers.
                self.stats.degraded_sheds.incr();
                self.suppressed_this_episode += 1;
                if self.next_probe.is_none() {
                    self.next_probe = Some(now + self.config.degraded_probe_interval);
                }
                self.stats.drops.incr();
                return vec![SwitchOutput::Drop {
                    packet: Some(packet),
                }];
            }
        }
        let total_len = wire_len as u16;
        let outputs = match self.buffer.on_miss(now, packet, in_port, pool) {
            MissAction::SendFullPacketIn => {
                // The whole frame crosses the bus, then the CPU builds a
                // packet_in carrying it all. We still own the reference:
                // the packet lives on only as the message payload.
                let data = pool.get(packet).expect("live packet handle").encode();
                pool.release(packet);
                let at_cpu = self.bus.transfer(now, wire_len);
                let cost = self.config.cost_pkt_in_base + self.config.payload_cost(wire_len);
                let at = self.cpu.submit(at_cpu, cost);
                vec![self.packet_in_output(at, BufferId::NO_BUFFER, total_len, in_port, data)]
            }
            MissAction::SendBufferedPacketIn { buffer_id } => {
                // Only the header slice crosses the bus; the packet body
                // stays in the buffer unit (the mechanism holds the
                // reference now).
                let slice = pool
                    .get(packet)
                    .expect("live packet handle")
                    .encode_prefix(self.miss_send_len as usize);
                let at_cpu = self.bus.transfer(now, slice.len());
                let cost = self.config.cost_buffer_store
                    + self.config.cost_pkt_in_base
                    + self.config.payload_cost(slice.len());
                let at = self.cpu.submit(at_cpu, cost);
                vec![self.packet_in_output(at, buffer_id, total_len, in_port, slice)]
            }
            MissAction::Buffered { .. } => {
                // Algorithm 1 line 11: buffered silently; only the store
                // cost is paid, no message is generated.
                self.cpu.submit(now, self.config.cost_buffer_store);
                Vec::new()
            }
        };
        self.touch_gauge(now);
        outputs
    }

    fn packet_in_output(
        &mut self,
        at: Nanos,
        buffer_id: BufferId,
        total_len: u16,
        in_port: PortNo,
        data: Vec<u8>,
    ) -> SwitchOutput {
        let xid = self.fresh_xid();
        self.stats.pkt_in_sent.incr();
        self.stats.pkt_in_bytes.add(data.len() as u64);
        self.tracer.emit(
            at,
            EventKind::PacketInSent {
                xid,
                buffer_id: buffer_id.as_u32(),
                bytes: data.len(),
            },
        );
        SwitchOutput::ToController {
            at,
            xid,
            msg: OfpMessage::PacketIn(PacketIn {
                buffer_id,
                total_len,
                in_port,
                reason: PacketInReason::NoMatch,
                data,
            }),
        }
    }

    /// Handles a control message arriving from the controller at `now`.
    /// `pool` backs the packets a `packet_out` releases or re-injects.
    pub fn handle_controller_msg(
        &mut self,
        now: Nanos,
        msg: OfpMessage,
        xid: u32,
        pool: &mut PacketPool,
    ) -> Vec<SwitchOutput> {
        if self.epoch_armed {
            // Any controller message proves the session is alive.
            self.last_ctrl_heard = now;
            self.ctrl_suspect = false;
        }
        // A substantive controller response proves liveness: reset the
        // give-up streak and leave degraded mode.
        if matches!(msg, OfpMessage::FlowMod(_) | OfpMessage::PacketOut(_)) {
            self.consecutive_giveups = 0;
            if self.degraded {
                self.exit_degraded(now);
            }
        }
        match msg {
            OfpMessage::FlowMod(fm) => self.handle_flow_mod(now, fm, xid),
            OfpMessage::PacketOut(po) => self.handle_packet_out(now, po, xid, pool),
            OfpMessage::SetConfig(c) => {
                self.cpu.submit(now, self.config.cost_control_misc);
                self.miss_send_len = c.miss_send_len;
                if self.pending_reconcile {
                    // The re-handshake is complete (Hello → … →
                    // SetConfig): only now does the new session take over
                    // the buffer state.
                    self.bump_epoch(now);
                }
                Vec::new()
            }
            OfpMessage::GetConfigRequest => {
                let at = self.cpu.submit(now, self.config.cost_control_misc);
                vec![SwitchOutput::ToController {
                    at,
                    xid,
                    msg: OfpMessage::GetConfigReply(msg::SwitchConfig {
                        flags: 0,
                        miss_send_len: self.miss_send_len,
                    }),
                }]
            }
            OfpMessage::EchoRequest(data) => {
                let at = self.cpu.submit(now, self.config.cost_control_misc);
                vec![SwitchOutput::ToController {
                    at,
                    xid,
                    msg: OfpMessage::EchoReply(data),
                }]
            }
            OfpMessage::Hello => {
                if self.epoch_armed && self.hello_seen && xid > self.hello_xid_high {
                    // A fresh-xid Hello after the first means the
                    // controller restarted (or a standby took over); a
                    // duplicated or reordered copy of an old Hello reuses
                    // its xid and is answered without arming anything.
                    // Defer the epoch bump until the handshake's
                    // SetConfig lands: handshake before service.
                    self.pending_reconcile = true;
                }
                self.hello_seen = true;
                self.hello_xid_high = self.hello_xid_high.max(xid);
                let at = self.cpu.submit(now, self.config.cost_control_misc);
                vec![SwitchOutput::ToController {
                    at,
                    xid,
                    msg: OfpMessage::Hello,
                }]
            }
            OfpMessage::FeaturesRequest => {
                let at = self.cpu.submit(now, self.config.cost_control_misc);
                let ports = self
                    .data_ports()
                    .map(|p| msg::PhyPort {
                        port_no: p,
                        hw_addr: sdnbuf_net::MacAddr::from_host_index(0xff00 + p.as_u16() as u32),
                        name: format!("eth{}", p.as_u16()),
                    })
                    .collect();
                vec![SwitchOutput::ToController {
                    at,
                    xid,
                    msg: OfpMessage::FeaturesReply(msg::FeaturesReply {
                        datapath_id: 1,
                        n_buffers: self.buffer.capacity() as u32,
                        n_tables: 1,
                        capabilities: 0,
                        actions: 0xfff,
                        ports,
                    }),
                }]
            }
            OfpMessage::BarrierRequest => {
                let at = self.cpu.submit(now, self.config.cost_control_misc);
                vec![SwitchOutput::ToController {
                    at,
                    xid,
                    msg: OfpMessage::BarrierReply,
                }]
            }
            OfpMessage::StatsRequest(req) => self.handle_stats_request(now, xid, req),
            OfpMessage::QueueGetConfigRequest(port) => {
                let at = self.cpu.submit(now, self.config.cost_control_misc);
                vec![SwitchOutput::ToController {
                    at,
                    xid,
                    msg: OfpMessage::QueueGetConfigReply {
                        port,
                        queues: self
                            .config
                            .egress_queue_rates
                            .iter()
                            .enumerate()
                            .map(|(i, &r)| msg::PacketQueue {
                                queue_id: i as u32,
                                min_rate_tenths_percent: r,
                            })
                            .collect(),
                    },
                }]
            }
            OfpMessage::PortMod(_) => {
                // Port administration is modeled as a no-op acknowledgement
                // (the testbed's ports are always up).
                self.cpu.submit(now, self.config.cost_control_misc);
                Vec::new()
            }
            ref vendor @ OfpMessage::Vendor(_) => {
                let at = self.cpu.submit(now, self.config.cost_control_misc);
                match FlowBufferExt::from_message(vendor) {
                    Some(Ok(FlowBufferExt::Configure { .. }))
                        if self.buffer.name() == "flow-granularity" =>
                    {
                        Vec::new() // accepted
                    }
                    _ => vec![SwitchOutput::ToController {
                        at,
                        xid,
                        msg: OfpMessage::Error(msg::ErrorMsg {
                            err_type: 1, // OFPET_BAD_REQUEST
                            code: 3,     // OFPBRC_BAD_VENDOR
                            data: Vec::new(),
                        }),
                    }],
                }
            }
            other => {
                // Messages a switch should never receive.
                let at = self.cpu.submit(now, self.config.cost_control_misc);
                vec![SwitchOutput::ToController {
                    at,
                    xid,
                    msg: OfpMessage::Error(msg::ErrorMsg {
                        err_type: 1, // OFPET_BAD_REQUEST
                        code: 1,     // OFPBRC_BAD_TYPE
                        data: other.encode(xid),
                    }),
                }]
            }
        }
    }

    fn handle_flow_mod(&mut self, now: Nanos, fm: msg::FlowMod, xid: u32) -> Vec<SwitchOutput> {
        self.stats.flow_mods.incr();
        match fm.command {
            FlowModCommand::Add | FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
                // The rule takes effect when the serial install pipeline
                // finishes it — the paper's t_e. Packets arriving before
                // t_e still miss and re-trigger the slow path.
                let parsed_at = self.cpu.submit(now, self.config.cost_flow_mod);
                let effective_at = self
                    .installer
                    .submit(parsed_at, self.config.cost_rule_install);
                let mut rule = FlowRule::new(fm.match_fields, fm.priority)
                    .with_actions(fm.actions)
                    .with_cookie(fm.cookie)
                    .with_idle_timeout(Nanos::from_secs(u64::from(fm.idle_timeout)))
                    .with_hard_timeout(Nanos::from_secs(u64::from(fm.hard_timeout)));
                if fm.flags & msg::OFPFF_SEND_FLOW_REM != 0 {
                    rule = rule.with_removal_notification();
                }
                let outcome = self.table.insert(effective_at, rule);
                self.tracer.emit(
                    now,
                    EventKind::FlowRuleInstalled {
                        xid,
                        effective_at,
                        table_size: self.table.len(),
                    },
                );
                match outcome {
                    InsertOutcome::Evicted(victim) => {
                        self.tracer.emit(
                            effective_at,
                            EventKind::FlowRuleEvicted {
                                table_size: self.table.len(),
                            },
                        );
                        if victim.notify_on_removal {
                            vec![self.flow_removed_output(
                                effective_at,
                                RemovedRule {
                                    rule: victim,
                                    reason: msg::FlowRemovedReason::Delete,
                                },
                            )]
                        } else {
                            Vec::new()
                        }
                    }
                    _ => Vec::new(),
                }
            }
            FlowModCommand::Delete | FlowModCommand::DeleteStrict => {
                let at = self.cpu.submit(now, self.config.cost_flow_mod);
                let strict = fm.command == FlowModCommand::DeleteStrict;
                self.table
                    .delete(&fm.match_fields, fm.priority, strict)
                    .into_iter()
                    .filter(|r| r.rule.notify_on_removal)
                    .map(|r| self.flow_removed_output(at, r))
                    .collect()
            }
        }
    }

    fn flow_removed_output(&mut self, at: Nanos, removed: RemovedRule) -> SwitchOutput {
        self.stats.flow_removed_sent.incr();
        let xid = self.fresh_xid();
        let rule = removed.rule;
        let duration = at.saturating_sub(rule.installed_at);
        SwitchOutput::ToController {
            at,
            xid,
            msg: OfpMessage::FlowRemoved(FlowRemoved {
                match_fields: rule.match_fields,
                cookie: rule.cookie,
                priority: rule.priority,
                reason: removed.reason,
                duration_sec: (duration.as_nanos() / 1_000_000_000) as u32,
                duration_nsec: (duration.as_nanos() % 1_000_000_000) as u32,
                idle_timeout: (rule.idle_timeout.as_nanos() / 1_000_000_000) as u16,
                packet_count: rule.packet_count,
                byte_count: rule.byte_count,
            }),
        }
    }

    /// Completes a re-handshake: bumps the session epoch, migrates the
    /// surviving buffer entries to it (resetting their retry budgets) and
    /// queues their paced re-announce.
    fn bump_epoch(&mut self, now: Nanos) {
        self.pending_reconcile = false;
        let from = self.session_epoch;
        self.session_epoch += 1;
        let to = self.session_epoch;
        self.buffer.set_epoch(to);
        let survivors = self.buffer.reconcile_epoch(now, to);
        self.stats.epoch_bumps.incr();
        self.tracer.emit(
            now,
            EventKind::EpochBump {
                from,
                to,
                survivors: survivors.len(),
            },
        );
        if !survivors.is_empty() {
            self.next_reconcile = Some(now + self.config.reconcile_interval);
            self.reconcile_queue.extend(survivors);
        }
    }

    fn handle_packet_out(
        &mut self,
        now: Nanos,
        po: msg::PacketOut,
        xid: u32,
        pool: &mut PacketPool,
    ) -> Vec<SwitchOutput> {
        self.stats.pkt_outs.incr();
        let data_ports = self.config.data_ports;
        if po.buffer_id.is_buffered() {
            // Algorithm 2: release and forward every packet filed under
            // this id, one by one, in FIFO order.
            let parse_done = self.cpu.submit(now, self.config.cost_pkt_out_base);
            let stale_epochs_before = self.buffer.stats().stale_epoch_releases;
            let released = self.buffer.release(parse_done, po.buffer_id);
            self.touch_gauge(parse_done);
            self.tracer.emit(
                parse_done,
                EventKind::BufferDrain {
                    xid,
                    buffer_id: po.buffer_id.as_u32(),
                    released: released.len(),
                    occupancy: self.buffer.occupancy(),
                },
            );
            if self.buffer.stats().stale_epoch_releases > stale_epochs_before {
                // The epoch guard refused the drain: this packet_out was
                // minted under a session that has since died.
                self.stats.stale_epoch_rejects.incr();
                self.tracer.emit(
                    parse_done,
                    EventKind::StaleEpochReject {
                        xid,
                        buffer_id: po.buffer_id.as_u32(),
                        epoch: po.buffer_id.epoch(),
                        current: self.session_epoch,
                    },
                );
            }
            if released.is_empty() {
                return Vec::new();
            }
            let mut outputs = Vec::new();
            let mut t = parse_done;
            for bp in released {
                t = self.cpu.submit(t, self.config.cost_buffer_release);
                let ports = egress_ports(data_ports, &po.actions, bp.in_port);
                if ports.is_empty() {
                    self.stats.drops.incr();
                    outputs.push(SwitchOutput::Drop {
                        packet: Some(bp.packet),
                    });
                    continue;
                }
                self.stats.slowpath_forwards.add(ports.len() as u64);
                let wire_len = pool
                    .get(bp.packet)
                    .expect("live buffered packet")
                    .wire_len();
                for _ in 1..ports.len() {
                    pool.retain(bp.packet);
                }
                for (port, queue) in ports {
                    self.stats.count_tx(port.as_u16(), wire_len);
                    outputs.push(SwitchOutput::Forward {
                        at: t,
                        port,
                        queue,
                        packet: bp.packet,
                    });
                }
            }
            outputs
        } else {
            // Unbuffered: the full packet rides in the message and must
            // cross the bus back to the forwarding plane.
            let data_len = po.data.len();
            let cost = self.config.cost_pkt_out_base + self.config.payload_cost(data_len);
            let cpu_done = self.cpu.submit(now, cost);
            let at = self.bus.transfer(cpu_done, data_len);
            match Packet::decode(&po.data) {
                Ok(packet) => {
                    let wire_len = packet.wire_len();
                    let handle = pool.insert(packet);
                    let ports = egress_ports(data_ports, &po.actions, po.in_port);
                    if ports.is_empty() {
                        self.stats.drops.incr();
                        return vec![SwitchOutput::Drop {
                            packet: Some(handle),
                        }];
                    }
                    self.stats.slowpath_forwards.add(ports.len() as u64);
                    for _ in 1..ports.len() {
                        pool.retain(handle);
                    }
                    ports
                        .into_iter()
                        .map(|(port, queue)| {
                            self.stats.count_tx(port.as_u16(), wire_len);
                            SwitchOutput::Forward {
                                at,
                                port,
                                queue,
                                packet: handle,
                            }
                        })
                        .collect()
                }
                Err(_) => {
                    self.stats.drops.incr();
                    vec![SwitchOutput::Drop { packet: None }]
                }
            }
        }
    }

    fn handle_stats_request(
        &mut self,
        now: Nanos,
        xid: u32,
        req: StatsRequest,
    ) -> Vec<SwitchOutput> {
        let per_rule = self.config.cost_control_misc;
        let cost = self.config.cost_control_misc + per_rule * self.table.len() as u64;
        let at = self.cpu.submit(now, cost);
        let matching = |m: &Match| -> Vec<&FlowRule> {
            self.table
                .iter()
                .filter(|r| *m == Match::any() || r.match_fields == *m)
                .collect()
        };
        let reply = match req {
            StatsRequest::Desc => StatsReply::Desc(msg::DescStats {
                mfr_desc: "sdn-buffer-lab".to_owned(),
                hw_desc: "discrete-event switch model".to_owned(),
                sw_desc: format!("sdnbuf-switch ({})", self.buffer.name()),
                serial_num: "0001".to_owned(),
                dp_desc: "Fig.1 testbed switch".to_owned(),
            }),
            StatsRequest::Table => StatsReply::Table(vec![msg::TableStatsEntry {
                table_id: 0,
                name: "main".to_owned(),
                wildcards: sdnbuf_openflow::Wildcards::ALL.bits(),
                max_entries: self.table.capacity() as u32,
                active_count: self.table.len() as u32,
                lookup_count: self.table.lookups(),
                matched_count: self.table.hits(),
            }]),
            StatsRequest::Port { port_no } => {
                let entry = |p: u16, c: &crate::PortCounters| msg::PortStatsEntry {
                    port_no: PortNo(p),
                    rx_packets: c.rx_packets,
                    tx_packets: c.tx_packets,
                    rx_bytes: c.rx_bytes,
                    tx_bytes: c.tx_bytes,
                    rx_dropped: 0,
                    tx_dropped: 0,
                };
                let entries = if port_no == PortNo::NONE {
                    self.stats.ports.iter().map(|(p, c)| entry(*p, c)).collect()
                } else {
                    self.stats
                        .ports
                        .get(&port_no.as_u16())
                        .map(|c| entry(port_no.as_u16(), c))
                        .into_iter()
                        .collect()
                };
                StatsReply::Port(entries)
            }
            StatsRequest::Flow { match_fields, .. } => {
                let entries = matching(&match_fields)
                    .into_iter()
                    .map(|r| {
                        let duration = now.saturating_sub(r.installed_at);
                        msg::FlowStatsEntry {
                            table_id: 0,
                            match_fields: r.match_fields,
                            duration_sec: (duration.as_nanos() / 1_000_000_000) as u32,
                            duration_nsec: (duration.as_nanos() % 1_000_000_000) as u32,
                            priority: r.priority,
                            idle_timeout: (r.idle_timeout.as_nanos() / 1_000_000_000) as u16,
                            hard_timeout: (r.hard_timeout.as_nanos() / 1_000_000_000) as u16,
                            cookie: r.cookie,
                            packet_count: r.packet_count,
                            byte_count: r.byte_count,
                            actions: r.actions.clone(),
                        }
                    })
                    .collect();
                StatsReply::Flow(entries)
            }
            StatsRequest::Aggregate { match_fields, .. } => {
                let rules = matching(&match_fields);
                StatsReply::Aggregate {
                    packet_count: rules.iter().map(|r| r.packet_count).sum(),
                    byte_count: rules.iter().map(|r| r.byte_count).sum(),
                    flow_count: rules.len() as u32,
                }
            }
        };
        vec![SwitchOutput::ToController {
            at,
            xid,
            msg: OfpMessage::StatsReply(reply),
        }]
    }

    /// Announces the flow-granularity buffer capability over the vendor
    /// extension (Section V: the mechanism "requires to extend the
    /// OpenFlow protocol"). Emits nothing for the standard mechanisms.
    pub fn announce_capabilities(&mut self, now: Nanos) -> Vec<SwitchOutput> {
        let BufferChoice::FlowGranularity { capacity, timeout } = self.config.buffer else {
            return Vec::new();
        };
        let at = self.cpu.submit(now, self.config.cost_control_misc);
        let xid = self.fresh_xid();
        vec![SwitchOutput::ToController {
            at,
            xid,
            msg: OfpMessage::from(FlowBufferExt::Announce {
                capacity: capacity as u32,
                timeout_ms: (timeout.as_nanos() / 1_000_000) as u32,
            }),
        }]
    }

    fn exit_degraded(&mut self, now: Nanos) {
        self.degraded = false;
        self.next_probe = None;
        self.probe_pending = false;
        self.stats.degraded_exits.incr();
        self.tracer.emit(
            now,
            EventKind::DegradedExit {
                suppressed: self.suppressed_this_episode,
            },
        );
        self.suppressed_this_episode = 0;
    }

    /// The earliest moment the switch needs a timer callback: flow-table
    /// expiry, a buffer re-request/TTL deadline, a degraded-mode probe, a
    /// liveness deadline, or a paced reconciliation re-announce.
    pub fn next_timer(&self) -> Option<Nanos> {
        let liveness =
            (self.epoch_armed && !self.ctrl_suspect && self.config.liveness_timeout > Nanos::ZERO)
                .then(|| self.last_ctrl_heard + self.config.liveness_timeout);
        [
            self.table.next_expiry(),
            self.buffer.next_timeout(),
            self.next_probe,
            liveness,
            self.next_reconcile,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Runs expiry sweeps, buffer re-requests, TTL garbage collection,
    /// give-up actions and degraded-mode transitions due at `now`.
    pub fn on_timer(&mut self, now: Nanos, pool: &mut PacketPool) -> Vec<SwitchOutput> {
        let mut outputs = Vec::new();
        if self.epoch_armed
            && !self.ctrl_suspect
            && self.config.liveness_timeout > Nanos::ZERO
            && now >= self.last_ctrl_heard + self.config.liveness_timeout
        {
            // The controller has been silent past its deadline: suspect
            // the session is dead until it speaks again.
            self.ctrl_suspect = true;
            self.stats.liveness_suspects.incr();
        }
        // Paced post-restart reconciliation: one surviving entry is
        // re-announced per elapsed `reconcile_interval` slot.
        while let Some(due) = self.next_reconcile {
            if due > now {
                break;
            }
            match self.reconcile_queue.pop_front() {
                None => self.next_reconcile = None,
                Some(id) => {
                    self.next_reconcile = if self.reconcile_queue.is_empty() {
                        None
                    } else {
                        Some(due + self.config.reconcile_interval)
                    };
                    // The entry may have drained or expired since the
                    // bump listed it; the re-announce is then skipped.
                    if let Some(rerequest) = self.buffer.rerequest_for(id) {
                        self.stats.reconcile_rerequests.incr();
                        self.tracer.emit(
                            now,
                            EventKind::BufferReconcile {
                                buffer_id: rerequest.buffer_id.as_u32(),
                                occupancy: self.buffer.occupancy(),
                            },
                        );
                        let out = self.rerequest_output(now, rerequest, pool);
                        outputs.push(out);
                    }
                }
            }
        }
        for removed in self.table.expire(now) {
            self.tracer.emit(
                now,
                EventKind::FlowRuleExpired {
                    table_size: self.table.len(),
                },
            );
            if removed.rule.notify_on_removal {
                let at = self.cpu.submit(now, self.config.cost_control_misc);
                let mut out = self.flow_removed_output(at, removed);
                if let SwitchOutput::ToController { at: ref mut t, .. } = out {
                    *t = at;
                }
                outputs.push(out);
            }
        }
        if self.degraded && self.next_probe.is_some_and(|t| t <= now) {
            // Probe window opens: the next fresh miss is admitted. The
            // timer is re-armed when a later miss is shed.
            self.next_probe = None;
            self.probe_pending = true;
        }
        let sweep = self.buffer.poll_timeouts(now, pool);
        if !sweep.expired.is_empty() || !sweep.gave_up.is_empty() {
            self.touch_gauge(now);
        }
        // TTL-expired entries are dropped at the switch: the controller
        // never answered, and their units are already freed.
        for bp in sweep.expired {
            self.stats.drops.incr();
            outputs.push(SwitchOutput::Drop {
                packet: Some(bp.packet),
            });
        }
        for flow in sweep.gave_up {
            self.consecutive_giveups += 1;
            match flow.action {
                GiveUp::DrainAsFullPacketIn => {
                    // Fall back to the no-buffer path: each drained packet
                    // crosses the bus in full and rides its own packet_in,
                    // so a recovered controller can still route it. The
                    // packet lives on only as the message payload, so the
                    // inherited reference is released here.
                    for bp in flow.packets {
                        let pk = pool.take(bp.packet).expect("live gave-up packet");
                        let wire_len = pk.wire_len();
                        let at_cpu = self.bus.transfer(now, wire_len);
                        let cost =
                            self.config.cost_pkt_in_base + self.config.payload_cost(wire_len);
                        let at = self.cpu.submit(at_cpu, cost);
                        outputs.push(self.packet_in_output(
                            at,
                            BufferId::NO_BUFFER,
                            wire_len as u16,
                            bp.in_port,
                            pk.encode(),
                        ));
                    }
                }
                GiveUp::Drop => {
                    for bp in flow.packets {
                        self.stats.drops.incr();
                        outputs.push(SwitchOutput::Drop {
                            packet: Some(bp.packet),
                        });
                    }
                }
            }
        }
        if self.config.degraded_threshold > 0
            && !self.degraded
            && self.consecutive_giveups >= self.config.degraded_threshold
        {
            self.degraded = true;
            self.suppressed_this_episode = 0;
            self.next_probe = Some(now + self.config.degraded_probe_interval);
            self.probe_pending = false;
            self.stats.degraded_entries.incr();
            self.tracer.emit(
                now,
                EventKind::DegradedEnter {
                    giveups: self.consecutive_giveups,
                },
            );
        }
        for rerequest in sweep.rerequests {
            let out = self.rerequest_output(now, rerequest, pool);
            outputs.push(out);
        }
        outputs
    }

    /// Builds the `packet_in` for a re-announce of a still-buffered flow.
    /// `rerequest.packet` is a borrowed view of the head-of-line packet;
    /// only its header slice is re-encoded.
    fn rerequest_output(
        &mut self,
        now: Nanos,
        rerequest: Rerequest,
        pool: &PacketPool,
    ) -> SwitchOutput {
        let (slice, total_len) = {
            let pk = pool.get(rerequest.packet).expect("live re-request packet");
            (
                pk.encode_prefix(self.miss_send_len as usize),
                pk.wire_len() as u16,
            )
        };
        let at_cpu = self.bus.transfer(now, slice.len());
        let cost = self.config.cost_pkt_in_base + self.config.payload_cost(slice.len());
        let at = self.cpu.submit(at_cpu, cost);
        self.packet_in_output(at, rerequest.buffer_id, total_len, rerequest.in_port, slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnbuf_net::PacketBuilder;
    use sdnbuf_openflow::msg::{FlowMod, PacketOut};

    fn switch_with(buffer: BufferChoice) -> Switch {
        Switch::new(SwitchConfig {
            buffer,
            ..SwitchConfig::default()
        })
    }

    fn udp(src_port: u16) -> Packet {
        PacketBuilder::udp()
            .src_port(src_port)
            .frame_size(1000)
            .build()
    }

    #[test]
    fn try_new_returns_typed_errors() {
        assert!(Switch::try_new(SwitchConfig::default()).is_ok());
        let err = Switch::try_new(SwitchConfig {
            buffer: BufferChoice::PacketGranularity { capacity: 0 },
            ..SwitchConfig::default()
        })
        .unwrap_err();
        assert!(err.contains("capacity"), "{err}");
    }

    fn flow_mod_for(pkt: &Packet, in_port: PortNo, out_port: PortNo) -> OfpMessage {
        OfpMessage::FlowMod(FlowMod {
            match_fields: Match::exact_from_packet(in_port, pkt),
            cookie: 0,
            command: FlowModCommand::Add,
            idle_timeout: 5,
            hard_timeout: 0,
            priority: 100,
            buffer_id: BufferId::NO_BUFFER,
            out_port: PortNo::NONE,
            flags: 0,
            actions: vec![Action::output(out_port)],
        })
    }

    fn first_pkt_in(outputs: &[SwitchOutput]) -> (&PacketIn, u32, Nanos) {
        for o in outputs {
            if let SwitchOutput::ToController {
                at,
                xid,
                msg: OfpMessage::PacketIn(pin),
            } = o
            {
                return (pin, *xid, *at);
            }
        }
        panic!("no packet_in in {outputs:?}");
    }

    #[test]
    fn miss_without_buffer_sends_full_packet() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::NoBuffer);
        let pkt = udp(1);
        let outputs = sw.handle_frame(Nanos::ZERO, PortNo(1), pool.insert(pkt.clone()), &mut pool);
        let (pin, _, at) = first_pkt_in(&outputs);
        assert_eq!(pin.buffer_id, BufferId::NO_BUFFER);
        assert_eq!(pin.data, pkt.encode());
        assert_eq!(pin.total_len, 1000);
        assert!(at > Nanos::ZERO);
        assert_eq!(sw.stats().table_misses.get(), 1);
    }

    #[test]
    fn miss_with_buffer_sends_header_slice() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::PacketGranularity { capacity: 16 });
        let pkt = udp(1);
        let outputs = sw.handle_frame(Nanos::ZERO, PortNo(1), pool.insert(pkt.clone()), &mut pool);
        let (pin, _, _) = first_pkt_in(&outputs);
        assert!(pin.buffer_id.is_buffered());
        assert_eq!(pin.data.len(), 128); // miss_send_len
        assert_eq!(pin.data, pkt.header_slice(128));
        assert_eq!(pin.total_len, 1000);
        assert_eq!(sw.buffer().occupancy(), 1);
    }

    #[test]
    fn buffered_miss_is_faster_to_generate_than_full_miss() {
        let mut pool = PacketPool::new();
        let mut nobuf = switch_with(BufferChoice::NoBuffer);
        let mut buf = switch_with(BufferChoice::PacketGranularity { capacity: 16 });
        let (_, _, t_full) = {
            let outs = nobuf.handle_frame(Nanos::ZERO, PortNo(1), pool.insert(udp(1)), &mut pool);
            let (_, x, t) = first_pkt_in(&outs);
            ((), x, t)
        };
        let outs = buf.handle_frame(Nanos::ZERO, PortNo(1), pool.insert(udp(1)), &mut pool);
        let (_, _, t_buf) = first_pkt_in(&outs);
        assert!(
            t_buf < t_full,
            "buffered pkt_in ({t_buf}) must beat full pkt_in ({t_full})"
        );
    }

    #[test]
    fn flow_mod_then_hit_forwards_on_fast_path() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::NoBuffer);
        let pkt = udp(7);
        sw.handle_frame(Nanos::ZERO, PortNo(1), pool.insert(pkt.clone()), &mut pool);
        sw.handle_controller_msg(
            Nanos::from_millis(1),
            flow_mod_for(&pkt, PortNo(1), PortNo(2)),
            9,
            &mut pool,
        );
        // Well after t_e: the same flow now hits.
        let outputs = sw.handle_frame(
            Nanos::from_millis(10),
            PortNo(1),
            pool.insert(pkt.clone()),
            &mut pool,
        );
        match &outputs[..] {
            [SwitchOutput::Forward {
                at,
                port,
                queue,
                packet,
            }] => {
                assert_eq!(*port, PortNo(2));
                assert_eq!(*queue, None);
                assert_eq!(pool.get(*packet).unwrap(), &pkt);
                assert!(*at >= Nanos::from_millis(10));
            }
            other => panic!("expected fast-path forward, got {other:?}"),
        }
        assert_eq!(sw.stats().fastpath_forwards.get(), 1);
    }

    #[test]
    fn rule_does_not_match_before_effect_time() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::NoBuffer);
        let pkt = udp(7);
        // Install at t=0; effect time is cost_flow_mod later.
        sw.handle_controller_msg(
            Nanos::ZERO,
            flow_mod_for(&pkt, PortNo(1), PortNo(2)),
            1,
            &mut pool,
        );
        // A packet arriving immediately still misses (t_e > t_2 case).
        let outputs = sw.handle_frame(
            Nanos::from_nanos(1),
            PortNo(1),
            pool.insert(pkt.clone()),
            &mut pool,
        );
        assert!(matches!(outputs[0], SwitchOutput::ToController { .. }));
        assert_eq!(sw.stats().table_misses.get(), 1);
        // After t_e it hits.
        let outputs = sw.handle_frame(
            Nanos::from_millis(1),
            PortNo(1),
            pool.insert(pkt),
            &mut pool,
        );
        assert!(matches!(outputs[0], SwitchOutput::Forward { .. }));
    }

    #[test]
    fn packet_out_releases_buffered_packet() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::PacketGranularity { capacity: 16 });
        let pkt = udp(3);
        let outs = sw.handle_frame(Nanos::ZERO, PortNo(1), pool.insert(pkt.clone()), &mut pool);
        let (pin, _, t_pkt_in) = first_pkt_in(&outs);
        let id = pin.buffer_id;
        let outs = sw.handle_controller_msg(
            t_pkt_in + Nanos::from_millis(1),
            OfpMessage::PacketOut(PacketOut {
                buffer_id: id,
                in_port: PortNo(1),
                actions: vec![Action::output(PortNo(2))],
                data: vec![],
            }),
            5,
            &mut pool,
        );
        match &outs[..] {
            [SwitchOutput::Forward { port, packet, .. }] => {
                assert_eq!(*port, PortNo(2));
                assert_eq!(pool.get(*packet).unwrap(), &pkt);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(sw.buffer().occupancy(), 0);
        assert_eq!(sw.stats().slowpath_forwards.get(), 1);
    }

    #[test]
    fn packet_out_with_data_crosses_bus_and_forwards() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::NoBuffer);
        let pkt = udp(3);
        let outs = sw.handle_controller_msg(
            Nanos::ZERO,
            OfpMessage::PacketOut(PacketOut {
                buffer_id: BufferId::NO_BUFFER,
                in_port: PortNo(1),
                actions: vec![Action::output(PortNo(2))],
                data: pkt.encode(),
            }),
            5,
            &mut pool,
        );
        match &outs[..] {
            [SwitchOutput::Forward {
                at, port, packet, ..
            }] => {
                assert_eq!(*port, PortNo(2));
                assert_eq!(pool.get(*packet).unwrap(), &pkt);
                assert!(*at > Nanos::ZERO);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn packet_out_flood_replicates_to_other_ports() {
        let mut pool = PacketPool::new();
        let mut sw = Switch::new(SwitchConfig {
            data_ports: 4,
            ..SwitchConfig::default()
        });
        let pkt = udp(3);
        let outs = sw.handle_controller_msg(
            Nanos::ZERO,
            OfpMessage::PacketOut(PacketOut {
                buffer_id: BufferId::NO_BUFFER,
                in_port: PortNo(1),
                actions: vec![Action::output(PortNo::FLOOD)],
                data: pkt.encode(),
            }),
            5,
            &mut pool,
        );
        let ports: Vec<PortNo> = outs
            .iter()
            .filter_map(|o| match o {
                SwitchOutput::Forward { port, .. } => Some(*port),
                _ => None,
            })
            .collect();
        assert_eq!(ports, vec![PortNo(2), PortNo(3), PortNo(4)]);
    }

    #[test]
    fn flow_granularity_single_request_and_bulk_release() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::FlowGranularity {
            capacity: 256,
            timeout: Nanos::from_millis(50),
        });
        let pkt = udp(9);
        let outs = sw.handle_frame(Nanos::ZERO, PortNo(1), pool.insert(pkt.clone()), &mut pool);
        let (pin, _, _) = first_pkt_in(&outs);
        let id = pin.buffer_id;
        // Four more packets of the same flow: silent.
        for i in 1..5u64 {
            let outs = sw.handle_frame(
                Nanos::from_micros(i * 10),
                PortNo(1),
                pool.insert(pkt.clone()),
                &mut pool,
            );
            assert!(outs.is_empty(), "subsequent packets must be silent");
        }
        assert_eq!(sw.stats().pkt_in_sent.get(), 1);
        assert_eq!(sw.buffer().occupancy(), 5);
        // One packet_out drains all five.
        let outs = sw.handle_controller_msg(
            Nanos::from_millis(1),
            OfpMessage::PacketOut(PacketOut {
                buffer_id: id,
                in_port: PortNo(1),
                actions: vec![Action::output(PortNo(2))],
                data: vec![],
            }),
            5,
            &mut pool,
        );
        let forwards = outs
            .iter()
            .filter(|o| matches!(o, SwitchOutput::Forward { .. }))
            .count();
        assert_eq!(forwards, 5);
        // Forward times are non-decreasing (released one by one).
        let times: Vec<Nanos> = outs
            .iter()
            .filter_map(|o| match o {
                SwitchOutput::Forward { at, .. } => Some(*at),
                _ => None,
            })
            .collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
        assert_eq!(sw.buffer().occupancy(), 0);
    }

    #[test]
    fn buffer_exhaustion_falls_back_to_full_pkt_in() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::PacketGranularity { capacity: 2 });
        for i in 0..3u16 {
            sw.handle_frame(
                Nanos::from_micros(u64::from(i)),
                PortNo(1),
                pool.insert(udp(i)),
                &mut pool,
            );
        }
        assert_eq!(sw.stats().pkt_in_sent.get(), 3);
        // The third pkt_in carried the full kilobyte.
        assert_eq!(sw.stats().pkt_in_bytes.get(), 128 + 128 + 1000);
    }

    #[test]
    fn timer_rerequests_unanswered_flows() {
        let mut pool = PacketPool::new();
        let timeout = Nanos::from_millis(10);
        let mut sw = switch_with(BufferChoice::FlowGranularity {
            capacity: 16,
            timeout,
        });
        sw.handle_frame(Nanos::ZERO, PortNo(1), pool.insert(udp(1)), &mut pool);
        assert_eq!(sw.next_timer(), Some(timeout));
        let outs = sw.on_timer(timeout, &mut pool);
        assert_eq!(outs.len(), 1);
        let (pin, _, _) = first_pkt_in(&outs);
        assert!(pin.buffer_id.is_buffered());
        assert_eq!(sw.stats().pkt_in_sent.get(), 2);
    }

    #[test]
    fn idle_rule_expiry_notifies_when_requested() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::NoBuffer);
        let pkt = udp(1);
        let mut fm = match flow_mod_for(&pkt, PortNo(1), PortNo(2)) {
            OfpMessage::FlowMod(fm) => fm,
            _ => unreachable!(),
        };
        fm.flags = msg::OFPFF_SEND_FLOW_REM;
        sw.handle_controller_msg(Nanos::ZERO, OfpMessage::FlowMod(fm), 1, &mut pool);
        let expiry = sw.next_timer().expect("rule has idle timeout");
        let outs = sw.on_timer(expiry, &mut pool);
        assert_eq!(outs.len(), 1);
        assert!(matches!(
            outs[0],
            SwitchOutput::ToController {
                msg: OfpMessage::FlowRemoved(_),
                ..
            }
        ));
        assert_eq!(sw.table().len(), 0);
    }

    #[test]
    fn echo_features_config_barrier_replies() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::PacketGranularity { capacity: 256 });
        let outs =
            sw.handle_controller_msg(Nanos::ZERO, OfpMessage::EchoRequest(vec![1]), 3, &mut pool);
        assert!(matches!(
            &outs[0],
            SwitchOutput::ToController { xid: 3, msg: OfpMessage::EchoReply(d), .. } if d == &vec![1]
        ));
        let outs = sw.handle_controller_msg(Nanos::ZERO, OfpMessage::FeaturesRequest, 4, &mut pool);
        match &outs[0] {
            SwitchOutput::ToController {
                msg: OfpMessage::FeaturesReply(fr),
                ..
            } => {
                assert_eq!(fr.n_buffers, 256);
                assert_eq!(fr.ports.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        let outs =
            sw.handle_controller_msg(Nanos::ZERO, OfpMessage::GetConfigRequest, 5, &mut pool);
        assert!(matches!(
            outs[0],
            SwitchOutput::ToController {
                msg: OfpMessage::GetConfigReply(_),
                ..
            }
        ));
        let outs = sw.handle_controller_msg(Nanos::ZERO, OfpMessage::BarrierRequest, 6, &mut pool);
        assert!(matches!(
            outs[0],
            SwitchOutput::ToController {
                msg: OfpMessage::BarrierReply,
                ..
            }
        ));
        let outs = sw.handle_controller_msg(Nanos::ZERO, OfpMessage::Hello, 7, &mut pool);
        assert!(matches!(
            outs[0],
            SwitchOutput::ToController {
                msg: OfpMessage::Hello,
                ..
            }
        ));
    }

    #[test]
    fn set_config_changes_miss_send_len() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::PacketGranularity { capacity: 16 });
        sw.handle_controller_msg(
            Nanos::ZERO,
            OfpMessage::SetConfig(msg::SwitchConfig {
                flags: 0,
                miss_send_len: 64,
            }),
            1,
            &mut pool,
        );
        assert_eq!(sw.miss_send_len(), 64);
        let outs = sw.handle_frame(
            Nanos::from_millis(1),
            PortNo(1),
            pool.insert(udp(1)),
            &mut pool,
        );
        let (pin, _, _) = first_pkt_in(&outs);
        assert_eq!(pin.data.len(), 64);
    }

    #[test]
    fn stats_requests_are_answered() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::NoBuffer);
        let pkt = udp(1);
        sw.handle_controller_msg(
            Nanos::ZERO,
            flow_mod_for(&pkt, PortNo(1), PortNo(2)),
            1,
            &mut pool,
        );
        let outs = sw.handle_controller_msg(
            Nanos::from_millis(1),
            OfpMessage::StatsRequest(StatsRequest::Aggregate {
                match_fields: Match::any(),
                table_id: 0xff,
                out_port: PortNo::NONE,
            }),
            2,
            &mut pool,
        );
        match &outs[0] {
            SwitchOutput::ToController {
                msg: OfpMessage::StatsReply(StatsReply::Aggregate { flow_count, .. }),
                ..
            } => assert_eq!(*flow_count, 1),
            other => panic!("{other:?}"),
        }
        let outs = sw.handle_controller_msg(
            Nanos::from_millis(1),
            OfpMessage::StatsRequest(StatsRequest::Flow {
                match_fields: Match::any(),
                table_id: 0xff,
                out_port: PortNo::NONE,
            }),
            3,
            &mut pool,
        );
        match &outs[0] {
            SwitchOutput::ToController {
                msg: OfpMessage::StatsReply(StatsReply::Flow(entries)),
                ..
            } => assert_eq!(entries.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn queue_config_request_describes_egress_queues() {
        let mut pool = PacketPool::new();
        let mut sw = Switch::new(SwitchConfig {
            egress_queue_rates: &[200, 800],
            ..SwitchConfig::default()
        });
        let outs = sw.handle_controller_msg(
            Nanos::ZERO,
            OfpMessage::QueueGetConfigRequest(PortNo(2)),
            8,
            &mut pool,
        );
        match &outs[0] {
            SwitchOutput::ToController {
                msg: OfpMessage::QueueGetConfigReply { port, queues },
                ..
            } => {
                assert_eq!(*port, PortNo(2));
                assert_eq!(queues.len(), 2);
                assert_eq!(queues[0].min_rate_tenths_percent, 200);
                assert_eq!(queues[1].queue_id, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn port_mod_is_acknowledged_silently() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::NoBuffer);
        let outs = sw.handle_controller_msg(
            Nanos::ZERO,
            OfpMessage::PortMod(msg::PortMod {
                port_no: PortNo(1),
                hw_addr: sdnbuf_net::MacAddr::from_host_index(1),
                config: 1,
                mask: 1,
                advertise: 0,
            }),
            9,
            &mut pool,
        );
        assert!(outs.is_empty());
    }

    #[test]
    fn enqueue_rule_forwards_with_queue_tag() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::NoBuffer);
        let pkt = udp(4);
        let fm = OfpMessage::FlowMod(FlowMod {
            match_fields: Match::exact_from_packet(PortNo(1), &pkt),
            cookie: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 100,
            buffer_id: BufferId::NO_BUFFER,
            out_port: PortNo::NONE,
            flags: 0,
            actions: vec![Action::Enqueue {
                port: PortNo(2),
                queue_id: 1,
            }],
        });
        sw.handle_controller_msg(Nanos::ZERO, fm, 1, &mut pool);
        let outs = sw.handle_frame(
            Nanos::from_millis(1),
            PortNo(1),
            pool.insert(pkt),
            &mut pool,
        );
        match &outs[..] {
            [SwitchOutput::Forward { port, queue, .. }] => {
                assert_eq!(*port, PortNo(2));
                assert_eq!(*queue, Some(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn desc_table_and_port_stats_are_answered() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::PacketGranularity { capacity: 256 });
        let pkt = udp(1);
        sw.handle_controller_msg(
            Nanos::ZERO,
            flow_mod_for(&pkt, PortNo(1), PortNo(2)),
            1,
            &mut pool,
        );
        sw.handle_frame(
            Nanos::from_millis(1),
            PortNo(1),
            pool.insert(pkt.clone()),
            &mut pool,
        );
        sw.handle_frame(
            Nanos::from_millis(2),
            PortNo(1),
            pool.insert(pkt.clone()),
            &mut pool,
        );
        let mut ask = |sw: &mut Switch, req| {
            let outs = sw.handle_controller_msg(
                Nanos::from_millis(3),
                OfpMessage::StatsRequest(req),
                9,
                &mut pool,
            );
            match outs.into_iter().next() {
                Some(SwitchOutput::ToController {
                    msg: OfpMessage::StatsReply(reply),
                    ..
                }) => reply,
                other => panic!("{other:?}"),
            }
        };
        match ask(&mut sw, StatsRequest::Desc) {
            StatsReply::Desc(d) => {
                assert!(d.sw_desc.contains("packet-granularity"));
            }
            other => panic!("{other:?}"),
        }
        match ask(&mut sw, StatsRequest::Table) {
            StatsReply::Table(entries) => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].active_count, 1);
                assert_eq!(entries[0].lookup_count, 2);
                assert_eq!(entries[0].matched_count, 2);
                assert_eq!(entries[0].max_entries, 4096);
            }
            other => panic!("{other:?}"),
        }
        match ask(
            &mut sw,
            StatsRequest::Port {
                port_no: PortNo::NONE,
            },
        ) {
            StatsReply::Port(entries) => {
                assert_eq!(entries.len(), 2, "{entries:?}"); // rx on 1, tx on 2
                let p1 = entries.iter().find(|e| e.port_no == PortNo(1)).unwrap();
                assert_eq!(p1.rx_packets, 2);
                assert_eq!(p1.rx_bytes, 2000);
                let p2 = entries.iter().find(|e| e.port_no == PortNo(2)).unwrap();
                assert_eq!(p2.tx_packets, 2);
                assert_eq!(p2.tx_bytes, 2000);
            }
            other => panic!("{other:?}"),
        }
        // A specific port filters.
        match ask(&mut sw, StatsRequest::Port { port_no: PortNo(1) }) {
            StatsReply::Port(entries) => assert_eq!(entries.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn vendor_configure_accepted_only_for_flow_granularity() {
        let mut pool = PacketPool::new();
        let mut fg = switch_with(BufferChoice::FlowGranularity {
            capacity: 16,
            timeout: Nanos::from_millis(50),
        });
        let cfg = OfpMessage::from(FlowBufferExt::Configure {
            enabled: true,
            timeout_ms: 20,
        });
        assert!(fg
            .handle_controller_msg(Nanos::ZERO, cfg.clone(), 1, &mut pool)
            .is_empty());
        let mut pg = switch_with(BufferChoice::PacketGranularity { capacity: 16 });
        let outs = pg.handle_controller_msg(Nanos::ZERO, cfg, 1, &mut pool);
        assert!(matches!(
            outs[0],
            SwitchOutput::ToController {
                msg: OfpMessage::Error(_),
                ..
            }
        ));
    }

    #[test]
    fn unexpected_message_gets_error_reply() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::NoBuffer);
        let outs = sw.handle_controller_msg(Nanos::ZERO, OfpMessage::BarrierReply, 1, &mut pool);
        assert!(matches!(
            outs[0],
            SwitchOutput::ToController {
                msg: OfpMessage::Error(_),
                ..
            }
        ));
    }

    #[test]
    fn drop_rule_drops() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::NoBuffer);
        let pkt = udp(1);
        let fm = OfpMessage::FlowMod(FlowMod {
            match_fields: Match::exact_from_packet(PortNo(1), &pkt),
            cookie: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 100,
            buffer_id: BufferId::NO_BUFFER,
            out_port: PortNo::NONE,
            flags: 0,
            actions: vec![], // drop
        });
        sw.handle_controller_msg(Nanos::ZERO, fm, 1, &mut pool);
        let outs = sw.handle_frame(
            Nanos::from_millis(1),
            PortNo(1),
            pool.insert(pkt),
            &mut pool,
        );
        assert!(matches!(outs[0], SwitchOutput::Drop { .. }));
        assert_eq!(sw.stats().drops.get(), 1);
    }

    #[test]
    fn degraded_mode_sheds_probes_and_recovers() {
        let mut pool = PacketPool::new();
        use sdnbuf_switchbuf::RetryPolicy;
        let timeout = Nanos::from_millis(10);
        let mut sw = Switch::new(SwitchConfig {
            buffer: BufferChoice::FlowGranularity {
                capacity: 16,
                timeout,
            },
            retry: RetryPolicy {
                budget: 1,
                ..RetryPolicy::fixed()
            },
            degraded_threshold: 2,
            degraded_probe_interval: Nanos::from_millis(5),
            ..SwitchConfig::default()
        });
        // Two flows announced; the controller never answers.
        sw.handle_frame(Nanos::ZERO, PortNo(1), pool.insert(udp(1)), &mut pool);
        sw.handle_frame(Nanos::ZERO, PortNo(1), pool.insert(udp(2)), &mut pool);
        // t=10ms: both spend their single retry.
        let outs = sw.on_timer(Nanos::from_millis(10), &mut pool);
        assert_eq!(outs.len(), 2);
        // t=20ms: both give up (drained as full packet_ins), tripping the
        // threshold of 2 consecutive give-ups.
        let outs = sw.on_timer(Nanos::from_millis(20), &mut pool);
        assert!(sw.is_degraded());
        assert_eq!(sw.stats().degraded_entries.get(), 1);
        assert_eq!(sw.buffer().occupancy(), 0, "give-up frees the units");
        let drains = outs
            .iter()
            .filter(|o| {
                matches!(o, SwitchOutput::ToController { msg: OfpMessage::PacketIn(pin), .. }
                    if pin.buffer_id == BufferId::NO_BUFFER)
            })
            .count();
        assert_eq!(drains, 2, "drain action re-sends full packet_ins");
        // A fresh miss while degraded is shed, arming the probe timer.
        let outs = sw.handle_frame(
            Nanos::from_millis(21),
            PortNo(1),
            pool.insert(udp(3)),
            &mut pool,
        );
        assert!(matches!(outs[0], SwitchOutput::Drop { .. }));
        assert_eq!(sw.stats().degraded_sheds.get(), 1);
        // The probe timer was armed on entry (20ms + 5ms interval).
        assert_eq!(sw.next_timer(), Some(Nanos::from_millis(25)));
        // The probe window opens; the next miss is admitted normally.
        assert!(sw.on_timer(Nanos::from_millis(25), &mut pool).is_empty());
        let outs = sw.handle_frame(
            Nanos::from_millis(27),
            PortNo(1),
            pool.insert(udp(4)),
            &mut pool,
        );
        let (pin, _, _) = first_pkt_in(&outs);
        let probe_id = pin.buffer_id;
        assert!(probe_id.is_buffered());
        // The controller answers the probe: clean recovery.
        sw.handle_controller_msg(
            Nanos::from_millis(28),
            OfpMessage::PacketOut(PacketOut {
                buffer_id: probe_id,
                in_port: PortNo(1),
                actions: vec![Action::output(PortNo(2))],
                data: vec![],
            }),
            9,
            &mut pool,
        );
        assert!(!sw.is_degraded());
        assert_eq!(sw.stats().degraded_exits.get(), 1);
        // Fresh misses flow again.
        let outs = sw.handle_frame(
            Nanos::from_millis(30),
            PortNo(1),
            pool.insert(udp(5)),
            &mut pool,
        );
        assert!(matches!(outs[0], SwitchOutput::ToController { .. }));
    }

    #[test]
    fn buffer_ttl_drops_stranded_entries_at_the_switch() {
        let mut pool = PacketPool::new();
        let mut sw = Switch::new(SwitchConfig {
            buffer: BufferChoice::PacketGranularity { capacity: 16 },
            buffer_ttl: Nanos::from_millis(40),
            ..SwitchConfig::default()
        });
        sw.handle_frame(Nanos::ZERO, PortNo(1), pool.insert(udp(1)), &mut pool);
        assert_eq!(sw.buffer().occupancy(), 1);
        assert_eq!(sw.next_timer(), Some(Nanos::from_millis(40)));
        let outs = sw.on_timer(Nanos::from_millis(40), &mut pool);
        assert!(matches!(outs[..], [SwitchOutput::Drop { packet: Some(_) }]));
        assert_eq!(sw.buffer().occupancy(), 0, "the stranded unit is freed");
        assert_eq!(sw.buffer().stats().expired, 1);
    }

    #[test]
    fn re_handshake_bumps_epoch_and_reconciles_survivors() {
        let mut pool = PacketPool::new();
        let mut sw = Switch::new(SwitchConfig {
            buffer: BufferChoice::FlowGranularity {
                capacity: 16,
                timeout: Nanos::from_millis(50),
            },
            reconcile_interval: Nanos::from_millis(1),
            ..SwitchConfig::default()
        });
        sw.arm_crash_plane();
        assert_eq!(sw.session_epoch(), 1);
        sw.handle_controller_msg(Nanos::ZERO, OfpMessage::Hello, 1, &mut pool);
        let outs = sw.handle_frame(Nanos::ZERO, PortNo(1), pool.insert(udp(1)), &mut pool);
        let (pin, _, _) = first_pkt_in(&outs);
        let old_id = pin.buffer_id;
        assert_eq!(old_id.epoch(), 1);
        // The controller restarts: second Hello, then SetConfig completes
        // the handshake and triggers the bump + reconcile.
        sw.handle_controller_msg(Nanos::from_millis(10), OfpMessage::Hello, 2, &mut pool);
        assert_eq!(sw.session_epoch(), 1, "bump waits for the SetConfig");
        sw.handle_controller_msg(
            Nanos::from_millis(11),
            OfpMessage::SetConfig(msg::SwitchConfig {
                flags: 0,
                miss_send_len: 128,
            }),
            3,
            &mut pool,
        );
        assert_eq!(sw.session_epoch(), 2);
        assert_eq!(sw.stats().epoch_bumps.get(), 1);
        // The survivor is re-announced one reconcile interval later.
        assert_eq!(sw.next_timer(), Some(Nanos::from_millis(12)));
        let outs = sw.on_timer(Nanos::from_millis(12), &mut pool);
        let (pin, _, _) = first_pkt_in(&outs);
        assert_eq!(pin.buffer_id.epoch(), 2);
        assert_eq!(sw.stats().reconcile_rerequests.get(), 1);
        // A packet_out minted under the dead epoch is rejected...
        let outs = sw.handle_controller_msg(
            Nanos::from_millis(13),
            OfpMessage::PacketOut(PacketOut {
                buffer_id: old_id,
                in_port: PortNo(1),
                actions: vec![Action::output(PortNo(2))],
                data: vec![],
            }),
            4,
            &mut pool,
        );
        assert!(outs.is_empty());
        assert_eq!(sw.buffer().occupancy(), 1);
        assert_eq!(sw.stats().stale_epoch_rejects.get(), 1);
        // ...while the re-announced current-epoch id drains normally.
        let outs = sw.handle_controller_msg(
            Nanos::from_millis(14),
            OfpMessage::PacketOut(PacketOut {
                buffer_id: pin.buffer_id,
                in_port: PortNo(1),
                actions: vec![Action::output(PortNo(2))],
                data: vec![],
            }),
            5,
            &mut pool,
        );
        assert!(matches!(outs[..], [SwitchOutput::Forward { .. }]));
        assert_eq!(sw.buffer().occupancy(), 0);
    }

    #[test]
    fn liveness_detector_sheds_misses_until_the_controller_speaks() {
        let mut pool = PacketPool::new();
        let mut sw = Switch::new(SwitchConfig {
            buffer: BufferChoice::PacketGranularity { capacity: 16 },
            liveness_timeout: Nanos::from_millis(50),
            ..SwitchConfig::default()
        });
        sw.arm_crash_plane();
        sw.handle_controller_msg(Nanos::ZERO, OfpMessage::Hello, 1, &mut pool);
        assert_eq!(sw.next_timer(), Some(Nanos::from_millis(50)));
        sw.on_timer(Nanos::from_millis(50), &mut pool);
        assert!(sw.is_ctrl_suspect());
        assert_eq!(sw.stats().liveness_suspects.get(), 1);
        // Fresh misses are shed while the controller is suspected dead.
        let outs = sw.handle_frame(
            Nanos::from_millis(51),
            PortNo(1),
            pool.insert(udp(1)),
            &mut pool,
        );
        assert!(matches!(outs[0], SwitchOutput::Drop { .. }));
        assert_eq!(sw.stats().suspect_sheds.get(), 1);
        // Any controller message clears the suspicion.
        sw.handle_controller_msg(
            Nanos::from_millis(60),
            OfpMessage::EchoRequest(vec![1]),
            2,
            &mut pool,
        );
        assert!(!sw.is_ctrl_suspect());
        let outs = sw.handle_frame(
            Nanos::from_millis(61),
            PortNo(1),
            pool.insert(udp(2)),
            &mut pool,
        );
        assert!(matches!(outs[0], SwitchOutput::ToController { .. }));
    }

    #[test]
    fn unarmed_switch_ignores_re_handshakes() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::PacketGranularity { capacity: 16 });
        sw.handle_controller_msg(Nanos::ZERO, OfpMessage::Hello, 1, &mut pool);
        sw.handle_controller_msg(Nanos::from_millis(1), OfpMessage::Hello, 2, &mut pool);
        sw.handle_controller_msg(
            Nanos::from_millis(2),
            OfpMessage::SetConfig(msg::SwitchConfig {
                flags: 0,
                miss_send_len: 128,
            }),
            3,
            &mut pool,
        );
        assert_eq!(sw.session_epoch(), 0);
        assert_eq!(sw.stats().epoch_bumps.get(), 0);
    }

    #[test]
    fn cpu_usage_accumulates() {
        let mut pool = PacketPool::new();
        let mut sw = switch_with(BufferChoice::NoBuffer);
        assert_eq!(sw.cpu_percent(Nanos::from_secs(1)), 0.0);
        for i in 0..50u16 {
            sw.handle_frame(
                Nanos::from_micros(u64::from(i) * 100),
                PortNo(1),
                pool.insert(udp(i)),
                &mut pool,
            );
        }
        assert!(sw.cpu_percent(Nanos::from_millis(5)) > 0.0);
    }
}
