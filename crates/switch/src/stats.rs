//! Switch-side measurement counters.

use sdnbuf_metrics::{Counter, Gauge, TimeSeries};
use std::collections::BTreeMap;

/// Per-port traffic counters, the backing data of `OFPST_PORT` replies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PortCounters {
    /// Packets received on the port.
    pub rx_packets: u64,
    /// Packets transmitted out the port.
    pub tx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
}

/// Running statistics kept by the switch model.
///
/// Byte-level control-path load is metered at the link by the testbed; the
/// counters here are the switch's own view, used for invariant checks and
/// for the buffer-utilization figures (via [`SwitchStats::buffer_occupancy`]).
#[derive(Clone, Debug, Default)]
pub struct SwitchStats {
    /// `packet_in` messages sent (including re-requests and fallbacks).
    pub pkt_in_sent: Counter,
    /// `packet_in` payload bytes sent.
    pub pkt_in_bytes: Counter,
    /// `flow_mod` messages executed.
    pub flow_mods: Counter,
    /// `packet_out` messages executed.
    pub pkt_outs: Counter,
    /// Packets forwarded by the fast path (table hits).
    pub fastpath_forwards: Counter,
    /// Packets forwarded out of the buffer (or from `packet_out` data).
    pub slowpath_forwards: Counter,
    /// Packets dropped (empty action list or unroutable `packet_out`).
    pub drops: Counter,
    /// Table misses observed.
    pub table_misses: Counter,
    /// `flow_removed` notifications sent.
    pub flow_removed_sent: Counter,
    /// Times the switch entered degraded mode (consecutive give-ups hit
    /// the configured threshold).
    pub degraded_entries: Counter,
    /// Times the switch recovered from degraded mode.
    pub degraded_exits: Counter,
    /// Table misses shed (neither buffered nor announced) while degraded.
    pub degraded_sheds: Counter,
    /// Session-epoch bumps completed (controller re-handshakes observed
    /// while the crash plane is armed).
    pub epoch_bumps: Counter,
    /// `packet_out`s minted under a dead session epoch and rejected by the
    /// buffer mechanism's epoch guard.
    pub stale_epoch_rejects: Counter,
    /// Times the liveness detector tripped (controller silent past
    /// `liveness_timeout`).
    pub liveness_suspects: Counter,
    /// Fresh misses shed while the controller was suspected dead.
    pub suspect_sheds: Counter,
    /// Surviving buffer entries re-announced by the paced post-restart
    /// reconciliation.
    pub reconcile_rerequests: Counter,
    /// Buffer occupancy over time (units in use) — Figs. 8/13.
    pub buffer_occupancy: Gauge,
    /// Sampled occupancy timeline (one point per buffer operation), for
    /// looking inside a run.
    pub occupancy_series: TimeSeries,
    /// Per-port rx/tx counters (keyed by port number, deterministic
    /// iteration order for stats replies).
    pub ports: BTreeMap<u16, PortCounters>,
}

impl SwitchStats {
    /// Records a received frame on `port`.
    pub fn count_rx(&mut self, port: u16, bytes: usize) {
        let c = self.ports.entry(port).or_default();
        c.rx_packets += 1;
        c.rx_bytes += bytes as u64;
    }

    /// Records a transmitted frame on `port`.
    pub fn count_tx(&mut self, port: u16, bytes: usize) {
        let c = self.ports.entry(port).or_default();
        c.tx_packets += 1;
        c.tx_bytes += bytes as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = SwitchStats::default();
        assert_eq!(s.pkt_in_sent.get(), 0);
        assert_eq!(s.buffer_occupancy.max(), 0.0);
    }
}
