//! Switch configuration and cost model.

use sdnbuf_flowtable::EvictionPolicy;
use sdnbuf_sim::{BitRate, Nanos};
use sdnbuf_switchbuf::RetryPolicy;

/// Which buffer mechanism the switch runs — the single knob every
/// experiment in the paper turns.
///
/// `Hash` so the mechanism can key sweep-result cells (`CellKey` in
/// `sdnbuf-core`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BufferChoice {
    /// OpenFlow default behaviour: no buffering, full packets in every
    /// control message.
    NoBuffer,
    /// The default OpenFlow buffer (Section IV): one unit and one
    /// `packet_in` per miss-match packet.
    PacketGranularity {
        /// Buffer units (16 and 256 in the paper).
        capacity: usize,
    },
    /// The paper's proposed mechanism (Section V): one `packet_in` per
    /// flow, shared `buffer_id`, whole-flow release.
    FlowGranularity {
        /// Buffer units shared across flows.
        capacity: usize,
        /// Algorithm 1 re-request timeout.
        timeout: Nanos,
    },
}

impl BufferChoice {
    /// A short label used in result tables ("no-buffer", "buffer-16", …).
    pub fn label(&self) -> String {
        match self {
            BufferChoice::NoBuffer => "no-buffer".to_owned(),
            BufferChoice::PacketGranularity { capacity } => format!("buffer-{capacity}"),
            BufferChoice::FlowGranularity { capacity, .. } => {
                format!("flow-buffer-{capacity}")
            }
        }
    }

    /// Checks the choice for values the mechanism constructors would panic
    /// on, so misconfigurations are reported before a run starts.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            BufferChoice::NoBuffer => Ok(()),
            BufferChoice::PacketGranularity { capacity }
            | BufferChoice::FlowGranularity { capacity, .. }
                if capacity == 0 =>
            {
                Err("buffer capacity must be positive (use NoBuffer for zero)".to_owned())
            }
            BufferChoice::PacketGranularity { .. } => Ok(()),
            BufferChoice::FlowGranularity { timeout, .. } if timeout == Nanos::ZERO => Err(
                "flow-granularity re-request timeout must be positive (a zero \
                 timeout would re-request on every packet)"
                    .to_owned(),
            ),
            BufferChoice::FlowGranularity { .. } => Ok(()),
        }
    }
}

/// Static configuration and timing-cost model of the switch.
///
/// The cost constants are calibrated against the switch-side latencies
/// reported by He et al. (SOSR'15) — the paper's references \[8\]/\[9\] — and
/// tuned so the reproduction's figures match the paper's *shapes* (see
/// `EXPERIMENTS.md`). All costs are CPU service times; queueing on the
/// shared cores and the ASIC↔CPU bus produces the load-dependent delay
/// growth the paper measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchConfig {
    /// Number of physical data ports (the testbed uses 2).
    pub data_ports: usize,
    /// Management CPU cores (the testbed PCs are quad-core, Table I).
    pub cpu_cores: usize,
    /// ASIC↔CPU bus throughput. Far below PCIe line rate in practice;
    /// He et al. measure effective packet-to-CPU rates in the low hundreds
    /// of Mbps on hardware switches.
    pub bus_rate: BitRate,
    /// Bytes of a buffered miss-match packet copied into `packet_in`.
    pub miss_send_len: u16,
    /// Flow table capacity.
    pub flow_table_capacity: usize,
    /// Flow table eviction policy.
    pub eviction: EvictionPolicy,
    /// Which buffer mechanism to run.
    pub buffer: BufferChoice,
    /// Datapath CPU time to forward one table-hit packet (software switch
    /// fast path: lookup + copy).
    pub cost_forward: Nanos,
    /// Base CPU time to assemble a `packet_in` (headers, socket write).
    pub cost_pkt_in_base: Nanos,
    /// Additional CPU time per byte of `packet_in`/`packet_out` payload
    /// handled (copying, checksums, serialization).
    pub cost_per_payload_byte: Nanos,
    /// CPU time to park one packet in a buffer unit (the paper's
    /// `T_buffer`).
    pub cost_buffer_store: Nanos,
    /// CPU time to release one buffered packet on `packet_out` (the
    /// paper's `T_release`).
    pub cost_buffer_release: Nanos,
    /// CPU time to parse a `packet_out` and start executing its actions.
    pub cost_pkt_out_base: Nanos,
    /// CPU time to parse a `flow_mod` message.
    pub cost_flow_mod: Nanos,
    /// Per-rule service time of the serial rule-install pipeline. OVS's
    /// ofproto layer programs rules at only hundreds to low thousands per
    /// second (He et al., SOSR'15), so under a burst of reactive installs
    /// the effect time `t_e` of later rules slips — the mechanism behind
    /// the paper's observation that subsequent packets of a flow keep
    /// missing. Zero makes rules effective as soon as the parse finishes.
    pub cost_rule_install: Nanos,
    /// CPU time for trivial control messages (echo, barrier, config).
    pub cost_control_misc: Nanos,
    /// Advertised egress queues (guaranteed min rates in 1/10 % of the
    /// port speed), answered in `queue_get_config_reply`. Empty = no QoS
    /// queues configured.
    pub egress_queue_rates: &'static [u16],
    /// How long a packet-granularity buffer unit stays unavailable after
    /// its `packet_out` (Open vSwitch reclaims buffers lazily; the paper's
    /// Section V.B.5 observes the default mechanism's units are "released
    /// slowly"). Zero reclaims immediately. The flow-granularity mechanism
    /// always releases eagerly — that is its design.
    pub buffer_free_lag: Nanos,
    /// How flow-granularity re-requests are paced and bounded. The default
    /// ([`RetryPolicy::fixed`]) is the paper's fixed timer: retry every
    /// `timeout`, forever.
    pub retry: RetryPolicy,
    /// Per-entry buffer lifetime for both buffering mechanisms;
    /// [`Nanos::ZERO`] (the default) disables expiry. A nonzero TTL
    /// garbage-collects entries stranded by lost `packet_out`s.
    pub buffer_ttl: Nanos,
    /// Consecutive flow give-ups that trip the switch into degraded mode
    /// (stop announcing fresh misses, probe periodically). `0` (the
    /// default) disables the state machine.
    pub degraded_threshold: u32,
    /// While degraded, how often one fresh miss is let through as a probe
    /// of controller liveness.
    pub degraded_probe_interval: Nanos,
    /// How long the switch tolerates total controller silence before it
    /// suspects the session is dead and starts shedding fresh misses
    /// (they would be announced into a void). [`Nanos::ZERO`] (the
    /// default) disables the detector; it only runs when the crash plane
    /// is armed ([`crate::Switch::arm_crash_plane`]).
    pub liveness_timeout: Nanos,
    /// Pacing of post-restart buffer reconciliation: after an epoch bump
    /// the surviving entries are re-announced **one per interval**, so a
    /// freshly restarted controller is not hit by a re-request storm.
    pub reconcile_interval: Nanos,
}

impl Default for SwitchConfig {
    /// The Table I testbed switch: a quad-core PC running Open vSwitch with
    /// two 100 Mbps data ports, default `miss_send_len` of 128 bytes and no
    /// buffer (OpenFlow's out-of-the-box configuration).
    fn default() -> Self {
        SwitchConfig {
            data_ports: 2,
            cpu_cores: 4,
            bus_rate: BitRate::from_mbps(240),
            miss_send_len: 128,
            flow_table_capacity: 4096,
            eviction: EvictionPolicy::RejectNew,
            buffer: BufferChoice::NoBuffer,
            cost_forward: Nanos::from_micros(55),
            cost_pkt_in_base: Nanos::from_micros(25),
            cost_per_payload_byte: Nanos::from_nanos(60),
            cost_buffer_store: Nanos::from_micros(6),
            cost_buffer_release: Nanos::from_micros(4),
            cost_pkt_out_base: Nanos::from_micros(20),
            cost_flow_mod: Nanos::from_micros(30),
            cost_rule_install: Nanos::ZERO,
            cost_control_misc: Nanos::from_micros(5),
            egress_queue_rates: &[],
            buffer_free_lag: Nanos::ZERO,
            retry: RetryPolicy::fixed(),
            buffer_ttl: Nanos::ZERO,
            degraded_threshold: 0,
            degraded_probe_interval: Nanos::from_millis(10),
            liveness_timeout: Nanos::ZERO,
            reconcile_interval: Nanos::from_millis(1),
        }
    }
}

impl SwitchConfig {
    /// CPU service time for handling `payload_bytes` of message payload on
    /// top of a base cost.
    pub fn payload_cost(&self, payload_bytes: usize) -> Nanos {
        self.cost_per_payload_byte * payload_bytes as u64
    }

    /// Checks the configuration for values that would panic or wedge the
    /// model at runtime.
    pub fn validate(&self) -> Result<(), String> {
        if self.data_ports == 0 {
            return Err("switch needs at least one data port".to_owned());
        }
        if self.cpu_cores == 0 {
            return Err("switch needs at least one CPU core".to_owned());
        }
        if self.flow_table_capacity == 0 {
            return Err("flow table capacity must be positive".to_owned());
        }
        if self.degraded_threshold > 0 && self.degraded_probe_interval == Nanos::ZERO {
            return Err(
                "degraded-mode probe interval must be positive when the threshold is set"
                    .to_owned(),
            );
        }
        if self.reconcile_interval == Nanos::ZERO {
            return Err(
                "reconcile interval must be positive (it paces the post-restart \
                 re-request storm)"
                    .to_owned(),
            );
        }
        self.retry.validate()?;
        self.buffer.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_testbed() {
        let c = SwitchConfig::default();
        assert_eq!(c.data_ports, 2);
        assert_eq!(c.cpu_cores, 4);
        assert_eq!(c.miss_send_len, 128);
        assert_eq!(c.buffer, BufferChoice::NoBuffer);
    }

    #[test]
    fn labels() {
        assert_eq!(BufferChoice::NoBuffer.label(), "no-buffer");
        assert_eq!(
            BufferChoice::PacketGranularity { capacity: 16 }.label(),
            "buffer-16"
        );
        assert_eq!(
            BufferChoice::FlowGranularity {
                capacity: 256,
                timeout: Nanos::from_millis(50)
            }
            .label(),
            "flow-buffer-256"
        );
    }

    #[test]
    fn payload_cost_scales_linearly() {
        let c = SwitchConfig::default();
        assert_eq!(c.payload_cost(0), Nanos::ZERO);
        assert_eq!(c.payload_cost(1000), c.cost_per_payload_byte * 1000);
    }

    #[test]
    fn validate_accepts_default_and_rejects_zeros() {
        assert!(SwitchConfig::default().validate().is_ok());
        let c = SwitchConfig {
            cpu_cores: 0,
            ..SwitchConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SwitchConfig {
            buffer: BufferChoice::PacketGranularity { capacity: 0 },
            ..SwitchConfig::default()
        };
        assert!(c.validate().is_err());
        let mut c = SwitchConfig {
            buffer: BufferChoice::FlowGranularity {
                capacity: 64,
                timeout: Nanos::ZERO,
            },
            ..SwitchConfig::default()
        };
        assert!(c.validate().is_err());
        c.buffer = BufferChoice::FlowGranularity {
            capacity: 64,
            timeout: Nanos::from_millis(20),
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_covers_recovery_knobs() {
        let c = SwitchConfig {
            retry: RetryPolicy {
                multiplier: 0,
                ..RetryPolicy::fixed()
            },
            ..SwitchConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SwitchConfig {
            degraded_threshold: 3,
            degraded_probe_interval: Nanos::ZERO,
            ..SwitchConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SwitchConfig {
            retry: RetryPolicy::backoff(Nanos::from_millis(200), 5),
            buffer_ttl: Nanos::from_millis(500),
            degraded_threshold: 3,
            ..SwitchConfig::default()
        };
        assert!(c.validate().is_ok());
    }
}
