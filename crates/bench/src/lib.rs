//! Shared driver code for the figure-reproduction binaries.
//!
//! Every `fig*` binary runs the appropriate paper sweep (Section IV or V),
//! renders the figure's data series as an aligned text table on stdout, and
//! writes the same series as TSV under `results/`.
//!
//! Repetitions default to 5 for quick runs; set `SDNBUF_REPS=20` for the
//! paper's full procedure (20 repetitions per rate). `SDNBUF_RATES=coarse`
//! halves the rate grid for smoke runs. Sweeps run on the parallel
//! executor; `SDNBUF_THREADS=serial|auto|N` picks the worker count
//! (default: one per CPU — results are identical either way).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sdnbuf_core::{Parallelism, RateSweep, StderrProgress, SweepResult};
use sdnbuf_metrics::Table;
use std::path::PathBuf;

/// Repetitions per (mechanism, rate) cell: `SDNBUF_REPS`, default 5.
pub fn reps_from_env() -> usize {
    std::env::var("SDNBUF_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(5)
}

/// Rate grid: the paper's 5–100 Mbps in 5 Mbps steps, or 10 Mbps steps
/// when `SDNBUF_RATES=coarse`.
pub fn rates_from_env() -> Vec<u64> {
    match std::env::var("SDNBUF_RATES").as_deref() {
        Ok("coarse") => (1..=10).map(|i| i * 10).collect(),
        _ => RateSweep::paper_rates(),
    }
}

/// Runs `sweep` on the executor with the env-selected rate grid and
/// worker count, reporting progress on stderr.
pub fn run_sweep(mut sweep: RateSweep, name: &str) -> SweepResult {
    sweep.rates_mbps = rates_from_env();
    let parallelism = Parallelism::from_env();
    let cells = sweep.buffers.len() * sweep.rates_mbps.len();
    eprintln!(
        "[{name}] running {} cells x {} repetitions on {} worker(s) ...",
        cells,
        sweep.repetitions,
        parallelism.worker_count(),
    );
    sweep.run_with(parallelism, &StderrProgress::new(name))
}

/// Runs the Section IV sweep (no-buffer / buffer-16 / buffer-256, 1000
/// single-packet flows).
pub fn section_iv(reps: usize) -> SweepResult {
    run_sweep(RateSweep::paper_section_iv(reps), "section-iv")
}

/// Runs the Section V sweep (packet- vs flow-granularity, 50×20 packets).
pub fn section_v(reps: usize) -> SweepResult {
    run_sweep(RateSweep::paper_section_v(reps), "section-v")
}

/// Directory the TSVs go to: `results/` beside the workspace root.
pub fn results_dir() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.push("results");
    dir
}

/// Prints a figure table and writes it to `results/<name>.tsv`.
pub fn emit(name: &str, title: &str, table: &Table) {
    println!("== {title} ==");
    println!("{table}");
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.tsv"));
    match std::fs::write(&path, table.to_tsv()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reps_is_positive() {
        assert!(reps_from_env() > 0);
    }

    #[test]
    fn paper_rate_grid_is_5_to_100() {
        let rates = RateSweep::paper_rates();
        assert_eq!(rates.first(), Some(&5));
        assert_eq!(rates.last(), Some(&100));
        assert_eq!(rates.len(), 20);
    }

    #[test]
    fn results_dir_is_under_workspace() {
        assert!(results_dir().ends_with("results"));
    }
}
