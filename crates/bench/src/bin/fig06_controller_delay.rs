//! Reproduces Fig. 6: Controller Delay under Different Sending Rates of the paper.

fn main() {
    let sweep = sdnbuf_bench::section_iv(sdnbuf_bench::reps_from_env());
    sdnbuf_bench::emit(
        "fig06_controller_delay",
        "Fig. 6: Controller Delay under Different Sending Rates",
        &sdnbuf_core::figures::fig_controller_delay(&sweep),
    );
}
