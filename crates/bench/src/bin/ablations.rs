//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **`miss_send_len` sweep** — how many header bytes should a buffered
//!    `packet_in` carry? (The paper uses the OpenFlow default of 128.)
//! 2. **Buffer-capacity sweep** — between the paper's 16 and 256, where
//!    does exhaustion stop hurting? (Section IV.G concludes ~80 units
//!    suffice for a 100 Mbps port.)
//! 3. **Re-request timeout sensitivity** — Algorithm 1's timeout under a
//!    lossy control channel: too short re-requests needlessly, too long
//!    strands buffered packets.
//! 4. **Reactive rules vs hub** — how much of the win comes from rule
//!    installation at all: a hub controller floods every miss and installs
//!    nothing, so every packet of every flow stays a miss forever.
//! 5. **Arrival process** — the paper's CBR pktgen traffic vs Poisson
//!    arrivals of the same mean rate: burstiness stresses the buffer.

use sdnbuf_core::{
    BufferMode, Executor, Experiment, ExperimentConfig, Metric, Parallelism, RunResult,
    TestbedConfig, WorkloadKind,
};
use sdnbuf_metrics::Table;
use sdnbuf_sim::{BitRate, FaultPlan, Nanos};

/// Runs `reps` seeded repetitions of `make` on the executor and returns
/// every result; metrics are then read out with [`RunResult::get`].
fn runs_of(make: impl Fn(u64) -> ExperimentConfig + Sync, reps: u64) -> Vec<RunResult> {
    let (runs, _) = Executor::new(Parallelism::from_env()).run(
        reps as usize,
        |rep| Experiment::new(make(rep as u64)).run(),
        |_, _, _| {},
    );
    runs
}

fn mean(runs: &[RunResult], metric: Metric) -> f64 {
    RunResult::mean_over(runs, |r| r.get(metric))
}

fn ablate_miss_send_len(reps: u64) {
    let mut t = Table::new(vec![
        "miss_send_len",
        "ctrl_load_mbps",
        "controller_delay_ms",
        "parse_failures_possible",
    ]);
    for msl in [42u16, 64, 128, 256, 512] {
        let runs = runs_of(
            |rep| {
                let mut testbed = TestbedConfig::default();
                testbed.switch.miss_send_len = msl;
                ExperimentConfig {
                    buffer: BufferMode::PacketGranularity { capacity: 256 },
                    workload: WorkloadKind::paper_section_iv(),
                    sending_rate: BitRate::from_mbps(60),
                    seed: 100 + rep,
                    testbed,
                    ..ExperimentConfig::default()
                }
            },
            reps,
        );
        // Below 42 bytes the UDP header would be cut off and the reactive
        // rule could not match the transport ports.
        let risky = if msl < 42 { "yes" } else { "no" };
        t.row(vec![
            msl.to_string(),
            format!("{:.3}", mean(&runs, Metric::ControlPathLoadUp)),
            format!("{:.3}", mean(&runs, Metric::ControllerDelay)),
            risky.to_owned(),
        ]);
    }
    sdnbuf_bench::emit(
        "ablation_miss_send_len",
        "Ablation: miss_send_len at 60 Mbps (buffer-256)",
        &t,
    );
}

fn ablate_buffer_capacity(reps: u64) {
    let mut t = Table::new(vec![
        "capacity",
        "fallbacks",
        "setup_delay_ms",
        "peak_units",
    ]);
    for cap in [8usize, 16, 32, 64, 128, 256] {
        let runs = runs_of(
            |rep| ExperimentConfig {
                buffer: BufferMode::PacketGranularity { capacity: cap },
                workload: WorkloadKind::paper_section_iv(),
                sending_rate: BitRate::from_mbps(80),
                seed: 200 + rep,
                ..ExperimentConfig::default()
            },
            reps,
        );
        t.row(vec![
            cap.to_string(),
            format!("{:.1}", mean(&runs, Metric::BufferFallbacks)),
            format!("{:.3}", mean(&runs, Metric::FlowSetupDelay)),
            format!("{:.1}", mean(&runs, Metric::BufferPeakOccupancy)),
        ]);
    }
    sdnbuf_bench::emit(
        "ablation_buffer_capacity",
        "Ablation: buffer capacity at 80 Mbps (packet granularity)",
        &t,
    );
}

fn ablate_rerequest_timeout(reps: u64) {
    let mut t = Table::new(vec![
        "timeout_ms",
        "rerequests",
        "delivered_pct",
        "forwarding_delay_ms",
    ]);
    for timeout_ms in [5u64, 10, 20, 50, 100, 200] {
        let runs = runs_of(
            |rep| {
                // One in 20 control messages is lost: requests do go missing.
                let testbed = TestbedConfig {
                    faults: FaultPlan::every_nth_loss(20),
                    ..TestbedConfig::default()
                };
                ExperimentConfig {
                    buffer: BufferMode::FlowGranularity {
                        capacity: 256,
                        timeout: Nanos::from_millis(timeout_ms),
                    },
                    workload: WorkloadKind::paper_section_v(),
                    sending_rate: BitRate::from_mbps(50),
                    seed: 300 + rep,
                    testbed,
                    ..ExperimentConfig::default()
                }
            },
            reps,
        );
        t.row(vec![
            timeout_ms.to_string(),
            format!("{:.1}", mean(&runs, Metric::Rerequests)),
            format!("{:.1}", mean(&runs, Metric::DeliveredPercent)),
            format!("{:.3}", mean(&runs, Metric::FlowForwardingDelay)),
        ]);
    }
    sdnbuf_bench::emit(
        "ablation_rerequest_timeout",
        "Ablation: Algorithm 1 re-request timeout under 5% control loss (50 Mbps)",
        &t,
    );
}

fn ablate_forwarding_mode(reps: u64) {
    use sdnbuf_controller::ForwardingMode;
    let mut t = Table::new(vec![
        "mode",
        "pkt_ins",
        "ctrl_load_mbps",
        "flow_fwd_delay_ms",
    ]);
    for (name, mode) in [
        ("learning", ForwardingMode::Learning),
        ("hub", ForwardingMode::Hub),
    ] {
        let runs = runs_of(
            |rep| {
                let mut testbed = TestbedConfig::default();
                testbed.controller.mode = mode;
                ExperimentConfig {
                    buffer: BufferMode::PacketGranularity { capacity: 256 },
                    workload: WorkloadKind::paper_section_v(),
                    sending_rate: BitRate::from_mbps(50),
                    seed: 400 + rep,
                    testbed,
                    ..ExperimentConfig::default()
                }
            },
            reps,
        );
        t.row(vec![
            name.to_owned(),
            format!("{:.0}", mean(&runs, Metric::PktInCount)),
            format!("{:.3}", mean(&runs, Metric::ControlPathLoadUp)),
            format!("{:.3}", mean(&runs, Metric::FlowForwardingDelay)),
        ]);
    }
    sdnbuf_bench::emit(
        "ablation_forwarding_mode",
        "Ablation: reactive rules vs hub flooding (50 flows x 20 pkts, 50 Mbps)",
        &t,
    );
}

fn ablate_arrival_process(reps: u64) {
    use sdnbuf_workload::ArrivalProcess;
    let mut t = Table::new(vec![
        "arrival",
        "peak_buffer_units",
        "fallbacks",
        "setup_delay_ms",
    ]);
    for (name, arrival) in [
        ("cbr", ArrivalProcess::Cbr),
        ("poisson", ArrivalProcess::Poisson),
    ] {
        // The arrival process lives in the pktgen config, which the
        // experiment builds internally; generate departures explicitly and
        // run the testbed directly, fanned out on the executor.
        let (runs, _) = Executor::new(Parallelism::from_env()).run(
            reps as usize,
            |rep| {
                let cfg = ExperimentConfig {
                    buffer: BufferMode::PacketGranularity { capacity: 64 },
                    workload: WorkloadKind::paper_section_iv(),
                    sending_rate: BitRate::from_mbps(70),
                    seed: 500 + rep as u64,
                    testbed: TestbedConfig::default(),
                    ..ExperimentConfig::default()
                };
                let pktgen = sdnbuf_workload::PktgenConfig {
                    rate: cfg.sending_rate,
                    arrival,
                    ..sdnbuf_workload::PktgenConfig::default()
                };
                let deps = cfg.workload.generate(&pktgen, cfg.seed);
                let mut testbed = sdnbuf_core::Testbed::new(sdnbuf_core::TestbedConfig {
                    switch: sdnbuf_switch::SwitchConfig {
                        buffer: cfg.buffer,
                        ..cfg.testbed.switch
                    },
                    ..cfg.testbed.clone()
                });
                testbed.run(&deps)
            },
            |_, _, _| {},
        );
        t.row(vec![
            name.to_owned(),
            format!("{:.1}", mean(&runs, Metric::BufferPeakOccupancy)),
            format!("{:.1}", mean(&runs, Metric::BufferFallbacks)),
            format!("{:.3}", mean(&runs, Metric::FlowSetupDelay)),
        ]);
    }
    sdnbuf_bench::emit(
        "ablation_arrival_process",
        "Ablation: CBR vs Poisson arrivals (buffer-64, 70 Mbps)",
        &t,
    );
}

fn main() {
    let reps = sdnbuf_bench::reps_from_env() as u64;
    ablate_miss_send_len(reps);
    ablate_buffer_capacity(reps);
    ablate_rerequest_timeout(reps);
    ablate_forwarding_mode(reps);
    ablate_arrival_process(reps);
}
