//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **`miss_send_len` sweep** — how many header bytes should a buffered
//!    `packet_in` carry? (The paper uses the OpenFlow default of 128.)
//! 2. **Buffer-capacity sweep** — between the paper's 16 and 256, where
//!    does exhaustion stop hurting? (Section IV.G concludes ~80 units
//!    suffice for a 100 Mbps port.)
//! 3. **Re-request timeout sensitivity** — Algorithm 1's timeout under a
//!    lossy control channel: too short re-requests needlessly, too long
//!    strands buffered packets.
//! 4. **Reactive rules vs hub** — how much of the win comes from rule
//!    installation at all: a hub controller floods every miss and installs
//!    nothing, so every packet of every flow stays a miss forever.
//! 5. **Arrival process** — the paper's CBR pktgen traffic vs Poisson
//!    arrivals of the same mean rate: burstiness stresses the buffer.

use sdnbuf_core::{BufferMode, Experiment, ExperimentConfig, TestbedConfig, WorkloadKind};
use sdnbuf_metrics::Table;
use sdnbuf_sim::{BitRate, Nanos};

fn mean_of(
    make: impl Fn(u64) -> ExperimentConfig,
    reps: u64,
    metric: impl Fn(&sdnbuf_core::RunResult) -> f64,
) -> f64 {
    let total: f64 = (0..reps)
        .map(|rep| metric(&Experiment::new(make(rep)).run()))
        .sum();
    total / reps as f64
}

fn ablate_miss_send_len(reps: u64) {
    let mut t = Table::new(vec![
        "miss_send_len",
        "ctrl_load_mbps",
        "controller_delay_ms",
        "parse_failures_possible",
    ]);
    for msl in [42u16, 64, 128, 256, 512] {
        let make = |rep: u64| {
            let mut testbed = TestbedConfig::default();
            testbed.switch.miss_send_len = msl;
            ExperimentConfig {
                buffer: BufferMode::PacketGranularity { capacity: 256 },
                workload: WorkloadKind::paper_section_iv(),
                sending_rate: BitRate::from_mbps(60),
                seed: 100 + rep,
                testbed,
                ..ExperimentConfig::default()
            }
        };
        let load = mean_of(make, reps, |r| r.ctrl_load_to_controller_mbps);
        let delay = mean_of(make, reps, |r| r.controller_delay.mean);
        // Below 42 bytes the UDP header would be cut off and the reactive
        // rule could not match the transport ports.
        let risky = if msl < 42 { "yes" } else { "no" };
        t.row(vec![
            msl.to_string(),
            format!("{load:.3}"),
            format!("{delay:.3}"),
            risky.to_owned(),
        ]);
    }
    sdnbuf_bench::emit(
        "ablation_miss_send_len",
        "Ablation: miss_send_len at 60 Mbps (buffer-256)",
        &t,
    );
}

fn ablate_buffer_capacity(reps: u64) {
    let mut t = Table::new(vec![
        "capacity",
        "fallbacks",
        "setup_delay_ms",
        "peak_units",
    ]);
    for cap in [8usize, 16, 32, 64, 128, 256] {
        let make = |rep: u64| ExperimentConfig {
            buffer: BufferMode::PacketGranularity { capacity: cap },
            workload: WorkloadKind::paper_section_iv(),
            sending_rate: BitRate::from_mbps(80),
            seed: 200 + rep,
            ..ExperimentConfig::default()
        };
        t.row(vec![
            cap.to_string(),
            format!("{:.1}", mean_of(make, reps, |r| r.buffer_fallbacks as f64)),
            format!("{:.3}", mean_of(make, reps, |r| r.flow_setup_delay.mean)),
            format!(
                "{:.1}",
                mean_of(make, reps, |r| r.buffer_peak_occupancy as f64)
            ),
        ]);
    }
    sdnbuf_bench::emit(
        "ablation_buffer_capacity",
        "Ablation: buffer capacity at 80 Mbps (packet granularity)",
        &t,
    );
}

fn ablate_rerequest_timeout(reps: u64) {
    let mut t = Table::new(vec![
        "timeout_ms",
        "rerequests",
        "delivered_pct",
        "forwarding_delay_ms",
    ]);
    for timeout_ms in [5u64, 10, 20, 50, 100, 200] {
        let make = |rep: u64| {
            // One in 20 control messages is lost: requests do go missing.
            let testbed = TestbedConfig {
                control_loss_one_in: Some(20),
                ..TestbedConfig::default()
            };
            ExperimentConfig {
                buffer: BufferMode::FlowGranularity {
                    capacity: 256,
                    timeout: Nanos::from_millis(timeout_ms),
                },
                workload: WorkloadKind::paper_section_v(),
                sending_rate: BitRate::from_mbps(50),
                seed: 300 + rep,
                testbed,
                ..ExperimentConfig::default()
            }
        };
        t.row(vec![
            timeout_ms.to_string(),
            format!("{:.1}", mean_of(make, reps, |r| r.rerequests as f64)),
            format!(
                "{:.1}",
                mean_of(make, reps, |r| 100.0 * r.packets_delivered as f64
                    / r.packets_sent as f64)
            ),
            format!(
                "{:.3}",
                mean_of(make, reps, |r| r.flow_forwarding_delay.mean)
            ),
        ]);
    }
    sdnbuf_bench::emit(
        "ablation_rerequest_timeout",
        "Ablation: Algorithm 1 re-request timeout under 5% control loss (50 Mbps)",
        &t,
    );
}

fn ablate_forwarding_mode(reps: u64) {
    use sdnbuf_controller::ForwardingMode;
    let mut t = Table::new(vec![
        "mode",
        "pkt_ins",
        "ctrl_load_mbps",
        "flow_fwd_delay_ms",
    ]);
    for (name, mode) in [
        ("learning", ForwardingMode::Learning),
        ("hub", ForwardingMode::Hub),
    ] {
        let make = |rep: u64| {
            let mut testbed = TestbedConfig::default();
            testbed.controller.mode = mode;
            ExperimentConfig {
                buffer: BufferMode::PacketGranularity { capacity: 256 },
                workload: WorkloadKind::paper_section_v(),
                sending_rate: BitRate::from_mbps(50),
                seed: 400 + rep,
                testbed,
                ..ExperimentConfig::default()
            }
        };
        t.row(vec![
            name.to_owned(),
            format!("{:.0}", mean_of(make, reps, |r| r.pkt_in_count as f64)),
            format!(
                "{:.3}",
                mean_of(make, reps, |r| r.ctrl_load_to_controller_mbps)
            ),
            format!(
                "{:.3}",
                mean_of(make, reps, |r| r.flow_forwarding_delay.mean)
            ),
        ]);
    }
    sdnbuf_bench::emit(
        "ablation_forwarding_mode",
        "Ablation: reactive rules vs hub flooding (50 flows x 20 pkts, 50 Mbps)",
        &t,
    );
}

fn ablate_arrival_process(reps: u64) {
    use sdnbuf_workload::ArrivalProcess;
    let mut t = Table::new(vec![
        "arrival",
        "peak_buffer_units",
        "fallbacks",
        "setup_delay_ms",
    ]);
    for (name, arrival) in [
        ("cbr", ArrivalProcess::Cbr),
        ("poisson", ArrivalProcess::Poisson),
    ] {
        let make = |rep: u64| ExperimentConfig {
            buffer: BufferMode::PacketGranularity { capacity: 64 },
            workload: WorkloadKind::paper_section_iv(),
            sending_rate: BitRate::from_mbps(70),
            seed: 500 + rep,
            testbed: TestbedConfig::default(),
            ..ExperimentConfig::default()
        };
        // The arrival process lives in the pktgen config, which the
        // experiment builds internally; emulate by generating departures
        // explicitly and running the testbed directly.
        let total: f64 = (0..reps)
            .map(|rep| {
                let cfg = make(rep);
                let pktgen = sdnbuf_workload::PktgenConfig {
                    rate: cfg.sending_rate,
                    arrival,
                    ..sdnbuf_workload::PktgenConfig::default()
                };
                let deps = cfg.workload.generate(&pktgen, cfg.seed);
                let mut testbed = sdnbuf_core::Testbed::new(sdnbuf_core::TestbedConfig {
                    switch: sdnbuf_switch::SwitchConfig {
                        buffer: cfg.buffer,
                        ..cfg.testbed.switch
                    },
                    ..cfg.testbed.clone()
                });
                testbed.run(&deps).buffer_peak_occupancy as f64
            })
            .sum();
        let peak = total / reps as f64;
        let run_metrics = |metric: &dyn Fn(&sdnbuf_core::RunResult) -> f64| -> f64 {
            (0..reps)
                .map(|rep| {
                    let cfg = make(rep);
                    let pktgen = sdnbuf_workload::PktgenConfig {
                        rate: cfg.sending_rate,
                        arrival,
                        ..sdnbuf_workload::PktgenConfig::default()
                    };
                    let deps = cfg.workload.generate(&pktgen, cfg.seed);
                    let mut testbed = sdnbuf_core::Testbed::new(sdnbuf_core::TestbedConfig {
                        switch: sdnbuf_switch::SwitchConfig {
                            buffer: cfg.buffer,
                            ..cfg.testbed.switch
                        },
                        ..cfg.testbed.clone()
                    });
                    metric(&testbed.run(&deps))
                })
                .sum::<f64>()
                / reps as f64
        };
        t.row(vec![
            name.to_owned(),
            format!("{peak:.1}"),
            format!("{:.1}", run_metrics(&|r| r.buffer_fallbacks as f64)),
            format!("{:.3}", run_metrics(&|r| r.flow_setup_delay.mean)),
        ]);
    }
    sdnbuf_bench::emit(
        "ablation_arrival_process",
        "Ablation: CBR vs Poisson arrivals (buffer-64, 70 Mbps)",
        &t,
    );
}

fn main() {
    let reps = sdnbuf_bench::reps_from_env() as u64;
    ablate_miss_send_len(reps);
    ablate_buffer_capacity(reps);
    ablate_rerequest_timeout(reps);
    ablate_forwarding_mode(reps);
    ablate_arrival_process(reps);
}
