//! Reproduces Fig. 4: Switch Usages under Different Sending Rates of the paper.

fn main() {
    let sweep = sdnbuf_bench::section_iv(sdnbuf_bench::reps_from_env());
    sdnbuf_bench::emit(
        "fig04_switch_usage",
        "Fig. 4: Switch Usages under Different Sending Rates",
        &sdnbuf_core::figures::fig_switch_usage(&sweep),
    );
}
