//! Section VI of the paper argues: "If switch buffer benefits UDP flows,
//! it also benefits the mix of TCP and UDP flows." This harness checks that
//! claim directly: a mixed workload (a UDP flow flood plus well-behaved TCP
//! connections) swept across rates under all three mechanisms.

use sdnbuf_core::{BufferMode, Experiment, ExperimentConfig, WorkloadKind};
use sdnbuf_metrics::Table;
use sdnbuf_sim::{BitRate, Nanos};

fn main() {
    let reps = sdnbuf_bench::reps_from_env() as u64;
    let workload = WorkloadKind::MixedUdpTcp {
        n_udp_flows: 400,
        n_tcp: 20,
        segments_per_tcp: 15,
    };
    let mechanisms = [
        BufferMode::NoBuffer,
        BufferMode::PacketGranularity { capacity: 256 },
        BufferMode::FlowGranularity {
            capacity: 256,
            timeout: Nanos::from_millis(50),
        },
    ];
    let mut t = Table::new(vec![
        "rate_mbps",
        "mechanism",
        "ctrl_load_mbps",
        "setup_delay_ms",
        "delivered_pct",
    ]);
    for rate in [20u64, 40, 60, 80, 100] {
        for buffer in mechanisms {
            let mut load = 0.0;
            let mut setup = 0.0;
            let mut delivered = 0.0;
            let mut label = String::new();
            for rep in 0..reps {
                let r = Experiment::new(ExperimentConfig {
                    buffer,
                    workload,
                    sending_rate: BitRate::from_mbps(rate),
                    seed: 700 + rep,
                    ..ExperimentConfig::default()
                })
                .run();
                load += r.ctrl_load_to_controller_mbps;
                setup += r.flow_setup_delay.mean;
                delivered += 100.0 * r.packets_delivered as f64 / r.packets_sent as f64;
                label = r.label;
            }
            let n = reps as f64;
            t.row(vec![
                rate.to_string(),
                label,
                format!("{:.3}", load / n),
                format!("{:.3}", setup / n),
                format!("{:.1}", delivered / n),
            ]);
        }
    }
    sdnbuf_bench::emit(
        "tcp_udp_mix",
        "Section VI: mixed TCP+UDP traffic under the three mechanisms",
        &t,
    );
}
