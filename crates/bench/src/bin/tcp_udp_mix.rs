//! Section VI of the paper argues: "If switch buffer benefits UDP flows,
//! it also benefits the mix of TCP and UDP flows." This harness checks that
//! claim directly: a mixed workload (a UDP flow flood plus well-behaved TCP
//! connections) swept across rates under all three mechanisms, built with
//! the sweep builder and run on the parallel executor.

use sdnbuf_core::WorkloadKind;
use sdnbuf_core::{BufferMode, CellKey, Metric, Parallelism, RateSweep, StderrProgress};
use sdnbuf_metrics::Table;
use sdnbuf_sim::Nanos;

fn main() {
    let reps = sdnbuf_bench::reps_from_env();
    let sweep = RateSweep::builder()
        .rates([20, 40, 60, 80, 100])
        .buffers([
            BufferMode::NoBuffer,
            BufferMode::PacketGranularity { capacity: 256 },
            BufferMode::FlowGranularity {
                capacity: 256,
                timeout: Nanos::from_millis(50),
            },
        ])
        .workload(WorkloadKind::MixedUdpTcp {
            n_udp_flows: 400,
            n_tcp: 20,
            segments_per_tcp: 15,
        })
        .repetitions(reps)
        .base_seed(700)
        .build();
    let result = sweep.run_with(Parallelism::from_env(), &StderrProgress::new("tcp-udp-mix"));

    let mut t = Table::new(vec![
        "rate_mbps",
        "mechanism",
        "ctrl_load_mbps",
        "setup_delay_ms",
        "delivered_pct",
    ]);
    for &rate in &sweep.rates_mbps {
        for &buffer in &sweep.buffers {
            let key = CellKey::new(buffer, rate);
            let cell = result.cell_at(&key).expect("cell was swept");
            let mean = |m: Metric| result.mean(&key, m).expect("cell was swept");
            t.row(vec![
                rate.to_string(),
                cell.label.clone(),
                format!("{:.3}", mean(Metric::ControlPathLoadUp)),
                format!("{:.3}", mean(Metric::FlowSetupDelay)),
                format!("{:.1}", mean(Metric::DeliveredPercent)),
            ]);
        }
    }
    sdnbuf_bench::emit(
        "tcp_udp_mix",
        "Section VI: mixed TCP+UDP traffic under the three mechanisms",
        &t,
    );
}
