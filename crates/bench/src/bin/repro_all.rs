//! Reproduces **every table and figure** of the paper's evaluation in one
//! run: the Section IV benefit analysis (Figs. 2–8), the Section V
//! mechanism comparison (Figs. 9–13), and the summary-claims table
//! (paper-reported percentages vs measured). Writes all series to
//! `results/*.tsv`.
//!
//! Environment: `SDNBUF_REPS` (default 5; the paper uses 20),
//! `SDNBUF_RATES=coarse` for a quick smoke run.

use sdnbuf_bench::{emit, reps_from_env, section_iv, section_v};
use sdnbuf_core::{figures, observe, BufferMode, Experiment, ExperimentConfig, WorkloadKind};
use sdnbuf_sim::{BitRate, Nanos};

fn main() {
    let reps = reps_from_env();
    println!("# sdn-buffer-lab full reproduction ({reps} repetitions per cell)");
    println!("# Table I (testbed): two quad-core PCs (switch: OVS model; controller:");
    println!("# Floodlight model), hosts on 100 Mbps links, pktgen at 5-100 Mbps,");
    println!("# Ethernet frame size 1000 bytes.");
    println!();

    let iv = section_iv(reps);
    emit(
        "fig02_control_path_load",
        "Fig. 2(a): Control Messages Sent from Switch (Mbps)",
        &figures::fig_control_load_to_controller(&iv),
    );
    emit(
        "fig02b_control_path_load_to_switch",
        "Fig. 2(b): Control Messages Sent to Switch (Mbps)",
        &figures::fig_control_load_to_switch(&iv),
    );
    emit(
        "fig03_controller_usage",
        "Fig. 3: Controller Usages (%)",
        &figures::fig_controller_usage(&iv),
    );
    emit(
        "fig04_switch_usage",
        "Fig. 4: Switch Usages (%)",
        &figures::fig_switch_usage(&iv),
    );
    emit(
        "fig05_flow_setup_delay",
        "Fig. 5: Flow Setup Delay (ms)",
        &figures::fig_flow_setup_delay(&iv),
    );
    emit(
        "fig06_controller_delay",
        "Fig. 6: Controller Delay (ms)",
        &figures::fig_controller_delay(&iv),
    );
    emit(
        "fig07_switch_delay",
        "Fig. 7: Switch Delay (ms)",
        &figures::fig_switch_delay(&iv),
    );
    emit(
        "fig08_buffer_utilization",
        "Fig. 8: Buffer Utilization (mean units)",
        &figures::fig_buffer_utilization_mean(&iv),
    );

    let v = section_v(reps);
    emit(
        "fig09_mech_control_path_load",
        "Fig. 9(a): Control Messages Sent from Switch (Mbps)",
        &figures::fig_control_load_to_controller(&v),
    );
    emit(
        "fig09b_mech_control_path_load_to_switch",
        "Fig. 9(b): Control Messages Sent to Switch (Mbps)",
        &figures::fig_control_load_to_switch(&v),
    );
    emit(
        "fig10_mech_controller_usage",
        "Fig. 10: Controller Usages (%)",
        &figures::fig_controller_usage(&v),
    );
    emit(
        "fig11_mech_switch_usage",
        "Fig. 11: Switch Usages (%)",
        &figures::fig_switch_usage(&v),
    );
    emit(
        "fig12_mech_delays",
        "Fig. 12(a): Flow Setup Delay (ms)",
        &figures::fig_flow_setup_delay(&v),
    );
    emit(
        "fig12b_mech_flow_forwarding_delay",
        "Fig. 12(b): Flow Forwarding Delay (ms)",
        &figures::fig_flow_forwarding_delay(&v),
    );
    emit(
        "fig13_mech_buffer_utilization",
        "Fig. 13(a): Buffer Utilization, mean units",
        &figures::fig_buffer_utilization_mean(&v),
    );
    emit(
        "fig13b_mech_buffer_utilization_max",
        "Fig. 13(b): Buffer Utilization, max units",
        &figures::fig_buffer_utilization_max(&v),
    );

    emit(
        "summary_claims",
        "Paper claims vs reproduction",
        &figures::summary_claims(&iv, &v),
    );

    let mut report = sdnbuf_core::report::full_report(&iv, &v);
    report.push('\n');
    report.push_str(&occupancy_over_time());
    let path = sdnbuf_bench::results_dir().join("report.md");
    match std::fs::write(&path, report) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Looks inside the most interesting Section IV cell — buffer-16 at
/// 100 Mbps, where the exhausted buffer stays pinned at capacity — by
/// tracing one run, sampling occupancy/table-size/channel-load per 1 ms
/// window, and rendering the report section (TSV to `results/` too).
fn occupancy_over_time() -> String {
    let (_, events) = Experiment::new(ExperimentConfig {
        buffer: BufferMode::PacketGranularity { capacity: 16 },
        workload: WorkloadKind::paper_section_iv(),
        sending_rate: BitRate::from_mbps(100),
        seed: 42,
        ..ExperimentConfig::default()
    })
    .run_traced();
    let samples = observe::sample_series(&events, Nanos::from_millis(1));
    let path = sdnbuf_bench::results_dir().join("occupancy_buffer16_100mbps.tsv");
    let tsv =
        std::fs::File::create(&path).and_then(|mut f| observe::write_series_tsv(&samples, &mut f));
    match tsv {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
    sdnbuf_core::report::occupancy_markdown(
        "Inside one run — buffer-16 @ 100 Mbps, occupancy over time",
        &samples,
    )
}
