//! Reproduces Fig. 2: Control Path Load under Different Sending Rates of the paper.

fn main() {
    let sweep = sdnbuf_bench::section_iv(sdnbuf_bench::reps_from_env());
    sdnbuf_bench::emit(
        "fig02_control_path_load",
        "Fig. 2: Control Path Load under Different Sending Rates",
        &sdnbuf_core::figures::fig_control_load_to_controller(&sweep),
    );
    sdnbuf_bench::emit(
        "fig02b_control_path_load_to_switch",
        "Fig. 2(b): Control Messages Sent to Switch",
        &sdnbuf_core::figures::fig_control_load_to_switch(&sweep),
    );
}
