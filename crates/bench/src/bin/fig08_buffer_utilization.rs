//! Reproduces Fig. 8: Buffer Utilization under Different Sending Rates of the paper.

fn main() {
    let sweep = sdnbuf_bench::section_iv(sdnbuf_bench::reps_from_env());
    sdnbuf_bench::emit(
        "fig08_buffer_utilization",
        "Fig. 8: Buffer Utilization under Different Sending Rates",
        &sdnbuf_core::figures::fig_buffer_utilization_mean(&sweep),
    );
}
