//! Reproduces Fig. 7: Switch Delay under Different Sending Rates of the paper.

fn main() {
    let sweep = sdnbuf_bench::section_iv(sdnbuf_bench::reps_from_env());
    sdnbuf_bench::emit(
        "fig07_switch_delay",
        "Fig. 7: Switch Delay under Different Sending Rates",
        &sdnbuf_core::figures::fig_switch_delay(&sweep),
    );
}
