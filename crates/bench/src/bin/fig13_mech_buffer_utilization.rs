//! Reproduces Fig. 13(a): Buffer Utilization, mean units (mechanism comparison) of the paper.

fn main() {
    let sweep = sdnbuf_bench::section_v(sdnbuf_bench::reps_from_env());
    sdnbuf_bench::emit(
        "fig13_mech_buffer_utilization",
        "Fig. 13(a): Buffer Utilization, mean units (mechanism comparison)",
        &sdnbuf_core::figures::fig_buffer_utilization_mean(&sweep),
    );
    sdnbuf_bench::emit(
        "fig13b_mech_buffer_utilization_max",
        "Fig. 13(b): Buffer Utilization, max units",
        &sdnbuf_core::figures::fig_buffer_utilization_max(&sweep),
    );
}
