//! Reproduces Fig. 12(a): Flow Setup Delay (mechanism comparison) of the paper.

fn main() {
    let sweep = sdnbuf_bench::section_v(sdnbuf_bench::reps_from_env());
    sdnbuf_bench::emit(
        "fig12_mech_delays",
        "Fig. 12(a): Flow Setup Delay (mechanism comparison)",
        &sdnbuf_core::figures::fig_flow_setup_delay(&sweep),
    );
    sdnbuf_bench::emit(
        "fig12b_mech_flow_forwarding_delay",
        "Fig. 12(b): Flow Forwarding Delay",
        &sdnbuf_core::figures::fig_flow_forwarding_delay(&sweep),
    );
}
