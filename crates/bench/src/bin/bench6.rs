//! Perf-regression harness: the pinned BENCH_6 scenarios.
//!
//! Runs four fixed scenarios — a section-IV sweep cell, a 1000-flow
//! retry storm over a lossy control channel, a six-seed chaos replay,
//! and the latency-anatomy pipeline (traced run, span builder,
//! histogram report) — and emits `BENCH_6.json` at the workspace root
//! with wall-clock, events/sec, and allocs/run for each, next to the
//! seed baseline measured before the calendar-wheel scheduler and
//! packet pool landed.
//!
//! Modes:
//!
//! * default — run the scenarios and (re)write `BENCH_6.json`.
//! * `--check` — run the scenarios and compare against the committed
//!   `BENCH_6.json`: exit non-zero if the file is missing a field, a
//!   scenario's determinism check value drifted, allocation counts
//!   grew, or wall-clock regressed by more than 20%. This is the CI
//!   smoke gate.
//!
//! Repetitions default to 5 (plus one warm-up); set `SDNBUF_BENCH_REPS`
//! to change. Wall-clock comparisons use the minimum over repetitions,
//! the least noisy figure on a shared machine.

use sdnbuf_core::chaos::{self, ChaosScenario, Sabotage};
use sdnbuf_core::{
    spans, BufferMode, Experiment, ExperimentConfig, RunResult, Testbed, TestbedConfig,
    WorkloadKind,
};
use sdnbuf_sim::{BitRate, FaultPlan, LossModel, Nanos};
use sdnbuf_workload::{single_packet_flows, PktgenConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts heap allocations so `allocs/run` is an exact, deterministic
/// figure rather than a sampling estimate.
struct CountingAlloc;
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------
// Pinned scenarios. Do not retune these: the committed BENCH_6.json and
// the seed baseline below were measured on exactly these workloads.
// ---------------------------------------------------------------------

/// One cell of the paper's section-IV sweep: 400 single-packet flows at
/// 100 Mbps against the 16-unit packet-granularity buffer.
fn section_iv_cell() -> (u64, u64) {
    let cfg = TestbedConfig::with_buffer(BufferMode::PacketGranularity { capacity: 16 });
    let departures = single_packet_flows(
        &PktgenConfig {
            rate: BitRate::from_mbps(100),
            ..PktgenConfig::default()
        },
        400,
        42,
    );
    let r = Testbed::new(cfg).run(&departures);
    (r.packets_delivered, r.events_dispatched)
}

/// 1000 single-packet flows at 80 Mbps through the flow-granularity
/// buffer while 35% of control messages are lost in each direction —
/// Algorithm 1's re-request path under storm conditions.
fn retry_storm_1000() -> (u64, u64) {
    let mut cfg = TestbedConfig::with_buffer(BufferMode::FlowGranularity {
        capacity: 256,
        timeout: Nanos::from_millis(20),
    });
    let mut plan = FaultPlan {
        seed: 1234,
        ..FaultPlan::default()
    };
    plan.to_controller.loss = LossModel::Probabilistic(0.35);
    plan.to_switch.loss = LossModel::Probabilistic(0.35);
    cfg.faults = plan;
    let departures = single_packet_flows(
        &PktgenConfig {
            rate: BitRate::from_mbps(80),
            ..PktgenConfig::default()
        },
        1000,
        7,
    );
    let r = Testbed::new(cfg).run(&departures);
    (r.packets_delivered + r.rerequests, r.events_dispatched)
}

/// Six seeded chaos scenarios (alternating mechanisms), replayed without
/// sabotage — exercises the generator plus the full fault plane.
fn chaos_replay() -> (u64, u64) {
    let mut check = 0u64;
    let mut events = 0u64;
    for seed in 1u64..=6 {
        let mech = if seed % 2 == 0 {
            BufferMode::PacketGranularity { capacity: 64 }
        } else {
            BufferMode::FlowGranularity {
                capacity: 64,
                timeout: Nanos::from_millis(20),
            }
        };
        let sc = ChaosScenario::generate(seed, mech);
        let (result, trace): (RunResult, _) = chaos::execute(&sc, Sabotage::none());
        check += result.packets_delivered + trace.len() as u64;
        events += result.events_dispatched;
    }
    (check, events)
}

/// The latency-anatomy pipeline over the section-IV cell: a traced run,
/// the span builder's fold over the full event stream, and the per-phase
/// histogram report rendered to JSON — pins the post-hoc analysis cost so
/// the observability layer cannot quietly become the bottleneck.
fn latency_anatomy() -> (u64, u64) {
    let (result, events) = Experiment::new(ExperimentConfig {
        buffer: BufferMode::PacketGranularity { capacity: 16 },
        workload: WorkloadKind::single_packet_flows(400),
        sending_rate: BitRate::from_mbps(100),
        seed: 42,
        ..ExperimentConfig::default()
    })
    .run_traced();
    let report = spans::LatencyReport::from_events(&events);
    let mut json = String::new();
    report.write_json(&mut json);
    (
        result.packets_delivered + report.completed + json.len() as u64,
        result.events_dispatched,
    )
}

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

/// Seed-commit figures for one scenario, measured with this same
/// harness (minimum wall-clock over 5 repetitions) before the
/// calendar-wheel scheduler and packet pool replaced the BinaryHeap and
/// per-hop packet clones.
struct Baseline {
    wall_ms_min: f64,
    events: u64,
    allocs: u64,
}

struct Scenario {
    name: &'static str,
    /// Deterministic workload digest — drifts only if behavior changes.
    pinned_check: u64,
    baseline: Baseline,
    run: fn() -> (u64, u64),
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "section_iv_cell",
        pinned_check: 400,
        baseline: Baseline {
            wall_ms_min: 3.36,
            events: 4430,
            allocs: 6090,
        },
        run: section_iv_cell,
    },
    Scenario {
        name: "retry_storm_1000",
        pinned_check: 2284,
        baseline: Baseline {
            wall_ms_min: 6.86,
            events: 11689,
            allocs: 19048,
        },
        run: retry_storm_1000,
    },
    Scenario {
        name: "chaos_replay",
        pinned_check: 2460,
        baseline: Baseline {
            wall_ms_min: 0.65,
            events: 1345,
            allocs: 1981,
        },
        run: chaos_replay,
    },
    Scenario {
        name: "latency_anatomy",
        pinned_check: 6530,
        // New in the latency-anatomy PR: the baseline IS its first
        // measurement, so speedup_vs_seed starts pinned at 1.0.
        baseline: Baseline {
            wall_ms_min: 2.80,
            events: 4430,
            allocs: 5401,
        },
        run: latency_anatomy,
    },
];

struct Measurement {
    scenario: &'static Scenario,
    name: &'static str,
    check: u64,
    wall_ms_mean: f64,
    wall_ms_min: f64,
    events: u64,
    events_per_sec: f64,
    allocs_per_run: u64,
    baseline: &'static Baseline,
}

impl Measurement {
    /// Throughput gain over the seed: scenario completions per wall
    /// second now vs then (the scenario is the same work in both runs,
    /// so this is baseline wall over current wall).
    fn speedup(&self) -> f64 {
        self.baseline.wall_ms_min / self.wall_ms_min
    }
}

fn reps_from_env() -> u32 {
    std::env::var("SDNBUF_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(5)
}

fn measure(sc: &'static Scenario, reps: u32) -> Measurement {
    (sc.run)(); // warm-up: fault caches, allocator arenas, branch predictors
    let mut wall_ms = Vec::new();
    let mut check = 0u64;
    let mut events = 0u64;
    let mut allocs = 0u64;
    for rep in 0..reps {
        let a0 = ALLOCS.load(Ordering::Relaxed);
        let t0 = Instant::now();
        let (c, e) = (sc.run)();
        wall_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        if rep == 0 {
            check = c;
            events = e;
            allocs = ALLOCS.load(Ordering::Relaxed) - a0;
            assert_eq!(
                check, sc.pinned_check,
                "{}: workload digest drifted from its pinned value — the \
                 scenario no longer reproduces the committed behavior",
                sc.name
            );
        } else {
            assert_eq!(c, check, "{}: nondeterministic check value", sc.name);
        }
    }
    let wall_ms_mean = wall_ms.iter().sum::<f64>() / wall_ms.len() as f64;
    let wall_ms_min = wall_ms.iter().cloned().fold(f64::INFINITY, f64::min);
    Measurement {
        scenario: sc,
        name: sc.name,
        check,
        wall_ms_mean,
        wall_ms_min,
        events,
        events_per_sec: events as f64 / (wall_ms_min / 1e3),
        allocs_per_run: allocs,
        baseline: &sc.baseline,
    }
}

// ---------------------------------------------------------------------
// BENCH_6.json
// ---------------------------------------------------------------------

fn bench_json_path() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // workspace root
    p.push("BENCH_6.json");
    p
}

fn render_json(ms: &[Measurement]) -> String {
    let mut out = String::from("{\n  \"schema\": \"bench6/v1\",\n  \"scenarios\": [\n");
    for (i, m) in ms.iter().enumerate() {
        let b = m.baseline;
        let baseline_eps = b.events as f64 / (b.wall_ms_min / 1e3);
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{name}\",\n",
                "      \"check\": {check},\n",
                "      \"wall_ms_mean\": {mean:.3},\n",
                "      \"wall_ms_min\": {min:.3},\n",
                "      \"events\": {events},\n",
                "      \"events_per_sec\": {eps:.0},\n",
                "      \"allocs_per_run\": {allocs},\n",
                "      \"speedup_vs_seed\": {speedup:.2},\n",
                "      \"seed_baseline\": {{\n",
                "        \"wall_ms_min\": {bmin:.3},\n",
                "        \"events\": {bevents},\n",
                "        \"events_per_sec\": {beps:.0},\n",
                "        \"allocs_per_run\": {ballocs}\n",
                "      }}\n",
                "    }}{comma}\n",
            ),
            name = m.name,
            check = m.check,
            mean = m.wall_ms_mean,
            min = m.wall_ms_min,
            events = m.events,
            eps = m.events_per_sec,
            allocs = m.allocs_per_run,
            speedup = m.speedup(),
            bmin = b.wall_ms_min,
            bevents = b.events,
            beps = baseline_eps,
            ballocs = b.allocs,
            comma = if i + 1 < ms.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `"key": <number>` from the slice of the committed JSON that
/// belongs to one scenario. Good enough for the fixed schema this
/// harness itself writes; anything malformed fails the check.
fn field(scenario_json: &str, key: &str) -> Result<f64, String> {
    let tag = format!("\"{key}\":");
    let at = scenario_json
        .find(&tag)
        .ok_or_else(|| format!("missing field {key:?}"))?;
    let rest = scenario_json[at + tag.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .map_err(|e| format!("unparsable value for {key:?}: {e}"))
}

/// The slice of the committed JSON covering one scenario object: from
/// its `"name"` entry up to the next scenario's (or end of file). The
/// `seed_baseline` sub-object carries no `"name"` and keeps distinct
/// keys, so slicing on names is unambiguous.
fn scenario_slice<'j>(json: &'j str, name: &str) -> Result<&'j str, String> {
    let tag = format!("\"name\": \"{name}\"");
    let start = json
        .find(&tag)
        .ok_or_else(|| format!("scenario {name:?} not in committed BENCH_6.json"))?;
    let rest = &json[start + tag.len()..];
    let end = rest.find("\"name\":").unwrap_or(rest.len());
    Ok(&rest[..end])
}

/// CI gate: compares a fresh run against the committed BENCH_6.json.
fn check(ms: &[Measurement]) -> Result<(), String> {
    let path = bench_json_path();
    let json = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    for m in ms {
        let sc = scenario_slice(&json, m.name)?;
        let committed_check = field(sc, "check")? as u64;
        let committed_wall = field(sc, "wall_ms_min")?;
        let committed_allocs = field(sc, "allocs_per_run")? as u64;
        // Schema completeness: every emitted field must be present.
        for key in [
            "wall_ms_mean",
            "events",
            "events_per_sec",
            "speedup_vs_seed",
        ] {
            field(sc, key)?;
        }
        if m.check != committed_check {
            return Err(format!(
                "{}: determinism check drifted: {} vs committed {committed_check} \
                 (behavior changed — re-baseline deliberately or fix the regression)",
                m.name, m.check
            ));
        }
        if m.allocs_per_run > committed_allocs {
            return Err(format!(
                "{}: allocs/run grew: {} vs committed {committed_allocs}",
                m.name, m.allocs_per_run
            ));
        }
        // 20% relative budget, with half a millisecond of absolute slack
        // so sub-millisecond scenarios aren't gated on timer noise. On a
        // shared single-core runner a whole run can land in a slow
        // window, so a failing scenario is re-measured before the
        // verdict; the minimum across attempts is what must fit.
        let allowed = (committed_wall * 1.2).max(committed_wall + 0.5);
        let mut wall = m.wall_ms_min;
        for _ in 0..2 {
            if wall <= allowed {
                break;
            }
            let retry = measure(m.scenario, reps_from_env());
            wall = wall.min(retry.wall_ms_min);
        }
        if wall > allowed {
            return Err(format!(
                "{}: wall-clock regressed >20%: {:.3} ms vs committed {committed_wall:.3} ms \
                 (allowed {allowed:.3} ms)",
                m.name, wall
            ));
        }
        println!(
            "check {}: ok (wall {:.3} ms <= {allowed:.3} ms budget over committed \
             {committed_wall:.3} ms, allocs {} <= {committed_allocs}, check {})",
            m.name, wall, m.allocs_per_run, m.check
        );
    }
    Ok(())
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    let reps = reps_from_env();
    let ms: Vec<Measurement> = SCENARIOS.iter().map(|sc| measure(sc, reps)).collect();

    for m in &ms {
        println!(
            "{}: wall_ms_min={:.3} events={} events_per_sec={:.0} allocs={} \
             speedup_vs_seed={:.2}x check={}",
            m.name,
            m.wall_ms_min,
            m.events,
            m.events_per_sec,
            m.allocs_per_run,
            m.speedup(),
            m.check
        );
    }

    if check_mode {
        if let Err(e) = check(&ms) {
            eprintln!("BENCH_6 regression check FAILED: {e}");
            std::process::exit(1);
        }
        println!("BENCH_6 regression check passed");
    } else {
        let path = bench_json_path();
        std::fs::write(&path, render_json(&ms)).expect("write BENCH_6.json");
        println!("wrote {}", path.display());
    }
}
