//! Quick calibration check: a reduced Section IV + V sweep printing the key
//! figure shapes, used while tuning the testbed cost model.

use sdnbuf_core::{figures, RateSweep};

fn main() {
    let mut iv = RateSweep::paper_section_iv(2);
    iv.rates_mbps = vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
    if std::env::var("CAL_SMALL").is_ok() {
        if let sdnbuf_core::WorkloadKind::SinglePacketFlows { ref mut n_flows } = iv.workload {
            *n_flows = 300;
        }
    }
    let iv = iv.run();
    println!("{}", figures::fig_control_load_to_controller(&iv));
    println!("{}", figures::fig_control_load_to_switch(&iv));
    println!("{}", figures::fig_controller_usage(&iv));
    println!("{}", figures::fig_switch_usage(&iv));
    println!("{}", figures::fig_flow_setup_delay(&iv));
    println!("{}", figures::fig_controller_delay(&iv));
    println!("{}", figures::fig_switch_delay(&iv));
    println!("{}", figures::fig_buffer_utilization_mean(&iv));
    println!("{}", figures::fig_buffer_utilization_max(&iv));

    let mut v = RateSweep::paper_section_v(2);
    v.rates_mbps = vec![10, 30, 50, 70, 90, 100];
    let v = v.run();
    println!("{}", figures::fig_control_load_to_controller(&v));
    println!("{}", figures::fig_control_load_to_switch(&v));
    println!("{}", figures::fig_controller_usage(&v));
    println!("{}", figures::fig_switch_usage(&v));
    println!("{}", figures::fig_flow_setup_delay(&v));
    println!("{}", figures::fig_flow_forwarding_delay(&v));
    println!("{}", figures::fig_buffer_utilization_mean(&v));
    println!("{}", figures::fig_buffer_utilization_max(&v));

    println!("{}", figures::summary_claims(&iv, &v));
}
