//! Quick calibration check: a reduced Section IV + V sweep printing the key
//! figure shapes, used while tuning the testbed cost model.

use sdnbuf_core::{figures, NullSink, Parallelism, RateSweep};

fn main() {
    let parallelism = Parallelism::from_env();
    let mut iv = RateSweep::builder()
        .section_iv()
        .repetitions(2)
        .rates((1..=10).map(|i| i * 10))
        .build();
    if std::env::var("CAL_SMALL").is_ok() {
        // The sweep's fields stay public for exactly this kind of tweak.
        if let sdnbuf_core::WorkloadKind::SinglePacketFlows { ref mut n_flows } = iv.workload {
            *n_flows = 300;
        }
    }
    let iv = iv.run_with(parallelism, &NullSink);
    println!("{}", figures::fig_control_load_to_controller(&iv));
    println!("{}", figures::fig_control_load_to_switch(&iv));
    println!("{}", figures::fig_controller_usage(&iv));
    println!("{}", figures::fig_switch_usage(&iv));
    println!("{}", figures::fig_flow_setup_delay(&iv));
    println!("{}", figures::fig_controller_delay(&iv));
    println!("{}", figures::fig_switch_delay(&iv));
    println!("{}", figures::fig_buffer_utilization_mean(&iv));
    println!("{}", figures::fig_buffer_utilization_max(&iv));

    let v = RateSweep::builder()
        .section_v()
        .repetitions(2)
        .rates([10, 30, 50, 70, 90, 100])
        .build()
        .run_with(parallelism, &NullSink);
    println!("{}", figures::fig_control_load_to_controller(&v));
    println!("{}", figures::fig_control_load_to_switch(&v));
    println!("{}", figures::fig_controller_usage(&v));
    println!("{}", figures::fig_switch_usage(&v));
    println!("{}", figures::fig_flow_setup_delay(&v));
    println!("{}", figures::fig_flow_forwarding_delay(&v));
    println!("{}", figures::fig_buffer_utilization_mean(&v));
    println!("{}", figures::fig_buffer_utilization_max(&v));

    println!("{}", figures::summary_claims(&iv, &v));
}
