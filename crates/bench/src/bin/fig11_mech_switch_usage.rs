//! Reproduces Fig. 11: Switch Usages (mechanism comparison) of the paper.

fn main() {
    let sweep = sdnbuf_bench::section_v(sdnbuf_bench::reps_from_env());
    sdnbuf_bench::emit(
        "fig11_mech_switch_usage",
        "Fig. 11: Switch Usages (mechanism comparison)",
        &sdnbuf_core::figures::fig_switch_usage(&sweep),
    );
}
