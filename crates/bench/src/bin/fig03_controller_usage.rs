//! Reproduces Fig. 3: Controller Usages under Different Sending Rates of the paper.

fn main() {
    let sweep = sdnbuf_bench::section_iv(sdnbuf_bench::reps_from_env());
    sdnbuf_bench::emit(
        "fig03_controller_usage",
        "Fig. 3: Controller Usages under Different Sending Rates",
        &sdnbuf_core::figures::fig_controller_usage(&sweep),
    );
}
