//! Reproduces Fig. 10: Controller Usages (mechanism comparison) of the paper.

fn main() {
    let sweep = sdnbuf_bench::section_v(sdnbuf_bench::reps_from_env());
    sdnbuf_bench::emit(
        "fig10_mech_controller_usage",
        "Fig. 10: Controller Usages (mechanism comparison)",
        &sdnbuf_core::figures::fig_controller_usage(&sweep),
    );
}
