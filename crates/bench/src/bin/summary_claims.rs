//! Prints the paper's headline "on average" claims side by side with the
//! reproduction's measured values (runs both sweeps).

use sdnbuf_bench::{emit, reps_from_env, section_iv, section_v};
use sdnbuf_core::figures;

fn main() {
    let reps = reps_from_env();
    let iv = section_iv(reps);
    let v = section_v(reps);
    emit(
        "summary_claims",
        "Paper claims vs reproduction",
        &figures::summary_claims(&iv, &v),
    );
}
