//! Reproduces Fig. 9: Control Path Load (mechanism comparison) of the paper.

fn main() {
    let sweep = sdnbuf_bench::section_v(sdnbuf_bench::reps_from_env());
    sdnbuf_bench::emit(
        "fig09_mech_control_path_load",
        "Fig. 9: Control Path Load (mechanism comparison)",
        &sdnbuf_core::figures::fig_control_load_to_controller(&sweep),
    );
    sdnbuf_bench::emit(
        "fig09b_mech_control_path_load_to_switch",
        "Fig. 9(b): Control Messages Sent to Switch",
        &sdnbuf_core::figures::fig_control_load_to_switch(&sweep),
    );
}
