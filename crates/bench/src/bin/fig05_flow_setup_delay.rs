//! Reproduces Fig. 5: Flow Setup Delay under Different Sending Rates of the paper.

fn main() {
    let sweep = sdnbuf_bench::section_iv(sdnbuf_bench::reps_from_env());
    sdnbuf_bench::emit(
        "fig05_flow_setup_delay",
        "Fig. 5: Flow Setup Delay under Different Sending Rates",
        &sdnbuf_core::figures::fig_flow_setup_delay(&sweep),
    );
}
