//! Criterion micro-benchmarks of the hot paths: packet codec, OpenFlow
//! codec, flow-table lookup, buffer operations, and a full testbed run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sdnbuf_core::{BufferMode, Experiment, ExperimentConfig, WorkloadKind};
use sdnbuf_flowtable::{FlowRule, FlowTable};
use sdnbuf_net::{Packet, PacketBuilder};
use sdnbuf_openflow::{msg, BufferId, Match, MatchView, OfpMessage, PortNo};
use sdnbuf_sim::{
    events, BitRate, ChannelDir, EventKind, EventSink, FaultPlan, FaultState, JsonlSink, LossModel,
    Nanos, Tracer, Window,
};
use sdnbuf_switchbuf::{
    BufferMechanism, FlowGranularityBuffer, PacketGranularityBuffer, PacketPool,
};
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;

fn bench_packet_codec(c: &mut Criterion) {
    let pkt = PacketBuilder::udp().frame_size(1000).build();
    let bytes = pkt.encode();
    c.bench_function("packet_encode_1000B", |b| {
        b.iter(|| black_box(&pkt).encode())
    });
    c.bench_function("packet_decode_1000B", |b| {
        b.iter(|| Packet::decode(black_box(&bytes)).unwrap())
    });
}

fn bench_openflow_codec(c: &mut Criterion) {
    let pkt = PacketBuilder::udp().frame_size(1000).build();
    let pin = OfpMessage::PacketIn(msg::PacketIn {
        buffer_id: BufferId::new(7),
        total_len: 1000,
        in_port: PortNo(1),
        reason: msg::PacketInReason::NoMatch,
        data: pkt.header_slice(128),
    });
    let bytes = pin.encode(1);
    c.bench_function("ofp_packet_in_encode", |b| {
        b.iter(|| black_box(&pin).encode(1))
    });
    c.bench_function("ofp_packet_in_decode", |b| {
        b.iter(|| OfpMessage::decode(black_box(&bytes)).unwrap())
    });
    let fm = OfpMessage::FlowMod(msg::FlowMod {
        match_fields: Match::exact_from_packet(PortNo(1), &pkt),
        cookie: 0,
        command: msg::FlowModCommand::Add,
        idle_timeout: 5,
        hard_timeout: 0,
        priority: 100,
        buffer_id: BufferId::NO_BUFFER,
        out_port: PortNo::NONE,
        flags: 0,
        actions: vec![sdnbuf_openflow::Action::output(PortNo(2))],
    });
    c.bench_function("ofp_flow_mod_encode", |b| {
        b.iter(|| black_box(&fm).encode(1))
    });
}

fn bench_flow_table(c: &mut Criterion) {
    let mut table = FlowTable::new(4096);
    for i in 0..1000u16 {
        let p = PacketBuilder::udp().src_port(i).build();
        table.insert(
            Nanos::ZERO,
            FlowRule::new(Match::exact_from_packet(PortNo(1), &p), 100),
        );
    }
    let probe = PacketBuilder::udp().src_port(500).build();
    let view = MatchView::of(PortNo(1), &probe);
    c.bench_function("flow_table_lookup_1000_rules", |b| {
        b.iter(|| {
            table
                .match_packet(Nanos::from_micros(1), black_box(&view), 1000)
                .map(|r| r.priority)
        })
    });
}

fn bench_buffers(c: &mut Criterion) {
    let pkt = PacketBuilder::udp().frame_size(1000).build();
    c.bench_function("packet_granularity_miss_release", |b| {
        b.iter_batched(
            || {
                let mut pool = PacketPool::new();
                let h = pool.insert(pkt.clone());
                (PacketGranularityBuffer::new(256), pool, h)
            },
            |(mut buf, mut pool, h)| {
                let action = buf.on_miss(Nanos::ZERO, h, PortNo(1), &pool);
                if let sdnbuf_switchbuf::MissAction::SendBufferedPacketIn { buffer_id } = action {
                    for bp in black_box(buf.release(Nanos::from_micros(1), buffer_id)) {
                        pool.release(bp.packet);
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("flow_granularity_20pkt_flow", |b| {
        b.iter_batched(
            || {
                let mut pool = PacketPool::new();
                let hs: Vec<_> = (0..20).map(|_| pool.insert(pkt.clone())).collect();
                (
                    FlowGranularityBuffer::new(256, Nanos::from_millis(50)),
                    pool,
                    hs,
                )
            },
            |(mut buf, mut pool, hs)| {
                let mut id = None;
                for (i, h) in hs.into_iter().enumerate() {
                    if let sdnbuf_switchbuf::MissAction::SendBufferedPacketIn { buffer_id } =
                        buf.on_miss(Nanos::from_micros(i as u64), h, PortNo(1), &pool)
                    {
                        id = Some(buffer_id);
                    }
                }
                for bp in black_box(buf.release(Nanos::from_millis(1), id.unwrap())) {
                    pool.release(bp.packet);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

/// The event loop probes the buffer's next deadline after every step, so
/// `next_timeout` sits on the hot path. The `BTreeSet` deadline index makes
/// it a min-peek; the `*_linear_baseline` entry prices the pre-index
/// alternative (a full scan over every queued flow) on identical data, and
/// the idle `poll_timeouts` pins the cost of a sweep that finds nothing due.
fn bench_timeout_probes(c: &mut Criterion) {
    let mut buf =
        FlowGranularityBuffer::new(2048, Nanos::from_millis(50)).with_ttl(Nanos::from_millis(500));
    let mut pool = PacketPool::new();
    let mut deadlines = Vec::with_capacity(1000);
    for i in 0..1000u16 {
        let p = PacketBuilder::udp().src_port(i).frame_size(1000).build();
        let h = pool.insert(p);
        buf.on_miss(Nanos::from_micros(u64::from(i)), h, PortNo(1), &pool);
        deadlines.push(Nanos::from_micros(u64::from(i)) + Nanos::from_millis(50));
    }
    c.bench_function("flow_next_timeout_1000_flows", |b| {
        b.iter(|| black_box(&buf).next_timeout())
    });
    c.bench_function("flow_next_timeout_linear_baseline_1000", |b| {
        b.iter(|| black_box(&deadlines).iter().min().copied())
    });
    c.bench_function("flow_poll_timeouts_idle_1000_flows", |b| {
        b.iter(|| {
            black_box(
                buf.poll_timeouts(Nanos::from_micros(1_100), &pool)
                    .is_empty(),
            )
        })
    });
}

/// One representative hot-path event: a control-channel message record,
/// the largest `EventKind` variant and the one emitted most often.
fn sample_event_kind() -> EventKind {
    EventKind::CtrlMsg {
        dir: ChannelDir::ToController,
        xid: 42,
        bytes: 90,
        label: "packet_in",
        arrive: Nanos::from_micros(12),
    }
}

fn bench_event_sinks(c: &mut Criterion) {
    let kind = sample_event_kind();
    let at = Nanos::from_micros(3);

    // The price of an *untraced* run: one branch per instrumentation point.
    let off = Tracer::off();
    c.bench_function("tracer_off_emit", |b| {
        b.iter(|| black_box(&off).emit(at, kind))
    });

    // The price of the dynamic dispatch + RefCell borrow, with the event
    // itself discarded.
    let null = Tracer::new(Rc::new(RefCell::new(events::NullSink)));
    c.bench_function("tracer_null_sink_emit", |b| {
        b.iter(|| black_box(&null).emit(at, kind))
    });

    // In-memory recording: amortised Vec push per event.
    c.bench_function("tracer_recording_emit_1k", |b| {
        b.iter_batched(
            || Tracer::recording(0),
            |(tracer, sink)| {
                for i in 0..1000u64 {
                    tracer.emit(Nanos::from_nanos(i), kind);
                }
                black_box(sink.borrow().events().len())
            },
            BatchSize::SmallInput,
        )
    });

    // Streaming JSONL: formats and writes every event (to memory here, so
    // this measures encoding cost, not disk).
    c.bench_function("jsonl_sink_emit_1k", |b| {
        b.iter_batched(
            || JsonlSink::new(Vec::with_capacity(128 * 1024)),
            |mut sink| {
                for i in 0..1000u64 {
                    sink.emit(sdnbuf_sim::Event {
                        at: Nanos::from_nanos(i),
                        kind,
                    });
                }
                black_box(sink.written())
            },
            BatchSize::SmallInput,
        )
    });
}

/// The fault plane sits on every control-message send, so its per-message
/// decision must stay cheap: the empty plan is the every-run baseline and
/// a fully loaded plan bounds the worst case (loss + jitter + duplication
/// + reordering all drawing randomness).
fn bench_fault_plane(c: &mut Criterion) {
    c.bench_function("ctrl_effect_empty_plan", |b| {
        let mut state = FaultState::new(FaultPlan::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000;
            black_box(state.ctrl_effect(Nanos::from_nanos(t), ChannelDir::ToController))
        })
    });
    c.bench_function("ctrl_effect_loaded_plan", |b| {
        let mut plan = FaultPlan {
            seed: 7,
            ..FaultPlan::default()
        };
        plan.to_controller.loss = LossModel::Probabilistic(0.1);
        plan.to_controller.delay = Nanos::from_micros(200);
        plan.to_controller.jitter = Nanos::from_micros(500);
        plan.to_controller.duplicate = 0.05;
        plan.to_controller.reorder = 0.2;
        plan.to_controller.reorder_by = Nanos::from_micros(300);
        plan.stalls = vec![Window::new(Nanos::from_millis(55), Nanos::from_millis(58))];
        let mut state = FaultState::new(plan);
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000;
            black_box(state.ctrl_effect(Nanos::from_nanos(t), ChannelDir::ToController))
        })
    });
    c.bench_function("testbed_run_100_flows_faulted", |b| {
        let mut plan = FaultPlan {
            seed: 7,
            ..FaultPlan::default()
        };
        plan.to_controller.loss = LossModel::Probabilistic(0.1);
        plan.to_controller.jitter = Nanos::from_micros(500);
        plan.to_switch.loss = LossModel::Probabilistic(0.05);
        b.iter(|| {
            let mut config = ExperimentConfig {
                buffer: BufferMode::FlowGranularity {
                    capacity: 256,
                    timeout: Nanos::from_millis(20),
                },
                workload: WorkloadKind::single_packet_flows(100),
                sending_rate: BitRate::from_mbps(50),
                seed: 3,
                ..ExperimentConfig::default()
            };
            config.testbed.faults = plan.clone();
            black_box(Experiment::new(config).run())
        })
    });
}

fn bench_full_run(c: &mut Criterion) {
    c.bench_function("testbed_run_100_flows_50mbps", |b| {
        b.iter(|| {
            Experiment::new(ExperimentConfig {
                buffer: BufferMode::PacketGranularity { capacity: 256 },
                workload: WorkloadKind::single_packet_flows(100),
                sending_rate: BitRate::from_mbps(50),
                seed: 1,
                ..ExperimentConfig::default()
            })
            .run()
        })
    });
}

criterion_group!(
    benches,
    bench_packet_codec,
    bench_openflow_codec,
    bench_flow_table,
    bench_buffers,
    bench_timeout_probes,
    bench_event_sinks,
    bench_fault_plane,
    bench_full_run
);
criterion_main!(benches);
