//! `pktgen`-style workload generators for `sdn-buffer-lab`.
//!
//! Reproduces the traffic of the paper's two experiments:
//!
//! * **Section IV** ([`single_packet_flows`]): "Host1 sends 1000 new flows
//!   to Host2 at each sending rate. Each flow includes one packet. To
//!   generate new flows, we use pktgen to forge source IP addresses." —
//!   constant-bit-rate departures of 1000-byte frames, each with a fresh
//!   forged source address.
//! * **Section V** ([`cross_sequenced_flows`]): "Host1 sends 50 flows to
//!   Host2. Each flow includes 20 packets. We first send out 5 flows (i.e.,
//!   100 packets) in cross sequences. Then, another 5 flows will be sent
//!   in the same way" — round-robin interleaving within each batch of 5
//!   flows, batches back to back.
//! * **Section VI.B** ([`tcp_with_idle_gap`]): a TCP connection that goes
//!   quiet long enough for its rule to be evicted, then resumes a large
//!   transfer — the scenario motivating buffers for TCP.
//!
//! Each run's 20 repetitions differ by a seeded departure jitter, exactly
//! the role measurement noise plays on the real testbed.
//!
//! # Example
//!
//! ```
//! use sdnbuf_workload::{single_packet_flows, PktgenConfig};
//! use sdnbuf_sim::BitRate;
//!
//! let cfg = PktgenConfig {
//!     rate: BitRate::from_mbps(50),
//!     ..PktgenConfig::default()
//! };
//! let departures = single_packet_flows(&cfg, 1000, 1);
//! assert_eq!(departures.len(), 1000);
//! // 1000-byte frames at 50 Mbps: 160 us apart on average.
//! let span = departures.last().unwrap().at - departures[0].at;
//! assert!((span.as_millis_f64() - 159.84).abs() < 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sdnbuf_net::{MacAddr, Packet, PacketBuilder, Payload, TcpFlags, Transport};
use sdnbuf_sim::{BitRate, Nanos, SimRng};
use std::net::Ipv4Addr;

/// One scheduled packet departure from the source host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Departure {
    /// When the packet leaves the host NIC.
    pub at: Nanos,
    /// The packet.
    pub packet: Packet,
    /// Which flow of the workload this packet belongs to (0-based).
    pub flow_index: usize,
    /// Position of this packet within its flow (0-based).
    pub seq_in_flow: usize,
}

/// An endpoint of the testbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostAddr {
    /// The host's MAC address.
    pub mac: MacAddr,
    /// The host's IPv4 address.
    pub ip: Ipv4Addr,
}

impl HostAddr {
    /// The testbed's sender, `Host1`.
    pub fn host1() -> HostAddr {
        HostAddr {
            mac: MacAddr::from_host_index(1),
            ip: Ipv4Addr::new(10, 0, 0, 1),
        }
    }

    /// The testbed's receiver, `Host2`.
    pub fn host2() -> HostAddr {
        HostAddr {
            mac: MacAddr::from_host_index(2),
            ip: Ipv4Addr::new(10, 0, 0, 2),
        }
    }
}

/// The arrival process of generated packets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Constant bit rate with bounded uniform jitter — how `pktgen` paces
    /// (the paper's workloads).
    #[default]
    Cbr,
    /// Poisson arrivals (exponential gaps with the same mean) — burstier,
    /// closer to aggregated internet traffic; used by the arrival-process
    /// ablation.
    Poisson,
}

/// Configuration of the packet generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PktgenConfig {
    /// Target sending rate (the paper sweeps 5–100 Mbps).
    pub rate: BitRate,
    /// Ethernet frame size (1000 bytes in the paper).
    pub frame_size: usize,
    /// Sender.
    pub src: HostAddr,
    /// Receiver.
    pub dst: HostAddr,
    /// First departure time.
    pub start_at: Nanos,
    /// Departure jitter as a fraction of the inter-departure gap, in
    /// per-mille (0 = exact CBR). Seeded per repetition. Only applies to
    /// [`ArrivalProcess::Cbr`].
    pub jitter_permille: u32,
    /// How departures are spaced.
    pub arrival: ArrivalProcess,
}

impl Default for PktgenConfig {
    /// The paper's default: 1000-byte frames from `Host1` to `Host2` at
    /// 100 Mbps with a small (2 %) scheduling jitter.
    fn default() -> Self {
        PktgenConfig {
            rate: BitRate::from_mbps(100),
            frame_size: 1000,
            src: HostAddr::host1(),
            dst: HostAddr::host2(),
            start_at: Nanos::ZERO,
            jitter_permille: 20,
            arrival: ArrivalProcess::Cbr,
        }
    }
}

impl PktgenConfig {
    /// Mean gap between departures sustaining the configured rate.
    pub fn interval(&self) -> Nanos {
        self.rate.interval_for_frame(self.frame_size)
    }

    fn next_gap(&self, rng: &mut SimRng) -> Nanos {
        let base = self.interval();
        match self.arrival {
            ArrivalProcess::Cbr => {
                if self.jitter_permille == 0 {
                    return base;
                }
                // Uniform jitter in [1 - j, 1 + j], mean-preserving.
                let j = self.jitter_permille as f64 / 1000.0;
                let factor = 1.0 - j + 2.0 * j * rng.next_f64();
                base.scale(factor).max(Nanos::from_nanos(1))
            }
            ArrivalProcess::Poisson => {
                // Exponential gap with the same mean rate.
                Nanos::from_secs_f64(rng.exp(base.as_secs_f64())).max(Nanos::from_nanos(1))
            }
        }
    }
}

/// Sets the IPv4 identification field — the per-packet serial number that
/// lets the measurement tap tell a flow's packets apart, like a capture
/// tool would.
fn set_ident(packet: &mut Packet, ident: u16) {
    if let Payload::Ipv4(ip) = &mut packet.payload {
        ip.header.identification = ident;
    }
}

/// The forged source address of flow `i` (pktgen's source-IP forging):
/// walks through `10.128.0.0/9` so forged addresses never collide with real
/// hosts in `10.0.0.0/24`.
fn forged_src_ip(i: usize) -> Ipv4Addr {
    let i = i as u32;
    Ipv4Addr::new(
        10,
        (128 + ((i >> 16) & 0x7f)) as u8,
        ((i >> 8) & 0xff) as u8,
        (i & 0xff) as u8,
    )
}

fn udp_packet(cfg: &PktgenConfig, src_ip: Ipv4Addr, src_port: u16, ident: u16) -> Packet {
    let mut p = PacketBuilder::udp()
        .src_mac(cfg.src.mac)
        .dst_mac(cfg.dst.mac)
        .src_ip(src_ip)
        .dst_ip(cfg.dst.ip)
        .src_port(src_port)
        .dst_port(9)
        .frame_size(cfg.frame_size)
        .build();
    set_ident(&mut p, ident);
    p
}

/// The Section IV workload: `n_flows` single-packet UDP flows with forged
/// source IPs, departing at the configured rate.
pub fn single_packet_flows(cfg: &PktgenConfig, n_flows: usize, seed: u64) -> Vec<Departure> {
    let mut rng = SimRng::seed_from(seed);
    let mut at = cfg.start_at;
    let mut out = Vec::with_capacity(n_flows);
    for i in 0..n_flows {
        out.push(Departure {
            at,
            packet: udp_packet(cfg, forged_src_ip(i), 10_000, 0),
            flow_index: i,
            seq_in_flow: 0,
        });
        at += cfg.next_gap(&mut rng);
    }
    out
}

/// The Section V workload: `n_flows` UDP flows of `packets_per_flow`
/// packets each, sent in cross sequence within batches of `group_size`
/// flows (flow₀ pkt₀, flow₁ pkt₀, …, flow₄ pkt₀, flow₀ pkt₁, …), batches
/// back to back. The paper uses 50 flows × 20 packets in groups of 5.
pub fn cross_sequenced_flows(
    cfg: &PktgenConfig,
    n_flows: usize,
    packets_per_flow: usize,
    group_size: usize,
    seed: u64,
) -> Vec<Departure> {
    assert!(group_size > 0, "group size must be positive");
    let mut rng = SimRng::seed_from(seed);
    let mut at = cfg.start_at;
    let mut out = Vec::with_capacity(n_flows * packets_per_flow);
    let mut batch_start = 0;
    while batch_start < n_flows {
        let batch_end = (batch_start + group_size).min(n_flows);
        for seq in 0..packets_per_flow {
            for flow in batch_start..batch_end {
                out.push(Departure {
                    at,
                    packet: udp_packet(cfg, forged_src_ip(flow), 10_000, seq as u16),
                    flow_index: flow,
                    seq_in_flow: seq,
                });
                at += cfg.next_gap(&mut rng);
            }
        }
        batch_start = batch_end;
    }
    out
}

/// The Section VI.B scenario: one TCP connection that handshakes, sends
/// `first_burst` data segments, goes idle for `idle_gap` (long enough for
/// its rule to be evicted or to time out), then resumes with
/// `second_burst` segments — "large volume of data may be transmitted
/// after that transient time period because the TCP connection is not
/// terminated in actual".
pub fn tcp_with_idle_gap(
    cfg: &PktgenConfig,
    first_burst: usize,
    idle_gap: Nanos,
    second_burst: usize,
    seed: u64,
) -> Vec<Departure> {
    let mut rng = SimRng::seed_from(seed);
    let src_port = 40_000;
    let mut out = Vec::new();
    let mut at = cfg.start_at;
    let mut seq_in_flow = 0;
    let push = |at: Nanos, flags: TcpFlags, size: usize, seq_in_flow: usize| {
        let mut p = PacketBuilder::tcp()
            .src_mac(cfg.src.mac)
            .dst_mac(cfg.dst.mac)
            .src_ip(cfg.src.ip)
            .dst_ip(cfg.dst.ip)
            .src_port(src_port)
            .dst_port(80)
            .tcp_flags(flags)
            .frame_size(size)
            .build();
        set_ident(&mut p, seq_in_flow as u16);
        Departure {
            at,
            packet: p,
            flow_index: 0,
            seq_in_flow,
        }
    };
    // Handshake opener: a small SYN (the "negotiating first" case where
    // buffering matters little).
    out.push(push(at, TcpFlags::SYN, 60, seq_in_flow));
    seq_in_flow += 1;
    at += cfg.next_gap(&mut rng);
    out.push(push(at, TcpFlags::ACK, 60, seq_in_flow));
    seq_in_flow += 1;
    for _ in 0..first_burst {
        at += cfg.next_gap(&mut rng);
        out.push(push(
            at,
            TcpFlags::ACK | TcpFlags::PSH,
            cfg.frame_size,
            seq_in_flow,
        ));
        seq_in_flow += 1;
    }
    // The transient inactivity: rule gets kicked out, connection survives.
    at += idle_gap;
    for _ in 0..second_burst {
        out.push(push(
            at,
            TcpFlags::ACK | TcpFlags::PSH,
            cfg.frame_size,
            seq_in_flow,
        ));
        seq_in_flow += 1;
        at += cfg.next_gap(&mut rng);
    }
    out
}

/// A mixed workload: interleaves a Section IV-style UDP flood with
/// `n_tcp` well-behaved TCP connections, reflecting the paper's
/// "TCP still dominates in bytes, UDP in flows" discussion.
pub fn mixed_udp_tcp(
    cfg: &PktgenConfig,
    n_udp_flows: usize,
    n_tcp: usize,
    segments_per_tcp: usize,
    seed: u64,
) -> Vec<Departure> {
    let mut out = single_packet_flows(cfg, n_udp_flows, seed);
    let n_udp = out.len();
    let mut rng = SimRng::seed_from(seed ^ 0x7cc);
    for t in 0..n_tcp {
        // Each connection is a light background stream (a tenth of the UDP
        // rate shared across connections), so the mix's total offered rate
        // stays near the configured rate instead of doubling it.
        let tcp_rate =
            BitRate::from_bps((cfg.rate.as_bps() / (10 * n_tcp.max(1) as u64)).max(1_000_000));
        let tcp_cfg = PktgenConfig {
            start_at: cfg.start_at + cfg.interval() * (t as u64 + 1),
            rate: tcp_rate,
            ..*cfg
        };
        let conn = tcp_with_idle_gap(&tcp_cfg, segments_per_tcp, Nanos::ZERO, 0, rng.next_u64());
        out.extend(conn.into_iter().map(|mut d| {
            d.flow_index = n_udp + t; // distinct flow numbering
                                      // Give each connection its own ephemeral source port so the
                                      // connections are distinct flows (and distinct packets on the
                                      // measurement tap).
            if let Payload::Ipv4(ip) = &mut d.packet.payload {
                if let Transport::Tcp(tcp, _) = &mut ip.transport {
                    tcp.src_port = 40_000 + t as u16;
                }
            }
            d
        }));
    }
    out.sort_by_key(|d| d.at);
    out
}

/// `true` when every departure is in non-decreasing time order — every
/// generator in this crate upholds it, and the testbed asserts it.
pub fn is_time_ordered(departures: &[Departure]) -> bool {
    departures.windows(2).all(|w| w[0].at <= w[1].at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnbuf_net::{FlowKey, IpProto};
    use std::collections::HashSet;

    fn cfg(mbps: u64) -> PktgenConfig {
        PktgenConfig {
            rate: BitRate::from_mbps(mbps),
            ..PktgenConfig::default()
        }
    }

    #[test]
    fn single_packet_flows_are_all_distinct() {
        let deps = single_packet_flows(&cfg(50), 1000, 1);
        assert_eq!(deps.len(), 1000);
        let keys: HashSet<_> = deps
            .iter()
            .map(|d| FlowKey::of(&d.packet).unwrap())
            .collect();
        assert_eq!(keys.len(), 1000, "every packet must be a new flow");
        assert!(is_time_ordered(&deps));
    }

    #[test]
    fn rate_is_respected_on_average() {
        let deps = single_packet_flows(&cfg(20), 500, 3);
        let span = deps.last().unwrap().at - deps[0].at;
        let bits = 499.0 * 1000.0 * 8.0; // gaps between 500 departures
        let rate_mbps = bits / span.as_secs_f64() / 1e6;
        assert!(
            (rate_mbps - 20.0).abs() < 1.0,
            "measured {rate_mbps} Mbps, wanted 20"
        );
    }

    #[test]
    fn zero_jitter_is_exact_cbr() {
        let c = PktgenConfig {
            jitter_permille: 0,
            ..cfg(100)
        };
        let deps = single_packet_flows(&c, 10, 1);
        let gaps: HashSet<u64> = deps
            .windows(2)
            .map(|w| (w[1].at - w[0].at).as_nanos())
            .collect();
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps.into_iter().next().unwrap(), 80_000);
    }

    #[test]
    fn poisson_matches_mean_rate_but_is_bursty() {
        let cfg = PktgenConfig {
            rate: BitRate::from_mbps(50),
            arrival: ArrivalProcess::Poisson,
            ..PktgenConfig::default()
        };
        let deps = single_packet_flows(&cfg, 4000, 9);
        assert!(is_time_ordered(&deps));
        let span = deps.last().unwrap().at - deps[0].at;
        let rate = 3999.0 * 1000.0 * 8.0 / span.as_secs_f64() / 1e6;
        assert!((rate - 50.0).abs() < 3.0, "poisson mean rate {rate} Mbps");
        // Burstiness: gap coefficient of variation near 1 (vs ~0 for CBR).
        let gaps: Vec<f64> = deps
            .windows(2)
            .map(|w| (w[1].at - w[0].at).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 0.8, "poisson CV {cv} should be near 1");
    }

    #[test]
    fn seeds_change_schedules_but_not_packets() {
        let a = single_packet_flows(&cfg(50), 100, 1);
        let b = single_packet_flows(&cfg(50), 100, 2);
        assert_ne!(
            a.iter().map(|d| d.at).collect::<Vec<_>>(),
            b.iter().map(|d| d.at).collect::<Vec<_>>()
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.packet, y.packet);
        }
        // Same seed: identical.
        let c = single_packet_flows(&cfg(50), 100, 1);
        assert_eq!(a, c);
    }

    #[test]
    fn cross_sequenced_matches_paper_shape() {
        let deps = cross_sequenced_flows(&cfg(50), 50, 20, 5, 1);
        assert_eq!(deps.len(), 1000);
        assert!(is_time_ordered(&deps));
        // First ten departures: flows 0..5 round-robin.
        let first: Vec<usize> = deps[..10].iter().map(|d| d.flow_index).collect();
        assert_eq!(first, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4]);
        // Batch 2 (flows 5..10) starts only after batch 1's 100 packets.
        assert!(deps[..100].iter().all(|d| d.flow_index < 5));
        assert_eq!(deps[100].flow_index, 5);
        // 50 distinct flows, 20 packets each.
        let keys: HashSet<_> = deps
            .iter()
            .map(|d| FlowKey::of(&d.packet).unwrap())
            .collect();
        assert_eq!(keys.len(), 50);
        for flow in 0..50 {
            assert_eq!(deps.iter().filter(|d| d.flow_index == flow).count(), 20);
        }
    }

    #[test]
    fn cross_sequenced_packets_are_distinguishable() {
        let deps = cross_sequenced_flows(&cfg(50), 5, 20, 5, 1);
        // (flow, ident) pairs must be unique — the measurement tap's handle.
        let mut seen = HashSet::new();
        for d in &deps {
            let key = FlowKey::of(&d.packet).unwrap();
            let ident = match &d.packet.payload {
                Payload::Ipv4(ip) => ip.header.identification,
                _ => panic!(),
            };
            assert!(seen.insert((key, ident)));
            assert_eq!(ident as usize, d.seq_in_flow);
        }
    }

    #[test]
    fn tcp_scenario_shape() {
        let deps = tcp_with_idle_gap(&cfg(50), 10, Nanos::from_secs(8), 30, 1);
        assert_eq!(deps.len(), 2 + 10 + 30);
        assert!(is_time_ordered(&deps));
        // All one flow.
        let keys: HashSet<_> = deps
            .iter()
            .map(|d| FlowKey::of(&d.packet).unwrap())
            .collect();
        assert_eq!(keys.len(), 1);
        assert_eq!(keys.iter().next().unwrap().protocol, IpProto::Tcp);
        // The idle gap is visible between packet 11 and 12.
        let gap = deps[12].at - deps[11].at;
        assert!(gap >= Nanos::from_secs(8));
    }

    #[test]
    fn mixed_workload_is_ordered_and_complete() {
        let deps = mixed_udp_tcp(&cfg(50), 100, 3, 5, 1);
        assert!(is_time_ordered(&deps));
        assert_eq!(deps.len(), 100 + 3 * 7); // 7 = SYN + ACK + 5 segments
        let tcp_flows: HashSet<_> = deps
            .iter()
            .filter_map(|d| FlowKey::of(&d.packet))
            .filter(|k| k.protocol == IpProto::Tcp)
            .collect();
        // All TCP connections share the same 5-tuple source config except
        // the src ip is host1 for each (they are sequential connections in
        // this model).
        assert!(!tcp_flows.is_empty());
    }

    #[test]
    fn forged_ips_do_not_collide_with_hosts() {
        for i in [0usize, 1, 255, 256, 65535, 65536, 100_000] {
            let ip = forged_src_ip(i);
            assert_ne!(ip, HostAddr::host1().ip);
            assert_ne!(ip, HostAddr::host2().ip);
            assert_eq!(ip.octets()[0], 10);
            assert!(ip.octets()[1] >= 128);
        }
    }

    #[test]
    fn forged_ips_are_unique_over_the_sweep_sizes() {
        let ips: HashSet<_> = (0..10_000).map(forged_src_ip).collect();
        assert_eq!(ips.len(), 10_000);
    }
}
