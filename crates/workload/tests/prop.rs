//! Property-based tests for the workload generators: ordering, counts,
//! flow identity and rate conformance for arbitrary parameters.

use proptest::prelude::*;
use sdnbuf_net::{FlowKey, Payload};
use sdnbuf_sim::BitRate;
use sdnbuf_workload::{
    cross_sequenced_flows, is_time_ordered, single_packet_flows, tcp_with_idle_gap, ArrivalProcess,
    PktgenConfig,
};
use std::collections::HashSet;

fn cfg(rate_mbps: u64, frame: usize, jitter: u32, arrival: ArrivalProcess) -> PktgenConfig {
    PktgenConfig {
        rate: BitRate::from_mbps(rate_mbps),
        frame_size: frame,
        jitter_permille: jitter,
        arrival,
        ..PktgenConfig::default()
    }
}

proptest! {
    #[test]
    fn single_packet_flows_invariants(
        n in 1usize..500,
        rate in 5u64..100,
        frame in 64usize..1500,
        jitter in 0u32..200,
        seed in any::<u64>(),
        poisson in any::<bool>(),
    ) {
        let arrival = if poisson { ArrivalProcess::Poisson } else { ArrivalProcess::Cbr };
        let deps = single_packet_flows(&cfg(rate, frame, jitter, arrival), n, seed);
        prop_assert_eq!(deps.len(), n);
        prop_assert!(is_time_ordered(&deps));
        // Every packet is a distinct flow of the requested size.
        let keys: HashSet<_> = deps.iter().map(|d| FlowKey::of(&d.packet).unwrap()).collect();
        prop_assert_eq!(keys.len(), n);
        for (i, d) in deps.iter().enumerate() {
            prop_assert_eq!(d.flow_index, i);
            prop_assert_eq!(d.seq_in_flow, 0);
            prop_assert!(d.packet.wire_len() >= 42);
            if frame >= 42 {
                prop_assert_eq!(d.packet.wire_len(), frame);
            }
        }
    }

    #[test]
    fn cross_sequenced_invariants(
        flows in 1usize..30,
        ppf in 1usize..30,
        group in 1usize..8,
        rate in 5u64..100,
        seed in any::<u64>(),
    ) {
        let deps = cross_sequenced_flows(&cfg(rate, 1000, 20, ArrivalProcess::Cbr), flows, ppf, group, seed);
        prop_assert_eq!(deps.len(), flows * ppf);
        prop_assert!(is_time_ordered(&deps));
        // Each flow has exactly ppf packets, sequenced 0..ppf, with unique
        // (flow, ident) identities.
        let mut seen = HashSet::new();
        let mut per_flow = vec![0usize; flows];
        for d in &deps {
            per_flow[d.flow_index] += 1;
            let ident = match &d.packet.payload {
                Payload::Ipv4(ip) => ip.header.identification,
                _ => unreachable!("workloads are IPv4"),
            };
            prop_assert_eq!(ident as usize, d.seq_in_flow);
            prop_assert!(seen.insert((d.flow_index, ident)));
        }
        prop_assert!(per_flow.iter().all(|&c| c == ppf));
        // Batch structure: a flow's packets only appear inside its batch.
        for d in &deps {
            let batch = d.flow_index / group;
            let batch_start = batch * group;
            prop_assert!(d.flow_index >= batch_start);
        }
    }

    #[test]
    fn cbr_rate_is_respected(
        rate in 5u64..100,
        seed in any::<u64>(),
    ) {
        let n = 400;
        let deps = single_packet_flows(&cfg(rate, 1000, 20, ArrivalProcess::Cbr), n, seed);
        let span = deps.last().unwrap().at - deps[0].at;
        let measured = (n as f64 - 1.0) * 1000.0 * 8.0 / span.as_secs_f64() / 1e6;
        prop_assert!(
            (measured - rate as f64).abs() < rate as f64 * 0.05,
            "wanted {rate} Mbps, measured {measured:.2}"
        );
    }

    /// Every generator is a pure function of `(config, seed)`: regenerating
    /// with the same inputs yields an identical departure schedule, packets
    /// included. (This is what makes failing runs replayable from a spec.)
    #[test]
    fn generators_are_pure_functions_of_their_seed(
        n in 1usize..200,
        rate in 5u64..=100,
        jitter in 0u32..200,
        seed in any::<u64>(),
        poisson in any::<bool>(),
    ) {
        let arrival = if poisson { ArrivalProcess::Poisson } else { ArrivalProcess::Cbr };
        let c = cfg(rate, 1000, jitter, arrival);
        prop_assert_eq!(
            single_packet_flows(&c, n, seed),
            single_packet_flows(&c, n, seed)
        );
        prop_assert_eq!(
            cross_sequenced_flows(&c, n.min(20), 3, 2, seed),
            cross_sequenced_flows(&c, n.min(20), 3, 2, seed)
        );
    }

    /// The knife-edge cells: offered load at exactly the data link's
    /// capacity (100 Mbps) with extreme frame sizes. The generator must
    /// still emit every departure, keep them time-ordered, and finish the
    /// schedule in bounded time — it must not stall or compress the
    /// schedule into a zero-length burst.
    #[test]
    fn at_link_capacity_the_schedule_stays_live_and_bounded(
        frame in prop_oneof![Just(64usize), Just(1000), Just(1500)],
        jitter in 0u32..200,
        seed in any::<u64>(),
        poisson in any::<bool>(),
    ) {
        let n = 300;
        let arrival = if poisson { ArrivalProcess::Poisson } else { ArrivalProcess::Cbr };
        let deps = single_packet_flows(&cfg(100, frame, jitter, arrival), n, seed);
        prop_assert_eq!(deps.len(), n);
        prop_assert!(is_time_ordered(&deps));
        let span = deps.last().unwrap().at - deps[0].at;
        prop_assert!(span > sdnbuf_sim::Nanos::ZERO, "schedule collapsed to a burst");
        // The whole schedule fits in a small multiple of the nominal span
        // (n gaps of frame_bits / rate), so a consumer draining it never
        // waits unboundedly for the next departure.
        let wire_bits = deps[0].packet.wire_len() as f64 * 8.0;
        let nominal_secs = (n as f64) * wire_bits / 100e6;
        prop_assert!(
            span.as_secs_f64() < nominal_secs * 8.0,
            "span {:.4}s vs nominal {:.4}s — the generator stalled",
            span.as_secs_f64(),
            nominal_secs
        );
    }

    /// Poisson pacing hits the requested mean rate too (wider tolerance:
    /// the span of 400 exponential gaps has ~5 % relative spread).
    #[test]
    fn poisson_mean_rate_is_respected(
        rate in 5u64..100,
        seed in any::<u64>(),
    ) {
        let n = 400;
        let deps = single_packet_flows(&cfg(rate, 1000, 0, ArrivalProcess::Poisson), n, seed);
        let span = deps.last().unwrap().at - deps[0].at;
        let measured = (n as f64 - 1.0) * 1000.0 * 8.0 / span.as_secs_f64() / 1e6;
        prop_assert!(
            (measured - rate as f64).abs() < rate as f64 * 0.25,
            "wanted {rate} Mbps, measured {measured:.2}"
        );
    }

    #[test]
    fn tcp_scenario_is_one_flow_with_gap(
        first in 1usize..20,
        second in 1usize..40,
        gap_ms in 100u64..10_000,
        seed in any::<u64>(),
    ) {
        let gap = sdnbuf_sim::Nanos::from_millis(gap_ms);
        let deps = tcp_with_idle_gap(&cfg(50, 1000, 20, ArrivalProcess::Cbr), first, gap, second, seed);
        prop_assert_eq!(deps.len(), 2 + first + second);
        prop_assert!(is_time_ordered(&deps));
        let keys: HashSet<_> = deps.iter().map(|d| FlowKey::of(&d.packet).unwrap()).collect();
        prop_assert_eq!(keys.len(), 1);
        // The idle gap sits between the bursts.
        let last_first_burst = deps[1 + first].at;
        let first_second_burst = deps[2 + first].at;
        prop_assert!(first_second_burst - last_first_burst >= gap);
    }
}
