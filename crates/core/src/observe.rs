//! Exporters over the structured event stream: JSONL dumps, Chrome
//! trace-event timelines (openable in Perfetto / `chrome://tracing`), and
//! a periodic time-series sampler written as TSV.
//!
//! All three exporters are pure functions of recorded [`Event`]s, so their
//! output inherits the stream's determinism: a fixed seed yields
//! byte-for-byte identical files regardless of worker count (asserted by
//! `tests/observability.rs`).
//!
//! # Timeline format
//!
//! [`export_timeline`] writes the Chrome trace-event JSON array format.
//! Each sweep run becomes a process (`pid`), with four tracks (`tid`):
//! `switch`, `bus`, `channel`, and `controller` (plus `links` for data
//! ports). A flow-setup transaction is stitched across tracks by flow
//! events (`ph: "s"/"t"/"f"`) keyed on the OpenFlow `xid`, so
//! `packet_in → flow_mod → packet_out → drain` renders as linked spans.

use crate::experiment::RunEvents;
use sdnbuf_sim::{ChannelDir, Event, EventKind, EventSink, JsonlSink, Nanos};
use std::fmt::Write as _;
use std::io::{self, Write};

/// Track ids used by the timeline exporter, in display order.
const TID_SWITCH: u32 = 1;
const TID_BUS: u32 = 2;
const TID_CHANNEL: u32 = 3;
const TID_CONTROLLER: u32 = 4;
const TID_LINKS: u32 = 5;

/// The per-line run-identity prefix stamped onto sweep JSONL exports:
/// `"run":{"mode":"buffer-16","rate_mbps":100,"rep":3},`.
pub fn run_prefix(label: &str, rate_mbps: u64, rep: usize) -> String {
    format!("\"run\":{{\"mode\":\"{label}\",\"rate_mbps\":{rate_mbps},\"rep\":{rep}}},")
}

/// Streams `events` as JSON Lines to `w`, one object per event, with
/// `prefix` inserted into every object (pass `""` for none). Returns the
/// number of lines written.
///
/// # Errors
///
/// An [`io::ErrorKind::WriteZero`] error when the writer failed part-way
/// (the sink itself swallows write errors and stops counting).
pub fn write_events_jsonl(events: &[Event], prefix: &str, w: &mut dyn Write) -> io::Result<u64> {
    let mut sink = JsonlSink::with_prefix(w, prefix.to_string());
    for &event in events {
        sink.emit(event);
    }
    let written = sink.written();
    if written < events.len() as u64 {
        return Err(io::Error::new(
            io::ErrorKind::WriteZero,
            format!("wrote {written} of {} events", events.len()),
        ));
    }
    Ok(written)
}

/// A 64-bit FNV-1a digest of the canonical JSONL rendering of an event
/// stream. Two runs are byte-identical exactly when their digests (and
/// event counts) match — the equality the chaos harness's replay command
/// asserts without storing full streams.
pub fn events_digest(events: &[Event]) -> u64 {
    let mut bytes = Vec::new();
    write_events_jsonl(events, "", &mut bytes).expect("Vec<u8> writes cannot fail");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Streams a whole traced sweep as JSON Lines: every run's events in grid
/// order, each line stamped with its [`run_prefix`]. Returns the total
/// line count.
///
/// # Errors
///
/// Propagates the first failed write (see [`write_events_jsonl`]).
pub fn export_sweep_jsonl(runs: &[RunEvents], w: &mut dyn Write) -> io::Result<u64> {
    let mut total = 0;
    for run in runs {
        let prefix = run_prefix(&run.label, run.key.rate_mbps, run.rep);
        total += write_events_jsonl(&run.events, &prefix, w)?;
    }
    Ok(total)
}

/// Microseconds with fixed 3-decimal nanosecond remainder, via integer
/// math only — `f64` never touches a timestamp, keeping exports
/// byte-deterministic.
fn ts_us(at: Nanos) -> String {
    let ns = at.as_nanos();
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn dur_us(from: Nanos, to: Nanos) -> String {
    ts_us(to.saturating_sub(from))
}

/// One run's pid-unique flow id: xids are unique within a run but repeat
/// across runs, so the pid disambiguates.
fn flow_id(pid: u64, xid: u32) -> u64 {
    (pid << 32) | u64::from(xid)
}

/// Internal accumulator for the timeline's JSON array.
struct TimelineWriter<'w> {
    w: &'w mut dyn Write,
    first: bool,
    scratch: String,
}

impl<'w> TimelineWriter<'w> {
    fn new(w: &'w mut dyn Write) -> TimelineWriter<'w> {
        TimelineWriter {
            w,
            first: true,
            scratch: String::with_capacity(160),
        }
    }

    /// Emits one trace entry; `body` is everything inside the braces.
    fn entry(&mut self, body: std::fmt::Arguments<'_>) -> io::Result<()> {
        self.scratch.clear();
        if self.first {
            self.first = false;
        } else {
            self.scratch.push_str(",\n");
        }
        self.scratch.push('{');
        let _ = self.scratch.write_fmt(body);
        self.scratch.push('}');
        self.w.write_all(self.scratch.as_bytes())
    }
}

/// Writes a Chrome trace-event / Perfetto timeline for the given traced
/// runs. Open the file at <https://ui.perfetto.dev> or
/// `chrome://tracing`.
///
/// # Errors
///
/// Propagates writer failures.
pub fn export_timeline(runs: &[RunEvents], w: &mut dyn Write) -> io::Result<()> {
    w.write_all(b"{\"traceEvents\":[\n")?;
    let mut out = TimelineWriter::new(w);
    for (idx, run) in runs.iter().enumerate() {
        let pid = idx as u64 + 1;
        out.entry(format_args!(
            "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{} @ {} Mbps rep {}\"}}",
            run.label, run.key.rate_mbps, run.rep
        ))?;
        for (tid, name) in [
            (TID_SWITCH, "switch"),
            (TID_BUS, "bus"),
            (TID_CHANNEL, "channel"),
            (TID_CONTROLLER, "controller"),
            (TID_LINKS, "links"),
        ] {
            out.entry(format_args!(
                "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}"
            ))?;
        }
        write_run_timeline(&mut out, pid, &run.events)?;
    }
    w.write_all(b"\n],\"displayTimeUnit\":\"ms\"}\n")
}

/// [`export_timeline`] for a single unlabelled run (e.g. `sdnlab run
/// --timeline`).
///
/// # Errors
///
/// Propagates writer failures.
pub fn export_run_timeline(
    label: &str,
    rate_mbps: u64,
    events: Vec<Event>,
    w: &mut dyn Write,
) -> io::Result<()> {
    let runs = [RunEvents {
        key: crate::CellKey::new(crate::BufferMode::NoBuffer, rate_mbps),
        label: label.to_string(),
        rep: 0,
        events,
    }];
    // The key's mode is only used for its label, which we override above —
    // export_timeline never reads `key.mode` directly.
    export_timeline(&runs, w)
}

fn write_run_timeline(out: &mut TimelineWriter<'_>, pid: u64, events: &[Event]) -> io::Result<()> {
    // Controller handling spans: packet_in ingested -> last reply emitted,
    // per xid, kept in first-seen order for determinism.
    let mut handling: Vec<(u32, Nanos, Nanos)> = Vec::new();
    let find = |v: &mut Vec<(u32, Nanos, Nanos)>, xid: u32| -> Option<usize> {
        v.iter().position(|&(x, _, _)| x == xid)
    };

    for event in events {
        let at = event.at;
        let ts = ts_us(at);
        match event.kind {
            EventKind::LinkTx { link, bytes, arrive } => out.entry(format_args!(
                "\"name\":\"{link}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{TID_LINKS},\"ts\":{ts},\"dur\":{},\"args\":{{\"bytes\":{bytes}}}",
                dur_us(at, arrive)
            ))?,
            EventKind::LinkDrop { link, bytes } => out.entry(format_args!(
                "\"name\":\"drop {link}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_LINKS},\"ts\":{ts},\"args\":{{\"bytes\":{bytes}}}"
            ))?,
            EventKind::BusTransfer { bus, bytes, done } => out.entry(format_args!(
                "\"name\":\"{bus}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{TID_BUS},\"ts\":{ts},\"dur\":{},\"args\":{{\"bytes\":{bytes}}}",
                dur_us(at, done)
            ))?,
            EventKind::TableMiss { in_port, bytes } => out.entry(format_args!(
                "\"name\":\"table_miss\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts},\"args\":{{\"in_port\":{in_port},\"bytes\":{bytes}}}"
            ))?,
            EventKind::PacketInSent { xid, buffer_id, bytes } => {
                out.entry(format_args!(
                    "\"name\":\"packet_in\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts},\"args\":{{\"xid\":{xid},\"buffer_id\":{buffer_id},\"bytes\":{bytes}}}"
                ))?;
                out.entry(format_args!(
                    "\"name\":\"flow-setup\",\"cat\":\"flow-setup\",\"ph\":\"s\",\"id\":{},\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts}",
                    flow_id(pid, xid)
                ))?;
            }
            EventKind::FlowRuleInstalled { xid, effective_at, table_size } => out.entry(format_args!(
                "\"name\":\"install_rule\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts},\"dur\":{},\"args\":{{\"xid\":{xid},\"table_size\":{table_size}}}",
                dur_us(at, effective_at)
            ))?,
            EventKind::FlowRuleEvicted { table_size } => out.entry(format_args!(
                "\"name\":\"evict_rule\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts},\"args\":{{\"table_size\":{table_size}}}"
            ))?,
            EventKind::FlowRuleExpired { table_size } => out.entry(format_args!(
                "\"name\":\"expire_rule\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts},\"args\":{{\"table_size\":{table_size}}}"
            ))?,
            EventKind::BufferEnqueue { buffer_id, occupancy, fresh } => out.entry(format_args!(
                "\"name\":\"buffer_enqueue\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts},\"args\":{{\"buffer_id\":{buffer_id},\"occupancy\":{occupancy},\"fresh\":{fresh}}}"
            ))?,
            EventKind::BufferDrain { xid, buffer_id, released, occupancy } => {
                out.entry(format_args!(
                    "\"name\":\"buffer_drain\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts},\"args\":{{\"xid\":{xid},\"buffer_id\":{buffer_id},\"released\":{released},\"occupancy\":{occupancy}}}"
                ))?;
                out.entry(format_args!(
                    "\"name\":\"flow-setup\",\"cat\":\"flow-setup\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts}",
                    flow_id(pid, xid)
                ))?;
            }
            EventKind::BufferRerequest { buffer_id, occupancy } => out.entry(format_args!(
                "\"name\":\"buffer_rerequest\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts},\"args\":{{\"buffer_id\":{buffer_id},\"occupancy\":{occupancy}}}"
            ))?,
            EventKind::BufferReconcile { buffer_id, occupancy } => out.entry(format_args!(
                "\"name\":\"buffer_reconcile\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts},\"args\":{{\"buffer_id\":{buffer_id},\"occupancy\":{occupancy}}}"
            ))?,
            EventKind::BufferFallback { occupancy } => out.entry(format_args!(
                "\"name\":\"buffer_fallback\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts},\"args\":{{\"occupancy\":{occupancy}}}"
            ))?,
            EventKind::BufferExpire { buffer_id, occupancy } => out.entry(format_args!(
                "\"name\":\"buffer_expire\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts},\"args\":{{\"buffer_id\":{buffer_id},\"occupancy\":{occupancy}}}"
            ))?,
            EventKind::BufferGiveUp { buffer_id, drained, action, occupancy } => out.entry(format_args!(
                "\"name\":\"buffer_give_up\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts},\"args\":{{\"buffer_id\":{buffer_id},\"drained\":{drained},\"action\":\"{action}\",\"occupancy\":{occupancy}}}"
            ))?,
            EventKind::DegradedEnter { giveups } => out.entry(format_args!(
                "\"name\":\"degraded_enter\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts},\"args\":{{\"giveups\":{giveups}}}"
            ))?,
            EventKind::DegradedExit { suppressed } => out.entry(format_args!(
                "\"name\":\"degraded_exit\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts},\"args\":{{\"suppressed\":{suppressed}}}"
            ))?,
            EventKind::AdmissionShed { xid, bytes, buffered } => out.entry(format_args!(
                "\"name\":\"admission_shed\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_CONTROLLER},\"ts\":{ts},\"args\":{{\"xid\":{xid},\"bytes\":{bytes},\"buffered\":{buffered}}}"
            ))?,
            EventKind::PacketInReceived { xid, bytes, buffered } => {
                out.entry(format_args!(
                    "\"name\":\"packet_in_received\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_CONTROLLER},\"ts\":{ts},\"args\":{{\"xid\":{xid},\"bytes\":{bytes},\"buffered\":{buffered}}}"
                ))?;
                out.entry(format_args!(
                    "\"name\":\"flow-setup\",\"cat\":\"flow-setup\",\"ph\":\"t\",\"id\":{},\"pid\":{pid},\"tid\":{TID_CONTROLLER},\"ts\":{ts}",
                    flow_id(pid, xid)
                ))?;
                match find(&mut handling, xid) {
                    Some(i) => handling[i] = (xid, at, at),
                    None => handling.push((xid, at, at)),
                }
            }
            EventKind::Decision { xid, action } => {
                out.entry(format_args!(
                    "\"name\":\"decide: {action}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_CONTROLLER},\"ts\":{ts},\"args\":{{\"xid\":{xid}}}"
                ))?;
                if let Some(i) = find(&mut handling, xid) {
                    handling[i].2 = handling[i].2.max(at);
                }
            }
            EventKind::FlowModSent { xid } | EventKind::PacketOutSent { xid, .. } => {
                if let Some(i) = find(&mut handling, xid) {
                    handling[i].2 = handling[i].2.max(at);
                }
            }
            EventKind::CtrlMsg { dir, xid, bytes, label, arrive } => {
                out.entry(format_args!(
                    "\"name\":\"{label}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{TID_CHANNEL},\"ts\":{ts},\"dur\":{},\"args\":{{\"xid\":{xid},\"bytes\":{bytes},\"dir\":\"{}\"}}",
                    dur_us(at, arrive),
                    dir.label()
                ))?;
                if matches!(label, "packet_in" | "flow_mod" | "packet_out") {
                    out.entry(format_args!(
                        "\"name\":\"flow-setup\",\"cat\":\"flow-setup\",\"ph\":\"t\",\"id\":{},\"pid\":{pid},\"tid\":{TID_CHANNEL},\"ts\":{ts}",
                        flow_id(pid, xid)
                    ))?;
                }
            }
            EventKind::CtrlDrop { dir, xid, bytes, label } => out.entry(format_args!(
                "\"name\":\"drop {label}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_CHANNEL},\"ts\":{ts},\"args\":{{\"xid\":{xid},\"bytes\":{bytes},\"dir\":\"{}\"}}",
                dir.label()
            ))?,
            EventKind::CtrlCrash { epoch, role } => out.entry(format_args!(
                "\"name\":\"ctrl_crash ({role})\",\"ph\":\"i\",\"s\":\"g\",\"pid\":{pid},\"tid\":{TID_CONTROLLER},\"ts\":{ts},\"args\":{{\"epoch\":{epoch},\"role\":\"{role}\"}}"
            ))?,
            EventKind::CtrlRestart { epoch, role } => out.entry(format_args!(
                "\"name\":\"ctrl_restart ({role})\",\"ph\":\"i\",\"s\":\"g\",\"pid\":{pid},\"tid\":{TID_CONTROLLER},\"ts\":{ts},\"args\":{{\"epoch\":{epoch},\"role\":\"{role}\"}}"
            ))?,
            EventKind::FailoverTakeover { epoch, sync } => out.entry(format_args!(
                "\"name\":\"failover_takeover\",\"ph\":\"i\",\"s\":\"g\",\"pid\":{pid},\"tid\":{TID_CONTROLLER},\"ts\":{ts},\"args\":{{\"epoch\":{epoch},\"sync\":\"{sync}\"}}"
            ))?,
            EventKind::EpochBump { from, to, survivors } => out.entry(format_args!(
                "\"name\":\"epoch_bump\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts},\"args\":{{\"from\":{from},\"to\":{to},\"survivors\":{survivors}}}"
            ))?,
            EventKind::StaleEpochReject { xid, buffer_id, epoch, current } => out.entry(format_args!(
                "\"name\":\"stale_epoch_reject\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{TID_SWITCH},\"ts\":{ts},\"args\":{{\"xid\":{xid},\"buffer_id\":{buffer_id},\"epoch\":{epoch},\"current\":{current}}}"
            ))?,
        }
    }

    // The controller's per-xid handling spans, in first-ingest order.
    for (xid, start, end) in handling {
        out.entry(format_args!(
            "\"name\":\"handle xid {xid}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{TID_CONTROLLER},\"ts\":{},\"dur\":{},\"args\":{{\"xid\":{xid}}}",
            ts_us(start),
            dur_us(start, end)
        ))?;
    }
    Ok(())
}

/// One sampling window of [`sample_series`]: instantaneous gauges at the
/// window's end plus per-window control-channel throughput.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Window end (exclusive).
    pub t: Nanos,
    /// Buffer occupancy (packets) as of the last buffer event seen.
    pub occupancy: usize,
    /// Flow-table size as of the last table event seen.
    pub table_size: usize,
    /// Switch→controller load within the window, Mbps.
    pub to_controller_mbps: f64,
    /// Controller→switch load within the window, Mbps.
    pub to_switch_mbps: f64,
}

/// Buckets an event stream into windows of `every`, tracking buffer
/// occupancy, flow-table size, and per-direction control-channel
/// throughput. Gauges carry forward across empty windows; the final
/// partial window is emitted too.
///
/// # Panics
///
/// Panics when `every` is zero.
pub fn sample_series(events: &[Event], every: Nanos) -> Vec<Sample> {
    assert!(every > Nanos::ZERO, "sampling interval must be positive");
    // Emission order is call order, and a component may emit with a
    // timestamp in its near future (e.g. a rule's effective instant), so
    // order by time first — stably, to keep ties deterministic.
    let mut ordered: Vec<&Event> = events.iter().collect();
    ordered.sort_by_key(|e| e.at);
    let events = ordered;
    let mut samples = Vec::new();
    let mut occupancy = 0usize;
    let mut table_size = 0usize;
    let mut bytes_to_controller = 0u64;
    let mut bytes_to_switch = 0u64;
    let mut window_end = every;
    let window_secs = every.as_secs_f64();
    let mbps = |bytes: u64| bytes as f64 * 8.0 / window_secs / 1e6;

    for event in &events {
        while event.at >= window_end {
            samples.push(Sample {
                t: window_end,
                occupancy,
                table_size,
                to_controller_mbps: mbps(bytes_to_controller),
                to_switch_mbps: mbps(bytes_to_switch),
            });
            bytes_to_controller = 0;
            bytes_to_switch = 0;
            window_end += every;
        }
        match event.kind {
            EventKind::BufferEnqueue { occupancy: o, .. }
            | EventKind::BufferDrain { occupancy: o, .. }
            | EventKind::BufferRerequest { occupancy: o, .. }
            | EventKind::BufferFallback { occupancy: o }
            | EventKind::BufferExpire { occupancy: o, .. }
            | EventKind::BufferGiveUp { occupancy: o, .. } => occupancy = o,
            EventKind::FlowRuleInstalled { table_size: t, .. }
            | EventKind::FlowRuleEvicted { table_size: t }
            | EventKind::FlowRuleExpired { table_size: t } => table_size = t,
            EventKind::CtrlMsg { dir, bytes, .. } => match dir {
                ChannelDir::ToController => bytes_to_controller += bytes as u64,
                ChannelDir::ToSwitch => bytes_to_switch += bytes as u64,
            },
            _ => {}
        }
    }
    if !events.is_empty() {
        samples.push(Sample {
            t: window_end,
            occupancy,
            table_size,
            to_controller_mbps: mbps(bytes_to_controller),
            to_switch_mbps: mbps(bytes_to_switch),
        });
    }
    samples
}

/// Writes samples as TSV (`results/*.tsv` style): header then one row per
/// window. Times are milliseconds with microsecond precision, rendered by
/// integer math for byte determinism.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_series_tsv(samples: &[Sample], w: &mut dyn Write) -> io::Result<()> {
    writeln!(
        w,
        "t_ms\tbuffer_occupancy\tflow_table_size\tto_controller_mbps\tto_switch_mbps"
    )?;
    for s in samples {
        let ns = s.t.as_nanos();
        writeln!(
            w,
            "{}.{:03}\t{}\t{}\t{:.3}\t{:.3}",
            ns / 1_000_000,
            (ns / 1000) % 1000,
            s.occupancy,
            s.table_size,
            s.to_controller_mbps,
            s.to_switch_mbps
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufferMode, Experiment, ExperimentConfig, WorkloadKind};
    use sdnbuf_sim::BitRate;

    fn traced_run() -> Vec<Event> {
        let (_result, events) = Experiment::new(ExperimentConfig {
            buffer: BufferMode::PacketGranularity { capacity: 16 },
            workload: WorkloadKind::single_packet_flows(10),
            sending_rate: BitRate::from_mbps(20),
            seed: 3,
            ..ExperimentConfig::default()
        })
        .run_traced();
        events
    }

    #[test]
    fn traced_run_produces_events_of_every_layer() {
        let events = traced_run();
        assert!(!events.is_empty());
        let has = |pred: fn(&EventKind) -> bool| events.iter().any(|e| pred(&e.kind));
        assert!(has(|k| matches!(k, EventKind::LinkTx { .. })), "link layer");
        assert!(has(|k| matches!(k, EventKind::TableMiss { .. })), "switch");
        assert!(
            has(|k| matches!(k, EventKind::BufferEnqueue { .. })),
            "buffer"
        );
        assert!(
            has(|k| matches!(k, EventKind::PacketInReceived { .. })),
            "controller"
        );
        assert!(has(|k| matches!(k, EventKind::CtrlMsg { .. })), "channel");
        assert!(has(|k| matches!(k, EventKind::BufferDrain { .. })), "drain");
    }

    #[test]
    fn jsonl_export_is_line_per_event_with_prefix() {
        let events = traced_run();
        let mut buf = Vec::new();
        let n = write_events_jsonl(&events, &run_prefix("buffer-16", 20, 0), &mut buf).unwrap();
        assert_eq!(n, events.len() as u64);
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for line in &lines {
            assert!(
                line.starts_with(
                    "{\"run\":{\"mode\":\"buffer-16\",\"rate_mbps\":20,\"rep\":0},\"at\":"
                ),
                "{line}"
            );
            assert!(line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn timeline_contains_linked_flow_spans() {
        let events = traced_run();
        let mut buf = Vec::new();
        export_run_timeline("buffer-16", 20, events, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"s\""), "flow start");
        assert!(text.contains("\"ph\":\"t\""), "flow step");
        assert!(text.contains("\"ph\":\"f\""), "flow finish");
        assert!(text.contains("\"name\":\"install_rule\""));
        assert!(text.contains("\"name\":\"handle xid"));
        assert!(text.contains("\"name\":\"channel\""));
    }

    #[test]
    fn sampler_windows_and_carries_gauges() {
        let events = [
            Event {
                at: Nanos::from_millis(1),
                kind: EventKind::BufferEnqueue {
                    buffer_id: 1,
                    occupancy: 3,
                    fresh: true,
                },
            },
            Event {
                at: Nanos::from_millis(1),
                kind: EventKind::CtrlMsg {
                    dir: ChannelDir::ToController,
                    xid: 1,
                    bytes: 125_000,
                    label: "packet_in",
                    arrive: Nanos::from_millis(2),
                },
            },
            Event {
                at: Nanos::from_millis(25),
                kind: EventKind::FlowRuleInstalled {
                    xid: 1,
                    effective_at: Nanos::from_millis(26),
                    table_size: 7,
                },
            },
        ];
        let samples = sample_series(&events, Nanos::from_millis(10));
        assert_eq!(samples.len(), 3);
        // Window 1: the enqueue + 125 kB in 10 ms = 100 Mbps.
        assert_eq!(samples[0].occupancy, 3);
        assert!((samples[0].to_controller_mbps - 100.0).abs() < 1e-9);
        // Window 2: gauges carry, no new bytes.
        assert_eq!(samples[1].occupancy, 3);
        assert_eq!(samples[1].to_controller_mbps, 0.0);
        assert_eq!(samples[1].table_size, 0);
        // Window 3: the rule install shows up.
        assert_eq!(samples[2].table_size, 7);

        let mut buf = Vec::new();
        write_series_tsv(&samples, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("t_ms\tbuffer_occupancy"), "{text}");
        assert!(text.contains("10.000\t3\t0\t100.000\t0.000"), "{text}");
    }

    #[test]
    fn empty_stream_yields_no_samples() {
        assert!(sample_series(&[], Nanos::from_millis(1)).is_empty());
    }
}
