//! Experiments: one run, and the paper's rate sweeps.

use crate::{BufferMode, RunResult, Testbed, TestbedConfig};
use sdnbuf_sim::{BitRate, Nanos};
use sdnbuf_workload::{
    cross_sequenced_flows, mixed_udp_tcp, single_packet_flows, tcp_with_idle_gap, Departure,
    PktgenConfig,
};

/// Which traffic the workload generator produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Section IV: `n_flows` single-packet UDP flows with forged sources.
    SinglePacketFlows {
        /// Number of flows (= packets). The paper uses 1000.
        n_flows: usize,
    },
    /// Section V: `n_flows × packets_per_flow` packets, cross-sequenced in
    /// batches of `group_size` flows.
    CrossSequenced {
        /// Number of flows (paper: 50).
        n_flows: usize,
        /// Packets per flow (paper: 20).
        packets_per_flow: usize,
        /// Flows interleaved per batch (paper: 5).
        group_size: usize,
    },
    /// Section VI.B: a TCP connection with an idle gap long enough for its
    /// rule to expire, then a resumed burst.
    TcpEviction {
        /// Segments before the idle gap.
        first_burst: usize,
        /// The idle gap.
        idle_gap: Nanos,
        /// Segments after the gap.
        second_burst: usize,
    },
    /// A UDP flow flood mixed with well-behaved TCP connections.
    MixedUdpTcp {
        /// Single-packet UDP flows.
        n_udp_flows: usize,
        /// TCP connections.
        n_tcp: usize,
        /// Data segments per TCP connection.
        segments_per_tcp: usize,
    },
}

impl WorkloadKind {
    /// Section IV's workload at a custom flow count.
    pub fn single_packet_flows(n_flows: usize) -> WorkloadKind {
        WorkloadKind::SinglePacketFlows { n_flows }
    }

    /// The exact Section IV workload: 1000 single-packet flows.
    pub fn paper_section_iv() -> WorkloadKind {
        WorkloadKind::SinglePacketFlows { n_flows: 1000 }
    }

    /// The exact Section V workload: 50 flows × 20 packets, cross-sequenced
    /// in groups of 5.
    pub fn paper_section_v() -> WorkloadKind {
        WorkloadKind::CrossSequenced {
            n_flows: 50,
            packets_per_flow: 20,
            group_size: 5,
        }
    }

    /// Generates the departures for this workload.
    pub fn generate(&self, pktgen: &PktgenConfig, seed: u64) -> Vec<Departure> {
        match *self {
            WorkloadKind::SinglePacketFlows { n_flows } => {
                single_packet_flows(pktgen, n_flows, seed)
            }
            WorkloadKind::CrossSequenced {
                n_flows,
                packets_per_flow,
                group_size,
            } => cross_sequenced_flows(pktgen, n_flows, packets_per_flow, group_size, seed),
            WorkloadKind::TcpEviction {
                first_burst,
                idle_gap,
                second_burst,
            } => tcp_with_idle_gap(pktgen, first_burst, idle_gap, second_burst, seed),
            WorkloadKind::MixedUdpTcp {
                n_udp_flows,
                n_tcp,
                segments_per_tcp,
            } => mixed_udp_tcp(pktgen, n_udp_flows, n_tcp, segments_per_tcp, seed),
        }
    }
}

/// Configuration of one experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Buffer mechanism under test.
    pub buffer: BufferMode,
    /// Traffic to offer.
    pub workload: WorkloadKind,
    /// Sending rate.
    pub sending_rate: BitRate,
    /// Ethernet frame size (paper: 1000 bytes).
    pub frame_size: usize,
    /// Seed for the workload's departure jitter.
    pub seed: u64,
    /// The testbed (its `switch.buffer` is overridden by `buffer`).
    pub testbed: TestbedConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            buffer: BufferMode::NoBuffer,
            workload: WorkloadKind::paper_section_iv(),
            sending_rate: BitRate::from_mbps(50),
            frame_size: 1000,
            seed: 1,
            testbed: TestbedConfig::default(),
        }
    }
}

/// One experiment: a (buffer, workload, rate, seed) combination.
#[derive(Clone, Debug)]
pub struct Experiment {
    config: ExperimentConfig,
}

impl Experiment {
    /// Creates the experiment.
    pub fn new(config: ExperimentConfig) -> Experiment {
        Experiment { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Runs it on a fresh testbed and returns the measurements.
    pub fn run(&mut self) -> RunResult {
        let mut testbed_cfg = self.config.testbed.clone();
        testbed_cfg.switch.buffer = self.config.buffer;
        let pktgen = PktgenConfig {
            rate: self.config.sending_rate,
            frame_size: self.config.frame_size,
            ..PktgenConfig::default()
        };
        let departures = self.config.workload.generate(&pktgen, self.config.seed);
        let mut testbed = Testbed::new(testbed_cfg);
        let mut result = testbed.run(&departures);
        result.sending_rate_mbps = self.config.sending_rate.as_mbps_f64();
        result
    }
}

/// One cell of a sweep: all repetitions of a (buffer, rate) combination.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// The buffer mechanism's label.
    pub label: String,
    /// The sending rate in Mbps.
    pub rate_mbps: u64,
    /// One [`RunResult`] per repetition.
    pub runs: Vec<RunResult>,
}

/// The results of a full sweep.
#[derive(Clone, Debug, Default)]
pub struct SweepResult {
    /// All cells, grouped by buffer then rate.
    pub cells: Vec<SweepCell>,
}

impl SweepResult {
    /// Labels in sweep order (deduplicated).
    pub fn labels(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.label) {
                out.push(c.label.clone());
            }
        }
        out
    }

    /// Rates in sweep order (deduplicated).
    pub fn rates(&self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.rate_mbps) {
                out.push(c.rate_mbps);
            }
        }
        out
    }

    /// The cell for (label, rate), if present.
    pub fn cell(&self, label: &str, rate_mbps: u64) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.label == label && c.rate_mbps == rate_mbps)
    }

    /// Mean of `metric` over the repetitions of (label, rate).
    pub fn mean_at(&self, label: &str, rate_mbps: u64, metric: impl Fn(&RunResult) -> f64) -> f64 {
        self.cell(label, rate_mbps)
            .map_or(0.0, |c| RunResult::mean_over(&c.runs, metric))
    }

    /// Mean of `metric` for a label across the entire sweep (all rates,
    /// all repetitions) — how the paper reports "on average" numbers.
    pub fn sweep_mean(&self, label: &str, metric: impl Fn(&RunResult) -> f64 + Copy) -> f64 {
        let rates = self.rates();
        if rates.is_empty() {
            return 0.0;
        }
        rates
            .iter()
            .map(|&r| self.mean_at(label, r, metric))
            .sum::<f64>()
            / rates.len() as f64
    }
}

/// A full sweep: buffers × rates × repetitions, the paper's experimental
/// procedure ("we repeat the experiments at each sending rate for 20
/// times").
#[derive(Clone, Debug)]
pub struct RateSweep {
    /// Sending rates in Mbps.
    pub rates_mbps: Vec<u64>,
    /// Buffer mechanisms to compare.
    pub buffers: Vec<BufferMode>,
    /// The workload.
    pub workload: WorkloadKind,
    /// Repetitions per (buffer, rate) cell.
    pub repetitions: usize,
    /// Base seed; repetition `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Frame size in bytes.
    pub frame_size: usize,
    /// The testbed configuration.
    pub testbed: TestbedConfig,
}

impl RateSweep {
    /// The paper's 5–100 Mbps rate grid in 5 Mbps steps.
    pub fn paper_rates() -> Vec<u64> {
        (1..=20).map(|i| i * 5).collect()
    }

    /// The Section IV sweep: {no-buffer, buffer-16, buffer-256} × 1000
    /// single-packet flows.
    pub fn paper_section_iv(repetitions: usize) -> RateSweep {
        RateSweep {
            rates_mbps: Self::paper_rates(),
            buffers: vec![
                BufferMode::NoBuffer,
                BufferMode::PacketGranularity { capacity: 16 },
                BufferMode::PacketGranularity { capacity: 256 },
            ],
            workload: WorkloadKind::paper_section_iv(),
            repetitions,
            base_seed: 42,
            frame_size: 1000,
            testbed: TestbedConfig::default(),
        }
    }

    /// The Section V sweep: {packet-granularity-256, flow-granularity-256}
    /// × 50 flows of 20 packets.
    pub fn paper_section_v(repetitions: usize) -> RateSweep {
        RateSweep {
            rates_mbps: Self::paper_rates(),
            buffers: vec![
                BufferMode::PacketGranularity { capacity: 256 },
                BufferMode::FlowGranularity {
                    capacity: 256,
                    timeout: Nanos::from_millis(50),
                },
            ],
            workload: WorkloadKind::paper_section_v(),
            repetitions,
            base_seed: 42,
            frame_size: 1000,
            testbed: TestbedConfig::default(),
        }
    }

    /// Runs the whole grid. `progress` (if given) is called after each
    /// completed cell with (done, total).
    pub fn run_with_progress(&self, mut progress: Option<&mut dyn FnMut(usize, usize)>) -> SweepResult {
        let total = self.buffers.len() * self.rates_mbps.len();
        let mut done = 0;
        let mut result = SweepResult::default();
        for &buffer in &self.buffers {
            for &rate in &self.rates_mbps {
                let mut runs = Vec::with_capacity(self.repetitions);
                for rep in 0..self.repetitions {
                    let mut exp = Experiment::new(ExperimentConfig {
                        buffer,
                        workload: self.workload,
                        sending_rate: BitRate::from_mbps(rate),
                        frame_size: self.frame_size,
                        seed: self.base_seed + rep as u64,
                        testbed: self.testbed.clone(),
                    });
                    runs.push(exp.run());
                }
                result.cells.push(SweepCell {
                    label: buffer.label(),
                    rate_mbps: rate,
                    runs,
                });
                done += 1;
                if let Some(cb) = progress.as_deref_mut() {
                    cb(done, total);
                }
            }
        }
        result
    }

    /// Runs the whole grid silently.
    pub fn run(&self) -> SweepResult {
        self.run_with_progress(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_experiment_completes() {
        let mut exp = Experiment::new(ExperimentConfig {
            buffer: BufferMode::PacketGranularity { capacity: 64 },
            workload: WorkloadKind::single_packet_flows(20),
            sending_rate: BitRate::from_mbps(10),
            seed: 3,
            ..ExperimentConfig::default()
        });
        let r = exp.run();
        assert_eq!(r.flows_completed, 20);
        assert_eq!(r.sending_rate_mbps, 10.0);
        assert_eq!(r.label, "buffer-64");
    }

    #[test]
    fn sweep_produces_all_cells() {
        let sweep = RateSweep {
            rates_mbps: vec![10, 20],
            buffers: vec![
                BufferMode::NoBuffer,
                BufferMode::PacketGranularity { capacity: 16 },
            ],
            workload: WorkloadKind::single_packet_flows(10),
            repetitions: 2,
            base_seed: 1,
            frame_size: 1000,
            testbed: TestbedConfig::default(),
        };
        let result = sweep.run();
        assert_eq!(result.cells.len(), 4);
        assert_eq!(result.labels(), vec!["no-buffer", "buffer-16"]);
        assert_eq!(result.rates(), vec![10, 20]);
        let cell = result.cell("no-buffer", 10).unwrap();
        assert_eq!(cell.runs.len(), 2);
        // Different seeds give different (but close) timings.
        assert!(result.mean_at("no-buffer", 10, |r| r.packets_delivered as f64) == 10.0);
    }

    #[test]
    fn sweep_mean_averages_rates() {
        let sweep = RateSweep {
            rates_mbps: vec![10, 20],
            buffers: vec![BufferMode::NoBuffer],
            workload: WorkloadKind::single_packet_flows(5),
            repetitions: 1,
            base_seed: 1,
            frame_size: 1000,
            testbed: TestbedConfig::default(),
        };
        let result = sweep.run();
        let m = result.sweep_mean("no-buffer", |r| r.packets_sent as f64);
        assert_eq!(m, 5.0);
        assert_eq!(result.sweep_mean("bogus", |r| r.packets_sent as f64), 0.0);
    }

    #[test]
    fn workload_kinds_generate() {
        let pg = PktgenConfig::default();
        assert_eq!(
            WorkloadKind::paper_section_iv().generate(&pg, 1).len(),
            1000
        );
        assert_eq!(WorkloadKind::paper_section_v().generate(&pg, 1).len(), 1000);
        let tcp = WorkloadKind::TcpEviction {
            first_burst: 3,
            idle_gap: Nanos::from_secs(6),
            second_burst: 4,
        }
        .generate(&pg, 1);
        assert_eq!(tcp.len(), 2 + 3 + 4);
        let mixed = WorkloadKind::MixedUdpTcp {
            n_udp_flows: 10,
            n_tcp: 2,
            segments_per_tcp: 3,
        }
        .generate(&pg, 1);
        assert_eq!(mixed.len(), 10 + 2 * 5);
    }

    #[test]
    fn progress_callback_fires_per_cell() {
        let sweep = RateSweep {
            rates_mbps: vec![10],
            buffers: vec![BufferMode::NoBuffer],
            workload: WorkloadKind::single_packet_flows(3),
            repetitions: 1,
            base_seed: 1,
            frame_size: 1000,
            testbed: TestbedConfig::default(),
        };
        let mut calls = Vec::new();
        sweep.run_with_progress(Some(&mut |done, total| calls.push((done, total))));
        assert_eq!(calls, vec![(1, 1)]);
    }
}
