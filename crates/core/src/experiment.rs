//! Experiments: one run, and the paper's rate sweeps.
//!
//! Sweeps are described with [`SweepBuilder`] (`RateSweep::builder()`) and
//! executed with [`RateSweep::run`] (serial) or [`RateSweep::run_with`]
//! (parallel, via the [`crate::executor`] worker pool). Every (buffer,
//! rate, repetition) run owns its seed and a fresh [`Testbed`], so the
//! result is bit-identical under any worker count.

use crate::executor::{Executor, NullSink, Parallelism, Progress, ProgressSink};
use crate::{BufferMode, Metric, RunResult, Testbed, TestbedConfig};
use sdnbuf_sim::{BitRate, Event, Nanos, Tracer};
use sdnbuf_workload::{
    cross_sequenced_flows, mixed_udp_tcp, single_packet_flows, tcp_with_idle_gap, Departure,
    PktgenConfig,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Which traffic the workload generator produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Section IV: `n_flows` single-packet UDP flows with forged sources.
    SinglePacketFlows {
        /// Number of flows (= packets). The paper uses 1000.
        n_flows: usize,
    },
    /// Section V: `n_flows × packets_per_flow` packets, cross-sequenced in
    /// batches of `group_size` flows.
    CrossSequenced {
        /// Number of flows (paper: 50).
        n_flows: usize,
        /// Packets per flow (paper: 20).
        packets_per_flow: usize,
        /// Flows interleaved per batch (paper: 5).
        group_size: usize,
    },
    /// Section VI.B: a TCP connection with an idle gap long enough for its
    /// rule to expire, then a resumed burst.
    TcpEviction {
        /// Segments before the idle gap.
        first_burst: usize,
        /// The idle gap.
        idle_gap: Nanos,
        /// Segments after the gap.
        second_burst: usize,
    },
    /// A UDP flow flood mixed with well-behaved TCP connections.
    MixedUdpTcp {
        /// Single-packet UDP flows.
        n_udp_flows: usize,
        /// TCP connections.
        n_tcp: usize,
        /// Data segments per TCP connection.
        segments_per_tcp: usize,
    },
}

impl WorkloadKind {
    /// Section IV's workload at a custom flow count.
    pub fn single_packet_flows(n_flows: usize) -> WorkloadKind {
        WorkloadKind::SinglePacketFlows { n_flows }
    }

    /// The exact Section IV workload: 1000 single-packet flows.
    pub fn paper_section_iv() -> WorkloadKind {
        WorkloadKind::SinglePacketFlows { n_flows: 1000 }
    }

    /// The exact Section V workload: 50 flows × 20 packets, cross-sequenced
    /// in groups of 5.
    pub fn paper_section_v() -> WorkloadKind {
        WorkloadKind::CrossSequenced {
            n_flows: 50,
            packets_per_flow: 20,
            group_size: 5,
        }
    }

    /// Generates the departures for this workload.
    pub fn generate(&self, pktgen: &PktgenConfig, seed: u64) -> Vec<Departure> {
        match *self {
            WorkloadKind::SinglePacketFlows { n_flows } => {
                single_packet_flows(pktgen, n_flows, seed)
            }
            WorkloadKind::CrossSequenced {
                n_flows,
                packets_per_flow,
                group_size,
            } => cross_sequenced_flows(pktgen, n_flows, packets_per_flow, group_size, seed),
            WorkloadKind::TcpEviction {
                first_burst,
                idle_gap,
                second_burst,
            } => tcp_with_idle_gap(pktgen, first_burst, idle_gap, second_burst, seed),
            WorkloadKind::MixedUdpTcp {
                n_udp_flows,
                n_tcp,
                segments_per_tcp,
            } => mixed_udp_tcp(pktgen, n_udp_flows, n_tcp, segments_per_tcp, seed),
        }
    }
}

/// Configuration of one experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Buffer mechanism under test.
    pub buffer: BufferMode,
    /// Traffic to offer.
    pub workload: WorkloadKind,
    /// Sending rate.
    pub sending_rate: BitRate,
    /// Ethernet frame size (paper: 1000 bytes).
    pub frame_size: usize,
    /// Seed for the workload's departure jitter.
    pub seed: u64,
    /// The testbed (its `switch.buffer` is overridden by `buffer`).
    pub testbed: TestbedConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            buffer: BufferMode::NoBuffer,
            workload: WorkloadKind::paper_section_iv(),
            sending_rate: BitRate::from_mbps(50),
            frame_size: 1000,
            seed: 1,
            testbed: TestbedConfig::default(),
        }
    }
}

impl ExperimentConfig {
    /// Checks the configuration — including the embedded testbed and its
    /// fault plan — for values that would panic or wedge the models
    /// mid-run, so misconfigurations fail loudly at construction instead.
    pub fn validate(&self) -> Result<(), String> {
        self.buffer.validate()?;
        if self.frame_size == 0 {
            return Err("frame size must be positive".to_owned());
        }
        if self.sending_rate.as_mbps_f64() <= 0.0 {
            return Err("sending rate must be positive".to_owned());
        }
        self.testbed.validate()
    }
}

/// One experiment: a (buffer, workload, rate, seed) combination.
#[derive(Clone, Debug)]
pub struct Experiment {
    config: ExperimentConfig,
}

impl Experiment {
    /// Creates the experiment.
    ///
    /// # Panics
    /// If the configuration is invalid — zero buffer capacity, a zero
    /// frame size, or an inconsistent fault plan (e.g. an every-nth loss
    /// of 0, which would divide by zero mid-run). See
    /// [`Experiment::try_new`] for the non-panicking form.
    pub fn new(config: ExperimentConfig) -> Experiment {
        match Experiment::try_new(config) {
            Ok(exp) => exp,
            Err(e) => panic!("invalid ExperimentConfig: {e}"),
        }
    }

    /// [`Experiment::new`] with the validation error returned instead of
    /// panicking — the single validation path for experiment construction.
    pub fn try_new(config: ExperimentConfig) -> Result<Experiment, String> {
        config.validate()?;
        Ok(Experiment { config })
    }

    /// The configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Runs it on a fresh testbed and returns the measurements.
    pub fn run(&mut self) -> RunResult {
        self.run_with_tracer(Tracer::off())
    }

    /// Runs it on a fresh testbed with the given event tracer attached
    /// (see [`Testbed::set_tracer`]).
    pub fn run_with_tracer(&mut self, tracer: Tracer) -> RunResult {
        let mut testbed_cfg = self.config.testbed.clone();
        testbed_cfg.switch.buffer = self.config.buffer;
        let pktgen = PktgenConfig {
            rate: self.config.sending_rate,
            frame_size: self.config.frame_size,
            ..PktgenConfig::default()
        };
        let departures = self.config.workload.generate(&pktgen, self.config.seed);
        let mut testbed = Testbed::new(testbed_cfg);
        testbed.set_tracer(tracer);
        let mut result = testbed.run(&departures);
        result.sending_rate_mbps = self.config.sending_rate.as_mbps_f64();
        result
    }

    /// Runs it with an unbounded recording sink attached and returns the
    /// measurements together with the structured event stream, in emission
    /// order. The stream is deterministic for a fixed configuration and
    /// seed — byte-identical JSONL across runs and worker counts.
    pub fn run_traced(&mut self) -> (RunResult, Vec<Event>) {
        let (tracer, sink) = Tracer::recording(0);
        let result = self.run_with_tracer(tracer);
        let events = sink.borrow_mut().take();
        (result, events)
    }
}

/// The identity of one sweep cell: which mechanism at which rate.
///
/// This replaces string-label lookups — a typo in a label is a compile
/// error here, not a silent `0.0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Buffer mechanism.
    pub mode: BufferMode,
    /// Sending rate in Mbps.
    pub rate_mbps: u64,
}

impl CellKey {
    /// The key for `mode` at `rate_mbps`.
    pub fn new(mode: BufferMode, rate_mbps: u64) -> CellKey {
        CellKey { mode, rate_mbps }
    }
}

/// One cell of a sweep: all repetitions of a (buffer, rate) combination.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepCell {
    /// The buffer mechanism's label (`mode.label()`).
    pub label: String,
    /// The buffer mechanism.
    pub mode: BufferMode,
    /// The sending rate in Mbps.
    pub rate_mbps: u64,
    /// One [`RunResult`] per repetition.
    pub runs: Vec<RunResult>,
}

impl SweepCell {
    /// This cell's key.
    pub fn key(&self) -> CellKey {
        CellKey::new(self.mode, self.rate_mbps)
    }
}

/// The results of a full sweep: cells in deterministic grid order (buffer
/// major, then rate), with a keyed index for O(1) lookup.
#[derive(Clone, Default)]
pub struct SweepResult {
    cells: Vec<SweepCell>,
    index: HashMap<CellKey, usize>,
}

impl fmt::Debug for SweepResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Only the cells: the index is derived state, and HashMap's
        // iteration order would make two identical results print
        // differently (the determinism test compares Debug output).
        f.debug_struct("SweepResult")
            .field("cells", &self.cells)
            .finish()
    }
}

impl PartialEq for SweepResult {
    fn eq(&self, other: &Self) -> bool {
        self.cells == other.cells
    }
}

impl SweepResult {
    /// Appends a cell, indexing it by key. A duplicate key replaces the
    /// earlier index entry (the cell list keeps both).
    pub fn push(&mut self, cell: SweepCell) {
        self.index.insert(cell.key(), self.cells.len());
        self.cells.push(cell);
    }

    /// All cells, in grid order.
    pub fn cells(&self) -> &[SweepCell] {
        &self.cells
    }

    /// Labels in sweep order (deduplicated).
    pub fn labels(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.label) {
                out.push(c.label.clone());
            }
        }
        out
    }

    /// Buffer mechanisms in sweep order (deduplicated).
    pub fn modes(&self) -> Vec<BufferMode> {
        let mut out: Vec<BufferMode> = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.mode) {
                out.push(c.mode);
            }
        }
        out
    }

    /// Rates in sweep order (deduplicated).
    pub fn rates(&self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.rate_mbps) {
                out.push(c.rate_mbps);
            }
        }
        out
    }

    /// The cell for `key`, if present — the primary lookup path.
    pub fn cell_at(&self, key: &CellKey) -> Option<&SweepCell> {
        self.index.get(key).map(|&i| &self.cells[i])
    }

    /// Mean of `metric` over the repetitions of `key`, or `None` for an
    /// absent cell (never a silent `0.0`).
    pub fn mean(&self, key: &CellKey, metric: Metric) -> Option<f64> {
        self.mean_with(key, |r| r.get(metric))
    }

    /// Closure form of [`Self::mean`], for custom metrics.
    pub fn mean_with(&self, key: &CellKey, metric: impl Fn(&RunResult) -> f64) -> Option<f64> {
        self.cell_at(key)
            .map(|c| RunResult::mean_over(&c.runs, metric))
    }

    /// Mean of `metric` for a mechanism across the entire sweep (all
    /// rates, all repetitions) — how the paper reports "on average"
    /// numbers. `None` if the mechanism has no cells.
    pub fn sweep_mean_of(&self, mode: BufferMode, metric: Metric) -> Option<f64> {
        self.sweep_mean_with(mode, |r| r.get(metric))
    }

    /// Closure form of [`Self::sweep_mean_of`], for custom metrics.
    pub fn sweep_mean_with(
        &self,
        mode: BufferMode,
        metric: impl Fn(&RunResult) -> f64 + Copy,
    ) -> Option<f64> {
        let rates = self.rates();
        let means: Vec<f64> = rates
            .iter()
            .filter_map(|&r| self.mean_with(&CellKey::new(mode, r), metric))
            .collect();
        if means.is_empty() {
            return None;
        }
        Some(means.iter().sum::<f64>() / means.len() as f64)
    }
}

/// The event stream of one sweep run, tagged with the cell and repetition
/// that produced it. Produced by [`RateSweep::run_traced_with`] in
/// deterministic grid order (cell major, repetition minor) regardless of
/// worker count.
#[derive(Clone, Debug)]
pub struct RunEvents {
    /// The sweep cell the run belongs to.
    pub key: CellKey,
    /// The cell's mechanism label (`key.mode.label()`).
    pub label: String,
    /// Repetition index within the cell (seed = `base_seed + rep`).
    pub rep: usize,
    /// The run's structured events, in emission order.
    pub events: Vec<Event>,
}

/// A full sweep: buffers × rates × repetitions, the paper's experimental
/// procedure ("we repeat the experiments at each sending rate for 20
/// times").
///
/// Construct with [`RateSweep::builder`]; the public fields remain for
/// ad-hoc mutation of a built sweep.
#[derive(Clone, Debug)]
pub struct RateSweep {
    /// Sending rates in Mbps.
    pub rates_mbps: Vec<u64>,
    /// Buffer mechanisms to compare.
    pub buffers: Vec<BufferMode>,
    /// The workload.
    pub workload: WorkloadKind,
    /// Repetitions per (buffer, rate) cell.
    pub repetitions: usize,
    /// Base seed; repetition `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Frame size in bytes.
    pub frame_size: usize,
    /// The testbed configuration.
    pub testbed: TestbedConfig,
}

/// Builder for [`RateSweep`] — the supported construction path.
///
/// ```
/// use sdnbuf_core::{BufferMode, RateSweep};
///
/// let sweep = RateSweep::builder()
///     .rates([10, 20])
///     .buffers([BufferMode::NoBuffer, BufferMode::PacketGranularity { capacity: 256 }])
///     .repetitions(2)
///     .build();
/// assert_eq!(sweep.rates_mbps, vec![10, 20]);
/// ```
#[derive(Clone, Debug)]
pub struct SweepBuilder {
    sweep: RateSweep,
}

impl SweepBuilder {
    fn new() -> SweepBuilder {
        SweepBuilder {
            sweep: RateSweep {
                rates_mbps: RateSweep::paper_rates(),
                buffers: Vec::new(),
                workload: WorkloadKind::paper_section_iv(),
                repetitions: 20,
                base_seed: 42,
                frame_size: 1000,
                testbed: TestbedConfig::default(),
            },
        }
    }

    /// Preset: the Section IV benefit analysis — {no-buffer, buffer-16,
    /// buffer-256} × 1000 single-packet flows.
    pub fn section_iv(mut self) -> SweepBuilder {
        self.sweep.buffers = vec![
            BufferMode::NoBuffer,
            BufferMode::PacketGranularity { capacity: 16 },
            BufferMode::PacketGranularity { capacity: 256 },
        ];
        self.sweep.workload = WorkloadKind::paper_section_iv();
        self
    }

    /// Preset: the Section V mechanism comparison — {packet-granularity-
    /// 256, flow-granularity-256} × 50 flows of 20 packets.
    pub fn section_v(mut self) -> SweepBuilder {
        self.sweep.buffers = vec![
            BufferMode::PacketGranularity { capacity: 256 },
            BufferMode::FlowGranularity {
                capacity: 256,
                timeout: Nanos::from_millis(50),
            },
        ];
        self.sweep.workload = WorkloadKind::paper_section_v();
        self
    }

    /// Sending rates in Mbps (default: the paper's 5–100 grid).
    pub fn rates(mut self, rates: impl IntoIterator<Item = u64>) -> SweepBuilder {
        self.sweep.rates_mbps = rates.into_iter().collect();
        self
    }

    /// Buffer mechanisms to compare.
    pub fn buffers(mut self, buffers: impl IntoIterator<Item = BufferMode>) -> SweepBuilder {
        self.sweep.buffers = buffers.into_iter().collect();
        self
    }

    /// Adds one buffer mechanism.
    pub fn buffer(mut self, buffer: BufferMode) -> SweepBuilder {
        self.sweep.buffers.push(buffer);
        self
    }

    /// The workload every cell offers.
    pub fn workload(mut self, workload: WorkloadKind) -> SweepBuilder {
        self.sweep.workload = workload;
        self
    }

    /// Repetitions per cell (default 20, the paper's procedure).
    pub fn repetitions(mut self, repetitions: usize) -> SweepBuilder {
        self.sweep.repetitions = repetitions;
        self
    }

    /// Base seed; repetition `i` uses `base_seed + i` (default 42).
    pub fn base_seed(mut self, base_seed: u64) -> SweepBuilder {
        self.sweep.base_seed = base_seed;
        self
    }

    /// Ethernet frame size in bytes (default 1000, Table I).
    pub fn frame_size(mut self, frame_size: usize) -> SweepBuilder {
        self.sweep.frame_size = frame_size;
        self
    }

    /// The testbed configuration (default: the paper's Fig. 1 platform).
    pub fn testbed(mut self, testbed: TestbedConfig) -> SweepBuilder {
        self.sweep.testbed = testbed;
        self
    }

    /// Finishes the sweep.
    ///
    /// # Panics
    /// If rates or buffers are empty, or repetitions is zero — an empty
    /// grid is always a caller bug.
    pub fn build(self) -> RateSweep {
        assert!(
            !self.sweep.rates_mbps.is_empty(),
            "SweepBuilder: at least one rate is required"
        );
        assert!(
            !self.sweep.buffers.is_empty(),
            "SweepBuilder: at least one buffer mechanism is required \
             (use .section_iv()/.section_v() or .buffers(..))"
        );
        assert!(
            self.sweep.repetitions > 0,
            "SweepBuilder: repetitions must be at least 1"
        );
        self.sweep
    }
}

impl RateSweep {
    /// Starts describing a sweep.
    pub fn builder() -> SweepBuilder {
        SweepBuilder::new()
    }

    /// The paper's 5–100 Mbps rate grid in 5 Mbps steps.
    pub fn paper_rates() -> Vec<u64> {
        (1..=20).map(|i| i * 5).collect()
    }

    /// The Section IV sweep: {no-buffer, buffer-16, buffer-256} × 1000
    /// single-packet flows.
    pub fn paper_section_iv(repetitions: usize) -> RateSweep {
        RateSweep::builder()
            .section_iv()
            .repetitions(repetitions)
            .build()
    }

    /// The Section V sweep: {packet-granularity-256, flow-granularity-256}
    /// × 50 flows of 20 packets.
    pub fn paper_section_v(repetitions: usize) -> RateSweep {
        RateSweep::builder()
            .section_v()
            .repetitions(repetitions)
            .build()
    }

    /// The grid's cells in deterministic order: buffer major, then rate.
    fn grid(&self) -> Vec<CellKey> {
        let mut cells = Vec::with_capacity(self.buffers.len() * self.rates_mbps.len());
        for &mode in &self.buffers {
            for &rate_mbps in &self.rates_mbps {
                cells.push(CellKey { mode, rate_mbps });
            }
        }
        cells
    }

    /// The [`Experiment`] for cell `key`, repetition `rep`.
    fn experiment_for(&self, key: CellKey, rep: usize) -> Experiment {
        Experiment::new(ExperimentConfig {
            buffer: key.mode,
            workload: self.workload,
            sending_rate: BitRate::from_mbps(key.rate_mbps),
            frame_size: self.frame_size,
            seed: self.base_seed + rep as u64,
            testbed: self.testbed.clone(),
        })
    }

    /// Runs every (cell, repetition) job across `parallelism` workers with
    /// per-run progress reporting, returning the per-job outputs merged in
    /// deterministic grid order (cell major, repetition minor).
    fn run_grid<T: Send>(
        &self,
        parallelism: Parallelism,
        sink: &dyn ProgressSink,
        job: impl Fn(CellKey, usize) -> T + Sync,
    ) -> Vec<T> {
        let grid = self.grid();
        let reps = self.repetitions;
        let total_runs = grid.len() * reps;
        let started = Instant::now();

        // Per-cell completion accounting for cell-level progress.
        let remaining: Vec<AtomicUsize> = grid.iter().map(|_| AtomicUsize::new(reps)).collect();
        let cells_done = AtomicUsize::new(0);
        let done = Mutex::new(0usize);

        let (outputs, report) = Executor::new(parallelism).run(
            total_runs,
            |i| job(grid[i / reps], i % reps),
            |i, worker, _elapsed| {
                let cell = i / reps;
                if remaining[cell].fetch_sub(1, Ordering::Relaxed) == 1 {
                    cells_done.fetch_add(1, Ordering::Relaxed);
                }
                // The executor serializes observer calls, so `done` is
                // strictly increasing across sink invocations.
                let mut done = done.lock().expect("progress counter poisoned");
                *done += 1;
                let elapsed = started.elapsed();
                let eta = (*done > 0).then(|| {
                    elapsed
                        .div_f64(*done as f64)
                        .mul_f64((total_runs - *done) as f64)
                });
                sink.on_progress(&Progress {
                    done: *done,
                    total: total_runs,
                    cells_done: cells_done.load(Ordering::Relaxed),
                    cells_total: grid.len(),
                    elapsed,
                    eta,
                    worker,
                });
            },
        );
        sink.on_finish(&report);
        outputs
    }

    /// Folds per-job outputs (in grid order) back into a [`SweepResult`].
    fn assemble(&self, runs: Vec<RunResult>) -> SweepResult {
        let mut result = SweepResult::default();
        let mut runs = runs.into_iter();
        for key in self.grid() {
            result.push(SweepCell {
                label: key.mode.label(),
                mode: key.mode,
                rate_mbps: key.rate_mbps,
                runs: runs.by_ref().take(self.repetitions).collect(),
            });
        }
        result
    }

    /// Runs the whole grid across `parallelism` workers, reporting to
    /// `sink` after every run and once at the end.
    ///
    /// The result is **identical to the serial run** for any worker
    /// count: each (buffer, rate, repetition) run owns its seed and a
    /// fresh testbed, and results merge back in grid order.
    pub fn run_with(&self, parallelism: Parallelism, sink: &dyn ProgressSink) -> SweepResult {
        let runs = self.run_grid(parallelism, sink, |key, rep| {
            self.experiment_for(key, rep).run()
        });
        self.assemble(runs)
    }

    /// Like [`RateSweep::run_with`], but with a recording event sink
    /// attached to every run. Event streams come back as one
    /// [`RunEvents`] per (cell, repetition), merged in deterministic grid
    /// order — the concatenated export is **byte-for-byte identical**
    /// between serial and parallel execution.
    pub fn run_traced_with(
        &self,
        parallelism: Parallelism,
        sink: &dyn ProgressSink,
    ) -> (SweepResult, Vec<RunEvents>) {
        let outputs = self.run_grid(parallelism, sink, |key, rep| {
            self.experiment_for(key, rep).run_traced()
        });
        let grid = self.grid();
        let mut runs = Vec::with_capacity(outputs.len());
        let mut streams = Vec::with_capacity(outputs.len());
        for (i, (run, events)) in outputs.into_iter().enumerate() {
            let key = grid[i / self.repetitions];
            runs.push(run);
            streams.push(RunEvents {
                key,
                label: key.mode.label(),
                rep: i % self.repetitions,
                events,
            });
        }
        (self.assemble(runs), streams)
    }

    /// Runs the whole grid serially and silently.
    pub fn run(&self) -> SweepResult {
        self.run_with(Parallelism::Serial, &NullSink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnbuf_sim::FaultPlan;

    #[test]
    fn try_new_returns_typed_errors() {
        assert!(Experiment::try_new(ExperimentConfig::default()).is_ok());
        let err = Experiment::try_new(ExperimentConfig {
            buffer: BufferMode::PacketGranularity { capacity: 0 },
            ..ExperimentConfig::default()
        })
        .unwrap_err();
        assert!(err.contains("capacity"), "{err}");
    }

    #[test]
    fn single_experiment_completes() {
        let mut exp = Experiment::new(ExperimentConfig {
            buffer: BufferMode::PacketGranularity { capacity: 64 },
            workload: WorkloadKind::single_packet_flows(20),
            sending_rate: BitRate::from_mbps(10),
            seed: 3,
            ..ExperimentConfig::default()
        });
        let r = exp.run();
        assert_eq!(r.flows_completed, 20);
        assert_eq!(r.sending_rate_mbps, 10.0);
        assert_eq!(r.label, "buffer-64");
    }

    #[test]
    fn sweep_produces_all_cells() {
        let sweep = RateSweep::builder()
            .rates([10, 20])
            .buffers([
                BufferMode::NoBuffer,
                BufferMode::PacketGranularity { capacity: 16 },
            ])
            .workload(WorkloadKind::single_packet_flows(10))
            .repetitions(2)
            .base_seed(1)
            .build();
        let result = sweep.run();
        assert_eq!(result.cells().len(), 4);
        assert_eq!(result.labels(), vec!["no-buffer", "buffer-16"]);
        assert_eq!(result.rates(), vec![10, 20]);
        let key = CellKey::new(BufferMode::NoBuffer, 10);
        let cell = result.cell_at(&key).unwrap();
        assert_eq!(cell.runs.len(), 2);
        assert_eq!(result.cell_at(&key), Some(cell));
        assert_eq!(result.mean(&key, Metric::PacketsDelivered), Some(10.0));
        assert_eq!(
            result.mean_with(&key, |r| r.packets_delivered as f64),
            Some(10.0)
        );
    }

    #[test]
    fn absent_cells_are_none_not_zero() {
        let sweep = RateSweep::builder()
            .rates([10])
            .buffers([BufferMode::NoBuffer])
            .workload(WorkloadKind::single_packet_flows(5))
            .repetitions(1)
            .build();
        let result = sweep.run();
        let bogus = CellKey::new(BufferMode::PacketGranularity { capacity: 999 }, 10);
        assert_eq!(result.cell_at(&bogus), None);
        assert_eq!(result.mean(&bogus, Metric::PacketsSent), None);
        assert_eq!(
            result.sweep_mean_of(
                BufferMode::PacketGranularity { capacity: 999 },
                Metric::PacketsSent
            ),
            None
        );
        assert_eq!(
            result.mean_with(&bogus, |r| r.packets_sent as f64),
            None,
            "closure form is None for absent cells too, never a silent 0.0"
        );
    }

    #[test]
    fn sweep_mean_averages_rates() {
        let sweep = RateSweep::builder()
            .rates([10, 20])
            .buffers([BufferMode::NoBuffer])
            .workload(WorkloadKind::single_packet_flows(5))
            .repetitions(1)
            .base_seed(1)
            .build();
        let result = sweep.run();
        let m = result.sweep_mean_with(BufferMode::NoBuffer, |r| r.packets_sent as f64);
        assert_eq!(m, Some(5.0));
        assert_eq!(
            result.sweep_mean_of(BufferMode::NoBuffer, Metric::PacketsSent),
            Some(5.0)
        );
        assert_eq!(
            result.sweep_mean_with(BufferMode::PacketGranularity { capacity: 999 }, |r| r
                .packets_sent
                as f64),
            None
        );
    }

    #[test]
    fn workload_kinds_generate() {
        let pg = PktgenConfig::default();
        assert_eq!(
            WorkloadKind::paper_section_iv().generate(&pg, 1).len(),
            1000
        );
        assert_eq!(WorkloadKind::paper_section_v().generate(&pg, 1).len(), 1000);
        let tcp = WorkloadKind::TcpEviction {
            first_burst: 3,
            idle_gap: Nanos::from_secs(6),
            second_burst: 4,
        }
        .generate(&pg, 1);
        assert_eq!(tcp.len(), 2 + 3 + 4);
        let mixed = WorkloadKind::MixedUdpTcp {
            n_udp_flows: 10,
            n_tcp: 2,
            segments_per_tcp: 3,
        }
        .generate(&pg, 1);
        assert_eq!(mixed.len(), 10 + 2 * 5);
    }

    #[test]
    fn builder_round_trips_every_field() {
        let testbed = TestbedConfig::default();
        let sweep = RateSweep::builder()
            .rates([30, 60])
            .buffers([BufferMode::NoBuffer])
            .buffer(BufferMode::PacketGranularity { capacity: 8 })
            .workload(WorkloadKind::single_packet_flows(7))
            .repetitions(3)
            .base_seed(9)
            .frame_size(500)
            .testbed(testbed)
            .build();
        assert_eq!(sweep.rates_mbps, vec![30, 60]);
        assert_eq!(
            sweep.buffers,
            vec![
                BufferMode::NoBuffer,
                BufferMode::PacketGranularity { capacity: 8 }
            ]
        );
        assert_eq!(sweep.workload, WorkloadKind::single_packet_flows(7));
        assert_eq!(sweep.repetitions, 3);
        assert_eq!(sweep.base_seed, 9);
        assert_eq!(sweep.frame_size, 500);
    }

    #[test]
    fn builder_presets_match_paper_constructors() {
        let a = RateSweep::paper_section_iv(4);
        let b = RateSweep::builder().section_iv().repetitions(4).build();
        assert_eq!(a.buffers, b.buffers);
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.rates_mbps, b.rates_mbps);
        let a = RateSweep::paper_section_v(4);
        let b = RateSweep::builder().section_v().repetitions(4).build();
        assert_eq!(a.buffers, b.buffers);
        assert_eq!(a.workload, b.workload);
    }

    #[test]
    #[should_panic(expected = "at least one buffer mechanism")]
    fn builder_rejects_empty_buffers() {
        let _ = RateSweep::builder().rates([10]).build();
    }

    #[test]
    #[should_panic(expected = "every-nth loss requires n >= 2")]
    fn loss_of_zero_is_rejected_at_construction_not_mid_run() {
        // Regression: an every-nth loss of 0 used to reach
        // `ctrl_msg_seq % n` and divide by zero on the first control
        // message.
        let mut config = ExperimentConfig::default();
        config.testbed.faults = FaultPlan::every_nth_loss(0);
        let _ = Experiment::new(config);
    }

    #[test]
    #[should_panic(expected = "buffer capacity must be positive")]
    fn zero_capacity_is_rejected_at_construction() {
        let config = ExperimentConfig {
            buffer: BufferMode::PacketGranularity { capacity: 0 },
            ..ExperimentConfig::default()
        };
        let _ = Experiment::new(config);
    }

    #[test]
    fn experiment_config_validation_covers_its_own_fields() {
        assert!(ExperimentConfig::default().validate().is_ok());
        let c = ExperimentConfig {
            frame_size: 0,
            ..ExperimentConfig::default()
        };
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::default();
        c.testbed.faults = FaultPlan::every_nth_loss(1);
        assert!(c.validate().is_err(), "one-in-1 loss drops every message");
        let mut c = ExperimentConfig::default();
        c.testbed.faults.to_controller.duplicate = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let sweep = RateSweep::builder()
            .rates([10, 30, 50])
            .buffers([
                BufferMode::NoBuffer,
                BufferMode::PacketGranularity { capacity: 16 },
            ])
            .workload(WorkloadKind::single_packet_flows(25))
            .repetitions(3)
            .build();
        let serial = sweep.run();
        let parallel = sweep.run_with(Parallelism::Fixed(4), &NullSink);
        assert_eq!(serial, parallel);
        // Belt and braces: byte-for-byte identical Debug rendering, which
        // covers every field of every RunResult in every cell.
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }

    #[test]
    fn progress_is_monotonic_and_complete_under_parallelism() {
        let sweep = RateSweep::builder()
            .rates([10, 20])
            .buffers([BufferMode::NoBuffer])
            .workload(WorkloadKind::single_packet_flows(5))
            .repetitions(3)
            .build();
        let seen = Mutex::new(Vec::<Progress>::new());
        let sink = |p: &Progress| seen.lock().unwrap().push(*p);
        sweep.run_with(Parallelism::Fixed(4), &sink);
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 6);
        for (i, p) in seen.iter().enumerate() {
            assert_eq!(p.done, i + 1, "done must increase by one per run");
            assert_eq!(p.total, 6);
            assert_eq!(p.cells_total, 2);
            assert!(p.cells_done <= 2);
        }
        let last = seen.last().unwrap();
        assert_eq!(last.done, last.total);
        assert_eq!(last.cells_done, 2);
    }

    #[test]
    fn progress_callback_fires_per_run_in_serial() {
        let sweep = RateSweep::builder()
            .rates([10])
            .buffers([BufferMode::NoBuffer])
            .workload(WorkloadKind::single_packet_flows(3))
            .repetitions(1)
            .build();
        let calls = Mutex::new(Vec::new());
        let sink = |p: &Progress| calls.lock().unwrap().push((p.done, p.total));
        sweep.run_with(Parallelism::Serial, &sink);
        assert_eq!(calls.into_inner().unwrap(), vec![(1, 1)]);
    }
}
