//! Typed figure metrics: every scalar a figure plots, as an enum instead
//! of an ad-hoc field-access closure.
//!
//! `RunResult::get(Metric)` is the single access path the figure builders,
//! bench binaries and CLI share; closures remain available on the sweep
//! accessors for custom metrics.

use crate::RunResult;

/// A scalar measurement of one run — the y-axis of each figure in the
/// paper, plus the conservation counters the harnesses report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Metric {
    /// Control traffic switch → controller, Mbps (Figs. 2a/9a).
    ControlPathLoadUp,
    /// Control traffic controller → switch, Mbps (Figs. 2b/9b).
    ControlPathLoadDown,
    /// Controller CPU percent (Figs. 3/10).
    ControllerCpu,
    /// Switch CPU percent (Figs. 4/11).
    SwitchCpu,
    /// Mean flow-setup delay, ms (Figs. 5/12a).
    FlowSetupDelay,
    /// Mean controller delay, ms (Fig. 6).
    ControllerDelay,
    /// Mean switch delay, ms (Fig. 7).
    SwitchDelay,
    /// Mean flow-forwarding delay, ms (Fig. 12b).
    FlowForwardingDelay,
    /// Time-weighted mean buffer occupancy, units (Figs. 8/13a).
    BufferMeanOccupancy,
    /// Peak buffer occupancy, units (Fig. 13b).
    BufferPeakOccupancy,
    /// Buffer misses that fell back to full-packet `packet_in`.
    BufferFallbacks,
    /// Timeout-driven `packet_in` re-requests (Algorithm 1).
    Rerequests,
    /// `packet_in` messages on the control path.
    PktInCount,
    /// `flow_mod` messages on the control path.
    FlowModCount,
    /// `packet_out` messages on the control path.
    PktOutCount,
    /// Data packets offered by the workload.
    PacketsSent,
    /// Data packets delivered to their destination host.
    PacketsDelivered,
    /// Data packets dropped anywhere.
    PacketsDropped,
    /// Delivered packets as a percentage of sent (100 when nothing sent).
    DeliveredPercent,
}

impl Metric {
    /// The column/series name used in tables and TSV headers (matches the
    /// historical closure-based figure output, so result files diff
    /// cleanly across versions).
    pub fn name(&self) -> &'static str {
        match self {
            Metric::ControlPathLoadUp => "ctrl_load_to_controller_mbps",
            Metric::ControlPathLoadDown => "ctrl_load_to_switch_mbps",
            Metric::ControllerCpu => "controller_cpu_pct",
            Metric::SwitchCpu => "switch_cpu_pct",
            Metric::FlowSetupDelay => "flow_setup_delay_ms",
            Metric::ControllerDelay => "controller_delay_ms",
            Metric::SwitchDelay => "switch_delay_ms",
            Metric::FlowForwardingDelay => "flow_forwarding_delay_ms",
            Metric::BufferMeanOccupancy => "buffer_mean_units",
            Metric::BufferPeakOccupancy => "buffer_peak_units",
            Metric::BufferFallbacks => "buffer_fallbacks",
            Metric::Rerequests => "rerequests",
            Metric::PktInCount => "pkt_in_count",
            Metric::FlowModCount => "flow_mod_count",
            Metric::PktOutCount => "pkt_out_count",
            Metric::PacketsSent => "packets_sent",
            Metric::PacketsDelivered => "packets_delivered",
            Metric::PacketsDropped => "packets_dropped",
            Metric::DeliveredPercent => "delivered_pct",
        }
    }

    /// Every metric, in declaration order.
    pub fn all() -> &'static [Metric] {
        &[
            Metric::ControlPathLoadUp,
            Metric::ControlPathLoadDown,
            Metric::ControllerCpu,
            Metric::SwitchCpu,
            Metric::FlowSetupDelay,
            Metric::ControllerDelay,
            Metric::SwitchDelay,
            Metric::FlowForwardingDelay,
            Metric::BufferMeanOccupancy,
            Metric::BufferPeakOccupancy,
            Metric::BufferFallbacks,
            Metric::Rerequests,
            Metric::PktInCount,
            Metric::FlowModCount,
            Metric::PktOutCount,
            Metric::PacketsSent,
            Metric::PacketsDelivered,
            Metric::PacketsDropped,
            Metric::DeliveredPercent,
        ]
    }
}

impl RunResult {
    /// The value of `metric` for this run.
    pub fn get(&self, metric: Metric) -> f64 {
        match metric {
            Metric::ControlPathLoadUp => self.ctrl_load_to_controller_mbps,
            Metric::ControlPathLoadDown => self.ctrl_load_to_switch_mbps,
            Metric::ControllerCpu => self.controller_cpu_percent,
            Metric::SwitchCpu => self.switch_cpu_percent,
            Metric::FlowSetupDelay => self.flow_setup_delay.mean,
            Metric::ControllerDelay => self.controller_delay.mean,
            Metric::SwitchDelay => self.switch_delay.mean,
            Metric::FlowForwardingDelay => self.flow_forwarding_delay.mean,
            Metric::BufferMeanOccupancy => self.buffer_mean_occupancy,
            Metric::BufferPeakOccupancy => self.buffer_peak_occupancy as f64,
            Metric::BufferFallbacks => self.buffer_fallbacks as f64,
            Metric::Rerequests => self.rerequests as f64,
            Metric::PktInCount => self.pkt_in_count as f64,
            Metric::FlowModCount => self.flow_mod_count as f64,
            Metric::PktOutCount => self.pkt_out_count as f64,
            Metric::PacketsSent => self.packets_sent as f64,
            Metric::PacketsDelivered => self.packets_delivered as f64,
            Metric::PacketsDropped => self.packets_dropped as f64,
            Metric::DeliveredPercent => {
                if self.packets_sent == 0 {
                    100.0
                } else {
                    100.0 * self.packets_delivered as f64 / self.packets_sent as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnbuf_metrics::Summary;

    #[test]
    fn get_matches_fields() {
        let r = RunResult {
            ctrl_load_to_controller_mbps: 1.5,
            ctrl_load_to_switch_mbps: 2.5,
            controller_cpu_percent: 33.0,
            switch_cpu_percent: 44.0,
            flow_setup_delay: Summary::of(&[4.0]),
            buffer_peak_occupancy: 17,
            pkt_in_count: 9,
            packets_sent: 200,
            packets_delivered: 150,
            ..RunResult::default()
        };
        assert_eq!(r.get(Metric::ControlPathLoadUp), 1.5);
        assert_eq!(r.get(Metric::ControlPathLoadDown), 2.5);
        assert_eq!(r.get(Metric::ControllerCpu), 33.0);
        assert_eq!(r.get(Metric::SwitchCpu), 44.0);
        assert_eq!(r.get(Metric::FlowSetupDelay), 4.0);
        assert_eq!(r.get(Metric::BufferPeakOccupancy), 17.0);
        assert_eq!(r.get(Metric::PktInCount), 9.0);
        assert_eq!(r.get(Metric::DeliveredPercent), 75.0);
    }

    #[test]
    fn delivered_percent_is_total_on_empty_run() {
        assert_eq!(RunResult::default().get(Metric::DeliveredPercent), 100.0);
    }

    #[test]
    fn names_are_unique_and_all_is_complete() {
        let all = Metric::all();
        let mut names: Vec<&str> = all.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
