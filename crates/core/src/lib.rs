//! Experiment orchestration for `sdn-buffer-lab`: the paper's Fig. 1
//! testbed, its two experiments, and the per-figure result tables.
//!
//! [`Testbed`] wires the models together exactly like the paper's platform:
//! `Host1 ↔ OVS ↔ Host2` over 100 Mbps links, the switch connected to a
//! Floodlight-model controller over a metered control channel, `tcpdump`
//! equivalents tapping every link, gratuitous-ARP warm-up so the controller
//! knows host locations before measurement traffic starts.
//!
//! [`Experiment`] runs one (buffer mechanism, workload, rate, seed)
//! combination to a [`RunResult`]; [`RateSweep`] repeats it across the
//! paper's 5–100 Mbps sweep with 20 seeded repetitions and aggregates
//! per-figure series (the `figures` module renders them as tables).
//!
//! # Example
//!
//! ```
//! use sdnbuf_core::{BufferMode, Experiment, ExperimentConfig, WorkloadKind};
//! use sdnbuf_sim::BitRate;
//!
//! let run = Experiment::new(ExperimentConfig {
//!     buffer: BufferMode::PacketGranularity { capacity: 256 },
//!     workload: WorkloadKind::single_packet_flows(100),
//!     sending_rate: BitRate::from_mbps(20),
//!     seed: 1,
//!     ..ExperimentConfig::default()
//! })
//! .run();
//! assert_eq!(run.flows_completed, 100);
//! assert_eq!(run.packets_delivered, 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod executor;
mod experiment;
pub mod figures;
pub mod flightrec;
mod metric;
pub mod observe;
pub mod report;
mod result;
pub mod spans;
mod testbed;
mod trace;
pub mod validate;

pub use executor::{
    Executor, ExecutorReport, NullSink, Parallelism, Progress, ProgressSink, StderrProgress,
    WorkerStats,
};
pub use experiment::{
    CellKey, Experiment, ExperimentConfig, RateSweep, RunEvents, SweepBuilder, SweepCell,
    SweepResult, WorkloadKind,
};
pub use metric::Metric;
pub use result::RunResult;
pub use testbed::{FailoverConfig, PacketTrace, Testbed, TestbedConfig};
pub use trace::{Direction, MsgDesc, TraceEntry, TraceLog};

/// The structured event layer, re-exported from the simulation engine.
/// (The event layer's `NullSink` is *not* re-exported flat because this
/// crate already exports the executor's progress `NullSink`; reach it as
/// `sdnbuf_sim::events::NullSink`.)
pub use sdnbuf_sim::{
    ChannelDir, Event, EventKind, EventSink, JsonlSink, RecordingSink, RingSink, Tracer,
};

/// Egress QoS queue configuration, re-exported from the simulation engine.
pub use sdnbuf_sim::QueueConfig;

/// The buffer mechanism under test — re-exported from the switch model so
/// experiment configs and switch configs share one vocabulary.
pub use sdnbuf_switch::BufferChoice as BufferMode;
