//! The differential + metamorphic validation plane (`sdnlab validate`).
//!
//! Three independent nets, each catching bugs the others cannot:
//!
//! 1. **Differential**: sweep the Section IV grid and compare every cell's
//!    simulated means against the closed-form [`sdnbuf_model`] oracle,
//!    metric by metric, with per-metric relative-error tolerances
//!    (widened on knife-edge cells near a station's saturation point —
//!    see [`sdnbuf_model::NEAR_CRITICAL_BAND`] and DESIGN §13).
//! 2. **Metamorphic**: paper-derived laws that need no oracle at all —
//!    delay non-decreasing in offered rate, up-path control bytes
//!    non-increasing when buffering is enabled, packet conservation,
//!    the flow-granularity mechanism announcing at most as many
//!    `packet_in`s as the packet-granularity one, and serial ≡ parallel
//!    execution on every validated cell.
//! 3. **Coverage-directed random configs**: a seeded generator explores
//!    mechanism × workload × rate × frame-size combinations beyond the
//!    paper's grid, checking the always-true laws (conservation,
//!    determinism, oracle floor) and greedily shrinking any
//!    counterexample to a minimal replayable spec, like the chaos
//!    minimizer.
//!
//! The whole layer is read-only and post-hoc: it consumes [`RunResult`]s
//! through the public sweep API and never touches the simulation, so
//! golden traces and chaos digests are unaffected by construction.
//!
//! A validator that cannot fail is untested, so the harness can be run
//! against a deliberately broken oracle ([`sdnbuf_model::Oracle::broken`])
//! and must then report differential failures — `sdnlab validate --broken`
//! inverts its exit code on that, mirroring `chaos --broken`.

use crate::{
    BufferMode, Experiment, ExperimentConfig, Metric, NullSink, Parallelism, RateSweep, RunResult,
    SweepCell, TestbedConfig, WorkloadKind,
};
use sdnbuf_metrics::Histogram;
use sdnbuf_sim::{BitRate, Nanos, SimRng};
use std::fmt::Write as _;

/// Schema tag stamped into the JSON report.
pub const VALIDATE_SCHEMA: &str = "validate/v1";

/// Relative slack allowed by the monotonicity law: mean delay may dip by
/// this fraction between adjacent rates before the law trips. The
/// buffered curves are flat (the mechanism's whole point), so strict
/// monotonicity would flag repetition noise as a violation.
const MONOTONE_SLACK: f64 = 0.05;

/// Seed-mixing constant for the random-config generator (same idiom as
/// the chaos generator, different stream).
const RANDOM_STREAM: u64 = 0x5bd1_e995_9d1c_9f57;

/// Per-metric relative-error tolerances, as fractions (0.15 = 15 %).
///
/// The defaults are calibrated against the seed simulator (DESIGN §13
/// records the measured errors they leave headroom over). Counts are
/// integer-exact in no-fault cells, so their tolerance is effectively
/// zero.
#[derive(Clone, Copy, Debug)]
pub struct Tolerances {
    /// Delay means (flow-setup, controller delay).
    pub delay: f64,
    /// Control-path loads, Mbps.
    pub load: f64,
    /// Controller CPU percent.
    pub cpu: f64,
    /// Control-message counts.
    pub count: f64,
    /// Multiplier applied on cells the oracle marks near-critical: a
    /// station sitting within a few percent of saturation flips between
    /// idle and backlogged on service-time differences smaller than the
    /// model's resolution.
    pub near_critical_factor: f64,
    /// Multiplier on saturated cells, where the fluid backlog term is a
    /// first-order approximation of the true transient.
    pub saturated_factor: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            delay: 0.15,
            load: 0.10,
            cpu: 0.25,
            count: 0.001,
            near_critical_factor: 3.0,
            saturated_factor: 2.0,
        }
    }
}

impl Tolerances {
    /// A uniform override: every per-metric tolerance set to `fraction`
    /// (the widening factors keep their defaults). Used by
    /// `sdnlab validate --tolerance PCT`.
    pub fn uniform(fraction: f64) -> Self {
        Tolerances {
            delay: fraction,
            load: fraction,
            cpu: fraction,
            count: fraction,
            ..Tolerances::default()
        }
    }

    /// The base tolerance for `metric` (before widening factors).
    pub fn base_for(&self, metric: Metric) -> f64 {
        match metric {
            Metric::FlowSetupDelay | Metric::ControllerDelay => self.delay,
            Metric::ControlPathLoadUp | Metric::ControlPathLoadDown => self.load,
            Metric::ControllerCpu => self.cpu,
            _ => self.count,
        }
    }
}

/// What `validate` runs: a grid (or explicit cell list), repetition and
/// tolerance knobs, and the optional random-config exploration.
#[derive(Clone, Debug)]
pub struct ValidateConfig {
    /// Sending rates in Mbps (the full paper grid by default).
    pub rates_mbps: Vec<u64>,
    /// Buffer mechanisms under validation.
    pub mechanisms: Vec<BufferMode>,
    /// Explicit (mechanism, rate) cells; when set, overrides the
    /// `rates_mbps` × `mechanisms` cross product.
    pub cells: Option<Vec<(BufferMode, u64)>>,
    /// Single-packet flows per run (the paper uses 1000).
    pub flows: usize,
    /// Repetitions per cell; simulated means average over them.
    pub repetitions: usize,
    /// Base seed; repetition `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Workload frame size in bytes.
    pub frame_size: usize,
    /// Per-metric tolerances.
    pub tolerances: Tolerances,
    /// Parallelism for the second sweep of the serial ≡ parallel law
    /// (the first always runs serial).
    pub parallelism: Parallelism,
    /// Run against the deliberately broken oracle (self-test mode).
    pub broken: bool,
    /// Number of seeded random configurations to explore (0 = skip).
    pub random_configs: u64,
    /// The testbed the grid runs on.
    pub testbed: TestbedConfig,
}

impl Default for ValidateConfig {
    /// The full Section IV validation: all three mechanisms across the
    /// paper's 5–100 Mbps grid, 1000 flows, 3 repetitions.
    fn default() -> Self {
        ValidateConfig {
            rates_mbps: RateSweep::paper_rates(),
            mechanisms: vec![
                BufferMode::NoBuffer,
                BufferMode::PacketGranularity { capacity: 256 },
                BufferMode::FlowGranularity {
                    capacity: 256,
                    timeout: Nanos::from_millis(50),
                },
            ],
            cells: None,
            flows: 1000,
            repetitions: 3,
            base_seed: 42,
            frame_size: 1000,
            tolerances: Tolerances::default(),
            parallelism: Parallelism::Serial,
            broken: false,
            random_configs: 0,
            testbed: TestbedConfig::default(),
        }
    }
}

/// One metric of one cell compared against the oracle.
#[derive(Clone, Debug)]
pub struct MetricCheck {
    /// Which metric.
    pub metric: Metric,
    /// Simulated mean over the cell's repetitions.
    pub simulated: f64,
    /// The oracle's prediction.
    pub predicted: f64,
    /// `|simulated − predicted| / max(|simulated|, ε)`.
    pub rel_err: f64,
    /// The tolerance this check was held to (widening included).
    pub tolerance: f64,
    /// Whether the check passed.
    pub pass: bool,
}

/// The differential verdict for one grid cell.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Mechanism label (`mode.label()`).
    pub label: String,
    /// Sending rate, Mbps.
    pub rate_mbps: u64,
    /// Oracle: the cell's offered rate exceeds the path's capacity.
    pub saturated: bool,
    /// Oracle: some station sits in the near-critical band.
    pub near_critical: bool,
    /// Oracle: the station defining the path's capacity.
    pub bottleneck: &'static str,
    /// Median of the per-repetition flow-setup means, ms (repetition
    /// spread, accumulated through [`sdnbuf_metrics::Histogram`]).
    pub delay_rep_p50_ms: f64,
    /// 95th percentile of the per-repetition flow-setup means, ms.
    pub delay_rep_p95_ms: f64,
    /// Every metric comparison for this cell.
    pub checks: Vec<MetricCheck>,
}

impl CellReport {
    /// Number of failed checks in this cell.
    pub fn failures(&self) -> usize {
        self.checks.iter().filter(|c| !c.pass).count()
    }
}

/// One metamorphic law's verdict over the whole grid.
#[derive(Clone, Debug)]
pub struct LawReport {
    /// Stable law identifier.
    pub law: &'static str,
    /// Whether the law held everywhere it applied.
    pub holds: bool,
    /// Human-readable evidence: the first counterexample, or a summary
    /// of what was covered.
    pub detail: String,
}

/// A randomly generated configuration that violated an always-true law,
/// with its greedily shrunk minimal form.
#[derive(Clone, Debug)]
pub struct RandomFinding {
    /// The generated scenario's replayable spec.
    pub spec: String,
    /// The shrunk scenario's spec (== `spec` when nothing could shrink).
    pub shrunk_spec: String,
    /// The violations the shrunk scenario still exhibits.
    pub violations: Vec<String>,
}

/// The complete `validate/v1` report.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// Whether the broken oracle was used (self-test mode).
    pub broken: bool,
    /// Per-cell differential results, grid order.
    pub cells: Vec<CellReport>,
    /// Metamorphic law verdicts.
    pub laws: Vec<LawReport>,
    /// Random configurations explored.
    pub random_checked: u64,
    /// Law-violating random configurations, shrunk.
    pub random_findings: Vec<RandomFinding>,
}

impl ValidationReport {
    /// Total differential checks performed.
    pub fn checks(&self) -> usize {
        self.cells.iter().map(|c| c.checks.len()).sum()
    }

    /// Failed differential checks.
    pub fn differential_failures(&self) -> usize {
        self.cells.iter().map(|c| c.failures()).sum()
    }

    /// Failed metamorphic laws.
    pub fn laws_failed(&self) -> usize {
        self.laws.iter().filter(|l| !l.holds).count()
    }

    /// True when everything passed: every differential check, every law,
    /// every random config.
    pub fn passed(&self) -> bool {
        self.differential_failures() == 0
            && self.laws_failed() == 0
            && self.random_findings.is_empty()
    }

    /// The report as one `validate/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"schema\":\"");
        s.push_str(VALIDATE_SCHEMA);
        s.push_str("\",\"broken\":");
        s.push_str(if self.broken { "true" } else { "false" });
        let _ = write!(
            s,
            ",\"summary\":{{\"cells\":{},\"checks\":{},\"differential_failures\":{},\
             \"laws\":{},\"laws_failed\":{},\"random_checked\":{},\"random_failures\":{},\
             \"passed\":{}}}",
            self.cells.len(),
            self.checks(),
            self.differential_failures(),
            self.laws.len(),
            self.laws_failed(),
            self.random_checked,
            self.random_findings.len(),
            self.passed()
        );
        s.push_str(",\"cells\":[");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"label\":\"{}\",\"rate_mbps\":{},\"saturated\":{},\"near_critical\":{},\
                 \"bottleneck\":\"{}\",\"delay_rep_p50_ms\":{},\"delay_rep_p95_ms\":{},\
                 \"checks\":[",
                esc(&c.label),
                c.rate_mbps,
                c.saturated,
                c.near_critical,
                esc(c.bottleneck),
                num(c.delay_rep_p50_ms),
                num(c.delay_rep_p95_ms)
            );
            for (j, ck) in c.checks.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"metric\":\"{}\",\"simulated\":{},\"predicted\":{},\"rel_err\":{},\
                     \"tolerance\":{},\"pass\":{}}}",
                    ck.metric.name(),
                    num(ck.simulated),
                    num(ck.predicted),
                    num(ck.rel_err),
                    num(ck.tolerance),
                    ck.pass
                );
            }
            s.push_str("]}");
        }
        s.push_str("],\"laws\":[");
        for (i, l) in self.laws.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"law\":\"{}\",\"holds\":{},\"detail\":\"{}\"}}",
                esc(l.law),
                l.holds,
                esc(&l.detail)
            );
        }
        let _ = write!(
            s,
            "],\"random\":{{\"checked\":{},\"failures\":[",
            self.random_checked
        );
        for (i, f) in self.random_findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"spec\":\"{}\",\"shrunk_spec\":\"{}\",\"violations\":[",
                esc(&f.spec),
                esc(&f.shrunk_spec)
            );
            for (j, v) in f.violations.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\"", esc(v));
            }
            s.push_str("]}");
        }
        s.push_str("]}}");
        s
    }

    /// The differential comparison as a TSV table, one row per
    /// (cell, metric).
    pub fn to_tsv(&self) -> String {
        let mut s = String::from(
            "mechanism\trate_mbps\tmetric\tsimulated\tpredicted\trel_err_pct\ttolerance_pct\
             \tnear_critical\tpass\n",
        );
        for c in &self.cells {
            for ck in &c.checks {
                let _ = writeln!(
                    s,
                    "{}\t{}\t{}\t{:.6}\t{:.6}\t{:.2}\t{:.2}\t{}\t{}",
                    c.label,
                    c.rate_mbps,
                    ck.metric.name(),
                    ck.simulated,
                    ck.predicted,
                    ck.rel_err * 100.0,
                    ck.tolerance * 100.0,
                    c.near_critical,
                    ck.pass
                );
            }
        }
        s
    }
}

/// Minimal JSON string escaping for the controlled ASCII we emit.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A JSON-safe number: finite values as-is, everything else as `null`.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// The metrics the differential harness compares per cell.
pub fn checked_metrics() -> &'static [Metric] {
    &[
        Metric::FlowSetupDelay,
        Metric::ControllerDelay,
        Metric::ControlPathLoadUp,
        Metric::ControlPathLoadDown,
        Metric::ControllerCpu,
        Metric::PktInCount,
        Metric::FlowModCount,
        Metric::PktOutCount,
    ]
}

/// The oracle's value for `metric` out of a [`Prediction`].
fn predicted_value(p: &Prediction, metric: Metric) -> f64 {
    match metric {
        Metric::FlowSetupDelay => p.flow_setup_delay_ms,
        Metric::ControllerDelay => p.controller_delay_ms,
        Metric::ControlPathLoadUp => p.ctrl_load_to_controller_mbps,
        Metric::ControlPathLoadDown => p.ctrl_load_to_switch_mbps,
        Metric::ControllerCpu => p.controller_cpu_percent,
        Metric::PktInCount => p.pkt_in_count as f64,
        Metric::FlowModCount => p.flow_mod_count as f64,
        Metric::PktOutCount => p.pkt_out_count as f64,
        other => panic!("metric {other:?} has no oracle prediction"),
    }
}

/// Builds the oracle's [`Scenario`] for one cell of `config`'s grid.
pub fn scenario_for(config: &ValidateConfig, mode: BufferMode, rate_mbps: u64) -> Scenario {
    let mut switch = config.testbed.switch;
    switch.buffer = mode;
    Scenario {
        switch,
        controller: config.testbed.controller,
        data_link: config.testbed.data_link,
        control_link: config.testbed.control_link,
        rate: BitRate::from_mbps(rate_mbps),
        frame_len: config.frame_size,
        flows: config.flows as u64,
    }
}

/// Runs the whole validation plane and returns the report.
pub fn validate(config: &ValidateConfig) -> ValidationReport {
    let oracle = if config.broken {
        Oracle::broken()
    } else {
        Oracle::faithful()
    };

    // One RateSweep per mechanism keeps explicit cell lists exact (a
    // cross product would inflate them) while the default config still
    // covers the full grid.
    let groups = mech_groups(config);
    let mut all_cells: Vec<SweepCell> = Vec::new();
    let mut serial_parallel_ok = true;
    let mut serial_parallel_detail = String::new();
    let mut validated_runs = 0usize;
    for (mode, rates) in &groups {
        let sweep = RateSweep {
            rates_mbps: rates.clone(),
            buffers: vec![*mode],
            workload: WorkloadKind::single_packet_flows(config.flows),
            repetitions: config.repetitions,
            base_seed: config.base_seed,
            frame_size: config.frame_size,
            testbed: config.testbed.clone(),
        };
        let serial = sweep.run_with(Parallelism::Serial, &NullSink);
        let parallel = sweep.run_with(config.parallelism, &NullSink);
        if serial != parallel {
            serial_parallel_ok = false;
            let _ = write!(
                serial_parallel_detail,
                "{} diverged between serial and parallel execution; ",
                mode.label()
            );
        }
        validated_runs += rates.len() * config.repetitions;
        all_cells.extend(serial.cells().iter().cloned());
    }

    // -- Differential comparison ------------------------------------
    let mut cells = Vec::with_capacity(all_cells.len());
    for cell in &all_cells {
        cells.push(check_cell(config, &oracle, cell));
    }

    // -- Metamorphic laws -------------------------------------------
    let mut laws = vec![
        law_delay_monotone(&all_cells),
        law_buffering_shrinks_up_bytes(&all_cells),
        law_conservation(&all_cells),
        LawReport {
            law: "serial-equals-parallel",
            holds: serial_parallel_ok,
            detail: if serial_parallel_ok {
                format!("{validated_runs} runs byte-identical under both executors")
            } else {
                serial_parallel_detail
            },
        },
        law_flow_gran_fewer_pkt_ins(config),
    ];
    laws.retain(|l| !l.detail.is_empty() || !l.holds);

    // -- Random-config exploration ----------------------------------
    let mut random_findings = Vec::new();
    if config.random_configs > 0 {
        for i in 0..config.random_configs {
            let scenario = RandomScenario::generate(config.base_seed.wrapping_add(i));
            let violations = check_random_scenario(&scenario);
            if !violations.is_empty() {
                let shrunk = shrink_random_scenario(&scenario);
                let violations = check_random_scenario(&shrunk);
                random_findings.push(RandomFinding {
                    spec: scenario.spec(),
                    shrunk_spec: shrunk.spec(),
                    violations,
                });
            }
        }
    }

    ValidationReport {
        broken: config.broken,
        cells,
        laws,
        random_checked: config.random_configs,
        random_findings,
    }
}

/// The grid as (mechanism, rates) groups, honouring an explicit cell
/// list when present.
fn mech_groups(config: &ValidateConfig) -> Vec<(BufferMode, Vec<u64>)> {
    match &config.cells {
        None => config
            .mechanisms
            .iter()
            .map(|m| (*m, config.rates_mbps.clone()))
            .collect(),
        Some(pairs) => {
            let mut groups: Vec<(BufferMode, Vec<u64>)> = Vec::new();
            for (mode, rate) in pairs {
                match groups.iter_mut().find(|(m, _)| m == mode) {
                    Some((_, rates)) => {
                        if !rates.contains(rate) {
                            rates.push(*rate);
                        }
                    }
                    None => groups.push((*mode, vec![*rate])),
                }
            }
            groups
        }
    }
}

/// Compares one simulated cell against the oracle.
fn check_cell(config: &ValidateConfig, oracle: &Oracle, cell: &SweepCell) -> CellReport {
    let prediction = oracle.predict(&scenario_for(config, cell.mode, cell.rate_mbps));
    let widening = if prediction.near_critical {
        config.tolerances.near_critical_factor
    } else if prediction.saturated {
        config.tolerances.saturated_factor
    } else {
        1.0
    };

    let mut rep_delays = Histogram::new();
    for run in &cell.runs {
        rep_delays.record_ns((run.get(Metric::FlowSetupDelay) * 1e6) as u64);
    }

    let mut checks = Vec::new();
    for &metric in checked_metrics() {
        let simulated = RunResult::mean_over(&cell.runs, |r| r.get(metric));
        let predicted = predicted_value(&prediction, metric);
        let rel_err = (simulated - predicted).abs() / simulated.abs().max(1e-9);
        // Counts stay exact everywhere; widening applies to the analog
        // metrics only.
        let tolerance = match metric {
            Metric::PktInCount | Metric::FlowModCount | Metric::PktOutCount => {
                config.tolerances.base_for(metric)
            }
            m => config.tolerances.base_for(m) * widening,
        };
        checks.push(MetricCheck {
            metric,
            simulated,
            predicted,
            rel_err,
            tolerance,
            pass: rel_err <= tolerance,
        });
    }
    CellReport {
        label: cell.label.clone(),
        rate_mbps: cell.rate_mbps,
        saturated: prediction.saturated,
        near_critical: prediction.near_critical,
        bottleneck: prediction.bottleneck,
        delay_rep_p50_ms: rep_delays.quantile_ms(0.5),
        delay_rep_p95_ms: rep_delays.quantile_ms(0.95),
        checks,
    }
}

/// Law: for each mechanism, mean flow-setup delay is non-decreasing in
/// the offered rate (within [`MONOTONE_SLACK`] of repetition noise).
fn law_delay_monotone(cells: &[SweepCell]) -> LawReport {
    let mut covered = 0usize;
    for cell in cells {
        let prev = cells
            .iter()
            .filter(|c| c.mode == cell.mode && c.rate_mbps < cell.rate_mbps)
            .max_by_key(|c| c.rate_mbps);
        if let Some(prev) = prev {
            let lo = RunResult::mean_over(&prev.runs, |r| r.get(Metric::FlowSetupDelay));
            let hi = RunResult::mean_over(&cell.runs, |r| r.get(Metric::FlowSetupDelay));
            covered += 1;
            if hi < lo * (1.0 - MONOTONE_SLACK) {
                return LawReport {
                    law: "delay-monotone-in-rate",
                    holds: false,
                    detail: format!(
                        "{}: delay fell from {lo:.4} ms at {} Mbps to {hi:.4} ms at {} Mbps",
                        cell.label, prev.rate_mbps, cell.rate_mbps
                    ),
                };
            }
        }
    }
    LawReport {
        law: "delay-monotone-in-rate",
        holds: true,
        detail: format!("{covered} adjacent rate pairs checked"),
    }
}

/// Law: at each rate, the up-path control bytes of a buffering mechanism
/// never exceed the no-buffer mechanism's (the buffered `packet_in`
/// carries a 128-byte prefix instead of the whole packet).
fn law_buffering_shrinks_up_bytes(cells: &[SweepCell]) -> LawReport {
    let mut covered = 0usize;
    for base in cells.iter().filter(|c| c.mode == BufferMode::NoBuffer) {
        let base_bytes = RunResult::mean_over(&base.runs, |r| r.ctrl_bytes_to_controller as f64);
        for buffered in cells
            .iter()
            .filter(|c| c.mode != BufferMode::NoBuffer && c.rate_mbps == base.rate_mbps)
        {
            covered += 1;
            let bytes = RunResult::mean_over(&buffered.runs, |r| r.ctrl_bytes_to_controller as f64);
            if bytes > base_bytes {
                return LawReport {
                    law: "buffering-shrinks-up-path-bytes",
                    holds: false,
                    detail: format!(
                        "{} sent {bytes:.0} B up at {} Mbps, more than no-buffer's {base_bytes:.0}",
                        buffered.label, base.rate_mbps
                    ),
                };
            }
        }
    }
    LawReport {
        law: "buffering-shrinks-up-path-bytes",
        holds: true,
        detail: format!("{covered} (rate, mechanism) pairs checked"),
    }
}

/// Law: packet conservation — in a no-fault cell every offered packet is
/// delivered, nothing is dropped, and the control channel loses nothing.
fn law_conservation(cells: &[SweepCell]) -> LawReport {
    let mut covered = 0usize;
    for cell in cells {
        for run in &cell.runs {
            covered += 1;
            let conserved = run.packets_delivered + run.packets_dropped == run.packets_sent;
            if !conserved || run.packets_dropped != 0 || run.ctrl_drops != 0 {
                return LawReport {
                    law: "packet-conservation",
                    holds: false,
                    detail: format!(
                        "{} at {} Mbps: sent {} delivered {} dropped {} ctrl_drops {}",
                        cell.label,
                        cell.rate_mbps,
                        run.packets_sent,
                        run.packets_delivered,
                        run.packets_dropped,
                        run.ctrl_drops
                    ),
                };
            }
        }
    }
    LawReport {
        law: "packet-conservation",
        holds: true,
        detail: format!("{covered} runs conserved every packet"),
    }
}

/// Law: on multi-packet flows the flow-granularity mechanism announces at
/// most as many `packet_in`s as the packet-granularity one (one per flow
/// vs one per miss). Runs its own small Section V side-grid — the main
/// grid's single-packet flows make the two trivially equal.
fn law_flow_gran_fewer_pkt_ins(config: &ValidateConfig) -> LawReport {
    let (capacity, timeout) = (256, Nanos::from_millis(50));
    let mut detail = String::new();
    for rate in [20u64, 60, 100] {
        let mut counts = [0.0f64; 2];
        for (i, mode) in [
            BufferMode::PacketGranularity { capacity },
            BufferMode::FlowGranularity { capacity, timeout },
        ]
        .into_iter()
        .enumerate()
        {
            let mut exp = Experiment::new(ExperimentConfig {
                buffer: mode,
                workload: WorkloadKind::paper_section_v(),
                sending_rate: BitRate::from_mbps(rate),
                frame_size: config.frame_size,
                seed: config.base_seed,
                testbed: config.testbed.clone(),
            });
            counts[i] = exp.run().pkt_in_count as f64;
        }
        if counts[1] > counts[0] {
            return LawReport {
                law: "flow-gran-pkt-ins-at-most-packet-gran",
                holds: false,
                detail: format!(
                    "at {rate} Mbps flow-gran announced {} packet_ins vs packet-gran's {}",
                    counts[1], counts[0]
                ),
            };
        }
        let _ = write!(detail, "{rate} Mbps: {} ≤ {}; ", counts[1], counts[0]);
    }
    LawReport {
        law: "flow-gran-pkt-ins-at-most-packet-gran",
        holds: true,
        detail: detail.trim_end_matches("; ").to_owned(),
    }
}

/// A random configuration explored beyond the paper's grid. Replayable
/// from its [`RandomScenario::spec`] string.
#[derive(Clone, Debug, PartialEq)]
pub struct RandomScenario {
    /// The generator seed (also the run seed).
    pub seed: u64,
    /// Buffer mechanism.
    pub mech: BufferMode,
    /// Workload shape.
    pub workload: WorkloadKind,
    /// Sending rate, Mbps.
    pub rate_mbps: u64,
    /// Frame size, bytes.
    pub frame_size: usize,
}

impl RandomScenario {
    /// Deterministically generates scenario number `seed`.
    pub fn generate(seed: u64) -> RandomScenario {
        let mut rng = SimRng::seed_from(seed ^ RANDOM_STREAM);
        let capacities = [16usize, 64, 256];
        let timeouts_ms = [10u64, 20, 50];
        let mech = match rng.gen_range(3) {
            0 => BufferMode::NoBuffer,
            1 => BufferMode::PacketGranularity {
                capacity: capacities[rng.gen_range(3) as usize],
            },
            _ => BufferMode::FlowGranularity {
                capacity: capacities[rng.gen_range(3) as usize],
                timeout: Nanos::from_millis(timeouts_ms[rng.gen_range(3) as usize]),
            },
        };
        let workload = if rng.gen_range(4) > 0 {
            WorkloadKind::single_packet_flows(20 + rng.gen_range(101) as usize)
        } else {
            let n_flows = 5 + rng.gen_range(16) as usize;
            WorkloadKind::CrossSequenced {
                n_flows,
                packets_per_flow: 2 + rng.gen_range(7) as usize,
                group_size: 1 + rng.gen_range(4.min(n_flows as u64)) as usize,
            }
        };
        let frame_sizes = [200usize, 500, 1000, 1500];
        RandomScenario {
            seed,
            mech,
            workload,
            rate_mbps: 1 + rng.gen_range(100),
            frame_size: frame_sizes[rng.gen_range(4) as usize],
        }
    }

    /// One-line replayable description.
    pub fn spec(&self) -> String {
        format!(
            "seed={},buffer={},workload={:?},rate={},frame={}",
            self.seed,
            self.mech.label(),
            self.workload,
            self.rate_mbps,
            self.frame_size
        )
    }

    fn experiment(&self) -> Experiment {
        Experiment::new(ExperimentConfig {
            buffer: self.mech,
            workload: self.workload,
            sending_rate: BitRate::from_mbps(self.rate_mbps),
            frame_size: self.frame_size,
            seed: self.seed,
            ..ExperimentConfig::default()
        })
    }

    /// Number of flows this scenario offers.
    fn flows(&self) -> usize {
        match self.workload {
            WorkloadKind::SinglePacketFlows { n_flows } => n_flows,
            WorkloadKind::CrossSequenced { n_flows, .. } => n_flows,
            _ => 0,
        }
    }
}

/// Checks the always-true laws on one random scenario. Returns the list
/// of violations (empty = clean).
pub fn check_random_scenario(scenario: &RandomScenario) -> Vec<String> {
    let mut violations = Vec::new();
    let a = scenario.experiment().run();
    let b = scenario.experiment().run();
    if a != b {
        violations.push("nondeterministic: two runs of the same config diverged".to_owned());
    }
    if a.packets_delivered + a.packets_dropped != a.packets_sent {
        violations.push(format!(
            "conservation: sent {} != delivered {} + dropped {}",
            a.packets_sent, a.packets_delivered, a.packets_dropped
        ));
    }
    if a.packets_dropped != 0 || a.ctrl_drops != 0 {
        violations.push(format!(
            "no-fault drops: {} data, {} control",
            a.packets_dropped, a.ctrl_drops
        ));
    }
    if a.flows_completed != a.flows_total {
        violations.push(format!(
            "stalled flows: {} of {} completed",
            a.flows_completed, a.flows_total
        ));
    }
    if a.pkt_in_count < a.flows_total as u64 {
        violations.push(format!(
            "too few packet_ins: {} for {} flows",
            a.pkt_in_count, a.flows_total
        ));
    }
    // Oracle floor: the simulated mean can never beat the idle-path
    // latency the configuration itself implies (0.8 leaves margin for
    // model error; a sub-floor delay means the simulator skipped work).
    let mut switch = TestbedConfig::default().switch;
    switch.buffer = scenario.mech;
    let testbed = TestbedConfig::default();
    let prediction = Oracle::faithful().predict(&Scenario {
        switch,
        controller: testbed.controller,
        data_link: testbed.data_link,
        control_link: testbed.control_link,
        rate: BitRate::from_mbps(scenario.rate_mbps),
        frame_len: scenario.frame_size,
        flows: scenario.flows().max(1) as u64,
    });
    let sim_delay = a.flow_setup_delay.mean;
    if a.flows_total > 0 && sim_delay < 0.8 * prediction.setup_floor_ms {
        violations.push(format!(
            "sub-floor delay: simulated {sim_delay:.4} ms < 0.8 × oracle floor {:.4} ms",
            prediction.setup_floor_ms
        ));
    }
    violations
}

/// Greedy shrinking, chaos-minimizer style: repeatedly try simplifying
/// transformations (smaller workload, plainer frame/rate/mechanism) and
/// keep any that still violates a law, until a fixpoint.
pub fn shrink_random_scenario(scenario: &RandomScenario) -> RandomScenario {
    let mut best = scenario.clone();
    loop {
        let mut improved = false;
        for candidate in shrink_candidates(&best) {
            if candidate != best && !check_random_scenario(&candidate).is_empty() {
                best = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

fn shrink_candidates(s: &RandomScenario) -> Vec<RandomScenario> {
    let mut out = Vec::new();
    // Plainer workload first: cross-sequenced → single-packet.
    if let WorkloadKind::CrossSequenced { n_flows, .. } = s.workload {
        out.push(RandomScenario {
            workload: WorkloadKind::single_packet_flows(n_flows),
            ..s.clone()
        });
    }
    // Fewer flows.
    let flows = s.flows();
    if flows > 4 {
        let halved = flows / 2;
        out.push(RandomScenario {
            workload: match s.workload {
                WorkloadKind::CrossSequenced {
                    packets_per_flow,
                    group_size,
                    ..
                } => WorkloadKind::CrossSequenced {
                    n_flows: halved,
                    packets_per_flow,
                    group_size: group_size.min(halved),
                },
                _ => WorkloadKind::single_packet_flows(halved),
            },
            ..s.clone()
        });
    }
    // The paper's frame size.
    if s.frame_size != 1000 {
        out.push(RandomScenario {
            frame_size: 1000,
            ..s.clone()
        });
    }
    // A gentler rate.
    if s.rate_mbps > 10 {
        out.push(RandomScenario {
            rate_mbps: (s.rate_mbps / 2).max(10),
            ..s.clone()
        });
    }
    // The simplest mechanism.
    if s.mech != BufferMode::NoBuffer {
        out.push(RandomScenario {
            mech: BufferMode::NoBuffer,
            ..s.clone()
        });
    }
    out
}

/// Exercises `n` seeded random scenarios starting at `base_seed` and
/// returns `(checked, findings)` with every finding shrunk.
pub fn random_sweep(n: u64, base_seed: u64) -> (u64, Vec<RandomFinding>) {
    let mut findings = Vec::new();
    for i in 0..n {
        let scenario = RandomScenario::generate(base_seed.wrapping_add(i));
        let violations = check_random_scenario(&scenario);
        if !violations.is_empty() {
            let shrunk = shrink_random_scenario(&scenario);
            let violations = check_random_scenario(&shrunk);
            findings.push(RandomFinding {
                spec: scenario.spec(),
                shrunk_spec: shrunk.spec(),
                violations,
            });
        }
    }
    (n, findings)
}

/// Re-export of the oracle's types for downstream tests and the CLI.
pub use sdnbuf_model::{ModelFidelity, Oracle, Prediction, Scenario, Station};

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ValidateConfig {
        ValidateConfig {
            rates_mbps: vec![10, 60],
            mechanisms: vec![
                BufferMode::NoBuffer,
                BufferMode::PacketGranularity { capacity: 256 },
            ],
            flows: 120,
            repetitions: 2,
            ..ValidateConfig::default()
        }
    }

    #[test]
    fn tiny_grid_passes_and_reports_every_metric() {
        let report = validate(&tiny_config());
        assert!(
            report.passed(),
            "differential failures: {:#?}",
            report
                .cells
                .iter()
                .flat_map(|c| c.checks.iter().filter(|k| !k.pass).map(|k| (
                    c.label.clone(),
                    c.rate_mbps,
                    k.clone()
                )))
                .collect::<Vec<_>>()
        );
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.checks(), 4 * checked_metrics().len());
    }

    #[test]
    fn broken_oracle_is_caught() {
        let mut config = tiny_config();
        config.broken = true;
        let report = validate(&config);
        assert!(
            report.differential_failures() > 0,
            "the forgotten-propagation bug slipped through every tolerance"
        );
        // The simulator itself is untouched: the laws still hold.
        assert_eq!(report.laws_failed(), 0, "{:#?}", report.laws);
    }

    #[test]
    fn json_report_is_tagged_and_tsv_has_a_row_per_check() {
        let report = validate(&ValidateConfig {
            rates_mbps: vec![20],
            mechanisms: vec![BufferMode::PacketGranularity { capacity: 256 }],
            flows: 60,
            repetitions: 1,
            ..ValidateConfig::default()
        });
        let json = report.to_json();
        assert!(json.starts_with("{\"schema\":\"validate/v1\""), "{json}");
        let tsv = report.to_tsv();
        assert_eq!(tsv.lines().count(), 1 + report.checks());
    }

    #[test]
    fn explicit_cells_override_the_cross_product() {
        let report = validate(&ValidateConfig {
            cells: Some(vec![
                (BufferMode::NoBuffer, 20),
                (BufferMode::PacketGranularity { capacity: 256 }, 60),
            ]),
            flows: 60,
            repetitions: 1,
            ..ValidateConfig::default()
        });
        assert_eq!(report.cells.len(), 2);
        let labels: Vec<(&str, u64)> = report
            .cells
            .iter()
            .map(|c| (c.label.as_str(), c.rate_mbps))
            .collect();
        assert!(labels.contains(&("no-buffer", 20)));
        assert!(labels.contains(&("buffer-256", 60)));
    }

    #[test]
    fn random_scenarios_are_deterministic_and_replayable() {
        for seed in [0u64, 7, 99] {
            assert_eq!(
                RandomScenario::generate(seed),
                RandomScenario::generate(seed)
            );
        }
        let specs: Vec<String> = (0..20)
            .map(|s| RandomScenario::generate(s).spec())
            .collect();
        let mut unique = specs.clone();
        unique.sort();
        unique.dedup();
        assert!(unique.len() > 10, "generator collapsed: {specs:?}");
    }

    #[test]
    fn shrinking_converges_to_a_fixpoint() {
        // Shrink a scenario under a synthetic always-failing check by
        // verifying candidates only ever simplify (no oscillation).
        let s = RandomScenario::generate(3);
        for c in shrink_candidates(&s) {
            assert!(c.flows() <= s.flows());
            assert!(c.rate_mbps <= s.rate_mbps);
        }
    }
}
