//! Markdown report generation: renders sweep results into the
//! `EXPERIMENTS.md`-style paper-vs-measured format automatically.

use crate::{figures, observe, RunResult, SweepResult};
use sdnbuf_metrics::TimeSeries;
use std::fmt::Write as _;

/// Renders one run as a markdown definition list.
pub fn run_markdown(run: &RunResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {} @ {} Mbps\n", run.label, run.sending_rate_mbps);
    let _ = writeln!(out, "| metric | value |");
    let _ = writeln!(out, "|---|---|");
    let mut row = |k: &str, v: String| {
        let _ = writeln!(out, "| {k} | {v} |");
    };
    row("active span", run.active_span.to_string());
    row(
        "packets delivered",
        format!("{}/{}", run.packets_delivered, run.packets_sent),
    );
    row(
        "flows completed",
        format!("{}/{}", run.flows_completed, run.flows_total),
    );
    row(
        "control load (to ctrl / to switch)",
        format!(
            "{:.2} / {:.2} Mbps",
            run.ctrl_load_to_controller_mbps, run.ctrl_load_to_switch_mbps
        ),
    );
    row(
        "messages (pkt_in / flow_mod / pkt_out)",
        format!(
            "{} / {} / {}",
            run.pkt_in_count, run.flow_mod_count, run.pkt_out_count
        ),
    );
    row(
        "CPU (controller / switch)",
        format!(
            "{:.1} % / {:.1} %",
            run.controller_cpu_percent, run.switch_cpu_percent
        ),
    );
    row(
        "flow setup delay",
        format!(
            "{:.3} ms (max {:.3})",
            run.flow_setup_delay.mean, run.flow_setup_delay.max
        ),
    );
    row(
        "controller delay",
        format!(
            "{:.3} ms (max {:.3})",
            run.controller_delay.mean, run.controller_delay.max
        ),
    );
    row(
        "buffer occupancy (mean / peak)",
        format!(
            "{:.1} / {} units",
            run.buffer_mean_occupancy, run.buffer_peak_occupancy
        ),
    );
    out
}

/// Renders a whole sweep as a markdown section: one table per figure
/// metric, plus the summary paragraph.
pub fn sweep_markdown(title: &str, sweep: &SweepResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {title}\n");
    let sections = [
        (
            "Control path load, switch → controller (Mbps)",
            figures::fig_control_load_to_controller(sweep),
        ),
        (
            "Control path load, controller → switch (Mbps)",
            figures::fig_control_load_to_switch(sweep),
        ),
        ("Controller CPU (%)", figures::fig_controller_usage(sweep)),
        ("Switch CPU (%)", figures::fig_switch_usage(sweep)),
        (
            "Flow setup delay (ms)",
            figures::fig_flow_setup_delay(sweep),
        ),
        (
            "Buffer utilization (mean units)",
            figures::fig_buffer_utilization_mean(sweep),
        ),
    ];
    for (name, table) in sections {
        let _ = writeln!(out, "### {name}\n");
        let _ = writeln!(out, "```text\n{}```\n", table.to_text());
    }
    out
}

/// Renders an occupancy-over-time section from a sampled event stream
/// (see [`observe::sample_series`]): one sparkline per series scaled to
/// its own peak, plus the headline numbers. Looks *inside* a run where the
/// sweep tables only report per-run aggregates — e.g. the buffer-16 cell
/// at 100 Mbps shows the buffer pinned at capacity while `packet_in`
/// traffic saturates the channel.
pub fn occupancy_markdown(title: &str, samples: &[observe::Sample]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {title}\n");
    if samples.is_empty() {
        let _ = writeln!(out, "(no samples — run was not traced)");
        return out;
    }
    let mut occupancy = TimeSeries::new();
    let mut table_size = TimeSeries::new();
    let mut to_ctrl = TimeSeries::new();
    let mut to_switch = TimeSeries::new();
    for s in samples {
        occupancy.record(s.t, s.occupancy as f64);
        table_size.record(s.t, s.table_size as f64);
        to_ctrl.record(s.t, s.to_controller_mbps);
        to_switch.record(s.t, s.to_switch_mbps);
    }
    let span_ms = samples.last().expect("non-empty").t.as_millis_f64();
    let _ = writeln!(
        out,
        "{} windows spanning {span_ms:.0} ms of virtual time; sparklines\n\
         scale each series to its own peak.\n",
        samples.len()
    );
    let _ = writeln!(out, "| series | peak | over time |");
    let _ = writeln!(out, "|---|---|---|");
    let peak = |s: &TimeSeries| s.points().iter().map(|p| p.1).fold(0.0f64, f64::max);
    let mut row = |name: &str, unit: &str, s: &TimeSeries| {
        let _ = writeln!(
            out,
            "| {name} | {:.1} {unit} | `{}` |",
            peak(s),
            s.sparkline(60)
        );
    };
    row("buffer occupancy", "units", &occupancy);
    row("flow-table size", "rules", &table_size);
    row("control load, switch → controller", "Mbps", &to_ctrl);
    row("control load, controller → switch", "Mbps", &to_switch);
    out
}

/// Renders the full paper-reproduction report (both sweeps + claims).
pub fn full_report(section_iv: &SweepResult, section_v: &SweepResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# sdn-buffer-lab reproduction report\n");
    let _ = writeln!(
        out,
        "Generated by `repro_all`; see `EXPERIMENTS.md` for the annotated\n\
         paper-vs-measured comparison.\n"
    );
    out.push_str(&sweep_markdown(
        "Section IV — benefits of the switch buffer",
        section_iv,
    ));
    out.push_str(&sweep_markdown(
        "Section V — packet- vs flow-granularity",
        section_v,
    ));
    let _ = writeln!(out, "## Headline claims\n");
    let _ = writeln!(
        out,
        "```text\n{}```",
        figures::summary_claims(section_iv, section_v).to_text()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufferMode, Experiment, ExperimentConfig, RateSweep, TestbedConfig, WorkloadKind};
    use sdnbuf_sim::BitRate;

    #[test]
    fn run_markdown_mentions_key_metrics() {
        let run = Experiment::new(ExperimentConfig {
            buffer: BufferMode::PacketGranularity { capacity: 64 },
            workload: WorkloadKind::single_packet_flows(10),
            sending_rate: BitRate::from_mbps(20),
            seed: 1,
            ..ExperimentConfig::default()
        })
        .run();
        let md = run_markdown(&run);
        assert!(md.contains("buffer-64"));
        assert!(md.contains("10/10"));
        assert!(md.contains("flow setup delay"));
    }

    #[test]
    fn occupancy_section_renders_sparklines() {
        let (_, events) = Experiment::new(ExperimentConfig {
            buffer: BufferMode::PacketGranularity { capacity: 16 },
            workload: WorkloadKind::single_packet_flows(50),
            sending_rate: BitRate::from_mbps(100),
            seed: 1,
            ..ExperimentConfig::default()
        })
        .run_traced();
        let samples = crate::observe::sample_series(&events, sdnbuf_sim::Nanos::from_millis(1));
        let md = occupancy_markdown("Inside one run", &samples);
        assert!(md.contains("## Inside one run"));
        assert!(md.contains("buffer occupancy"));
        assert!(md.contains("switch → controller"));
        // At least one sparkline has a visible bar.
        assert!(md.contains('█') || md.contains('▁'));
        assert!(occupancy_markdown("Empty", &[]).contains("no samples"));
    }

    #[test]
    fn full_report_renders_both_sections() {
        let mini = |buffers| RateSweep {
            rates_mbps: vec![20],
            buffers,
            workload: WorkloadKind::single_packet_flows(5),
            repetitions: 1,
            base_seed: 1,
            frame_size: 1000,
            testbed: TestbedConfig::default(),
        };
        let iv = mini(vec![
            BufferMode::NoBuffer,
            BufferMode::PacketGranularity { capacity: 256 },
        ])
        .run();
        let v = mini(vec![BufferMode::PacketGranularity { capacity: 256 }]).run();
        let md = full_report(&iv, &v);
        assert!(md.contains("# sdn-buffer-lab reproduction report"));
        assert!(md.contains("Section IV"));
        assert!(md.contains("Section V"));
        assert!(md.contains("Headline claims"));
        assert!(md.contains("no-buffer"));
    }
}
