//! Seeded chaos harness over the fault-injection plane.
//!
//! Simulation testing in the FoundationDB style: [`ChaosScenario::generate`]
//! samples a randomized but fully determined scenario from a master seed —
//! a buffer mechanism, a small cross-sequenced workload and a composable
//! [`FaultPlan`] — and [`run_scenario`] executes it on a fresh [`Testbed`]
//! with the recording tracer attached, then checks the event stream against
//! the protocol invariants in [`check_invariants`].
//!
//! Every scenario serializes to a one-line spec ([`ChaosScenario::to_spec`])
//! that [`ChaosScenario::parse`] restores exactly, so a failing run prints a
//! single replay command that reproduces the violation byte-identically.
//! [`minimize`] greedily shrinks a failing plan to a minimal set of faults
//! that still violates an invariant.

use crate::{BufferMode, RunResult, Testbed, TestbedConfig, WorkloadKind};
use sdnbuf_openflow::BufferId;
use sdnbuf_sim::faults::{fmt_dur, parse_dur};
use sdnbuf_sim::{
    BitRate, ChannelDir, ChannelFaults, Event, EventKind, FaultPlan, LossModel, Nanos, SimRng,
    Tracer, Window,
};
use sdnbuf_switchbuf::{GiveUp, RetryPolicy};
use sdnbuf_workload::PktgenConfig;
use std::collections::HashMap;

/// The recovery-plane knobs a chaos run configures on its switch: the
/// re-request retry policy, the per-entry buffer TTL and the degraded-mode
/// threshold. Default knobs reproduce the pre-recovery behaviour exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RecoveryKnobs {
    /// Re-request pacing and budget ([`RetryPolicy::fixed`] by default).
    pub retry: RetryPolicy,
    /// Per-entry buffer TTL; [`Nanos::ZERO`] disables expiry.
    pub ttl: Nanos,
    /// Consecutive give-ups tripping degraded mode; `0` disables it.
    pub degraded_threshold: u32,
}

/// Which parts of the mechanism a self-test run cripples on purpose, so
/// the harness can prove its invariants have teeth.
///
/// `From<bool>` keeps the historical call shape alive:
/// `run_scenario(&s, true)` is "nothing sabotaged" and
/// `run_scenario(&s, false)` disables Algorithm 1's re-request loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sabotage {
    /// Disable Algorithm 1's re-request lines (the original `--broken`).
    pub disable_rerequest: bool,
    /// Disable the TTL garbage collector while leaving the configured TTL
    /// in place (`--broken-ttl`): stranded entries leak.
    pub disable_ttl_gc: bool,
    /// Disable the buffer mechanism's epoch guard (`--broken-epoch`):
    /// entries are neither re-tagged nor re-announced across a session
    /// epoch bump, and stale-epoch releases sail through.
    pub broken_epoch: bool,
}

impl Sabotage {
    /// Nothing crippled.
    pub fn none() -> Sabotage {
        Sabotage::default()
    }

    /// Only the TTL garbage collector disabled.
    pub fn no_ttl_gc() -> Sabotage {
        Sabotage {
            disable_ttl_gc: true,
            ..Sabotage::default()
        }
    }

    /// Only the epoch guard disabled.
    pub fn no_epoch_guard() -> Sabotage {
        Sabotage {
            broken_epoch: true,
            ..Sabotage::default()
        }
    }
}

impl From<bool> for Sabotage {
    fn from(rerequest_enabled: bool) -> Sabotage {
        Sabotage {
            disable_rerequest: !rerequest_enabled,
            ..Sabotage::default()
        }
    }
}

/// Standby-failover knobs a chaos scenario can arm on its testbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StandbyKnobs {
    /// Warm (snapshot-synced) or cold (empty tables) takeover.
    pub warm: bool,
    /// Delay between the primary's crash and the standby's takeover.
    pub takeover_delay: Nanos,
}

/// One sampled chaos scenario: everything needed to reproduce a run.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosScenario {
    /// Buffer mechanism under test.
    pub mech: BufferMode,
    /// Offered workload.
    pub workload: WorkloadKind,
    /// Sending rate in Mbps.
    pub rate_mbps: u64,
    /// Workload seed (departure jitter).
    pub seed: u64,
    /// The fault plan.
    pub plan: FaultPlan,
    /// Recovery-plane switch knobs (defaults = pre-recovery behaviour).
    pub recovery: RecoveryKnobs,
    /// Warm-standby failover; `None` means the primary restarts itself at
    /// each crash window's end.
    pub standby: Option<StandbyKnobs>,
}

impl ChaosScenario {
    /// Samples scenario `master_seed` for `mech` — a pure function of its
    /// arguments, so the chaos sweep that found a violation and the replay
    /// that debugs it construct the same scenario.
    pub fn generate(master_seed: u64, mech: BufferMode) -> ChaosScenario {
        let mut rng = SimRng::seed_from(master_seed ^ 0x9e37_79b9_7f4a_7c15);
        let n_flows = 4 + rng.gen_range(5) as usize;
        let packets_per_flow = 3 + rng.gen_range(4) as usize;
        let workload = WorkloadKind::CrossSequenced {
            n_flows,
            packets_per_flow,
            group_size: 2,
        };
        let rate_mbps = 20 + 10 * rng.gen_range(8);

        let mut plan = FaultPlan {
            seed: 1 + rng.gen_range(1_000_000),
            ..FaultPlan::default()
        };
        plan.to_controller.loss = match rng.gen_range(4) {
            0 => LossModel::None,
            1 => LossModel::EveryNth(4 + rng.gen_range(17)),
            _ => LossModel::Probabilistic(0.02 + rng.gen_range(2300) as f64 / 10_000.0),
        };
        // Deterministic every-nth loss on the controller→switch path can
        // phase-lock with flow granularity's two-message re-request cycle
        // (one flow_mod + one packet_out per cycle) and drop every
        // packet_out forever, so this direction only samples memoryless
        // loss — any probability below 1 eventually lets a release through.
        plan.to_switch.loss = match rng.gen_range(3) {
            0 => LossModel::None,
            _ => LossModel::Probabilistic(0.02 + rng.gen_range(1800) as f64 / 10_000.0),
        };
        if rng.gen_range(2) == 0 {
            plan.to_controller.delay = Nanos::from_micros(50 + rng.gen_range(950));
        }
        if rng.gen_range(3) == 0 {
            plan.to_controller.jitter = Nanos::from_micros(100 + rng.gen_range(1900));
        }
        if rng.gen_range(2) == 0 {
            plan.to_switch.delay = Nanos::from_micros(50 + rng.gen_range(950));
        }
        if rng.gen_range(3) == 0 {
            plan.to_switch.jitter = Nanos::from_micros(100 + rng.gen_range(1900));
        }
        if rng.gen_range(3) == 0 {
            plan.to_controller.duplicate = 0.05 + rng.gen_range(1500) as f64 / 10_000.0;
        }
        if rng.gen_range(3) == 0 {
            plan.to_switch.duplicate = 0.05 + rng.gen_range(1500) as f64 / 10_000.0;
        }
        if rng.gen_range(3) == 0 {
            plan.to_controller.reorder = 0.1 + rng.gen_range(2000) as f64 / 10_000.0;
            plan.to_controller.reorder_by = Nanos::from_micros(200 + rng.gen_range(1300));
        }
        if rng.gen_range(3) == 0 {
            plan.to_switch.reorder = 0.1 + rng.gen_range(2000) as f64 / 10_000.0;
            plan.to_switch.reorder_by = Nanos::from_micros(200 + rng.gen_range(1300));
        }
        // The data phase starts at the 50 ms warm-up gap; windows sampled
        // around it so they actually overlap traffic.
        for _ in 0..rng.gen_range(3) {
            plan.stalls.push(window_near_data_phase(&mut rng, 8));
        }
        if rng.gen_range(4) == 0 {
            plan.flaps.push(window_near_data_phase(&mut rng, 4));
        }
        if rng.gen_range(4) == 0 {
            plan.pressure.push(window_near_data_phase(&mut rng, 8));
        }

        ChaosScenario {
            mech,
            workload,
            rate_mbps,
            seed: 1 + rng.gen_range(1_000_000),
            plan,
            // The sweep runs with default recovery knobs so its catch rates
            // stay comparable across PRs; the recovery matrix
            // ([`recovery_matrix`]) turns the knobs on explicitly.
            recovery: RecoveryKnobs::default(),
            standby: None,
        }
    }

    /// [`ChaosScenario::generate`] plus the crash plane: one or two
    /// controller crash windows inside the data phase, and — every third
    /// scenario — a warm or cold standby (whose own crash window is then
    /// sometimes sampled too). A pure function of its arguments, like
    /// `generate`.
    pub fn generate_with_crashes(master_seed: u64, mech: BufferMode) -> ChaosScenario {
        let mut s = ChaosScenario::generate(master_seed, mech);
        let mut rng = SimRng::seed_from(master_seed ^ 0x5bd1_e995_9d1b_58d3);
        for _ in 0..1 + rng.gen_range(2) {
            s.plan.crashes.push(window_near_data_phase(&mut rng, 14));
        }
        if rng.gen_range(3) == 0 {
            s.standby = Some(StandbyKnobs {
                warm: rng.gen_range(2) == 0,
                takeover_delay: Nanos::from_millis(2 + rng.gen_range(10)),
            });
            if rng.gen_range(2) == 0 {
                s.plan
                    .crashes_standby
                    .push(window_near_data_phase(&mut rng, 6));
            }
        }
        s
    }

    /// Serializes the scenario to the one-line spec that
    /// `sdnlab chaos --replay` accepts. [`ChaosScenario::parse`] restores
    /// it exactly, field for field.
    pub fn to_spec(&self) -> String {
        let mut parts = vec![
            format!("mech={}", mech_spec(self.mech)),
            format!("wl={}", wl_spec(&self.workload)),
            format!("rate={}", self.rate_mbps),
            format!("seed={}", self.seed),
        ];
        if self.recovery.retry != RetryPolicy::fixed() {
            parts.push(format!("retry={}", retry_spec(&self.recovery.retry)));
        }
        if self.recovery.ttl != Nanos::ZERO {
            parts.push(format!("ttl={}", fmt_dur(self.recovery.ttl)));
        }
        if self.recovery.degraded_threshold != 0 {
            parts.push(format!("degraded={}", self.recovery.degraded_threshold));
        }
        if let Some(sb) = self.standby {
            parts.push(format!(
                "standby={}:{}",
                if sb.warm { "warm" } else { "cold" },
                fmt_dur(sb.takeover_delay)
            ));
        }
        let plan = self.plan.to_spec();
        if !plan.is_empty() {
            parts.push(plan);
        }
        parts.join(",")
    }

    /// Parses a spec produced by [`ChaosScenario::to_spec`]. Keys the
    /// scenario does not own are dispatched to [`FaultPlan::apply_kv`].
    pub fn parse(spec: &str) -> Result<ChaosScenario, String> {
        let mut mech = None;
        let mut workload = None;
        let mut rate_mbps = None;
        let mut seed = None;
        let mut plan = FaultPlan::default();
        let mut recovery = RecoveryKnobs::default();
        let mut standby = None;
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{part}'"))?;
            match key {
                "mech" => mech = Some(parse_mech(value)?),
                "wl" => workload = Some(parse_wl(value)?),
                "rate" => {
                    rate_mbps = Some(value.parse().map_err(|_| format!("bad rate '{value}'"))?);
                }
                "seed" => {
                    seed = Some(value.parse().map_err(|_| format!("bad seed '{value}'"))?);
                }
                "retry" => recovery.retry = parse_retry(value)?,
                "ttl" => recovery.ttl = parse_dur(value)?,
                "degraded" => {
                    recovery.degraded_threshold = value
                        .parse()
                        .map_err(|_| format!("bad degraded threshold '{value}'"))?;
                }
                "standby" => standby = Some(parse_standby(value)?),
                _ => {
                    if !plan.apply_kv(key, value)? {
                        return Err(format!("unknown scenario key '{key}'"));
                    }
                }
            }
        }
        plan.validate()?;
        recovery.retry.validate()?;
        Ok(ChaosScenario {
            mech: mech.ok_or_else(|| "scenario spec is missing mech=".to_owned())?,
            workload: workload.ok_or_else(|| "scenario spec is missing wl=".to_owned())?,
            rate_mbps: rate_mbps.ok_or_else(|| "scenario spec is missing rate=".to_owned())?,
            seed: seed.ok_or_else(|| "scenario spec is missing seed=".to_owned())?,
            plan,
            recovery,
            standby,
        })
    }
}

fn parse_standby(s: &str) -> Result<StandbyKnobs, String> {
    let (sync, delay) = s
        .split_once(':')
        .ok_or_else(|| format!("expected standby=<warm|cold>:<delay>, got '{s}'"))?;
    let warm = match sync {
        "warm" => true,
        "cold" => false,
        other => return Err(format!("bad standby sync '{other}' (warm or cold)")),
    };
    Ok(StandbyKnobs {
        warm,
        takeover_delay: parse_dur(delay)?,
    })
}

/// Serializes a retry policy for the scenario spec:
/// `<multiplier>:<cap>:<jitter>:<budget>:<give-up>:<jitter-seed>`.
fn retry_spec(p: &RetryPolicy) -> String {
    format!(
        "{}:{}:{}:{}:{}:{}",
        p.multiplier,
        fmt_dur(p.cap),
        fmt_dur(p.jitter),
        p.budget,
        p.give_up.label(),
        p.seed
    )
}

fn parse_retry(s: &str) -> Result<RetryPolicy, String> {
    let parts: Vec<&str> = s.split(':').collect();
    let [mult, cap, jitter, budget, give_up, seed] = parts.as_slice() else {
        return Err(format!(
            "expected retry=<mult>:<cap>:<jitter>:<budget>:<drain|drop>:<seed>, got '{s}'"
        ));
    };
    Ok(RetryPolicy {
        multiplier: mult
            .parse()
            .map_err(|_| format!("bad retry multiplier '{mult}'"))?,
        cap: parse_dur(cap)?,
        jitter: parse_dur(jitter)?,
        budget: budget
            .parse()
            .map_err(|_| format!("bad retry budget '{budget}'"))?,
        give_up: GiveUp::parse(give_up)?,
        seed: seed
            .parse()
            .map_err(|_| format!("bad jitter seed '{seed}'"))?,
    })
}

/// A window of `1..=max_ms` milliseconds starting inside the data phase
/// (which begins at the 50 ms warm-up gap).
fn window_near_data_phase(rng: &mut SimRng, max_ms: u64) -> Window {
    let from = Nanos::from_millis(48 + rng.gen_range(30));
    Window::new(from, from + Nanos::from_millis(1 + rng.gen_range(max_ms)))
}

fn mech_spec(mech: BufferMode) -> String {
    match mech {
        BufferMode::NoBuffer => "none".to_owned(),
        BufferMode::PacketGranularity { capacity } => format!("packet:{capacity}"),
        BufferMode::FlowGranularity { capacity, timeout } => {
            format!("flow:{capacity}:{}", fmt_dur(timeout))
        }
    }
}

fn parse_mech(s: &str) -> Result<BufferMode, String> {
    if s == "none" {
        return Ok(BufferMode::NoBuffer);
    }
    if let Some(c) = s.strip_prefix("packet:") {
        return Ok(BufferMode::PacketGranularity {
            capacity: c.parse().map_err(|_| format!("bad capacity '{c}'"))?,
        });
    }
    if let Some(rest) = s.strip_prefix("flow:") {
        let (c, t) = rest
            .split_once(':')
            .ok_or_else(|| format!("expected flow:<capacity>:<timeout>, got '{s}'"))?;
        return Ok(BufferMode::FlowGranularity {
            capacity: c.parse().map_err(|_| format!("bad capacity '{c}'"))?,
            timeout: parse_dur(t)?,
        });
    }
    Err(format!(
        "bad mechanism '{s}' (expected none, packet:<cap> or flow:<cap>:<timeout>)"
    ))
}

fn wl_spec(wl: &WorkloadKind) -> String {
    match *wl {
        WorkloadKind::SinglePacketFlows { n_flows } => format!("single:{n_flows}"),
        WorkloadKind::CrossSequenced {
            n_flows,
            packets_per_flow,
            group_size,
        } => format!("cross:{n_flows}x{packets_per_flow}/{group_size}"),
        WorkloadKind::TcpEviction {
            first_burst,
            idle_gap,
            second_burst,
        } => format!("tcp:{first_burst}:{}:{second_burst}", fmt_dur(idle_gap)),
        WorkloadKind::MixedUdpTcp {
            n_udp_flows,
            n_tcp,
            segments_per_tcp,
        } => format!("mixed:{n_udp_flows}:{n_tcp}:{segments_per_tcp}"),
    }
}

fn parse_wl(s: &str) -> Result<WorkloadKind, String> {
    let int = |v: &str| -> Result<usize, String> {
        v.parse().map_err(|_| format!("bad workload number '{v}'"))
    };
    let (kind, rest) = s
        .split_once(':')
        .ok_or_else(|| format!("bad workload '{s}'"))?;
    match kind {
        "single" => Ok(WorkloadKind::SinglePacketFlows {
            n_flows: int(rest)?,
        }),
        "cross" => {
            let bad = || format!("expected cross:<flows>x<pkts>/<group>, got '{s}'");
            let (nf, tail) = rest.split_once('x').ok_or_else(bad)?;
            let (pp, g) = tail.split_once('/').ok_or_else(bad)?;
            Ok(WorkloadKind::CrossSequenced {
                n_flows: int(nf)?,
                packets_per_flow: int(pp)?,
                group_size: int(g)?,
            })
        }
        "tcp" => {
            let bad = || format!("expected tcp:<first>:<gap>:<second>, got '{s}'");
            let (first, tail) = rest.split_once(':').ok_or_else(bad)?;
            let (gap, second) = tail.split_once(':').ok_or_else(bad)?;
            Ok(WorkloadKind::TcpEviction {
                first_burst: int(first)?,
                idle_gap: parse_dur(gap)?,
                second_burst: int(second)?,
            })
        }
        "mixed" => {
            let bad = || format!("expected mixed:<udp>:<tcp>:<segments>, got '{s}'");
            let (udp, tail) = rest.split_once(':').ok_or_else(bad)?;
            let (tcp, seg) = tail.split_once(':').ok_or_else(bad)?;
            Ok(WorkloadKind::MixedUdpTcp {
                n_udp_flows: int(udp)?,
                n_tcp: int(tcp)?,
                segments_per_tcp: int(seg)?,
            })
        }
        _ => Err(format!("bad workload kind '{kind}'")),
    }
}

/// Runs `scenario` on a fresh testbed with the recording tracer attached
/// and returns the measurements plus the full event stream.
///
/// `sabotage` cripples parts of the mechanism on purpose (accepts a plain
/// `bool` for the historical "re-request enabled?" call shape) — the
/// intentionally broken variants the harness's self-test must catch via
/// the eventual-delivery and buffer-expiry invariants.
pub fn execute(scenario: &ChaosScenario, sabotage: impl Into<Sabotage>) -> (RunResult, Vec<Event>) {
    let sabotage = sabotage.into();
    let mut cfg = TestbedConfig::default();
    cfg.switch.buffer = scenario.mech;
    cfg.switch.retry = scenario.recovery.retry;
    cfg.switch.buffer_ttl = scenario.recovery.ttl;
    cfg.switch.degraded_threshold = scenario.recovery.degraded_threshold;
    cfg.faults = scenario.plan.clone();
    if scenario.plan.has_crashes() {
        // The crash plane needs a heartbeat to miss: keepalives give the
        // switch's liveness detector its signal. Scenarios without crash
        // windows keep the channel measurement-only, so their event
        // streams (and digests) are unchanged from previous PRs.
        cfg.keepalive_interval = Some(Nanos::from_millis(5));
        cfg.switch.liveness_timeout = Nanos::from_millis(15);
    }
    if let Some(sb) = scenario.standby {
        cfg.failover = crate::testbed::FailoverConfig {
            standby: true,
            takeover_delay: sb.takeover_delay,
            warm: sb.warm,
        };
    }
    let pktgen = PktgenConfig {
        rate: BitRate::from_mbps(scenario.rate_mbps),
        ..PktgenConfig::default()
    };
    let departures = scenario.workload.generate(&pktgen, scenario.seed);
    let mut tb = Testbed::new(cfg);
    if sabotage.disable_rerequest {
        tb.switch_mut().buffer_mut().set_rerequest_enabled(false);
    }
    if sabotage.disable_ttl_gc {
        tb.switch_mut().buffer_mut().set_ttl_gc_enabled(false);
    }
    if sabotage.broken_epoch {
        tb.switch_mut().buffer_mut().set_epoch_guard_enabled(false);
    }
    let (tracer, sink) = Tracer::recording(0);
    tb.set_tracer(tracer);
    let mut result = tb.run(&departures);
    result.sending_rate_mbps = scenario.rate_mbps as f64;
    let events = sink.borrow_mut().take();
    (result, events)
}

/// One invariant violation found in a run's event stream.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Short stable invariant name (test assertions key on it).
    pub invariant: &'static str,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

/// Checks a run's event stream and measurements against the protocol
/// invariants. An empty result means the scenario passed.
///
/// The invariants, per the mechanism design in Sections IV–V:
/// * **packet-conservation** — every sent packet is delivered, dropped on
///   a data link, still buffered (stranded), or carried inside a dropped
///   full-packet control message; nothing simply vanishes.
/// * **occupancy-bound** — the buffer never holds more packets than its
///   capacity.
/// * **buffer-bookkeeping** — a `packet_out` never releases more packets
///   from a `buffer_id` than were filed under it (no double-free, no leak
///   of slots to foreign flows).
/// * **single-request-per-flow** — the number of `packet_in`s referencing
///   a buffer id equals its fresh allocations plus its timeout
///   re-requests: at most one outstanding request per flow (Algorithm 1).
/// * **rerequest-before-timeout** — consecutive requests for the same id
///   are separated by at least the configured timeout.
/// * **rerequest-accounting** — the run's counter matches the trace.
/// * **no-stale-drain** — a `packet_out` never drains packets from a slot
///   that expiry, give-up or an earlier drain already emptied; generation
///   tags must reject such stale releases.
/// * **retry-budget** — with a finite budget, no slot is re-requested more
///   than `budget` times between fresh allocations.
/// * **buffer-expiry** — with a TTL armed, no entry survives the run
///   stranded in the buffer. This is the invariant that catches a broken
///   TTL garbage collector.
/// * **degraded-recovery** — a switch still degraded at the end of the run
///   must not have seen controller progress (a `flow_mod` installed or a
///   buffer drained) since it last entered degraded mode.
/// * **eventual-delivery** / **buffer-id-leak** — flow granularity with
///   control-channel faults only (loss < 100 %, no flaps, no pressure)
///   and neutral recovery knobs (no TTL, no budget, no degraded mode —
///   each of which deliberately sacrifices delivery for boundedness) must
///   deliver everything and fully drain its buffer. This is the invariant
///   that catches a broken re-request loop.
///
/// The crash plane (PR 9) adds four more:
/// * **epoch-monotonicity** — the switch's session epoch only ever steps
///   up by one, and every bump's target epoch was announced by a
///   controller restart or failover takeover first.
/// * **handshake-before-service** — after a crash, the switch serves no
///   epoch bump until a restarted controller re-ran the handshake (an
///   `EpochBump` with no preceding `CtrlRestart`/`FailoverTakeover` at
///   that epoch is a violation).
/// * **no-cross-epoch-drain** — a `packet_out` minted under epoch N never
///   drains a buffer entry admitted under epoch M < N. Entries surviving
///   a bump are only considered migrated when the bump re-tagged all of
///   them (`survivors` equals the checker's live count) — the epoch-guard
///   sabotage re-tags none, which is otherwise observationally identical.
/// * **crash-recovery-drain** — flow granularity with crash windows,
///   data-friendly faults and neutral recovery knobs must end the run
///   with an empty buffer: post-restart reconciliation re-announces every
///   survivor, so a crash may shed (accounted) packets but never strands
///   buffered ones.
pub fn check_invariants(
    mech: BufferMode,
    plan: &FaultPlan,
    knobs: RecoveryKnobs,
    result: &RunResult,
    events: &[Event],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let no_buffer = BufferId::NO_BUFFER.as_u32();
    let (capacity, timeout) = match mech {
        BufferMode::NoBuffer => (usize::MAX, None),
        BufferMode::PacketGranularity { capacity } => (capacity, None),
        BufferMode::FlowGranularity { capacity, timeout } => (capacity, Some(timeout)),
    };

    let mut outstanding: HashMap<u32, i64> = HashMap::new();
    let mut fresh_allocs: HashMap<u32, u64> = HashMap::new();
    let mut rerequests: HashMap<u32, u64> = HashMap::new();
    let mut reconciles: HashMap<u32, u64> = HashMap::new();
    let mut pkt_ins: HashMap<u32, u64> = HashMap::new();
    let mut last_request: HashMap<u32, Nanos> = HashMap::new();
    let mut retry_streak: HashMap<u32, u32> = HashMap::new();
    let mut pkt_in_buffer: HashMap<u32, u32> = HashMap::new();
    let mut pkt_out_buffer: HashMap<u32, u32> = HashMap::new();
    let mut lost_ctrl: u64 = 0;
    let mut degraded_enters: u64 = 0;
    let mut degraded_exits: u64 = 0;
    let mut progress_since_enter = false;
    // Crash-plane state: the switch's current epoch, the epochs announced
    // by controller restarts/takeovers, and each live buffer id's
    // admission epoch.
    let mut switch_epoch: u32 = 1;
    let mut announced_epochs: Vec<u32> = Vec::new();
    let mut entry_epoch: HashMap<u32, u32> = HashMap::new();

    for e in events {
        match e.kind {
            EventKind::BufferEnqueue {
                buffer_id,
                occupancy,
                fresh,
            } => {
                if occupancy > capacity {
                    violations.push(Violation {
                        invariant: "occupancy-bound",
                        detail: format!(
                            "occupancy {occupancy} exceeds capacity {capacity} at {}",
                            fmt_dur(e.at)
                        ),
                    });
                }
                *outstanding.entry(buffer_id).or_insert(0) += 1;
                if fresh {
                    *fresh_allocs.entry(buffer_id).or_insert(0) += 1;
                    last_request.insert(buffer_id, e.at);
                    retry_streak.insert(buffer_id, 0);
                    entry_epoch.insert(buffer_id, switch_epoch);
                } else {
                    entry_epoch.entry(buffer_id).or_insert(switch_epoch);
                }
            }
            EventKind::BufferRerequest { buffer_id, .. } => {
                *rerequests.entry(buffer_id).or_insert(0) += 1;
                let streak = retry_streak.entry(buffer_id).or_insert(0);
                *streak += 1;
                if knobs.retry.budget > 0 && *streak > knobs.retry.budget {
                    violations.push(Violation {
                        invariant: "retry-budget",
                        detail: format!(
                            "buffer {buffer_id} re-requested {streak} times against a budget of {}",
                            knobs.retry.budget
                        ),
                    });
                }
                if let (Some(timeout), Some(&prev)) = (timeout, last_request.get(&buffer_id)) {
                    if e.at < prev + timeout {
                        violations.push(Violation {
                            invariant: "rerequest-before-timeout",
                            detail: format!(
                                "buffer {buffer_id} re-requested after {} < timeout {}",
                                fmt_dur(e.at - prev),
                                fmt_dur(timeout)
                            ),
                        });
                    }
                }
                last_request.insert(buffer_id, e.at);
            }
            EventKind::BufferReconcile { buffer_id, .. } => {
                // A reconciliation re-announce is an extra legitimate
                // `packet_in` for the slot; it does not touch the retry
                // budget or the timeout clock.
                *reconciles.entry(buffer_id).or_insert(0) += 1;
            }
            EventKind::BufferDrain {
                buffer_id,
                released,
                ..
            } => {
                progress_since_enter = true;
                if let Some(&admitted) = entry_epoch.get(&buffer_id) {
                    if admitted < switch_epoch && released > 0 {
                        violations.push(Violation {
                            invariant: "no-cross-epoch-drain",
                            detail: format!(
                                "buffer {buffer_id} admitted under epoch {admitted} drained \
                                 while the switch serves epoch {switch_epoch}"
                            ),
                        });
                    }
                }
                let held = outstanding.entry(buffer_id).or_insert(0);
                if *held <= 0 && released > 0 {
                    violations.push(Violation {
                        invariant: "no-stale-drain",
                        detail: format!(
                            "buffer {buffer_id} drained {released} packets from an already \
                             emptied slot (stale release let through)"
                        ),
                    });
                } else if (released as i64) > *held {
                    violations.push(Violation {
                        invariant: "buffer-bookkeeping",
                        detail: format!(
                            "buffer {buffer_id} released {released} packets but held {held}"
                        ),
                    });
                }
                *held -= released as i64;
                if *held <= 0 {
                    last_request.remove(&buffer_id);
                    entry_epoch.remove(&buffer_id);
                }
            }
            EventKind::BufferExpire { buffer_id, .. } => {
                let held = outstanding.entry(buffer_id).or_insert(0);
                if *held <= 0 {
                    violations.push(Violation {
                        invariant: "buffer-bookkeeping",
                        detail: format!("buffer {buffer_id} expired a packet from an empty slot"),
                    });
                }
                *held -= 1;
                if *held <= 0 {
                    last_request.remove(&buffer_id);
                    entry_epoch.remove(&buffer_id);
                }
            }
            EventKind::BufferGiveUp {
                buffer_id, drained, ..
            } => {
                let held = outstanding.entry(buffer_id).or_insert(0);
                if (drained as i64) > *held {
                    violations.push(Violation {
                        invariant: "buffer-bookkeeping",
                        detail: format!(
                            "buffer {buffer_id} gave up {drained} packets but held {held}"
                        ),
                    });
                }
                *held -= drained as i64;
                last_request.remove(&buffer_id);
                retry_streak.remove(&buffer_id);
                entry_epoch.remove(&buffer_id);
            }
            EventKind::CtrlRestart { epoch, .. } | EventKind::FailoverTakeover { epoch, .. } => {
                announced_epochs.push(epoch);
            }
            EventKind::EpochBump {
                from,
                to,
                survivors,
            } => {
                if from != switch_epoch || to != from + 1 {
                    violations.push(Violation {
                        invariant: "epoch-monotonicity",
                        detail: format!(
                            "epoch bump {from} -> {to} while the switch served epoch \
                             {switch_epoch} (epochs must step up by exactly one)"
                        ),
                    });
                }
                if !announced_epochs.contains(&to) {
                    violations.push(Violation {
                        invariant: "handshake-before-service",
                        detail: format!(
                            "switch moved to epoch {to} without a controller restart or \
                             takeover announcing it (no re-handshake happened)"
                        ),
                    });
                }
                // Migrate surviving entries only when the bump re-tagged
                // every live one — the broken-epoch sabotage re-tags none,
                // and this count mismatch is what exposes it.
                let live: Vec<u32> = outstanding
                    .iter()
                    .filter(|&(_, &held)| held > 0)
                    .map(|(&id, _)| id)
                    .collect();
                if survivors == live.len() {
                    for id in live {
                        entry_epoch.insert(id, to);
                    }
                }
                switch_epoch = to;
            }
            EventKind::FlowRuleInstalled { .. } => {
                progress_since_enter = true;
            }
            EventKind::DegradedEnter { .. } => {
                degraded_enters += 1;
                progress_since_enter = false;
            }
            EventKind::DegradedExit { .. } => {
                degraded_exits += 1;
            }
            // Shedding an unbuffered request destroys the packet data it
            // carried; a buffered one leaves the data at the switch.
            EventKind::AdmissionShed {
                buffered: false, ..
            } => {
                lost_ctrl += 1;
            }
            EventKind::PacketInSent { xid, buffer_id, .. } => {
                pkt_in_buffer.insert(xid, buffer_id);
                if buffer_id != no_buffer {
                    *pkt_ins.entry(buffer_id).or_insert(0) += 1;
                }
            }
            EventKind::PacketOutSent { xid, buffer_id } => {
                pkt_out_buffer.insert(xid, buffer_id);
            }
            EventKind::CtrlDrop {
                dir, xid, label, ..
            } => {
                // A dropped control message destroys packet data only when
                // it carried the full packet (the no-buffer sentinel);
                // buffered flows keep their data at the switch.
                let carried_data = match (dir, label) {
                    (ChannelDir::ToController, "packet_in") => {
                        pkt_in_buffer.get(&xid) == Some(&no_buffer)
                    }
                    (ChannelDir::ToSwitch, "packet_out") => {
                        pkt_out_buffer.get(&xid) == Some(&no_buffer)
                    }
                    _ => false,
                };
                if carried_data {
                    lost_ctrl += 1;
                }
            }
            _ => {}
        }
    }

    for (id, &n) in &pkt_ins {
        let expected = fresh_allocs.get(id).copied().unwrap_or(0)
            + rerequests.get(id).copied().unwrap_or(0)
            + reconciles.get(id).copied().unwrap_or(0);
        if n != expected {
            violations.push(Violation {
                invariant: "single-request-per-flow",
                detail: format!(
                    "buffer {id}: {n} packet_ins for {expected} allocations + re-requests + \
                     reconciles"
                ),
            });
        }
    }

    let rerequest_total: u64 = rerequests.values().sum();
    if result.rerequests != rerequest_total {
        violations.push(Violation {
            invariant: "rerequest-accounting",
            detail: format!(
                "stats counted {} re-requests, trace shows {rerequest_total}",
                result.rerequests
            ),
        });
    }
    let reconcile_total: u64 = reconciles.values().sum();
    if result.reconcile_rerequests != reconcile_total {
        violations.push(Violation {
            invariant: "reconcile-accounting",
            detail: format!(
                "stats counted {} reconciliation re-announces, trace shows {reconcile_total}",
                result.reconcile_rerequests
            ),
        });
    }

    let stranded: i64 = outstanding.values().filter(|&&v| v > 0).sum();

    // `lost_ctrl` can overcount (a duplicate of a dropped message may still
    // arrive), so conservation is an inequality — a real leak makes the
    // left side fall short of `sent`.
    let accounted = result.packets_delivered + result.packets_dropped + stranded as u64 + lost_ctrl;
    if accounted < result.packets_sent {
        violations.push(Violation {
            invariant: "packet-conservation",
            detail: format!(
                "sent {} but only {accounted} accounted for (delivered {} + data-dropped {} \
                 + stranded {stranded} + lost-in-control {lost_ctrl})",
                result.packets_sent, result.packets_delivered, result.packets_dropped
            ),
        });
    }

    // A duplicated full-packet control message can legitimately deliver the
    // same packet twice, so the upper bound only holds when no full packet
    // crossed a duplicating channel.
    let dup_possible = plan.to_controller.duplicate > 0.0 || plan.to_switch.duplicate > 0.0;
    let full_packets_in_ctrl = mech == BufferMode::NoBuffer || result.buffer_fallbacks > 0;
    if result.packets_delivered > result.packets_sent && !(dup_possible && full_packets_in_ctrl) {
        violations.push(Violation {
            invariant: "packet-conservation",
            detail: format!(
                "delivered {} exceeds sent {}",
                result.packets_delivered, result.packets_sent
            ),
        });
    }

    if knobs.ttl != Nanos::ZERO && stranded > 0 {
        violations.push(Violation {
            invariant: "buffer-expiry",
            detail: format!(
                "{stranded} packets outlived the {} TTL stranded in the buffer",
                fmt_dur(knobs.ttl)
            ),
        });
    }

    if degraded_enters > degraded_exits && progress_since_enter {
        violations.push(Violation {
            invariant: "degraded-recovery",
            detail: format!(
                "switch still degraded after the run ({degraded_enters} entries, \
                 {degraded_exits} exits) despite controller progress since the last entry"
            ),
        });
    }

    // TTL expiry, a finite retry budget and degraded-mode shedding each
    // deliberately trade delivery for boundedness, so the delivery
    // guarantee only holds with all three disarmed.
    let recovery_neutral =
        knobs.ttl == Nanos::ZERO && knobs.retry.budget == 0 && knobs.degraded_threshold == 0;
    // A crash legitimately sheds fresh misses while the switch suspects
    // the controller dead (accounted as drops), so the full delivery
    // guarantee is replaced by crash-recovery-drain below.
    let guarantees_delivery = matches!(mech, BufferMode::FlowGranularity { .. })
        && !plan.disturbs_data()
        && recovery_neutral
        && !plan.has_crashes();
    if guarantees_delivery {
        if result.packets_delivered < result.packets_sent {
            violations.push(Violation {
                invariant: "eventual-delivery",
                detail: format!(
                    "flow granularity delivered only {} of {} packets under a \
                     control-channel-only fault plan",
                    result.packets_delivered, result.packets_sent
                ),
            });
        }
        if stranded > 0 {
            violations.push(Violation {
                invariant: "buffer-id-leak",
                detail: format!(
                    "{stranded} packets still buffered across {} ids after the run",
                    outstanding.values().filter(|&&v| v > 0).count()
                ),
            });
        }
    }

    // Across a crash, post-restart reconciliation must re-announce every
    // surviving entry: the run may shed packets (accounted drops) but the
    // buffer drains completely.
    let crash_guarantees_drain = matches!(mech, BufferMode::FlowGranularity { .. })
        && plan.has_crashes()
        && !plan.disturbs_data()
        && recovery_neutral;
    if crash_guarantees_drain && stranded > 0 {
        violations.push(Violation {
            invariant: "crash-recovery-drain",
            detail: format!(
                "{stranded} packets stranded in the buffer after a crash — \
                 reconciliation failed to re-announce them"
            ),
        });
    }

    violations
}

/// The outcome of one chaos scenario.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Measurements of the run.
    pub result: RunResult,
    /// Invariant violations; empty means the scenario passed.
    pub violations: Vec<Violation>,
    /// FNV-1a digest of the serialized event stream — two runs are
    /// byte-identical iff their digests match.
    pub digest: u64,
}

/// Executes `scenario` and checks every invariant over its event stream.
pub fn run_scenario(scenario: &ChaosScenario, sabotage: impl Into<Sabotage>) -> ChaosReport {
    let (result, events) = execute(scenario, sabotage);
    let violations = check_invariants(
        scenario.mech,
        &scenario.plan,
        scenario.recovery,
        &result,
        &events,
    );
    let digest = crate::observe::events_digest(&events);
    ChaosReport {
        result,
        violations,
        digest,
    }
}

/// Greedily shrinks a failing scenario's fault plan: tries zeroing each
/// channel knob and dropping each window, keeps any simplification that
/// still violates an invariant, and repeats to a fixpoint. The result is
/// 1-minimal — removing any single remaining fault makes the run pass.
pub fn minimize(scenario: &ChaosScenario, sabotage: impl Into<Sabotage>) -> ChaosScenario {
    let sabotage = sabotage.into();
    let mut current = scenario.clone();
    if run_scenario(&current, sabotage).violations.is_empty() {
        return current;
    }
    loop {
        let mut shrunk = false;
        for candidate in shrink_candidates(&current.plan) {
            let trial = ChaosScenario {
                plan: candidate,
                ..current.clone()
            };
            if !run_scenario(&trial, sabotage).violations.is_empty() {
                current = trial;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// Captures a flight-recorder dump for a violating (usually minimized)
/// scenario: re-executes it deterministically and packages the replay
/// recipe — the spec string `sdnlab chaos --replay` accepts — together
/// with the evidence: the violations, the event-stream tail, the spans
/// still open when the run ended, and the latency anatomy. Because runs
/// are pure functions of the scenario, replaying the embedded spec
/// reproduces the dump's digest and violations byte-for-byte.
pub fn flight_dump(
    scenario: &ChaosScenario,
    sabotage: impl Into<Sabotage>,
) -> crate::flightrec::FlightDump {
    let sabotage = sabotage.into();
    let (result, events) = execute(scenario, sabotage);
    let violations = check_invariants(
        scenario.mech,
        &scenario.plan,
        scenario.recovery,
        &result,
        &events,
    );
    crate::flightrec::FlightDump::capture(
        crate::flightrec::DumpReason::ChaosViolation,
        &scenario.mech.label(),
        scenario.seed,
        Some(scenario.to_spec()),
        &events,
        Some(&result),
    )
    .with_violations(
        violations
            .into_iter()
            .map(|v| (v.invariant.to_string(), v.detail))
            .collect(),
    )
}

/// The recovery matrix: a sustained controller stall followed by a short
/// control-channel flap inside the data phase, run against both buffering
/// mechanisms under both the fixed-interval and the exponential-backoff
/// retry policy, with the TTL and degraded mode armed — and, in the crash
/// column, a mid-run controller crash on top (crash × stall × loss ×
/// mechanism × retry policy). Every cell must pass every invariant —
/// `sdnlab chaos --recovery` and CI run it as the recovery plane's
/// end-to-end check.
pub fn recovery_matrix() -> Vec<(String, ChaosScenario)> {
    let mechs = [
        ("packet", BufferMode::PacketGranularity { capacity: 256 }),
        (
            "flow",
            BufferMode::FlowGranularity {
                capacity: 256,
                timeout: Nanos::from_millis(20),
            },
        ),
    ];
    let policies = [
        ("fixed", RetryPolicy::fixed()),
        ("backoff", RetryPolicy::backoff(Nanos::from_millis(160), 4)),
    ];
    let mut out = Vec::new();
    for (mech_label, mech) in mechs {
        for (policy_label, retry) in policies {
            for crash in [false, true] {
                let mut plan = FaultPlan {
                    seed: 17,
                    ..FaultPlan::default()
                };
                // Memoryless packet_out loss strands buffer entries (packet
                // granularity has no re-request), so the armed TTL has work
                // to do in every cell and a dead garbage collector is
                // observable.
                plan.to_switch.loss = LossModel::Probabilistic(0.35);
                plan.stalls
                    .push(Window::new(Nanos::from_millis(50), Nanos::from_millis(68)));
                plan.flaps
                    .push(Window::new(Nanos::from_millis(72), Nanos::from_millis(75)));
                let label = if crash {
                    // The crash lands after the stall and flap: the
                    // controller dies mid-recovery and must re-handshake
                    // before the buffered backlog can drain.
                    plan.crashes
                        .push(Window::new(Nanos::from_millis(78), Nanos::from_millis(103)));
                    format!("{mech_label}/{policy_label}/crash")
                } else {
                    format!("{mech_label}/{policy_label}")
                };
                out.push((
                    label,
                    ChaosScenario {
                        mech,
                        workload: WorkloadKind::CrossSequenced {
                            n_flows: 6,
                            packets_per_flow: 4,
                            group_size: 2,
                        },
                        rate_mbps: 40,
                        seed: 9,
                        plan,
                        recovery: RecoveryKnobs {
                            retry,
                            ttl: Nanos::from_millis(250),
                            degraded_threshold: 2,
                        },
                        standby: None,
                    },
                ));
            }
        }
    }
    out
}

fn chan_mut(plan: &mut FaultPlan, to_switch: bool) -> &mut ChannelFaults {
    if to_switch {
        &mut plan.to_switch
    } else {
        &mut plan.to_controller
    }
}

/// Every plan one simplification step away from `plan`.
fn shrink_candidates(plan: &FaultPlan) -> Vec<FaultPlan> {
    let mut out: Vec<FaultPlan> = Vec::new();
    let mut push_if_changed = |p: FaultPlan| {
        if p != *plan {
            out.push(p);
        }
    };
    for to_switch in [false, true] {
        let mut p = plan.clone();
        chan_mut(&mut p, to_switch).loss = LossModel::None;
        push_if_changed(p);

        let mut p = plan.clone();
        let ch = chan_mut(&mut p, to_switch);
        ch.delay = Nanos::ZERO;
        ch.jitter = Nanos::ZERO;
        push_if_changed(p);

        let mut p = plan.clone();
        chan_mut(&mut p, to_switch).duplicate = 0.0;
        push_if_changed(p);

        let mut p = plan.clone();
        let ch = chan_mut(&mut p, to_switch);
        ch.reorder = 0.0;
        ch.reorder_by = Nanos::ZERO;
        push_if_changed(p);
    }
    for i in 0..plan.stalls.len() {
        let mut p = plan.clone();
        p.stalls.remove(i);
        out.push(p);
    }
    for i in 0..plan.flaps.len() {
        let mut p = plan.clone();
        p.flaps.remove(i);
        out.push(p);
    }
    for i in 0..plan.pressure.len() {
        let mut p = plan.clone();
        p.pressure.remove(i);
        out.push(p);
    }
    for i in 0..plan.crashes.len() {
        let mut p = plan.clone();
        p.crashes.remove(i);
        out.push(p);
    }
    for i in 0..plan.crashes_standby.len() {
        let mut p = plan.clone();
        p.crashes_standby.remove(i);
        out.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow_mech() -> BufferMode {
        BufferMode::FlowGranularity {
            capacity: 256,
            timeout: Nanos::from_millis(50),
        }
    }

    fn small_workload() -> WorkloadKind {
        WorkloadKind::CrossSequenced {
            n_flows: 4,
            packets_per_flow: 3,
            group_size: 2,
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        let a = ChaosScenario::generate(7, flow_mech());
        let b = ChaosScenario::generate(7, flow_mech());
        assert_eq!(a, b);
        let c = ChaosScenario::generate(8, flow_mech());
        assert_ne!(a, c);
    }

    #[test]
    fn spec_round_trips_generated_scenarios() {
        for seed in 0..25 {
            let s = ChaosScenario::generate(seed, flow_mech());
            let spec = s.to_spec();
            assert_eq!(ChaosScenario::parse(&spec).expect(&spec), s, "spec: {spec}");
        }
        let s = ChaosScenario::generate(3, BufferMode::PacketGranularity { capacity: 64 });
        assert_eq!(ChaosScenario::parse(&s.to_spec()).unwrap(), s);
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(ChaosScenario::parse("mech=flow:256:50ms,wl=cross:4x3/2,rate=30").is_err());
        assert!(ChaosScenario::parse("nonsense").is_err());
        assert!(ChaosScenario::parse("mech=bogus,wl=cross:4x3/2,rate=30,seed=1").is_err());
        assert!(
            ChaosScenario::parse("mech=flow:256:50ms,wl=cross:4x3/2,rate=30,seed=1,zz=1").is_err()
        );
    }

    #[test]
    fn clean_scenarios_pass_every_invariant() {
        for mech in [BufferMode::PacketGranularity { capacity: 256 }, flow_mech()] {
            let s = ChaosScenario {
                mech,
                workload: small_workload(),
                rate_mbps: 30,
                seed: 5,
                plan: FaultPlan::default(),
                recovery: RecoveryKnobs::default(),
                standby: None,
            };
            let report = run_scenario(&s, true);
            assert!(report.violations.is_empty(), "{:?}", report.violations);
            assert_eq!(report.result.packets_delivered, report.result.packets_sent);
        }
    }

    #[test]
    fn replay_from_spec_is_byte_identical() {
        let s = ChaosScenario::generate(3, flow_mech());
        let a = run_scenario(&s, true);
        let b = run_scenario(&ChaosScenario::parse(&s.to_spec()).unwrap(), true);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.result, b.result);
    }

    #[test]
    fn disabled_rerequest_is_caught_and_minimized() {
        // Deterministic loss on the packet_in path: with re-request (and
        // with it the whole of Algorithm 1 lines 12-13) disabled, the
        // flows whose requests are dropped stay stranded forever.
        let mut plan = FaultPlan {
            seed: 1,
            ..FaultPlan::default()
        };
        plan.to_controller.loss = LossModel::EveryNth(4);
        plan.to_controller.delay = Nanos::from_micros(300);
        let s = ChaosScenario {
            mech: flow_mech(),
            workload: small_workload(),
            rate_mbps: 40,
            seed: 2,
            plan,
            recovery: RecoveryKnobs::default(),
            standby: None,
        };
        let report = run_scenario(&s, false);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.invariant == "eventual-delivery"),
            "expected an eventual-delivery violation, got {:?}",
            report.violations
        );

        // The shrinker must keep the loss (the cause) and drop the delay
        // (irrelevant), and the minimized scenario must replay
        // byte-identically from its printed spec.
        let min = minimize(&s, false);
        assert_eq!(min.plan.to_controller.delay, Nanos::ZERO);
        assert!(!min.plan.to_controller.loss.is_none());
        let a = run_scenario(&min, false);
        assert!(!a.violations.is_empty());
        let b = run_scenario(&ChaosScenario::parse(&min.to_spec()).unwrap(), false);
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn intact_mechanism_survives_the_same_plan() {
        let mut plan = FaultPlan {
            seed: 1,
            ..FaultPlan::default()
        };
        plan.to_controller.loss = LossModel::EveryNth(4);
        let s = ChaosScenario {
            mech: flow_mech(),
            workload: small_workload(),
            rate_mbps: 40,
            seed: 2,
            plan,
            recovery: RecoveryKnobs::default(),
            standby: None,
        };
        let report = run_scenario(&s, true);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.result.packets_delivered, report.result.packets_sent);
    }

    #[test]
    fn recovery_knobs_round_trip_through_the_spec() {
        let s = ChaosScenario {
            mech: flow_mech(),
            workload: small_workload(),
            rate_mbps: 30,
            seed: 5,
            plan: FaultPlan::default(),
            recovery: RecoveryKnobs {
                retry: RetryPolicy {
                    jitter: Nanos::from_millis(2),
                    seed: 7,
                    ..RetryPolicy::backoff(Nanos::from_millis(400), 6)
                },
                ttl: Nanos::from_millis(250),
                degraded_threshold: 3,
            },
            standby: None,
        };
        let spec = s.to_spec();
        assert!(spec.contains("retry="), "spec: {spec}");
        assert!(spec.contains("ttl=250ms"), "spec: {spec}");
        assert!(spec.contains("degraded=3"), "spec: {spec}");
        assert_eq!(ChaosScenario::parse(&spec).expect(&spec), s, "spec: {spec}");

        // Default knobs keep the spec exactly as it was before the
        // recovery plane existed.
        let plain = ChaosScenario {
            recovery: RecoveryKnobs::default(),
            ..s
        };
        assert!(!plain.to_spec().contains("retry="));
        assert!(ChaosScenario::parse(
            "mech=flow:256:50ms,wl=cross:4x3/2,rate=30,seed=1,retry=1:2:3"
        )
        .is_err());
    }

    #[test]
    fn broken_ttl_gc_is_caught_and_minimized() {
        // Packet granularity has no re-request loop, so a dropped
        // packet_out strands its buffer entry; the armed TTL is the only
        // thing that reclaims it. Disabling the garbage collector while
        // leaving the TTL configured must trip the buffer-expiry invariant.
        let mut plan = FaultPlan {
            seed: 1,
            ..FaultPlan::default()
        };
        plan.to_switch.loss = LossModel::EveryNth(3);
        plan.to_controller.delay = Nanos::from_micros(300);
        let s = ChaosScenario {
            mech: BufferMode::PacketGranularity { capacity: 256 },
            workload: small_workload(),
            rate_mbps: 40,
            seed: 2,
            plan,
            recovery: RecoveryKnobs {
                ttl: Nanos::from_millis(100),
                ..RecoveryKnobs::default()
            },
            standby: None,
        };
        let intact = run_scenario(&s, Sabotage::none());
        assert!(intact.violations.is_empty(), "{:?}", intact.violations);
        assert!(intact.result.buffer_expired > 0);

        let broken = run_scenario(&s, Sabotage::no_ttl_gc());
        assert!(
            broken
                .violations
                .iter()
                .any(|v| v.invariant == "buffer-expiry"),
            "expected a buffer-expiry violation, got {:?}",
            broken.violations
        );

        // The shrinker keeps the packet_out loss (the cause) and drops the
        // irrelevant ingress delay.
        let min = minimize(&s, Sabotage::no_ttl_gc());
        assert_eq!(min.plan.to_controller.delay, Nanos::ZERO);
        assert!(!min.plan.to_switch.loss.is_none());
        let a = run_scenario(&min, Sabotage::no_ttl_gc());
        assert!(!a.violations.is_empty());
        let b = run_scenario(
            &ChaosScenario::parse(&min.to_spec()).unwrap(),
            Sabotage::no_ttl_gc(),
        );
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn retry_budget_bounds_rerequests_under_sustained_loss() {
        // Near-total packet_in loss: without a budget flow granularity
        // would re-request forever; with one it gives up, drains, and the
        // retry-budget invariant holds over the whole trace.
        let mut plan = FaultPlan {
            seed: 3,
            ..FaultPlan::default()
        };
        plan.to_controller.loss = LossModel::Probabilistic(0.9);
        let s = ChaosScenario {
            mech: flow_mech(),
            workload: small_workload(),
            rate_mbps: 40,
            seed: 2,
            plan,
            recovery: RecoveryKnobs {
                retry: RetryPolicy::backoff(Nanos::from_millis(200), 2),
                ..RecoveryKnobs::default()
            },
            standby: None,
        };
        let report = run_scenario(&s, true);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(
            report.result.buffer_giveups > 0,
            "expected give-ups under 90% packet_in loss, got {:?}",
            report.result
        );
    }

    #[test]
    fn recovery_matrix_cells_pass_every_invariant() {
        let cells = recovery_matrix();
        assert_eq!(cells.len(), 8);
        for (label, scenario) in &cells {
            let spec = scenario.to_spec();
            assert_eq!(
                ChaosScenario::parse(&spec).expect(&spec),
                *scenario,
                "cell {label}"
            );
            let report = run_scenario(scenario, true);
            assert!(
                report.violations.is_empty(),
                "cell {label}: {:?}",
                report.violations
            );
        }
        // The crash column actually crashes: its cells record the outage.
        // (No epoch-bump assertion here: the matrix's 35% `to_switch` loss
        // can eat the re-handshake, which is itself a legal outcome the
        // invariants must tolerate. The dedicated crash tests below use a
        // clean channel and do assert the bump.)
        for (label, scenario) in &cells {
            if label.ends_with("/crash") {
                let report = run_scenario(scenario, true);
                assert_eq!(report.result.ctrl_crashes, 1, "cell {label}");
            }
        }
    }

    /// A crash scenario with survivors in the buffer when the controller
    /// dies: flow granularity with a short re-request timeout (so stranded
    /// flows re-announce themselves right after the restart), a crash
    /// window opening mid-data-phase, and an ingress delay that keeps
    /// responses in flight when the crash hits.
    fn crash_scenario() -> ChaosScenario {
        let mut plan = FaultPlan {
            seed: 1,
            ..FaultPlan::default()
        };
        plan.crashes
            .push(Window::new(Nanos::from_millis(52), Nanos::from_millis(82)));
        plan.to_controller.delay = Nanos::from_micros(300);
        ChaosScenario {
            mech: BufferMode::FlowGranularity {
                capacity: 256,
                timeout: Nanos::from_millis(10),
            },
            workload: small_workload(),
            rate_mbps: 40,
            seed: 2,
            plan,
            recovery: RecoveryKnobs::default(),
            standby: None,
        }
    }

    #[test]
    fn crash_scenarios_round_trip_and_pass_when_intact() {
        for seed in 0..12 {
            let s = ChaosScenario::generate_with_crashes(seed, flow_mech());
            assert!(s.plan.has_crashes());
            assert_eq!(s, ChaosScenario::generate_with_crashes(seed, flow_mech()));
            let spec = s.to_spec();
            assert_eq!(ChaosScenario::parse(&spec).expect(&spec), s, "spec: {spec}");
            let report = run_scenario(&s, Sabotage::none());
            assert!(
                report.violations.is_empty(),
                "seed {seed}: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn broken_epoch_guard_is_caught_and_minimized() {
        let s = crash_scenario();
        // Intact: the bump migrates survivors, reconciliation re-announces
        // them, and the run passes everything.
        let intact = run_scenario(&s, Sabotage::none());
        assert!(intact.violations.is_empty(), "{:?}", intact.violations);
        assert!(intact.result.epoch_bumps >= 1);

        // Guard disabled: entries stay tagged with the dead epoch and the
        // retry loop drains them across the bump.
        let broken = run_scenario(&s, Sabotage::no_epoch_guard());
        assert!(
            broken
                .violations
                .iter()
                .any(|v| v.invariant == "no-cross-epoch-drain"),
            "expected a no-cross-epoch-drain violation, got {:?}",
            broken.violations
        );

        // The shrinker keeps the crash window (the cause) and the
        // minimized scenario replays byte-identically from its printed
        // spec.
        let min = minimize(&s, Sabotage::no_epoch_guard());
        assert!(!min.plan.crashes.is_empty());
        let a = run_scenario(&min, Sabotage::no_epoch_guard());
        assert!(!a.violations.is_empty());
        let b = run_scenario(
            &ChaosScenario::parse(&min.to_spec()).unwrap(),
            Sabotage::no_epoch_guard(),
        );
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn standby_failover_cell_passes_and_records_the_takeover() {
        let mut s = crash_scenario();
        // The primary never returns: only the takeover restores service.
        s.plan.crashes = vec![Window::new(Nanos::from_millis(52), Nanos::from_secs(10))];
        s.standby = Some(StandbyKnobs {
            warm: true,
            takeover_delay: Nanos::from_millis(8),
        });
        let spec = s.to_spec();
        assert!(spec.contains("standby=warm:8ms"), "spec: {spec}");
        assert_eq!(ChaosScenario::parse(&spec).expect(&spec), s);
        let report = run_scenario(&s, Sabotage::none());
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.result.failover_takeovers, 1);
        assert!(report.result.epoch_bumps >= 1);
    }
}
