//! The measurements of one testbed run.

use sdnbuf_metrics::Summary;
use sdnbuf_sim::Nanos;

/// Everything one run of the testbed measured — one data point of every
/// figure in the paper.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunResult {
    /// Buffer-mechanism label ("no-buffer", "buffer-256", …).
    pub label: String,
    /// Configured sending rate in Mbps.
    pub sending_rate_mbps: f64,
    /// Active measurement span (first departure to last delivery).
    pub active_span: Nanos,

    // ----- Control path load (Figs. 2 and 9) -----
    /// Control traffic switch → controller, Mbps over the active span.
    pub ctrl_load_to_controller_mbps: f64,
    /// Control traffic controller → switch, Mbps over the active span.
    pub ctrl_load_to_switch_mbps: f64,
    /// `packet_in` messages observed on the control path.
    pub pkt_in_count: u64,
    /// Bytes switch → controller.
    pub ctrl_bytes_to_controller: u64,
    /// Bytes controller → switch.
    pub ctrl_bytes_to_switch: u64,
    /// `flow_mod` messages observed.
    pub flow_mod_count: u64,
    /// `packet_out` messages observed.
    pub pkt_out_count: u64,

    // ----- CPU usages (Figs. 3, 4, 10, 11) -----
    /// Controller CPU, `top`-style percent over the active span.
    pub controller_cpu_percent: f64,
    /// Switch CPU, `top`-style percent over the active span.
    pub switch_cpu_percent: f64,

    // ----- Delays (Figs. 5, 6, 7, 12), milliseconds -----
    /// Flow-setup delay: first packet of a flow entering the switch to
    /// that packet leaving it.
    pub flow_setup_delay: Summary,
    /// Controller delay: `packet_in` leaving the switch to the first
    /// response (`flow_mod`/`packet_out`) arriving back.
    pub controller_delay: Summary,
    /// Switch delay: flow-setup delay minus the flow's controller delay.
    pub switch_delay: Summary,
    /// Flow-forwarding delay: first packet of a flow entering the switch
    /// to the **last** packet of the flow leaving it.
    pub flow_forwarding_delay: Summary,

    // ----- Buffer utilization (Figs. 8 and 13) -----
    /// Time-weighted mean buffer units in use over the active span.
    pub buffer_mean_occupancy: f64,
    /// Peak buffer units in use.
    pub buffer_peak_occupancy: usize,
    /// Misses that fell back to full-packet `packet_in` (buffer exhausted
    /// or unsupported traffic).
    pub buffer_fallbacks: u64,
    /// Timeout-driven `packet_in` re-requests.
    pub rerequests: u64,

    // ----- Recovery & overload control (PR 4) -----
    /// Buffer entries garbage-collected by the per-entry TTL.
    pub buffer_expired: u64,
    /// Flows whose re-request budget ran out (drained or dropped per the
    /// retry policy's give-up action).
    pub buffer_giveups: u64,
    /// `packet_out`s rejected because their generation-tagged buffer id
    /// was stale (the unit had been recycled).
    pub stale_releases: u64,
    /// `packet_in`s shed by the controller's admission policy.
    pub admission_sheds: u64,
    /// Times the switch entered degraded mode.
    pub degraded_entries: u64,
    /// Times the switch recovered from degraded mode.
    pub degraded_exits: u64,
    /// Table misses shed by the switch while degraded.
    pub degraded_sheds: u64,

    // ----- Crash / failover plane (PR 9) -----
    /// Controller crashes executed (primary and standby).
    pub ctrl_crashes: u64,
    /// Warm-standby takeovers executed.
    pub failover_takeovers: u64,
    /// Session-epoch bumps the switch completed (re-handshakes accepted).
    pub epoch_bumps: u64,
    /// `packet_out`s rejected because their buffer id was minted under a
    /// dead session epoch.
    pub stale_epoch_rejects: u64,
    /// Times the switch's liveness detector declared the controller dead.
    pub liveness_suspects: u64,
    /// Fresh misses shed while the controller was suspected dead.
    pub suspect_sheds: u64,
    /// Surviving buffer entries re-announced by the paced post-restart
    /// reconciliation.
    pub reconcile_rerequests: u64,
    /// Echo keepalive round-trip time, median over the run in
    /// milliseconds (0 when no keepalives completed).
    pub echo_rtt_p50_ms: f64,
    /// Echo keepalive round-trip time, 99th percentile in milliseconds.
    pub echo_rtt_p99_ms: f64,
    /// Completed echo round trips the percentiles are computed over.
    pub echo_rtt_samples: u64,

    // ----- Conservation accounting -----
    /// Data packets offered by the workload.
    pub packets_sent: u64,
    /// Data packets delivered to their destination host.
    pub packets_delivered: u64,
    /// Data packets dropped anywhere (switch or links).
    pub packets_dropped: u64,
    /// Control messages dropped on the control channel.
    pub ctrl_drops: u64,
    /// Simulator events dispatched by the run's event loop — the
    /// denominator-free throughput figure the perf harness divides by
    /// wall-clock time (events/sec).
    pub events_dispatched: u64,
    /// Flows all of whose packets were delivered.
    pub flows_completed: usize,
    /// Total flows in the workload.
    pub flows_total: usize,
}

impl RunResult {
    /// Mean of a figure metric selected by closure over several runs —
    /// the aggregation the sweep uses for its 20 repetitions.
    pub fn mean_over(runs: &[RunResult], f: impl Fn(&RunResult) -> f64) -> f64 {
        if runs.is_empty() {
            return 0.0;
        }
        runs.iter().map(f).sum::<f64>() / runs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_over_handles_empty_and_values() {
        assert_eq!(RunResult::mean_over(&[], |r| r.pkt_in_count as f64), 0.0);
        let a = RunResult {
            pkt_in_count: 10,
            ..RunResult::default()
        };
        let b = RunResult {
            pkt_in_count: 20,
            ..RunResult::default()
        };
        assert_eq!(
            RunResult::mean_over(&[a, b], |r| r.pkt_in_count as f64),
            15.0
        );
    }
}
