//! Control-plane transaction tracing — a readable log of every OpenFlow
//! message that crossed the control channel, for debugging and teaching.
//!
//! Since the observability rework this log is a thin *view* over the
//! structured event stream: each entry stores a compact, `Copy`
//! [`MsgDesc`] instead of an eagerly formatted `String`, and rendering is
//! deferred to [`TraceLog::to_text`]. A log can also be reconstructed
//! after the fact from recorded [`Event`]s via [`TraceLog::from_events`].

use sdnbuf_openflow::msg::FlowModCommand;
use sdnbuf_openflow::{BufferId, Match, MsgType, OfpMessage, PortNo};
use sdnbuf_sim::{ChannelDir, Event, EventKind, Nanos};
use std::collections::VecDeque;
use std::fmt;

/// Which way a control message travelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Switch → controller.
    ToController,
    /// Controller → switch.
    ToSwitch,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::ToController => write!(f, "sw->ctrl"),
            Direction::ToSwitch => write!(f, "ctrl->sw"),
        }
    }
}

impl From<ChannelDir> for Direction {
    fn from(dir: ChannelDir) -> Direction {
        match dir {
            ChannelDir::ToController => Direction::ToController,
            ChannelDir::ToSwitch => Direction::ToSwitch,
        }
    }
}

/// A compact, allocation-free description of a control message, captured
/// at record time and formatted only when the log is rendered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgDesc {
    /// A `packet_in`: buffer reference, carried bytes, original size, port.
    PacketIn {
        /// Buffer the miss packet was filed under (or `NO_BUFFER`).
        buffer_id: BufferId,
        /// Bytes carried in the message.
        data_len: u32,
        /// Original packet size on the wire.
        total_len: u32,
        /// Ingress port of the miss packet.
        in_port: PortNo,
    },
    /// A `packet_out`: buffer reference, action count, inline data bytes.
    PacketOut {
        /// Buffer the release applies to (or `NO_BUFFER`).
        buffer_id: BufferId,
        /// Number of actions attached.
        actions: u16,
        /// Inline payload bytes (0 when releasing a buffered packet).
        data_len: u32,
    },
    /// A `flow_mod`: command plus the rule's match.
    FlowMod {
        /// Add / modify / delete.
        command: FlowModCommand,
        /// The rule's match fields.
        match_fields: Match,
    },
    /// Any other message, described by its type alone.
    Other(MsgType),
    /// A message reconstructed from the event stream, where only its
    /// snake_case label survives (see [`TraceLog::from_events`]).
    Label(&'static str),
}

impl MsgDesc {
    /// Captures the description of a message (no allocation).
    pub fn of(msg: &OfpMessage) -> MsgDesc {
        match msg {
            OfpMessage::PacketIn(p) => MsgDesc::PacketIn {
                buffer_id: p.buffer_id,
                data_len: p.data.len() as u32,
                total_len: p.total_len as u32,
                in_port: p.in_port,
            },
            OfpMessage::PacketOut(p) => MsgDesc::PacketOut {
                buffer_id: p.buffer_id,
                actions: p.actions.len() as u16,
                data_len: p.data.len() as u32,
            },
            OfpMessage::FlowMod(m) => MsgDesc::FlowMod {
                command: m.command,
                match_fields: m.match_fields,
            },
            other => MsgDesc::Other(other.msg_type()),
        }
    }

    /// The message's snake_case label, as used in the structured event
    /// stream (`ctrl_msg` events).
    pub fn label(self) -> &'static str {
        match self {
            MsgDesc::PacketIn { .. } => "packet_in",
            MsgDesc::PacketOut { .. } => "packet_out",
            MsgDesc::FlowMod { .. } => "flow_mod",
            MsgDesc::Label(label) => label,
            MsgDesc::Other(t) => match t {
                MsgType::Hello => "hello",
                MsgType::Error => "error",
                MsgType::EchoRequest => "echo_request",
                MsgType::EchoReply => "echo_reply",
                MsgType::Vendor => "vendor",
                MsgType::FeaturesRequest => "features_request",
                MsgType::FeaturesReply => "features_reply",
                MsgType::GetConfigRequest => "get_config_request",
                MsgType::GetConfigReply => "get_config_reply",
                MsgType::SetConfig => "set_config",
                MsgType::PacketIn => "packet_in",
                MsgType::FlowRemoved => "flow_removed",
                MsgType::PortStatus => "port_status",
                MsgType::PacketOut => "packet_out",
                MsgType::FlowMod => "flow_mod",
                MsgType::PortMod => "port_mod",
                MsgType::StatsRequest => "stats_request",
                MsgType::StatsReply => "stats_reply",
                MsgType::BarrierRequest => "barrier_request",
                MsgType::BarrierReply => "barrier_reply",
                MsgType::QueueGetConfigRequest => "queue_get_config_request",
                MsgType::QueueGetConfigReply => "queue_get_config_reply",
            },
        }
    }
}

impl fmt::Display for MsgDesc {
    /// Renders in the same shape [`OfpMessage`]'s own `Display` uses, so
    /// trace text looks identical to the pre-rework log.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgDesc::PacketIn {
                buffer_id,
                data_len,
                total_len,
                in_port,
            } => write!(
                f,
                "packet_in({buffer_id}, {data_len}B of {total_len}B, {in_port})"
            ),
            MsgDesc::PacketOut {
                buffer_id,
                actions,
                data_len,
            } => {
                write!(f, "packet_out({buffer_id}, {actions} actions")?;
                if *data_len > 0 {
                    write!(f, ", {data_len}B data")?;
                }
                write!(f, ")")
            }
            MsgDesc::FlowMod {
                command,
                match_fields,
            } => write!(f, "flow_mod({command:?}, {match_fields})"),
            MsgDesc::Other(t) => write!(f, "{t}"),
            MsgDesc::Label(label) => write!(f, "{label}"),
        }
    }
}

/// One control message observed on the channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// When it was put on the channel.
    pub at: Nanos,
    /// Which way it went.
    pub direction: Direction,
    /// Transaction id.
    pub xid: u32,
    /// Wire size in bytes.
    pub wire_len: usize,
    /// Deferred message description (`packet_in(buf#3, 128B…)` when
    /// rendered).
    pub desc: MsgDesc,
}

impl TraceEntry {
    /// The rendered human-readable description (allocates; use `desc`
    /// directly for allocation-free inspection).
    pub fn description(&self) -> String {
        self.desc.to_string()
    }
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12}  {}  xid={:<10} {:>5}B  {}",
            self.at.to_string(),
            self.direction,
            self.xid,
            self.wire_len,
            self.desc
        )
    }
}

/// A bounded ring log of control-channel activity.
///
/// Disabled by default (zero capacity); enable via
/// [`crate::TestbedConfig::trace_capacity`]. Bounded so a runaway
/// experiment cannot exhaust memory; when full, the **oldest** entries are
/// evicted so the log always shows the most recent window of traffic (the
/// part a debugging session usually cares about).
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    capacity: usize,
    entries: VecDeque<TraceEntry>,
    dropped_oldest: u64,
}

impl TraceLog {
    /// Creates a log keeping at most `capacity` entries.
    pub fn new(capacity: usize) -> TraceLog {
        TraceLog {
            capacity,
            entries: VecDeque::new(),
            dropped_oldest: 0,
        }
    }

    /// Whether tracing is active.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records a message (no-op when disabled). No allocation per call
    /// beyond ring growth up to `capacity`.
    pub fn record(&mut self, at: Nanos, direction: Direction, xid: u32, msg: &OfpMessage) {
        self.push(TraceEntry {
            at,
            direction,
            xid,
            wire_len: msg.wire_len(),
            desc: MsgDesc::of(msg),
        });
    }

    fn push(&mut self, entry: TraceEntry) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.dropped_oldest += 1;
        }
        self.entries.push_back(entry);
    }

    /// Rebuilds a trace view from a recorded event stream: every
    /// `ctrl_msg` event becomes an entry (labelled, since the full message
    /// no longer exists). This is how the log relates to the structured
    /// observability layer — same data, different lens.
    pub fn from_events(capacity: usize, events: &[Event]) -> TraceLog {
        let mut log = TraceLog::new(capacity);
        for event in events {
            if let EventKind::CtrlMsg {
                dir,
                xid,
                bytes,
                label,
                ..
            } = event.kind
            {
                log.push(TraceEntry {
                    at: event.at,
                    direction: dir.into(),
                    xid,
                    wire_len: bytes,
                    desc: MsgDesc::Label(label),
                });
            }
        }
        log
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Older messages evicted to make room after the ring filled up.
    pub fn dropped_oldest(&self) -> u64 {
        self.dropped_oldest
    }

    /// Alias of [`TraceLog::dropped_oldest`], kept for callers of the
    /// pre-ring API.
    pub fn suppressed(&self) -> u64 {
        self.dropped_oldest
    }

    /// Renders the whole log as text, one entry per line (formatting
    /// happens here, not at record time).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if self.dropped_oldest > 0 {
            out.push_str(&format!(
                "... {} older messages dropped\n",
                self.dropped_oldest
            ));
        }
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> OfpMessage {
        OfpMessage::Hello
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::new(0);
        assert!(!log.is_enabled());
        log.record(Nanos::ZERO, Direction::ToSwitch, 1, &msg());
        assert!(log.is_empty());
        assert_eq!(log.dropped_oldest(), 0);
    }

    #[test]
    fn bounded_capacity_keeps_newest() {
        let mut log = TraceLog::new(2);
        for i in 0..5 {
            log.record(
                Nanos::from_micros(i),
                Direction::ToController,
                i as u32,
                &msg(),
            );
        }
        let xids: Vec<u32> = log.entries().map(|e| e.xid).collect();
        assert_eq!(xids, [3, 4]);
        assert_eq!(log.dropped_oldest(), 3);
        assert_eq!(log.suppressed(), 3);
        assert!(log.to_text().contains("3 older messages dropped"));
    }

    #[test]
    fn entries_render_readably() {
        let mut log = TraceLog::new(4);
        log.record(Nanos::from_millis(2), Direction::ToSwitch, 7, &msg());
        let text = log.to_text();
        assert!(text.contains("ctrl->sw"), "{text}");
        assert!(text.contains("xid=7"), "{text}");
        assert!(text.contains("Hello"), "{text}");
        assert!(text.contains("8B"), "{text}");
    }

    #[test]
    fn record_is_allocation_free_per_entry() {
        // The description is a Copy value, not a String: recording a
        // packet_in defers all formatting to to_text() time.
        use sdnbuf_openflow::msg::{PacketIn, PacketInReason};
        let pin = OfpMessage::PacketIn(PacketIn {
            buffer_id: BufferId::new(3),
            total_len: 1000,
            in_port: PortNo(1),
            reason: PacketInReason::NoMatch,
            data: vec![0u8; 128],
        });
        let mut log = TraceLog::new(4);
        log.record(Nanos::from_micros(5), Direction::ToController, 9, &pin);
        let entry = *log.entries().next().unwrap();
        assert_eq!(
            entry.desc,
            MsgDesc::PacketIn {
                buffer_id: BufferId::new(3),
                data_len: 128,
                total_len: 1000,
                in_port: PortNo(1),
            }
        );
        assert_eq!(
            entry.description(),
            "packet_in(buf#3, 128B of 1000B, port1)"
        );
        assert_eq!(entry.desc.label(), "packet_in");
    }

    #[test]
    fn view_over_event_stream() {
        let events = [
            Event {
                at: Nanos::from_micros(1),
                kind: EventKind::TableMiss {
                    in_port: 1,
                    bytes: 1000,
                },
            },
            Event {
                at: Nanos::from_micros(2),
                kind: EventKind::CtrlMsg {
                    dir: ChannelDir::ToController,
                    xid: 7,
                    bytes: 146,
                    label: "packet_in",
                    arrive: Nanos::from_micros(300),
                },
            },
            Event {
                at: Nanos::from_micros(9),
                kind: EventKind::CtrlMsg {
                    dir: ChannelDir::ToSwitch,
                    xid: 7,
                    bytes: 80,
                    label: "flow_mod",
                    arrive: Nanos::from_micros(400),
                },
            },
        ];
        let log = TraceLog::from_events(16, &events);
        assert_eq!(log.len(), 2);
        let text = log.to_text();
        assert!(text.contains("sw->ctrl"), "{text}");
        assert!(text.contains("packet_in"), "{text}");
        assert!(text.contains("flow_mod"), "{text}");
        assert!(text.contains("146B"), "{text}");
    }
}
