//! Control-plane transaction tracing — a readable log of every OpenFlow
//! message that crossed the control channel, for debugging and teaching.

use sdnbuf_openflow::OfpMessage;
use sdnbuf_sim::Nanos;
use std::fmt;

/// Which way a control message travelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Switch → controller.
    ToController,
    /// Controller → switch.
    ToSwitch,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::ToController => write!(f, "sw->ctrl"),
            Direction::ToSwitch => write!(f, "ctrl->sw"),
        }
    }
}

/// One control message observed on the channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// When it was put on the channel.
    pub at: Nanos,
    /// Which way it went.
    pub direction: Direction,
    /// Transaction id.
    pub xid: u32,
    /// Wire size in bytes.
    pub wire_len: usize,
    /// Human-readable message description (`packet_in(buf#3, 128B…)`).
    pub description: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12}  {}  xid={:<10} {:>5}B  {}",
            self.at.to_string(),
            self.direction,
            self.xid,
            self.wire_len,
            self.description
        )
    }
}

/// A bounded log of control-channel activity.
///
/// Disabled by default (zero capacity); enable via
/// [`crate::TestbedConfig::trace_capacity`]. Bounded so a runaway
/// experiment cannot exhaust memory; older entries win.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    capacity: usize,
    entries: Vec<TraceEntry>,
    suppressed: u64,
}

impl TraceLog {
    /// Creates a log keeping at most `capacity` entries.
    pub fn new(capacity: usize) -> TraceLog {
        TraceLog {
            capacity,
            entries: Vec::new(),
            suppressed: 0,
        }
    }

    /// Whether tracing is active.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records a message (no-op when disabled or full).
    pub fn record(&mut self, at: Nanos, direction: Direction, xid: u32, msg: &OfpMessage) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity {
            self.suppressed += 1;
            return;
        }
        self.entries.push(TraceEntry {
            at,
            direction,
            xid,
            wire_len: msg.wire_len(),
            description: msg.to_string(),
        });
    }

    /// The recorded entries, in channel order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Messages that arrived after the log filled up.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Renders the whole log as text, one entry per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        if self.suppressed > 0 {
            out.push_str(&format!(
                "... {} more messages suppressed\n",
                self.suppressed
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> OfpMessage {
        OfpMessage::Hello
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::new(0);
        assert!(!log.is_enabled());
        log.record(Nanos::ZERO, Direction::ToSwitch, 1, &msg());
        assert!(log.entries().is_empty());
        assert_eq!(log.suppressed(), 0);
    }

    #[test]
    fn bounded_capacity_keeps_oldest() {
        let mut log = TraceLog::new(2);
        for i in 0..5 {
            log.record(
                Nanos::from_micros(i),
                Direction::ToController,
                i as u32,
                &msg(),
            );
        }
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.entries()[0].xid, 0);
        assert_eq!(log.entries()[1].xid, 1);
        assert_eq!(log.suppressed(), 3);
        assert!(log.to_text().contains("3 more messages suppressed"));
    }

    #[test]
    fn entries_render_readably() {
        let mut log = TraceLog::new(4);
        log.record(Nanos::from_millis(2), Direction::ToSwitch, 7, &msg());
        let text = log.to_text();
        assert!(text.contains("ctrl->sw"), "{text}");
        assert!(text.contains("xid=7"), "{text}");
        assert!(text.contains("Hello"), "{text}");
        assert!(text.contains("8B"), "{text}");
    }
}
