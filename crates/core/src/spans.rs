//! Latency anatomy: folds the xid-linked event stream into per-flow-setup
//! span trees and aggregates them into a fixed-memory [`LatencyReport`].
//!
//! The paper reports flow-setup delay as one flat number per run. This
//! module decomposes it: every reactive flow setup becomes a
//! [`FlowSetupSpan`] whose typed [`Phase`]s tile the critical path from
//! the table miss to the moment the buffered packet is drained —
//!
//! ```text
//! miss_detect → buffer_admit → retry_wait → packet_in_serialize →
//! uplink → ctrl_admission_wait → ctrl_service → downlink → drain_release
//! ```
//!
//! — so the phase durations *telescope*: their sum equals the span's
//! end-to-end duration exactly (rule install runs concurrently with the
//! drain and is reported off the critical path; re-request sub-spans show
//! up as `retry_wait`). The builder is a pure function over a recorded
//! `&[Event]` stream: it never touches the simulation, so enabling the
//! report cannot perturb a run — golden traces stay byte-identical.
//!
//! Aggregation uses [`Histogram`]s (bounded memory, ≤1.6% relative
//! error), merged across sweep cells in deterministic grid order, so a
//! parallel sweep's latency report is byte-identical to a serial one.

use std::io::{self, Write};

use crate::experiment::RunEvents;
use sdnbuf_metrics::{Histogram, Table};
use sdnbuf_sim::{ChannelDir, Event, EventKind, FastHashMap, Nanos};

/// OpenFlow's "not buffered" sentinel (`OFP_NO_BUFFER`).
const NO_BUFFER: u32 = 0xffff_ffff;

/// One typed segment of a flow setup's critical path, in causal order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Table miss detected → packet admitted to the switch buffer (or,
    /// unbuffered, handed to the slow path).
    MissDetect,
    /// Buffer admission → the `packet_in` leaves the switch CPU.
    BufferAdmit,
    /// First `packet_in` announcement → the announcement that finally got
    /// a response (zero when the first attempt succeeds; re-request
    /// sub-spans accumulate here).
    RetryWait,
    /// `packet_in` leaves the switch CPU → it is put on the control wire.
    PacketInSerialize,
    /// Control-channel flight time, switch → controller.
    Uplink,
    /// Arrival at the controller → the bounded ingress queue admits it.
    CtrlAdmissionWait,
    /// Admission → the controller's reply is put on the wire.
    CtrlService,
    /// Control-channel flight time, controller → switch (the releasing
    /// `packet_out`, falling back to the `flow_mod` when absent).
    Downlink,
    /// Reply arrival → the buffered packet is actually drained.
    DrainRelease,
}

impl Phase {
    /// Every critical-path phase, in causal order.
    pub const ALL: [Phase; 9] = [
        Phase::MissDetect,
        Phase::BufferAdmit,
        Phase::RetryWait,
        Phase::PacketInSerialize,
        Phase::Uplink,
        Phase::CtrlAdmissionWait,
        Phase::CtrlService,
        Phase::Downlink,
        Phase::DrainRelease,
    ];

    /// Stable snake_case label used in every rendering.
    pub fn label(self) -> &'static str {
        match self {
            Phase::MissDetect => "miss_detect",
            Phase::BufferAdmit => "buffer_admit",
            Phase::RetryWait => "retry_wait",
            Phase::PacketInSerialize => "packet_in_serialize",
            Phase::Uplink => "uplink",
            Phase::CtrlAdmissionWait => "ctrl_admission_wait",
            Phase::CtrlService => "ctrl_service",
            Phase::Downlink => "downlink",
            Phase::DrainRelease => "drain_release",
        }
    }
}

/// How a flow setup ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanOutcome {
    /// The buffered packet was drained (or, unbuffered, the `packet_out`
    /// arrived back at the switch).
    Completed,
    /// The retry budget ran out and the slot was given up.
    GivenUp,
    /// The stream ended with the setup still in flight (or its control
    /// messages were lost and never retried).
    Open,
}

impl SpanOutcome {
    /// Stable label used in JSON renderings.
    pub fn label(self) -> &'static str {
        match self {
            SpanOutcome::Completed => "completed",
            SpanOutcome::GivenUp => "given_up",
            SpanOutcome::Open => "open",
        }
    }
}

/// One `packet_in` announcement and the xid-linked responses to it. A
/// flow setup has one attempt per announcement: the original plus one per
/// re-request.
#[derive(Clone, Copy, Debug, Default)]
pub struct Attempt {
    /// Transaction id of the announcement.
    pub xid: u32,
    /// When the `packet_in` left the switch CPU.
    pub sent_at: Nanos,
    /// When it was put on the control wire (`ctrl_msg` send time).
    pub wire_at: Option<Nanos>,
    /// When it arrived at the controller.
    pub ctrl_arrive: Option<Nanos>,
    /// When the controller's ingress queue admitted it.
    pub received_at: Option<Nanos>,
    /// When the releasing reply (`packet_out`, else `flow_mod`) was put
    /// on the wire back to the switch.
    pub reply_sent: Option<Nanos>,
    /// When that reply arrived at the switch.
    pub reply_arrive: Option<Nanos>,
    /// The announcement or its reply was dropped on the control channel.
    pub lost: bool,
    /// The controller's admission policy shed this announcement.
    pub shed: bool,
}

/// One reactive flow setup: the span tree from table miss to drain.
#[derive(Clone, Debug)]
pub struct FlowSetupSpan {
    /// The switch buffer slot (generation-tagged), `None` when the packet
    /// rode inside the `packet_in` unbuffered.
    pub buffer_id: Option<u32>,
    /// When the table miss was detected.
    pub miss_at: Option<Nanos>,
    /// When the packet was admitted to the buffer.
    pub admit_at: Option<Nanos>,
    /// Every announcement, in emission order (index 0 is the original;
    /// the rest are re-requests).
    pub attempts: Vec<Attempt>,
    /// `buffer_rerequest` events observed for this slot.
    pub rerequests: u32,
    /// Packets that joined the slot after the announcement (flow
    /// granularity queues subsequent packets of the flow).
    pub extra_enqueues: u32,
    /// Rule install sub-span (`flow_rule_installed` emission time →
    /// `effective_at`); concurrent with the drain, so off the critical
    /// path.
    pub install: Option<(Nanos, Nanos)>,
    /// When the setup completed (drain time, or unbuffered reply
    /// arrival). `None` while open.
    pub end: Option<Nanos>,
    /// Packets released by the drain.
    pub released: usize,
    /// xid of the attempt whose reply closed the span.
    pub releasing_xid: Option<u32>,
    /// How the setup ended.
    pub outcome: SpanOutcome,
}

impl FlowSetupSpan {
    fn new(buffer_id: Option<u32>, miss_at: Option<Nanos>, admit_at: Option<Nanos>) -> Self {
        FlowSetupSpan {
            buffer_id,
            miss_at,
            admit_at,
            attempts: Vec::new(),
            rerequests: 0,
            extra_enqueues: 0,
            install: None,
            end: None,
            released: 0,
            releasing_xid: None,
            outcome: SpanOutcome::Open,
        }
    }

    /// When the span started: the table miss, falling back to buffer
    /// admission, falling back to the first announcement.
    pub fn start(&self) -> Nanos {
        self.miss_at
            .or(self.admit_at)
            .or_else(|| self.attempts.first().map(|a| a.sent_at))
            .unwrap_or(Nanos::ZERO)
    }

    /// End-to-end duration for a closed span, `None` while open.
    pub fn total(&self) -> Option<Nanos> {
        self.end.map(|e| e.saturating_sub(self.start()))
    }

    /// The attempt whose reply closed the span: matched by the drain's
    /// xid, falling back to the last attempt that saw a reply, falling
    /// back to the last attempt.
    pub fn releasing_attempt(&self) -> Option<&Attempt> {
        if let Some(xid) = self.releasing_xid {
            if let Some(a) = self.attempts.iter().find(|a| a.xid == xid) {
                return Some(a);
            }
        }
        self.attempts
            .iter()
            .rev()
            .find(|a| a.reply_arrive.is_some())
            .or_else(|| self.attempts.last())
    }

    /// The critical-path phase decomposition of a closed span.
    ///
    /// Returns one `(phase, duration)` per [`Phase::ALL`] entry. The
    /// boundaries are clamped monotonically, so the durations always sum
    /// *exactly* to [`FlowSetupSpan::total`] — the telescoping identity
    /// the latency report's accounting rests on. Returns `None` while the
    /// span is open.
    pub fn phases(&self) -> Option<[(Phase, Nanos); 9]> {
        let end = self.end?;
        let rel = self.releasing_attempt();
        let first = self.attempts.first();
        let start = self.start();
        // Raw boundary candidates in causal order; a missing observation
        // inherits the previous boundary (zero-width phase).
        let raw: [Option<Nanos>; 10] = [
            Some(start),
            // Unbuffered setups have no admission: miss detection runs
            // until the packet_in leaves, and buffer_admit is zero-width.
            self.admit_at.or_else(|| first.map(|a| a.sent_at)),
            first.map(|a| a.sent_at),
            rel.map(|a| a.sent_at),
            rel.and_then(|a| a.wire_at),
            rel.and_then(|a| a.ctrl_arrive),
            rel.and_then(|a| a.received_at),
            rel.and_then(|a| a.reply_sent),
            rel.and_then(|a| a.reply_arrive),
            Some(end),
        ];
        let mut bounds = [start; 10];
        let mut cursor = start;
        for (slot, candidate) in bounds.iter_mut().zip(raw.iter()) {
            // Clamp to the running maximum (and to the span end) so the
            // boundaries are monotone even over a damaged stream.
            if let Some(t) = *candidate {
                cursor = cursor.max(t.min(end));
            }
            *slot = cursor;
        }
        bounds[9] = end;
        let mut out = [(Phase::MissDetect, Nanos::ZERO); 9];
        for (i, phase) in Phase::ALL.iter().enumerate() {
            out[i] = (*phase, bounds[i + 1].saturating_sub(bounds[i]));
        }
        Some(out)
    }
}

/// Per-slot builder state while a setup is in flight.
struct OpenSpan {
    span: FlowSetupSpan,
}

/// Folds a recorded event stream into flow-setup spans.
///
/// A pure function: events are stably sorted by timestamp (emission order
/// breaks ties, like every exporter in [`crate::observe`]) and correlated
/// by buffer id and xid. Damaged or truncated streams degrade to open
/// spans instead of panicking. Spans are returned in closing order,
/// open spans last in opening order.
pub fn build_spans(events: &[Event]) -> Vec<FlowSetupSpan> {
    let mut sorted = events.to_vec();
    sorted.sort_by_key(|e| e.at);

    let mut closed: Vec<FlowSetupSpan> = Vec::new();
    // Misses seen but not yet claimed by an admission or announcement.
    let mut pending_misses: std::collections::VecDeque<Nanos> = std::collections::VecDeque::new();
    // Open buffered spans by slot id; insertion order preserved separately.
    let mut by_buffer: FastHashMap<u32, OpenSpan> = FastHashMap::default();
    let mut buffer_order: Vec<u32> = Vec::new();
    // Open unbuffered spans by announcement xid.
    let mut by_xid_unbuffered: FastHashMap<u32, OpenSpan> = FastHashMap::default();
    let mut unbuffered_order: Vec<u32> = Vec::new();
    // xid → owning slot, for buffered attempts.
    let mut xid_to_buffer: FastHashMap<u32, u32> = FastHashMap::default();
    // xid → index into `closed`: a rule install is stamped at switch
    // parse time, which lands *after* the reply's send-time event closed
    // the span, so installs must still find spans already closed.
    let mut xid_to_closed: FastHashMap<u32, usize> = FastHashMap::default();

    // Applies `f` to the attempt with this xid, wherever its span lives.
    fn with_attempt(
        xid: u32,
        by_buffer: &mut FastHashMap<u32, OpenSpan>,
        by_xid_unbuffered: &mut FastHashMap<u32, OpenSpan>,
        xid_to_buffer: &FastHashMap<u32, u32>,
        f: impl FnOnce(&mut Attempt),
    ) {
        let span = if let Some(slot) = xid_to_buffer.get(&xid) {
            by_buffer.get_mut(slot)
        } else {
            by_xid_unbuffered.get_mut(&xid)
        };
        if let Some(open) = span {
            if let Some(a) = open.span.attempts.iter_mut().find(|a| a.xid == xid) {
                f(a);
            }
        }
    }

    // Retires a span into `closed`, indexing every attempt xid so late
    // install events still attach.
    fn retire(
        span: FlowSetupSpan,
        closed: &mut Vec<FlowSetupSpan>,
        xid_to_closed: &mut FastHashMap<u32, usize>,
    ) {
        for a in &span.attempts {
            xid_to_closed.insert(a.xid, closed.len());
        }
        closed.push(span);
    }

    for ev in &sorted {
        let at = ev.at;
        match ev.kind {
            EventKind::TableMiss { .. } => pending_misses.push_back(at),
            EventKind::BufferEnqueue {
                buffer_id, fresh, ..
            } => {
                let miss = pending_misses.pop_front();
                if fresh {
                    by_buffer
                        .entry(buffer_id)
                        .or_insert_with(|| {
                            buffer_order.push(buffer_id);
                            OpenSpan {
                                span: FlowSetupSpan::new(Some(buffer_id), miss, Some(at)),
                            }
                        })
                        .span
                        .admit_at
                        .get_or_insert(at);
                } else if let Some(open) = by_buffer.get_mut(&buffer_id) {
                    open.span.extra_enqueues += 1;
                }
            }
            EventKind::BufferRerequest { buffer_id, .. } => {
                if let Some(open) = by_buffer.get_mut(&buffer_id) {
                    open.span.rerequests += 1;
                }
            }
            EventKind::PacketInSent { xid, buffer_id, .. } => {
                let attempt = Attempt {
                    xid,
                    sent_at: at,
                    ..Attempt::default()
                };
                if buffer_id == NO_BUFFER {
                    let miss = pending_misses.pop_front();
                    let mut span = FlowSetupSpan::new(None, miss, None);
                    span.attempts.push(attempt);
                    by_xid_unbuffered.insert(xid, OpenSpan { span });
                    unbuffered_order.push(xid);
                } else {
                    let open = by_buffer.entry(buffer_id).or_insert_with(|| {
                        buffer_order.push(buffer_id);
                        OpenSpan {
                            span: FlowSetupSpan::new(Some(buffer_id), None, None),
                        }
                    });
                    open.span.attempts.push(attempt);
                    xid_to_buffer.insert(xid, buffer_id);
                }
            }
            EventKind::CtrlMsg {
                dir: ChannelDir::ToController,
                xid,
                label: "packet_in",
                arrive,
                ..
            } => with_attempt(
                xid,
                &mut by_buffer,
                &mut by_xid_unbuffered,
                &xid_to_buffer,
                |a| {
                    if a.wire_at.is_none() {
                        a.wire_at = Some(at);
                        a.ctrl_arrive = Some(arrive);
                    }
                },
            ),
            EventKind::CtrlDrop {
                dir: ChannelDir::ToController,
                xid,
                label: "packet_in",
                ..
            } => with_attempt(
                xid,
                &mut by_buffer,
                &mut by_xid_unbuffered,
                &xid_to_buffer,
                |a| a.lost = true,
            ),
            EventKind::PacketInReceived { xid, .. } => with_attempt(
                xid,
                &mut by_buffer,
                &mut by_xid_unbuffered,
                &xid_to_buffer,
                |a| {
                    if a.received_at.is_none() {
                        a.received_at = Some(at);
                    }
                },
            ),
            EventKind::AdmissionShed { xid, .. } => with_attempt(
                xid,
                &mut by_buffer,
                &mut by_xid_unbuffered,
                &xid_to_buffer,
                |a| a.shed = true,
            ),
            EventKind::CtrlMsg {
                dir: ChannelDir::ToSwitch,
                xid,
                label,
                arrive,
                ..
            } if label == "packet_out" || label == "flow_mod" => {
                with_attempt(
                    xid,
                    &mut by_buffer,
                    &mut by_xid_unbuffered,
                    &xid_to_buffer,
                    |a| {
                        // Prefer the packet_out (it is what releases the
                        // packet); a flow_mod only stands in until one shows.
                        if a.reply_arrive.is_none() || label == "packet_out" {
                            a.reply_sent = Some(at);
                            a.reply_arrive = Some(arrive);
                        }
                    },
                );
                // An unbuffered span completes when its packet_out (which
                // carries the packet) arrives back at the switch.
                if label == "packet_out" {
                    if let Some(mut open) = by_xid_unbuffered.remove(&xid) {
                        open.span.end = Some(arrive);
                        open.span.releasing_xid = Some(xid);
                        open.span.outcome = SpanOutcome::Completed;
                        retire(open.span, &mut closed, &mut xid_to_closed);
                    }
                }
            }
            EventKind::CtrlDrop {
                dir: ChannelDir::ToSwitch,
                xid,
                label,
                ..
            } if label == "packet_out" || label == "flow_mod" => with_attempt(
                xid,
                &mut by_buffer,
                &mut by_xid_unbuffered,
                &xid_to_buffer,
                |a| a.lost = true,
            ),
            EventKind::FlowRuleInstalled {
                xid, effective_at, ..
            } => {
                let open = if let Some(slot) = xid_to_buffer.get(&xid) {
                    by_buffer.get_mut(slot).map(|o| &mut o.span)
                } else {
                    by_xid_unbuffered.get_mut(&xid).map(|o| &mut o.span)
                };
                let span = match open {
                    Some(s) => Some(s),
                    None => xid_to_closed.get(&xid).map(|&i| &mut closed[i]),
                };
                if let Some(span) = span {
                    span.install.get_or_insert((at, effective_at));
                }
            }
            EventKind::BufferDrain {
                xid,
                buffer_id,
                released,
                ..
            } if released > 0 => {
                if let Some(mut open) = by_buffer.remove(&buffer_id) {
                    open.span.end = Some(at);
                    open.span.released = released;
                    open.span.releasing_xid = Some(xid);
                    open.span.outcome = SpanOutcome::Completed;
                    retire(open.span, &mut closed, &mut xid_to_closed);
                }
            }
            EventKind::BufferGiveUp {
                buffer_id, drained, ..
            } => {
                if let Some(mut open) = by_buffer.remove(&buffer_id) {
                    open.span.end = Some(at);
                    open.span.released = drained;
                    open.span.outcome = SpanOutcome::GivenUp;
                    retire(open.span, &mut closed, &mut xid_to_closed);
                }
            }
            _ => {}
        }
    }

    // Open spans trail the closed ones, in opening order.
    for slot in buffer_order {
        if let Some(open) = by_buffer.remove(&slot) {
            closed.push(open.span);
        }
    }
    for xid in unbuffered_order {
        if let Some(open) = by_xid_unbuffered.remove(&xid) {
            closed.push(open.span);
        }
    }
    closed
}

/// Fixed-memory aggregate of a run's (or a whole sweep's) flow-setup
/// latency anatomy: one [`Histogram`] per critical-path phase, one for
/// the end-to-end total, one for the off-path rule install, plus span
/// outcome counts. Merging is per-histogram counter addition, so folding
/// per-cell reports in deterministic grid order reproduces the serial
/// result byte-for-byte.
#[derive(Clone, Debug, Default)]
pub struct LatencyReport {
    /// End-to-end duration of completed spans.
    pub total: Histogram,
    /// Per-phase histograms, indexed like [`Phase::ALL`].
    pub phases: [Histogram; 9],
    /// Rule install (emission → effective), concurrent with the drain.
    pub rule_install: Histogram,
    /// Spans that completed.
    pub completed: u64,
    /// Spans that gave up after exhausting their retry budget.
    pub given_up: u64,
    /// Spans still open when the stream ended.
    pub open: u64,
    /// Total re-request announcements observed.
    pub rerequests: u64,
}

impl LatencyReport {
    /// Builds a report from a recorded event stream.
    pub fn from_events(events: &[Event]) -> LatencyReport {
        let mut report = LatencyReport::default();
        report.absorb(events);
        report
    }

    /// Folds one event stream's spans into this report.
    pub fn absorb(&mut self, events: &[Event]) {
        for span in build_spans(events) {
            self.rerequests += u64::from(span.rerequests);
            match span.outcome {
                SpanOutcome::Completed => {
                    self.completed += 1;
                    if let (Some(total), Some(phases)) = (span.total(), span.phases()) {
                        self.total.record(total);
                        for (i, (_, d)) in phases.iter().enumerate() {
                            self.phases[i].record(*d);
                        }
                    }
                    if let Some((at, effective)) = span.install {
                        self.rule_install.record(effective.saturating_sub(at));
                    }
                }
                SpanOutcome::GivenUp => self.given_up += 1,
                SpanOutcome::Open => self.open += 1,
            }
        }
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: &LatencyReport) {
        self.total.merge(&other.total);
        for (mine, theirs) in self.phases.iter_mut().zip(other.phases.iter()) {
            mine.merge(theirs);
        }
        self.rule_install.merge(&other.rule_install);
        self.completed += other.completed;
        self.given_up += other.given_up;
        self.open += other.open;
        self.rerequests += other.rerequests;
    }

    /// Share of the mean critical path spent in each phase, in percent
    /// (indexed like [`Phase::ALL`]; zeros when nothing completed).
    pub fn shares_pct(&self) -> [f64; 9] {
        let mut shares = [0.0f64; 9];
        let total: f64 = self.phases.iter().map(Histogram::mean_ms).sum();
        if total > 0.0 {
            for (s, h) in shares.iter_mut().zip(self.phases.iter()) {
                *s = h.mean_ms() / total * 100.0;
            }
        }
        shares
    }

    /// Renders the per-phase p50/p95/p99 table (milliseconds). The final
    /// rows carry the off-path rule install and the end-to-end total the
    /// critical-path phases sum to.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec![
            "phase", "n", "p50_ms", "p95_ms", "p99_ms", "max_ms", "share_%",
        ]);
        let shares = self.shares_pct();
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let h = &self.phases[i];
            t.row(vec![
                phase.label().to_string(),
                h.count().to_string(),
                format!("{:.3}", h.quantile_ms(0.50)),
                format!("{:.3}", h.quantile_ms(0.95)),
                format!("{:.3}", h.quantile_ms(0.99)),
                format!("{:.3}", h.max().as_millis_f64()),
                format!("{:.3}", shares[i]),
            ]);
        }
        let mut special = |label: &str, h: &Histogram| {
            t.row(vec![
                label.to_string(),
                h.count().to_string(),
                format!("{:.3}", h.quantile_ms(0.50)),
                format!("{:.3}", h.quantile_ms(0.95)),
                format!("{:.3}", h.quantile_ms(0.99)),
                format!("{:.3}", h.max().as_millis_f64()),
                "-".to_string(),
            ]);
        };
        special("rule_install*", &self.rule_install);
        special("total", &self.total);
        t
    }

    /// Writes the report as TSV (one row per phase, then rule install and
    /// total), matching [`LatencyReport::to_table`].
    pub fn write_tsv(&self, w: &mut dyn Write) -> io::Result<()> {
        w.write_all(self.to_table().to_tsv().as_bytes())
    }

    /// Appends the report as a stable-field-order JSON object.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"schema\":\"latency/v1\",\"spans\":{{\"completed\":{},\"given_up\":{},\
             \"open\":{},\"rerequests\":{}}},\"phases\":[",
            self.completed, self.given_up, self.open, self.rerequests
        );
        for (i, phase) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"phase\":\"{}\",\"on_critical_path\":true,\"hist\":",
                phase.label()
            );
            self.phases[i].write_json(out);
            out.push('}');
        }
        out.push_str(",{\"phase\":\"rule_install\",\"on_critical_path\":false,\"hist\":");
        self.rule_install.write_json(out);
        out.push_str("}],\"total\":");
        self.total.write_json(out);
        out.push('}');
    }
}

/// Aggregates a traced sweep into one merged [`LatencyReport`] per cell,
/// in the sweep's grid order (so the result is deterministic and
/// identical for serial and parallel executions, which already merge
/// their `RunEvents` in grid order).
pub fn latency_by_cell(runs: &[RunEvents]) -> Vec<(String, u64, LatencyReport)> {
    let mut out: Vec<(String, u64, LatencyReport)> = Vec::new();
    for run in runs {
        let matching = out
            .iter_mut()
            .find(|(label, rate, _)| *label == run.label && *rate == run.key.rate_mbps);
        let report = match matching {
            Some((_, _, report)) => report,
            None => {
                out.push((
                    run.label.clone(),
                    run.key.rate_mbps,
                    LatencyReport::default(),
                ));
                &mut out.last_mut().expect("just pushed").2
            }
        };
        report.absorb(&run.events);
    }
    out
}

/// Renders per-cell latency columns for a traced sweep: end-to-end
/// p50/p95/p99 plus the p95 of the dominant phases, one row per cell.
pub fn sweep_latency_table(cells: &[(String, u64, LatencyReport)]) -> Table {
    let mut t = Table::new(vec![
        "cell",
        "mbps",
        "flows",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "uplink_p95",
        "service_p95",
        "downlink_p95",
    ]);
    for (label, rate, report) in cells {
        let uplink = &report.phases[4];
        let service = &report.phases[6];
        let downlink = &report.phases[7];
        t.row(vec![
            label.clone(),
            rate.to_string(),
            report.completed.to_string(),
            format!("{:.3}", report.total.quantile_ms(0.50)),
            format!("{:.3}", report.total.quantile_ms(0.95)),
            format!("{:.3}", report.total.quantile_ms(0.99)),
            format!("{:.3}", uplink.quantile_ms(0.95)),
            format!("{:.3}", service.quantile_ms(0.95)),
            format!("{:.3}", downlink.quantile_ms(0.95)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, kind: EventKind) -> Event {
        Event {
            at: Nanos::from_micros(at_us),
            kind,
        }
    }

    /// A minimal healthy buffered setup: miss → enqueue → packet_in →
    /// uplink → ingest → reply → drain.
    fn healthy_buffered(base_us: u64, buffer_id: u32, xid: u32) -> Vec<Event> {
        let b = base_us;
        vec![
            ev(
                b,
                EventKind::TableMiss {
                    in_port: 1,
                    bytes: 100,
                },
            ),
            ev(
                b + 2,
                EventKind::BufferEnqueue {
                    buffer_id,
                    occupancy: 1,
                    fresh: true,
                },
            ),
            ev(
                b + 5,
                EventKind::PacketInSent {
                    xid,
                    buffer_id,
                    bytes: 128,
                },
            ),
            ev(
                b + 6,
                EventKind::CtrlMsg {
                    dir: ChannelDir::ToController,
                    xid,
                    bytes: 128,
                    label: "packet_in",
                    arrive: Nanos::from_micros(b + 16),
                },
            ),
            ev(
                b + 17,
                EventKind::PacketInReceived {
                    xid,
                    bytes: 128,
                    buffered: true,
                },
            ),
            ev(
                b + 40,
                EventKind::Decision {
                    xid,
                    action: "install",
                },
            ),
            ev(b + 40, EventKind::FlowModSent { xid }),
            ev(b + 40, EventKind::PacketOutSent { xid, buffer_id }),
            ev(
                b + 41,
                EventKind::CtrlMsg {
                    dir: ChannelDir::ToSwitch,
                    xid,
                    bytes: 80,
                    label: "flow_mod",
                    arrive: Nanos::from_micros(b + 50),
                },
            ),
            ev(
                b + 42,
                EventKind::CtrlMsg {
                    dir: ChannelDir::ToSwitch,
                    xid,
                    bytes: 24,
                    label: "packet_out",
                    arrive: Nanos::from_micros(b + 52),
                },
            ),
            ev(
                b + 51,
                EventKind::FlowRuleInstalled {
                    xid,
                    effective_at: Nanos::from_micros(b + 60),
                    table_size: 1,
                },
            ),
            ev(
                b + 55,
                EventKind::BufferDrain {
                    xid,
                    buffer_id,
                    released: 1,
                    occupancy: 0,
                },
            ),
        ]
    }

    #[test]
    fn healthy_span_decomposes_and_telescopes() {
        let spans = build_spans(&healthy_buffered(100, 7, 42));
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.outcome, SpanOutcome::Completed);
        assert_eq!(s.buffer_id, Some(7));
        assert_eq!(s.releasing_xid, Some(42));
        assert_eq!(s.total(), Some(Nanos::from_micros(55)));
        let phases = s.phases().expect("closed span has phases");
        let sum: u64 = phases.iter().map(|(_, d)| d.as_nanos()).sum();
        assert_eq!(sum, s.total().unwrap().as_nanos(), "phases must telescope");
        let by_label: std::collections::HashMap<&str, u64> = phases
            .iter()
            .map(|(p, d)| (p.label(), d.as_nanos() / 1000))
            .collect();
        assert_eq!(by_label["miss_detect"], 2);
        assert_eq!(by_label["buffer_admit"], 3);
        assert_eq!(by_label["retry_wait"], 0);
        assert_eq!(by_label["packet_in_serialize"], 1);
        assert_eq!(by_label["uplink"], 10);
        assert_eq!(by_label["ctrl_admission_wait"], 1);
        // Reply goes on the wire at b+42 (packet_out preferred).
        assert_eq!(by_label["ctrl_service"], 25);
        assert_eq!(by_label["downlink"], 10);
        assert_eq!(by_label["drain_release"], 3);
        assert_eq!(
            s.install,
            Some((Nanos::from_micros(151), Nanos::from_micros(160)))
        );
    }

    #[test]
    fn unbuffered_span_completes_on_packet_out_arrival() {
        let xid = 9;
        let events = vec![
            ev(
                0,
                EventKind::TableMiss {
                    in_port: 1,
                    bytes: 100,
                },
            ),
            ev(
                3,
                EventKind::PacketInSent {
                    xid,
                    buffer_id: NO_BUFFER,
                    bytes: 128,
                },
            ),
            ev(
                4,
                EventKind::CtrlMsg {
                    dir: ChannelDir::ToController,
                    xid,
                    bytes: 128,
                    label: "packet_in",
                    arrive: Nanos::from_micros(14),
                },
            ),
            ev(
                15,
                EventKind::PacketInReceived {
                    xid,
                    bytes: 128,
                    buffered: false,
                },
            ),
            ev(
                30,
                EventKind::CtrlMsg {
                    dir: ChannelDir::ToSwitch,
                    xid,
                    bytes: 150,
                    label: "packet_out",
                    arrive: Nanos::from_micros(45),
                },
            ),
        ];
        let spans = build_spans(&events);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.buffer_id, None);
        assert_eq!(s.outcome, SpanOutcome::Completed);
        assert_eq!(s.total(), Some(Nanos::from_micros(45)));
        let phases = s.phases().unwrap();
        let sum: u64 = phases.iter().map(|(_, d)| d.as_nanos()).sum();
        assert_eq!(sum, 45_000);
        // No buffer: admit and drain phases are zero-width.
        assert_eq!(phases[1].1, Nanos::ZERO, "buffer_admit");
        assert_eq!(phases[8].1, Nanos::ZERO, "drain_release");
    }

    #[test]
    fn lost_reply_leaves_span_open_and_rerequest_counts() {
        let buffer_id = 3;
        let mut events = vec![
            ev(
                0,
                EventKind::TableMiss {
                    in_port: 1,
                    bytes: 100,
                },
            ),
            ev(
                1,
                EventKind::BufferEnqueue {
                    buffer_id,
                    occupancy: 1,
                    fresh: true,
                },
            ),
            ev(
                2,
                EventKind::PacketInSent {
                    xid: 1,
                    buffer_id,
                    bytes: 128,
                },
            ),
            ev(
                3,
                EventKind::CtrlDrop {
                    dir: ChannelDir::ToController,
                    xid: 1,
                    bytes: 128,
                    label: "packet_in",
                },
            ),
            ev(
                5_000,
                EventKind::BufferRerequest {
                    buffer_id,
                    occupancy: 1,
                },
            ),
            ev(
                5_001,
                EventKind::PacketInSent {
                    xid: 2,
                    buffer_id,
                    bytes: 128,
                },
            ),
        ];
        let spans = build_spans(&events);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].outcome, SpanOutcome::Open);
        assert_eq!(spans[0].rerequests, 1);
        assert_eq!(spans[0].attempts.len(), 2);
        assert!(spans[0].attempts[0].lost);
        assert!(spans[0].phases().is_none(), "open span has no phase split");

        // Now the retry succeeds: retry_wait carries the gap.
        events.extend([
            ev(
                5_002,
                EventKind::CtrlMsg {
                    dir: ChannelDir::ToController,
                    xid: 2,
                    bytes: 128,
                    label: "packet_in",
                    arrive: Nanos::from_micros(5_012),
                },
            ),
            ev(
                5_013,
                EventKind::PacketInReceived {
                    xid: 2,
                    bytes: 128,
                    buffered: true,
                },
            ),
            ev(
                5_030,
                EventKind::CtrlMsg {
                    dir: ChannelDir::ToSwitch,
                    xid: 2,
                    bytes: 24,
                    label: "packet_out",
                    arrive: Nanos::from_micros(5_040),
                },
            ),
            ev(
                5_045,
                EventKind::BufferDrain {
                    xid: 2,
                    buffer_id,
                    released: 1,
                    occupancy: 0,
                },
            ),
        ]);
        let spans = build_spans(&events);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.outcome, SpanOutcome::Completed);
        assert_eq!(s.releasing_xid, Some(2));
        let phases = s.phases().unwrap();
        let retry_wait = phases[2].1;
        assert_eq!(retry_wait, Nanos::from_micros(4_999), "sent#1 → sent#2");
        let sum: u64 = phases.iter().map(|(_, d)| d.as_nanos()).sum();
        assert_eq!(sum, s.total().unwrap().as_nanos());
    }

    #[test]
    fn give_up_closes_span_as_given_up() {
        let events = vec![
            ev(
                1,
                EventKind::BufferEnqueue {
                    buffer_id: 5,
                    occupancy: 1,
                    fresh: true,
                },
            ),
            ev(
                2,
                EventKind::PacketInSent {
                    xid: 1,
                    buffer_id: 5,
                    bytes: 128,
                },
            ),
            ev(
                900,
                EventKind::BufferGiveUp {
                    buffer_id: 5,
                    drained: 1,
                    action: "drop",
                    occupancy: 0,
                },
            ),
        ];
        let spans = build_spans(&events);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].outcome, SpanOutcome::GivenUp);
        assert_eq!(spans[0].end, Some(Nanos::from_micros(900)));
    }

    #[test]
    fn report_aggregates_and_merges_deterministically() {
        let run1 = healthy_buffered(0, 1, 1);
        let run2 = healthy_buffered(1_000, 2, 2);
        // Serial: one report over both runs' streams.
        let mut serial = LatencyReport::default();
        serial.absorb(&run1);
        serial.absorb(&run2);
        // Parallel-shaped: per-run reports merged in grid order.
        let mut merged = LatencyReport::from_events(&run1);
        merged.merge(&LatencyReport::from_events(&run2));
        assert_eq!(serial.completed, 2);
        let (mut a, mut b) = (String::new(), String::new());
        serial.write_json(&mut a);
        merged.write_json(&mut b);
        assert_eq!(a, b, "merge must be byte-identical to serial");
        assert!(a.starts_with("{\"schema\":\"latency/v1\""));
        // Share percentages cover the whole critical path.
        let total: f64 = serial.shares_pct().iter().sum();
        assert!((total - 100.0).abs() < 1e-6);
    }

    #[test]
    fn table_lists_every_phase_plus_total() {
        let report = LatencyReport::from_events(&healthy_buffered(0, 1, 1));
        let text = report.to_table().to_text();
        for phase in Phase::ALL {
            assert!(text.contains(phase.label()), "missing {}", phase.label());
        }
        assert!(text.contains("rule_install*"));
        assert!(text.contains("total"));
    }
}
