//! Flight recorder: a replayable crash-dump artifact for post-mortems.
//!
//! When something goes wrong — a chaos invariant fires, the switch enters
//! degraded mode, or the operator passes `--dump-on-exit` — the flight
//! recorder captures everything a post-mortem needs into one JSON file
//! under `results/flightrec/`:
//!
//! * the **replay recipe**: the fault/scenario spec and seed (a chaos dump
//!   replays with `sdnlab chaos --replay <spec>` to the same violation,
//!   byte-for-byte — the runs are deterministic),
//! * the **last N events** leading up to the end of the run (the stream's
//!   tail, like [`sdnbuf_sim::RingSink`] would retain live),
//! * the **open spans** — flow setups still in flight, which is usually
//!   where the bug is,
//! * the **latency anatomy** ([`crate::spans::LatencyReport`]) and a
//!   metric snapshot of the run.
//!
//! Dumps are pure functions of already-recorded data: capturing one never
//! perturbs the run it describes.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::observe;
use crate::result::RunResult;
use crate::spans::{self, LatencyReport, SpanOutcome};
use sdnbuf_sim::Event;

/// Default number of trailing events a dump retains.
pub const DEFAULT_TAIL: usize = 256;

/// Why a dump was captured. Rendered into the artifact and its filename.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DumpReason {
    /// A chaos invariant fired.
    ChaosViolation,
    /// The switch entered degraded mode during the run.
    DegradedEnter,
    /// A controller crashed during the run (the crash/failover plane's
    /// automatic post-mortem artifact).
    CtrlCrash,
    /// The operator asked for a dump at the end of the run.
    Exit,
}

impl DumpReason {
    /// Stable snake_case label used in the JSON and the filename.
    pub fn label(self) -> &'static str {
        match self {
            DumpReason::ChaosViolation => "chaos_violation",
            DumpReason::DegradedEnter => "degraded_enter",
            DumpReason::CtrlCrash => "ctrl_crash",
            DumpReason::Exit => "exit",
        }
    }
}

/// One captured flight-recorder artifact, ready to serialize.
#[derive(Clone, Debug)]
pub struct FlightDump {
    /// Why the dump was taken.
    pub reason: DumpReason,
    /// Human-readable run identity (cell label or scenario mechanism).
    pub label: String,
    /// The run's seed.
    pub seed: u64,
    /// Replayable fault/scenario spec, when the run had one. For chaos
    /// dumps this is the full scenario spec `sdnlab chaos --replay`
    /// accepts; for plain runs it is the `--faults` spec.
    pub spec: Option<String>,
    /// Violations that triggered the dump (invariant name, detail).
    pub violations: Vec<(String, String)>,
    /// FNV digest of the full event stream (the replay identity).
    pub digest: u64,
    /// Events in the full stream (before tail truncation).
    pub events_total: u64,
    /// The stream's trailing events, oldest first.
    pub tail: Vec<Event>,
    /// Spans still open when the stream ended.
    pub open_spans: Vec<spans::FlowSetupSpan>,
    /// The run's latency anatomy.
    pub latency: LatencyReport,
    /// Metric snapshot, when a [`RunResult`] was available.
    pub result: Option<RunResult>,
}

impl FlightDump {
    /// Captures a dump from a recorded run: keeps the last
    /// [`DEFAULT_TAIL`] events, extracts open spans and the latency
    /// report, and computes the stream digest.
    pub fn capture(
        reason: DumpReason,
        label: &str,
        seed: u64,
        spec: Option<String>,
        events: &[Event],
        result: Option<&RunResult>,
    ) -> FlightDump {
        let tail_start = events.len().saturating_sub(DEFAULT_TAIL);
        let open_spans: Vec<spans::FlowSetupSpan> = spans::build_spans(events)
            .into_iter()
            .filter(|s| s.outcome == SpanOutcome::Open)
            .collect();
        FlightDump {
            reason,
            label: label.to_string(),
            seed,
            spec,
            violations: Vec::new(),
            digest: observe::events_digest(events),
            events_total: events.len() as u64,
            tail: events[tail_start..].to_vec(),
            open_spans,
            latency: LatencyReport::from_events(events),
            result: result.cloned(),
        }
    }

    /// Attaches the violations that triggered the dump.
    pub fn with_violations(mut self, violations: Vec<(String, String)>) -> FlightDump {
        self.violations = violations;
        self
    }

    /// Serializes the dump as one JSON document with a stable field
    /// order. Strings are escaped with the same minimal escaper the JSONL
    /// exporter uses (specs and labels contain no exotic characters).
    pub fn write_json(&self, w: &mut dyn Write) -> io::Result<()> {
        let mut out = String::with_capacity(16 * 1024);
        out.push_str("{\"schema\":\"flightrec/v1\"");
        push_field(&mut out, "reason", self.reason.label());
        push_field(&mut out, "label", &self.label);
        out.push_str(&format!(",\"seed\":{}", self.seed));
        match &self.spec {
            Some(spec) => push_field(&mut out, "spec", spec),
            None => out.push_str(",\"spec\":null"),
        }
        out.push_str(",\"violations\":[");
        for (i, (invariant, detail)) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"invariant\":\"");
            escape_into(&mut out, invariant);
            out.push_str("\",\"detail\":\"");
            escape_into(&mut out, detail);
            out.push_str("\"}");
        }
        out.push_str(&format!(
            "],\"digest\":\"{:016x}\",\"events_total\":{},\"tail_len\":{},\"events\":[",
            self.digest,
            self.events_total,
            self.tail.len()
        ));
        for (i, ev) in self.tail.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            ev.write_json_fields(&mut out);
            out.push('}');
        }
        out.push_str("],\"open_spans\":[");
        for (i, span) in self.open_spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_span(&mut out, span);
        }
        out.push_str("],\"latency\":");
        self.latency.write_json(&mut out);
        out.push_str(",\"result\":");
        match &self.result {
            Some(r) => push_result(&mut out, r),
            None => out.push_str("null"),
        }
        out.push_str("}\n");
        w.write_all(out.as_bytes())
    }

    /// Writes the dump to `<dir>/<stem>.json`, creating the directory.
    /// Returns the path written.
    pub fn write_to_dir(&self, dir: &Path, stem: &str) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{stem}.json"));
        let mut file = fs::File::create(&path)?;
        self.write_json(&mut file)?;
        Ok(path)
    }

    /// The conventional artifact directory, `results/flightrec/`.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("results").join("flightrec")
    }

    /// The conventional filename stem: `<reason>-<label>-seed<seed>`.
    pub fn stem(&self) -> String {
        format!("{}-{}-seed{}", self.reason.label(), self.label, self.seed)
    }
}

/// Appends `,"key":"escaped value"`.
fn push_field(out: &mut String, key: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    escape_into(out, value);
    out.push('"');
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Appends one open span as a compact JSON object.
fn push_span(out: &mut String, span: &spans::FlowSetupSpan) {
    match span.buffer_id {
        Some(id) => out.push_str(&format!("{{\"buffer_id\":{id}")),
        None => out.push_str("{\"buffer_id\":null"),
    }
    out.push_str(&format!(
        ",\"start\":{},\"attempts\":{},\"rerequests\":{},\"state\":\"{}\"",
        span.start().as_nanos(),
        span.attempts.len(),
        span.rerequests,
        span.outcome.label()
    ));
    if let Some(first) = span.attempts.first() {
        out.push_str(&format!(",\"first_xid\":{}", first.xid));
    } else {
        out.push_str(",\"first_xid\":null");
    }
    out.push('}');
}

/// Appends the metric snapshot: the counters a post-mortem reads first.
fn push_result(out: &mut String, r: &RunResult) {
    out.push_str(&format!(
        "{{\"label\":\"{}\",\"packets_sent\":{},\"packets_delivered\":{},\
         \"packets_dropped\":{},\"ctrl_drops\":{},\"flows_completed\":{},\
         \"flows_total\":{},\"rerequests\":{},\"buffer_expired\":{},\
         \"buffer_giveups\":{},\"stale_releases\":{},\"admission_sheds\":{},\
         \"degraded_entries\":{},\"degraded_exits\":{},\"ctrl_crashes\":{},\
         \"failover_takeovers\":{},\"epoch_bumps\":{},\"stale_epoch_rejects\":{},\
         \"reconcile_rerequests\":{},\"flow_setup_delay_ms_mean\":{:.6},\
         \"controller_delay_ms_mean\":{:.6}}}",
        r.label,
        r.packets_sent,
        r.packets_delivered,
        r.packets_dropped,
        r.ctrl_drops,
        r.flows_completed,
        r.flows_total,
        r.rerequests,
        r.buffer_expired,
        r.buffer_giveups,
        r.stale_releases,
        r.admission_sheds,
        r.degraded_entries,
        r.degraded_exits,
        r.ctrl_crashes,
        r.failover_takeovers,
        r.epoch_bumps,
        r.stale_epoch_rejects,
        r.reconcile_rerequests,
        r.flow_setup_delay.mean,
        r.controller_delay.mean
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnbuf_sim::{EventKind, Nanos};

    fn sample_events(n: u64) -> Vec<Event> {
        (0..n)
            .map(|i| Event {
                at: Nanos::from_micros(i),
                kind: EventKind::TableMiss {
                    in_port: 1,
                    bytes: 100,
                },
            })
            .collect()
    }

    #[test]
    fn capture_keeps_the_tail_and_digest() {
        let events = sample_events(1_000);
        let dump = FlightDump::capture(DumpReason::Exit, "cell", 42, None, &events, None);
        assert_eq!(dump.events_total, 1_000);
        assert_eq!(dump.tail.len(), DEFAULT_TAIL);
        assert_eq!(
            dump.tail.first().unwrap().at,
            Nanos::from_micros(1_000 - DEFAULT_TAIL as u64)
        );
        assert_eq!(dump.digest, observe::events_digest(&events));
    }

    #[test]
    fn json_is_schema_stable_and_parseable_shape() {
        let events = sample_events(10);
        let dump = FlightDump::capture(
            DumpReason::ChaosViolation,
            "packet-256",
            7,
            Some("mech=packet,seed=7".to_string()),
            &events,
            Some(&RunResult::default()),
        )
        .with_violations(vec![("occupancy-bound".into(), "occ 300 > 256".into())]);
        let mut buf = Vec::new();
        dump.write_json(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"schema\":\"flightrec/v1\",\"reason\":\"chaos_violation\""));
        assert!(text.contains("\"spec\":\"mech=packet,seed=7\""));
        assert!(text.contains("\"invariant\":\"occupancy-bound\""));
        assert!(text.contains("\"events_total\":10"));
        assert!(text.contains("\"latency\":{\"schema\":\"latency/v1\""));
        assert!(text.ends_with("}\n"));
        // Balanced braces — cheap well-formedness check without a parser.
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn stem_is_filesystem_friendly() {
        let dump = FlightDump::capture(DumpReason::DegradedEnter, "flow-256", 3, None, &[], None);
        assert_eq!(dump.stem(), "degraded_enter-flow-256-seed3");
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
    }
}
