//! Per-figure table builders: every table and figure of the paper's
//! evaluation, regenerated from sweep results.
//!
//! Each `figNN_*` function reduces a [`SweepResult`] to the same data
//! series the corresponding figure plots — one row per sending rate, one
//! column per buffer mechanism. Figures select their y-axis with
//! [`Metric`]; [`metric_by_rate`] keeps a closure escape hatch for custom
//! reductions. `summary_claims` reproduces the paper's headline "on
//! average" percentages side by side with the measured ones.

use crate::experiment::CellKey;
use crate::{BufferMode, Metric, RunResult, SweepResult};
use sdnbuf_metrics::Table;

/// Builds a rate-by-mechanism table of `metric`'s per-cell mean — the
/// generic shape of every figure in the paper. Closure form over the typed
/// [`CellKey`] lookup (absent cells render as 0.0); figures use
/// [`metric_table`] with a typed [`Metric`].
pub fn metric_by_rate(
    sweep: &SweepResult,
    metric_name: &str,
    metric: impl Fn(&RunResult) -> f64 + Copy,
) -> Table {
    let modes = sweep.modes();
    let mut headers = vec![format!("rate_mbps\\{metric_name}")];
    headers.extend(modes.iter().map(|m| m.label()));
    let mut table = Table::new(headers);
    for rate in sweep.rates() {
        let values: Vec<f64> = modes
            .iter()
            .map(|&m| {
                sweep
                    .mean_with(&CellKey::new(m, rate), metric)
                    .unwrap_or(0.0)
            })
            .collect();
        table.row_f64(rate.to_string(), &values, 3);
    }
    table
}

/// [`metric_by_rate`] for a typed [`Metric`]; the column header is the
/// metric's canonical name.
pub fn metric_table(sweep: &SweepResult, metric: Metric) -> Table {
    metric_by_rate(sweep, metric.name(), |r| r.get(metric))
}

/// Fig. 2(a) / Fig. 9(a): control-path load, switch → controller, Mbps.
pub fn fig_control_load_to_controller(sweep: &SweepResult) -> Table {
    metric_table(sweep, Metric::ControlPathLoadUp)
}

/// Fig. 2(b) / Fig. 9(b): control-path load, controller → switch, Mbps.
pub fn fig_control_load_to_switch(sweep: &SweepResult) -> Table {
    metric_table(sweep, Metric::ControlPathLoadDown)
}

/// Fig. 3 / Fig. 10: controller usages (CPU percent).
pub fn fig_controller_usage(sweep: &SweepResult) -> Table {
    metric_table(sweep, Metric::ControllerCpu)
}

/// Fig. 4 / Fig. 11: switch usages (CPU percent).
pub fn fig_switch_usage(sweep: &SweepResult) -> Table {
    metric_table(sweep, Metric::SwitchCpu)
}

/// Fig. 5 / Fig. 12(a): flow-setup delay, mean ms.
pub fn fig_flow_setup_delay(sweep: &SweepResult) -> Table {
    metric_table(sweep, Metric::FlowSetupDelay)
}

/// Fig. 6: controller delay, mean ms.
pub fn fig_controller_delay(sweep: &SweepResult) -> Table {
    metric_table(sweep, Metric::ControllerDelay)
}

/// Fig. 7: switch delay, mean ms.
pub fn fig_switch_delay(sweep: &SweepResult) -> Table {
    metric_table(sweep, Metric::SwitchDelay)
}

/// Fig. 8 / Fig. 13(a): buffer utilization, time-weighted mean units.
pub fn fig_buffer_utilization_mean(sweep: &SweepResult) -> Table {
    metric_table(sweep, Metric::BufferMeanOccupancy)
}

/// Fig. 13(b): buffer utilization, peak units.
pub fn fig_buffer_utilization_max(sweep: &SweepResult) -> Table {
    metric_table(sweep, Metric::BufferPeakOccupancy)
}

/// Fig. 12(b): flow-forwarding delay, mean ms.
pub fn fig_flow_forwarding_delay(sweep: &SweepResult) -> Table {
    metric_table(sweep, Metric::FlowForwardingDelay)
}

/// Percentage reduction of `metric` going from mechanism `from` to `to`,
/// averaged across the sweep (the paper's "reduce X % on average").
pub fn reduction(sweep: &SweepResult, from: BufferMode, to: BufferMode, metric: Metric) -> f64 {
    let base = sweep.sweep_mean_of(from, metric).unwrap_or(0.0);
    let new = sweep.sweep_mean_of(to, metric).unwrap_or(0.0);
    if base <= 0.0 {
        return 0.0;
    }
    100.0 * (1.0 - new / base)
}

/// Closure form of [`reduction`] for custom metrics; mechanisms absent
/// from the sweep behave as zero.
pub fn reduction_percent(
    sweep: &SweepResult,
    from: BufferMode,
    to: BufferMode,
    metric: impl Fn(&RunResult) -> f64 + Copy,
) -> f64 {
    let base = sweep.sweep_mean_with(from, metric).unwrap_or(0.0);
    let new = sweep.sweep_mean_with(to, metric).unwrap_or(0.0);
    if base <= 0.0 {
        return 0.0;
    }
    100.0 * (1.0 - new / base)
}

/// The paper's headline claims (Sections IV and V summaries) against the
/// reproduction's measured values. `section_iv` must come from
/// [`crate::RateSweep::paper_section_iv`]-shaped sweeps and `section_v`
/// from [`crate::RateSweep::paper_section_v`]-shaped ones.
pub fn summary_claims(section_iv: &SweepResult, section_v: &SweepResult) -> Table {
    let mut t = Table::new(vec!["claim", "paper", "measured"]);
    let mut row = |claim: &str, paper: &str, measured: f64| {
        t.row(vec![
            claim.to_owned(),
            paper.to_owned(),
            format!("{measured:.1}%"),
        ]);
    };
    let nb = BufferMode::NoBuffer;
    let b256 = BufferMode::PacketGranularity { capacity: 256 };
    let fg = BufferMode::FlowGranularity {
        capacity: 256,
        timeout: sdnbuf_sim::Nanos::from_millis(50),
    };

    row(
        "IV: control path load cut, switch->ctrl (buffer-256 vs no-buffer)",
        "78.7%",
        reduction(section_iv, nb, b256, Metric::ControlPathLoadUp),
    );
    row(
        "IV: control path load cut, ctrl->switch",
        "96.0%",
        reduction(section_iv, nb, b256, Metric::ControlPathLoadDown),
    );
    row(
        "IV: controller overhead cut",
        "37.0%",
        reduction(section_iv, nb, b256, Metric::ControllerCpu),
    );
    row(
        "IV: switch overhead added by buffer (negative = added)",
        "-5.6%",
        reduction(section_iv, nb, b256, Metric::SwitchCpu),
    );
    row(
        "IV: controller delay cut",
        "58.0%",
        reduction(section_iv, nb, b256, Metric::ControllerDelay),
    );
    row(
        "IV: switch delay cut",
        "87.0%",
        reduction(section_iv, nb, b256, Metric::SwitchDelay),
    );
    row(
        "IV: flow setup delay cut",
        "78.0%",
        reduction(section_iv, nb, b256, Metric::FlowSetupDelay),
    );
    row(
        "V: control path load cut, switch->ctrl (flow- vs packet-granularity)",
        "64.0%",
        reduction(section_v, b256, fg, Metric::ControlPathLoadUp),
    );
    row(
        "V: control path load cut, ctrl->switch",
        "80.0%",
        reduction(section_v, b256, fg, Metric::ControlPathLoadDown),
    );
    row(
        "V: controller overhead cut",
        "35.7%",
        reduction(section_v, b256, fg, Metric::ControllerCpu),
    );
    row(
        "V: buffer utilization efficiency gain",
        "71.6%",
        reduction(section_v, b256, fg, Metric::BufferMeanOccupancy),
    );
    row(
        "V: flow forwarding delay cut",
        "18.0%",
        reduction(section_v, b256, fg, Metric::FlowForwardingDelay),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufferMode, RateSweep, WorkloadKind};

    fn tiny_sweep() -> SweepResult {
        RateSweep::builder()
            .rates([10, 40])
            .buffers([
                BufferMode::NoBuffer,
                BufferMode::PacketGranularity { capacity: 256 },
            ])
            .workload(WorkloadKind::single_packet_flows(15))
            .repetitions(1)
            .base_seed(5)
            .build()
            .run()
    }

    #[test]
    fn tables_have_one_row_per_rate_and_column_per_mechanism() {
        let sweep = tiny_sweep();
        for table in [
            fig_control_load_to_controller(&sweep),
            fig_control_load_to_switch(&sweep),
            fig_controller_usage(&sweep),
            fig_switch_usage(&sweep),
            fig_flow_setup_delay(&sweep),
            fig_controller_delay(&sweep),
            fig_switch_delay(&sweep),
            fig_buffer_utilization_mean(&sweep),
            fig_buffer_utilization_max(&sweep),
            fig_flow_forwarding_delay(&sweep),
        ] {
            assert_eq!(table.len(), 2, "{table}");
            let tsv = table.to_tsv();
            assert!(tsv.contains("no-buffer"));
            assert!(tsv.contains("buffer-256"));
        }
    }

    #[test]
    fn typed_and_closure_tables_agree() {
        let sweep = tiny_sweep();
        let typed = metric_table(&sweep, Metric::PktInCount);
        let closed = metric_by_rate(&sweep, "pkt_in_count", |r| r.pkt_in_count as f64);
        assert_eq!(typed.to_tsv(), closed.to_tsv());
    }

    #[test]
    fn buffering_reduces_control_load_in_figures() {
        let sweep = tiny_sweep();
        let cut = reduction(
            &sweep,
            BufferMode::NoBuffer,
            BufferMode::PacketGranularity { capacity: 256 },
            Metric::ControlPathLoadUp,
        );
        assert!(cut > 50.0, "expected a large cut, got {cut:.1}%");
        let closure_cut = reduction_percent(
            &sweep,
            BufferMode::NoBuffer,
            BufferMode::PacketGranularity { capacity: 256 },
            |r| r.ctrl_load_to_controller_mbps,
        );
        assert_eq!(cut, closure_cut);
    }

    #[test]
    fn reduction_percent_handles_zero_base() {
        let sweep = SweepResult::default();
        assert_eq!(
            reduction_percent(
                &sweep,
                BufferMode::NoBuffer,
                BufferMode::NoBuffer,
                |r| r.pkt_in_count as f64
            ),
            0.0
        );
        assert_eq!(
            reduction(
                &sweep,
                BufferMode::NoBuffer,
                BufferMode::PacketGranularity { capacity: 256 },
                Metric::PktInCount
            ),
            0.0
        );
    }
}
