//! Parallel sweep executor: a zero-dependency worker pool that fans
//! independent jobs out across threads and merges results back in
//! deterministic submission order.
//!
//! Every sweep cell is an independent, seeded, single-threaded DES run, so
//! the grid is embarrassingly parallel: the executor hands job indices to
//! workers through a shared atomic counter, each worker writes its result
//! into the job's dedicated slot, and the caller receives `Vec<T>` in job
//! order — bit-identical to a serial loop, regardless of worker count or
//! scheduling. This module is the **one intentionally threaded component**
//! of the workspace; everything it runs is `&self`/owned and shares nothing.
//!
//! Progress flows through a [`ProgressSink`] (a `Sync` observer, since
//! completions arrive from many threads), and per-worker cell timings are
//! aggregated into [`sdnbuf_metrics::Summary`] values in the final
//! [`ExecutorReport`].

use sdnbuf_metrics::Summary;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How many workers a sweep may use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parallelism {
    /// One worker per available CPU (`std::thread::available_parallelism`).
    Auto,
    /// Exactly `n` workers (clamped to at least 1).
    Fixed(usize),
    /// Run on the calling thread, no workers spawned.
    Serial,
}

impl Parallelism {
    /// The number of workers this policy resolves to on this machine.
    pub fn worker_count(&self) -> usize {
        match *self {
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Serial => 1,
        }
    }

    /// Reads the `SDNBUF_THREADS` environment variable: `serial`, `auto`,
    /// or a worker count. Unset or unparsable values mean [`Self::Auto`] —
    /// the sweep grid is deterministic under any worker count, so parallel
    /// is always safe.
    pub fn from_env() -> Parallelism {
        match std::env::var("SDNBUF_THREADS").as_deref() {
            Ok("serial") | Ok("1") => Parallelism::Serial,
            Ok("auto") => Parallelism::Auto,
            Ok(n) => n
                .parse()
                .map(Parallelism::Fixed)
                .unwrap_or(Parallelism::Auto),
            Err(_) => Parallelism::Auto,
        }
    }
}

/// A progress snapshot, delivered after each completed run.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Completed runs.
    pub done: usize,
    /// Total runs in the sweep.
    pub total: usize,
    /// Fully completed (all repetitions done) sweep cells.
    pub cells_done: usize,
    /// Total sweep cells.
    pub cells_total: usize,
    /// Wall-clock since the sweep started.
    pub elapsed: Duration,
    /// Estimated remaining wall-clock, once at least one run finished.
    pub eta: Option<Duration>,
    /// Index of the worker that finished the run (0-based).
    pub worker: usize,
}

/// What one worker did, for the final report.
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Jobs this worker completed.
    pub jobs: usize,
    /// Total busy time across those jobs.
    pub busy: Duration,
    /// Per-job wall-clock in seconds.
    pub job_seconds: Summary,
}

/// End-of-sweep accounting.
#[derive(Clone, Debug)]
pub struct ExecutorReport {
    /// Workers the policy resolved to.
    pub workers: usize,
    /// Wall-clock of the whole sweep.
    pub wall: Duration,
    /// Per-worker statistics, indexed by worker.
    pub worker_stats: Vec<WorkerStats>,
}

impl ExecutorReport {
    /// Sum of busy time across workers — the serial-equivalent cost. The
    /// ratio `busy_total / wall` is the achieved speedup.
    pub fn busy_total(&self) -> Duration {
        self.worker_stats.iter().map(|w| w.busy).sum()
    }
}

/// Observer of sweep progress. Implementations must be `Sync`: completions
/// are reported from worker threads (serialized by the executor, so calls
/// never overlap and `done` is strictly increasing).
pub trait ProgressSink: Sync {
    /// Called after every completed run.
    fn on_progress(&self, _progress: &Progress) {}

    /// Called once, after the last run merged.
    fn on_finish(&self, _report: &ExecutorReport) {}
}

/// Discards all progress.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl ProgressSink for NullSink {}

/// Every closure over [`Progress`] is a sink (e.g.
/// `&|p: &Progress| eprintln!("{}/{}", p.done, p.total)`).
impl<F: Fn(&Progress) + Sync> ProgressSink for F {
    fn on_progress(&self, progress: &Progress) {
        self(progress)
    }
}

/// A `\r`-rewriting stderr progress line: done/total runs, cells, elapsed
/// and ETA, plus a per-worker timing summary at the end.
#[derive(Debug)]
pub struct StderrProgress {
    name: String,
}

impl StderrProgress {
    /// Sink labelling its lines with `name`.
    pub fn new(name: impl Into<String>) -> StderrProgress {
        StderrProgress { name: name.into() }
    }
}

impl ProgressSink for StderrProgress {
    fn on_progress(&self, p: &Progress) {
        use std::io::Write as _;
        let eta = match p.eta {
            Some(eta) => format!(" eta {:.1}s", eta.as_secs_f64()),
            None => String::new(),
        };
        eprint!(
            "\r[{}] {}/{} runs ({}/{} cells) {:.1}s{}   ",
            self.name,
            p.done,
            p.total,
            p.cells_done,
            p.cells_total,
            p.elapsed.as_secs_f64(),
            eta,
        );
        let _ = std::io::stderr().flush();
        if p.done == p.total {
            eprintln!();
        }
    }

    fn on_finish(&self, report: &ExecutorReport) {
        let speedup = if report.wall.as_secs_f64() > 0.0 {
            report.busy_total().as_secs_f64() / report.wall.as_secs_f64()
        } else {
            1.0
        };
        eprintln!(
            "[{}] {} workers, wall {:.1}s, busy {:.1}s ({speedup:.1}x)",
            self.name,
            report.workers,
            report.wall.as_secs_f64(),
            report.busy_total().as_secs_f64(),
        );
        for w in &report.worker_stats {
            if w.jobs > 0 {
                eprintln!(
                    "[{}]   worker {}: {} runs, busy {:.1}s, per-run mean {:.1} ms (max {:.1} ms)",
                    self.name,
                    w.worker,
                    w.jobs,
                    w.busy.as_secs_f64(),
                    w.job_seconds.mean * 1e3,
                    w.job_seconds.max * 1e3,
                );
            }
        }
    }
}

/// The worker pool. Stateless apart from its policy; `run` may be called
/// any number of times.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    parallelism: Parallelism,
}

impl Executor {
    /// An executor with the given worker policy.
    pub fn new(parallelism: Parallelism) -> Executor {
        Executor { parallelism }
    }

    /// Runs `jobs` invocations of `job(index)` and returns the results in
    /// index order. `observe(index, worker, elapsed)` is called after each
    /// job under an internal lock (calls never overlap).
    ///
    /// Ordering guarantee: the returned vector is `[job(0), job(1), …]`
    /// regardless of which worker ran which index — callers see exactly
    /// the serial result.
    pub fn run<T, F, O>(&self, jobs: usize, job: F, observe: O) -> (Vec<T>, ExecutorReport)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        O: Fn(usize, usize, Duration) + Sync,
    {
        let workers = self.parallelism.worker_count().min(jobs.max(1));
        let started = Instant::now();
        if workers <= 1 {
            let mut times = Vec::with_capacity(jobs);
            let out = (0..jobs)
                .map(|i| {
                    let t0 = Instant::now();
                    let r = job(i);
                    let dt = t0.elapsed();
                    times.push(dt);
                    observe(i, 0, dt);
                    r
                })
                .collect();
            return (out, Self::report(1, started.elapsed(), vec![times]));
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        let observe_lock = Mutex::new(());
        let per_worker_times: Vec<Mutex<Vec<Duration>>> =
            (0..workers).map(|_| Mutex::new(Vec::new())).collect();

        std::thread::scope(|s| {
            for w in 0..workers {
                let next = &next;
                let slots = &slots;
                let observe_lock = &observe_lock;
                let per_worker_times = &per_worker_times;
                let job = &job;
                let observe = &observe;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let t0 = Instant::now();
                    let result = job(i);
                    let dt = t0.elapsed();
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                    per_worker_times[w]
                        .lock()
                        .expect("timing vec poisoned")
                        .push(dt);
                    let _serialized = observe_lock.lock().expect("observer lock poisoned");
                    observe(i, w, dt);
                });
            }
        });

        let out: Vec<T> = slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job index below `jobs` is claimed exactly once")
            })
            .collect();
        let times: Vec<Vec<Duration>> = per_worker_times
            .into_iter()
            .map(|m| m.into_inner().expect("timing vec poisoned"))
            .collect();
        (out, Self::report(workers, started.elapsed(), times))
    }

    fn report(workers: usize, wall: Duration, times: Vec<Vec<Duration>>) -> ExecutorReport {
        let worker_stats = times
            .into_iter()
            .enumerate()
            .map(|(worker, times)| {
                let secs: Vec<f64> = times.iter().map(Duration::as_secs_f64).collect();
                WorkerStats {
                    worker,
                    jobs: times.len(),
                    busy: times.iter().sum(),
                    job_seconds: Summary::of(&secs),
                }
            })
            .collect();
        ExecutorReport {
            workers,
            wall,
            worker_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order_under_parallelism() {
        for parallelism in [
            Parallelism::Serial,
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Fixed(9),
        ] {
            let (out, report) = Executor::new(parallelism).run(100, |i| i * i, |_, _, _| {});
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
            let jobs: usize = report.worker_stats.iter().map(|w| w.jobs).sum();
            assert_eq!(jobs, 100);
        }
    }

    #[test]
    fn observer_sees_every_job_exactly_once() {
        let seen = Mutex::new(vec![false; 50]);
        Executor::new(Parallelism::Fixed(4)).run(
            50,
            |i| i,
            |i, _, _| {
                let mut seen = seen.lock().unwrap();
                assert!(!seen[i], "job {i} observed twice");
                seen[i] = true;
            },
        );
        assert!(seen.into_inner().unwrap().iter().all(|&b| b));
    }

    #[test]
    fn worker_count_clamps_to_jobs_and_floor_one() {
        assert_eq!(Parallelism::Fixed(0).worker_count(), 1);
        assert!(Parallelism::Auto.worker_count() >= 1);
        let (_, report) = Executor::new(Parallelism::Fixed(8)).run(3, |i| i, |_, _, _| {});
        assert!(report.workers <= 3);
    }

    #[test]
    fn report_accounts_busy_time() {
        let (_, report) = Executor::new(Parallelism::Fixed(2)).run(
            8,
            |_| std::thread::sleep(Duration::from_millis(2)),
            |_, _, _| {},
        );
        assert!(report.busy_total() >= Duration::from_millis(16));
        for w in &report.worker_stats {
            assert_eq!(w.job_seconds.n, w.jobs);
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let (out, report) = Executor::new(Parallelism::Auto).run(0, |i| i, |_, _, _| {});
        assert!(out.is_empty());
        assert_eq!(report.worker_stats.iter().map(|w| w.jobs).sum::<usize>(), 0);
    }
}
