//! The Fig. 1 testbed: two hosts, one switch, one controller, metered
//! links, and the deterministic event loop that drives them.

use crate::trace::MsgDesc;
use crate::{Direction, RunResult, TraceLog};
use sdnbuf_controller::{Controller, ControllerConfig, ControllerOutput, ParsedHeaders};
use sdnbuf_metrics::ByteMeter;
use sdnbuf_net::{FlowKey, Packet, PacketBuilder, Payload};
use sdnbuf_openflow::{OfpMessage, PortNo};
use sdnbuf_sim::{
    ChannelDir, EventKind, EventQueue, FastHashMap, FaultPlan, FaultState, Link, LinkConfig,
    MultiQueueLink, Nanos, Pool, PoolHandle, QueueConfig, Tracer,
};
use sdnbuf_switch::{PacketHandle, PacketPool, Switch, SwitchConfig, SwitchOutput};
use sdnbuf_workload::{Departure, HostAddr};
use std::collections::HashMap;

/// Static configuration of the whole testbed (Table I plus the calibrated
/// model constants — see `EXPERIMENTS.md` for the calibration rationale).
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// The switch model.
    pub switch: SwitchConfig,
    /// The controller model.
    pub controller: ControllerConfig,
    /// Host↔switch links (100 Mbps in the paper).
    pub data_link: LinkConfig,
    /// Switch↔controller channel.
    pub control_link: LinkConfig,
    /// Idle time between the ARP warm-up and the first data departure.
    pub warmup_gap: Nanos,
    /// The composable fault-injection plan: per-direction control-channel
    /// loss / delay / jitter / duplication / reordering, controller
    /// stalls, data-link flaps, and buffer-pressure windows. Defaults to
    /// no faults. Runs remain a pure function of `(config, seed)`.
    pub faults: FaultPlan,
    /// Egress QoS (the paper's future-work extension): when set, the
    /// switch's host-facing ports are partitioned into these shaped queues
    /// and `ENQUEUE` actions select among them; `None` = plain FIFO ports.
    pub egress_queues: Option<Vec<QueueConfig>>,
    /// Controller keepalive: originate an `echo_request` every interval
    /// during the run, like Floodlight's liveness probing. Adds background
    /// control traffic; `None` (default) keeps the channel measurement-only
    /// as in the paper.
    pub keepalive_interval: Option<Nanos>,
    /// Controller statistics polling: originate an aggregate
    /// `stats_request` every interval, like Floodlight's statistics
    /// collector.
    pub stats_poll_interval: Option<Nanos>,
    /// Keep a readable log of up to this many control-channel messages
    /// (see [`crate::TraceLog`]). 0 = tracing off.
    pub trace_capacity: usize,
    /// Warm-standby failover for the crash plane (defaults off). Only
    /// meaningful when [`Self::faults`] contains `crash=` windows.
    pub failover: FailoverConfig,
}

/// Warm-standby failover configuration: when `standby` is set, a second
/// controller instance idles beside the primary and takes over
/// `takeover_delay` after a crash window opens (failure detection plus
/// election time). Without it, the primary itself restarts at the crash
/// window's end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailoverConfig {
    /// Run a standby controller beside the primary.
    pub standby: bool,
    /// Delay between the primary's crash and the standby's takeover
    /// handshake.
    pub takeover_delay: Nanos,
    /// `true`: the standby takes over with a snapshot of the primary's
    /// learned flow knowledge (checkpoint replication); `false`: cold,
    /// with empty tables.
    pub warm: bool,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            standby: false,
            takeover_delay: Nanos::from_millis(10),
            warm: false,
        }
    }
}

impl Default for TestbedConfig {
    /// The calibrated reproduction of the paper's platform. The knobs that
    /// shape the figures:
    ///
    /// * `control_link`: 100 Mbps with a 300 µs one-way latency (TCP
    ///   stack + scheduling on the 2017-era PCs) — this floor dominates
    ///   the buffered controller delay (paper: 0.70 ms).
    /// * `switch.bus_rate`: 135 Mbps — the switch's control-message I/O
    ///   engine. No-buffer traffic loads it with ~2 KB per miss (full
    ///   packet out, full packet back), saturating it near 66 Mbps of
    ///   sending rate; that is where the paper's no-buffer delays blow up.
    /// * `switch.buffer_free_lag`: 4 ms of lazy buffer reclamation (OVS
    ///   behaviour) — this is why buffer-16 exhausts around 30 Mbps
    ///   (Fig. 8) while setup delays stay near 1 ms.
    fn default() -> Self {
        use sdnbuf_sim::BitRate;
        TestbedConfig {
            switch: SwitchConfig {
                bus_rate: BitRate::from_mbps(135),
                cost_forward: Nanos::from_micros(5),
                cost_pkt_in_base: Nanos::from_micros(100),
                cost_per_payload_byte: Nanos::from_nanos(8),
                cost_buffer_store: Nanos::from_micros(8),
                cost_buffer_release: Nanos::from_micros(6),
                cost_pkt_out_base: Nanos::from_micros(50),
                cost_flow_mod: Nanos::from_micros(40),
                cost_rule_install: Nanos::from_micros(350),
                buffer_free_lag: Nanos::from_millis(4),
                ..SwitchConfig::default()
            },
            controller: ControllerConfig {
                cost_parse_base: Nanos::from_micros(20),
                cost_decision: Nanos::from_micros(15),
                cost_encode: Nanos::from_micros(15),
                cost_per_byte: Nanos::from_nanos(20),
                contention: 0.55,
                ..ControllerConfig::default()
            },
            data_link: LinkConfig::fast_ethernet(),
            control_link: LinkConfig {
                bandwidth: BitRate::from_mbps(100),
                propagation: Nanos::from_micros(300),
                queue_capacity_bytes: 512 * 1024,
            },
            warmup_gap: Nanos::from_millis(50),
            faults: FaultPlan::default(),
            egress_queues: None,
            keepalive_interval: None,
            stats_poll_interval: None,
            trace_capacity: 0,
            failover: FailoverConfig::default(),
        }
    }
}

impl TestbedConfig {
    /// The calibrated testbed with the given buffer mechanism.
    pub fn with_buffer(buffer: sdnbuf_switch::BufferChoice) -> Self {
        let mut cfg = TestbedConfig::default();
        cfg.switch.buffer = buffer;
        cfg
    }

    /// The fault plan the testbed will execute — [`Self::faults`], the
    /// only loss-injection API since the `control_loss_one_in` shim was
    /// retired. Kept for callers that want the plan the run resolved to.
    pub fn effective_faults(&self) -> FaultPlan {
        self.faults.clone()
    }

    /// Checks the whole testbed configuration — switch, controller, links,
    /// and the fault plan — for values that would panic, divide by zero,
    /// or wedge the event loop at runtime. [`Testbed::new`] calls this and
    /// panics on the first problem, so misconfigurations fail fast with a
    /// readable message instead of deep inside a run.
    pub fn validate(&self) -> Result<(), String> {
        self.switch.validate().map_err(|e| format!("switch: {e}"))?;
        self.controller
            .validate()
            .map_err(|e| format!("controller: {e}"))?;
        self.faults.validate().map_err(|e| format!("faults: {e}"))?;
        Ok(())
    }
}

/// A packet's identity on the wire: its flow 5-tuple plus the IPv4
/// identification field the workload stamps per packet — exactly what a
/// capture-based measurement keys on.
type PacketId = (FlowKey, u16);

fn packet_id(packet: &Packet) -> Option<PacketId> {
    let key = FlowKey::of(packet)?;
    let ident = match &packet.payload {
        Payload::Ipv4(ip) => ip.header.identification,
        _ => return None,
    };
    Some((key, ident))
}

#[derive(Clone, Debug, Default)]
struct PacketTimes {
    entered_switch: Option<Nanos>,
    left_switch: Option<Nanos>,
    delivered: Option<Nanos>,
    flow_index: usize,
    seq_in_flow: usize,
}

/// Handle into the testbed's control-message pool.
type MsgHandle = PoolHandle;

/// Events carry 8-byte pool handles, not owned payloads: the packet (or
/// control message) lives once in the testbed's slab pool and every event,
/// link, and switch stage passes the same handle around. Fan-out (floods,
/// fault-injected duplicates) retains extra pool references instead of
/// cloning frames.
#[derive(Debug)]
enum Event {
    /// A frame leaves a host NIC (1 or 2).
    FrameFromHost { host: u16, packet: PacketHandle },
    /// A frame arrives at the switch from a data link.
    FrameAtSwitch {
        in_port: PortNo,
        packet: PacketHandle,
    },
    /// The switch finishes emitting a frame on a data port.
    EgressAtSwitch {
        port: PortNo,
        queue: Option<u32>,
        packet: PacketHandle,
    },
    /// The switch finishes emitting several frames at the same instant
    /// (a flood, or a flow-granularity bulk release): the consecutive
    /// [`SwitchOutput::Forward`]s are coalesced into one event, cutting
    /// scheduler traffic on the hottest dispatch path. Ordering is
    /// preserved because the coalesced outputs carried consecutive
    /// sequence numbers at an identical timestamp — nothing could have
    /// interleaved between them.
    EgressBatch {
        frames: Vec<(PortNo, Option<u32>, PacketHandle)>,
    },
    /// A frame arrives at a host.
    FrameAtHost {
        /// Receiving host (kept for trace readability in Debug output).
        #[allow(dead_code)]
        host: u16,
        packet: PacketHandle,
    },
    /// The switch finishes emitting a control message.
    CtrlFromSwitch { xid: u32, msg: MsgHandle },
    /// A control message arrives at the controller.
    CtrlAtController { xid: u32, msg: MsgHandle },
    /// The controller finishes emitting a control message.
    CtrlFromController { xid: u32, msg: MsgHandle },
    /// A control message arrives at the switch.
    CtrlAtSwitch { xid: u32, msg: MsgHandle },
    /// The switch's timer (table expiry / buffer re-request) fires.
    SwitchTimer,
    /// The controller originates a liveness echo.
    ControllerKeepalive,
    /// The controller originates a statistics poll.
    ControllerStatsPoll,
    /// A crash window opens: the named controller loses all volatile
    /// state and its control socket goes dead.
    ControllerCrash { standby: bool },
    /// A crash window closes: the named controller comes back up and
    /// re-initiates the handshake under a bumped epoch.
    ControllerRestart { standby: bool },
    /// The warm standby finishes its takeover and handshakes in place of
    /// the dead primary.
    FailoverTakeover,
}

/// One workload packet's observed timeline (see [`Testbed::packet_log`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketTrace {
    /// The packet's flow 5-tuple.
    pub flow: FlowKey,
    /// The packet's IPv4 identification (its serial number in the flow).
    pub ident: u16,
    /// Workload flow index.
    pub flow_index: usize,
    /// Position within the flow.
    pub seq_in_flow: usize,
    /// When it arrived at the switch.
    pub entered_switch: Option<Nanos>,
    /// When it left the switch.
    pub left_switch: Option<Nanos>,
    /// When the destination host received it.
    pub delivered: Option<Nanos>,
}

/// A switch egress port: plain FIFO or QoS-partitioned.
#[derive(Clone, Debug)]
enum EgressLink {
    Fifo(Link),
    Qos(MultiQueueLink),
}

impl EgressLink {
    fn set_tracer(&mut self, tracer: Tracer, label: &'static str) {
        match self {
            EgressLink::Fifo(link) => link.set_tracer(tracer, label),
            EgressLink::Qos(link) => link.set_tracer(tracer, label),
        }
    }

    fn enqueue(&mut self, now: Nanos, queue: Option<u32>, bytes: usize) -> Option<Nanos> {
        match self {
            EgressLink::Fifo(link) => link.enqueue(now, bytes),
            EgressLink::Qos(link) => {
                // Plain OUTPUT uses the last (best-effort) queue.
                let q = queue.map_or(link.queue_count() - 1, |q| q as usize);
                link.enqueue(now, q, bytes)
            }
        }
    }
}

/// The assembled testbed of Fig. 1.
///
/// Create one per run, feed it a workload with [`Testbed::run`], read the
/// [`RunResult`].
pub struct Testbed {
    config: TestbedConfig,
    switch: Switch,
    controller: Controller,
    /// The warm/cold standby controller (crash plane), when configured.
    standby: Option<Controller>,
    /// Whether the standby has taken over as the serving controller.
    active_standby: bool,
    /// The controller-side session epoch (0 until the crash plane arms).
    ctrl_epoch: u32,
    /// Liveness of each controller process. Tracked as explicit state —
    /// not derived from the fault windows — because with failover the
    /// primary stays dead past its window's end (the standby serves).
    primary_dead: bool,
    standby_dead: bool,
    ctrl_crashes: u64,
    failover_takeovers: u64,
    queue: EventQueue<Event>,
    /// Slab pool every in-flight data packet lives in; events and switch
    /// stages exchange [`PacketHandle`]s.
    pool: PacketPool,
    /// Slab pool for in-flight control messages.
    msgs: Pool<OfpMessage>,
    // Links (unidirectional).
    host1_to_sw: Link,
    host2_to_sw: Link,
    sw_to_host1: EgressLink,
    sw_to_host2: EgressLink,
    sw_to_ctrl: Link,
    ctrl_to_sw: Link,
    // Taps.
    meter_to_controller: ByteMeter,
    meter_to_switch: ByteMeter,
    ctrl_drops: u64,
    data_drops: u64,
    faults: FaultState,
    /// Whether buffer pressure was on at the last data-frame arrival (to
    /// toggle the mechanism only on window edges).
    pressure_on: bool,
    trace: TraceLog,
    tracer: Tracer,
    // Measurement state.
    records: FastHashMap<PacketId, PacketTimes>,
    pkt_in_sent: FastHashMap<u32, (Nanos, Option<FlowKey>)>,
    controller_delay_of_flow: FastHashMap<FlowKey, Nanos>,
    controller_delays_ms: Vec<f64>,
    pkt_in_count: u64,
    flow_mod_count: u64,
    pkt_out_count: u64,
    events_dispatched: u64,
    timer_armed: Option<Nanos>,
    clock_end: Nanos,
    data_start: Nanos,
}

impl Testbed {
    /// Builds an idle testbed.
    ///
    /// # Panics
    ///
    /// Panics when [`TestbedConfig::validate`] rejects the configuration
    /// (zero capacities, an inconsistent fault plan, …). See
    /// [`Testbed::try_new`] for the non-panicking form.
    pub fn new(config: TestbedConfig) -> Testbed {
        match Testbed::try_new(config) {
            Ok(tb) => tb,
            Err(e) => panic!("invalid TestbedConfig: {e}"),
        }
    }

    /// [`Testbed::new`] with the validation error returned instead of
    /// panicking — the single validation path for testbed construction.
    pub fn try_new(config: TestbedConfig) -> Result<Testbed, String> {
        config.validate()?;
        let egress = |data_link: LinkConfig| match &config.egress_queues {
            None => EgressLink::Fifo(Link::new(data_link)),
            Some(queues) => {
                EgressLink::Qos(MultiQueueLink::new(queues.clone(), data_link.propagation))
            }
        };
        let standby = config.failover.standby.then(|| {
            let mut sb = Controller::new(config.controller);
            // A disjoint xid range keeps the standby's messages
            // distinguishable from stale primary traffic.
            sb.set_xid_base(0xC000_0000);
            sb
        });
        Ok(Testbed {
            switch: Switch::new(config.switch),
            controller: Controller::new(config.controller),
            standby,
            active_standby: false,
            ctrl_epoch: 0,
            primary_dead: false,
            standby_dead: false,
            ctrl_crashes: 0,
            failover_takeovers: 0,
            queue: EventQueue::new(),
            pool: PacketPool::new(),
            msgs: Pool::new(),
            host1_to_sw: Link::new(config.data_link),
            host2_to_sw: Link::new(config.data_link),
            sw_to_host1: egress(config.data_link),
            sw_to_host2: egress(config.data_link),
            sw_to_ctrl: Link::new(config.control_link),
            ctrl_to_sw: Link::new(config.control_link),
            meter_to_controller: ByteMeter::new(),
            meter_to_switch: ByteMeter::new(),
            ctrl_drops: 0,
            data_drops: 0,
            faults: FaultState::new(config.effective_faults()),
            pressure_on: false,
            trace: TraceLog::new(config.trace_capacity),
            tracer: Tracer::off(),
            records: FastHashMap::default(),
            pkt_in_sent: FastHashMap::default(),
            controller_delay_of_flow: FastHashMap::default(),
            controller_delays_ms: Vec::new(),
            pkt_in_count: 0,
            flow_mod_count: 0,
            pkt_out_count: 0,
            events_dispatched: 0,
            timer_armed: None,
            clock_end: Nanos::ZERO,
            data_start: Nanos::ZERO,
            config,
        })
    }

    /// The switch model (for inspection after a run).
    pub fn switch(&self) -> &Switch {
        &self.switch
    }

    /// The controller model (for inspection after a run).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// The standby controller, when failover is configured.
    pub fn standby(&self) -> Option<&Controller> {
        self.standby.as_ref()
    }

    /// Whether the standby is the serving controller (a takeover
    /// happened during the run).
    pub fn standby_active(&self) -> bool {
        self.active_standby
    }

    /// The serving controller: the standby after a takeover, the primary
    /// otherwise.
    fn active_ctrl_mut(&mut self) -> &mut Controller {
        if self.active_standby {
            self.standby.as_mut().expect("takeover without a standby")
        } else {
            &mut self.controller
        }
    }

    /// Whether the serving controller's process is currently dead (its
    /// socket is gone; deliveries are lost, probes don't originate).
    fn active_ctrl_down(&self) -> bool {
        if self.active_standby {
            self.standby_dead
        } else {
            self.primary_dead
        }
    }

    /// Mutable access to the switch, for advanced setups that inspect or
    /// tweak it before [`Testbed::run`]. To hand the switch a control
    /// message directly, use [`Testbed::inject_controller_msg`] — the
    /// switch's own handlers need the testbed's packet pool.
    pub fn switch_mut(&mut self) -> &mut Switch {
        &mut self.switch
    }

    /// Hands a control message straight to the switch, bypassing the
    /// control channel — for setups that pre-install rules (e.g.
    /// proactive QoS classification) before [`Testbed::run`]. Any timed
    /// outputs the message produces are scheduled into the event loop.
    pub fn inject_controller_msg(&mut self, now: Nanos, msg: OfpMessage, xid: u32) {
        let outputs = self
            .switch
            .handle_controller_msg(now, msg, xid, &mut self.pool);
        self.process_switch_outputs(outputs, None);
    }

    /// The control-channel trace (empty unless `trace_capacity` was set).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Attaches a structured event tracer to the whole testbed: the
    /// switch (bus, flow table, buffer mechanism), the controller (ingest
    /// bus, decisions), every data link, and both control-channel
    /// directions. Call before [`Testbed::run`]; tracing is off by default
    /// and costs one branch per potential event when disabled.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.switch.set_tracer(tracer.clone());
        self.controller.set_tracer(tracer.clone());
        if let Some(sb) = self.standby.as_mut() {
            sb.set_tracer(tracer.clone());
        }
        self.host1_to_sw.set_tracer(tracer.clone(), "h1->sw");
        self.host2_to_sw.set_tracer(tracer.clone(), "h2->sw");
        self.sw_to_host1.set_tracer(tracer.clone(), "sw->h1");
        self.sw_to_host2.set_tracer(tracer.clone(), "sw->h2");
        self.sw_to_ctrl.set_tracer(tracer.clone(), "sw->ctl");
        self.ctrl_to_sw.set_tracer(tracer.clone(), "ctl->sw");
        self.tracer = tracer;
    }

    /// The per-packet trace recorded during the run: when each workload
    /// packet entered the switch, left it, and reached its destination.
    pub fn packet_log(&self) -> Vec<PacketTrace> {
        let mut log: Vec<PacketTrace> = self
            .records
            .iter()
            .map(|((key, ident), times)| PacketTrace {
                flow: *key,
                ident: *ident,
                flow_index: times.flow_index,
                seq_in_flow: times.seq_in_flow,
                entered_switch: times.entered_switch,
                left_switch: times.left_switch,
                delivered: times.delivered,
            })
            .collect();
        log.sort_by_key(|t| (t.flow_index, t.seq_in_flow));
        log
    }

    /// Runs the full experiment: ARP warm-up, then the given departures
    /// (shifted to start after the warm-up gap), to completion.
    pub fn run(&mut self, departures: &[Departure]) -> RunResult {
        // OpenFlow session handshake: hello, features, config — and the
        // vendor-extension capability announcement when the switch runs
        // the flow-granularity mechanism.
        let handshake = self
            .controller
            .initiate_handshake(Nanos::ZERO, self.config.switch.miss_send_len);
        for ControllerOutput::ToSwitch { at, xid, msg } in handshake {
            let msg = self.msgs.insert(msg);
            self.queue
                .schedule(at, Event::CtrlFromController { xid, msg });
        }
        let announce = self.switch.announce_capabilities(Nanos::ZERO);
        self.process_switch_outputs(announce, None);

        // Warm-up: both hosts announce themselves so the controller's
        // learning table knows where Host2 lives (as on the real testbed,
        // where hosts ARP before pktgen starts).
        let h1 = HostAddr::host1();
        let h2 = HostAddr::host2();
        let arp1 = self
            .pool
            .insert(PacketBuilder::gratuitous_arp(h1.mac, h1.ip));
        self.queue.schedule(
            Nanos::ZERO,
            Event::FrameFromHost {
                host: 1,
                packet: arp1,
            },
        );
        let arp2 = self
            .pool
            .insert(PacketBuilder::gratuitous_arp(h2.mac, h2.ip));
        self.queue.schedule(
            Nanos::from_millis(1),
            Event::FrameFromHost {
                host: 2,
                packet: arp2,
            },
        );

        // Data: shift departures past the warm-up gap.
        let shift = self.config.warmup_gap;
        self.data_start = shift + departures.first().map_or(Nanos::ZERO, |d| d.at);
        let mut flows_total = 0usize;
        for d in departures {
            if let Some(id) = packet_id(&d.packet) {
                self.records.insert(
                    id,
                    PacketTimes {
                        flow_index: d.flow_index,
                        seq_in_flow: d.seq_in_flow,
                        ..PacketTimes::default()
                    },
                );
            }
            flows_total = flows_total.max(d.flow_index + 1);
            // The only copy made of a workload packet: into the pool, once,
            // at schedule time. Everything downstream passes the handle.
            let packet = self.pool.insert(d.packet.clone());
            self.queue
                .schedule(shift + d.at, Event::FrameFromHost { host: 1, packet });
        }

        // Pre-schedule controller-originated probes across the run window
        // (the event loop must drain, so probes cannot self-reschedule).
        let horizon =
            shift + departures.last().map_or(Nanos::ZERO, |d| d.at) + self.config.warmup_gap;
        // Keepalives run for the whole session (they start with the
        // handshake, not the data phase): the switch's liveness detector
        // must hear the controller during warm-up too.
        if let Some(interval) = self.config.keepalive_interval {
            let mut t = interval;
            while t < horizon {
                self.queue.schedule(t, Event::ControllerKeepalive);
                t += interval;
            }
        }
        if let Some(interval) = self.config.stats_poll_interval {
            let mut t = shift + interval;
            while t < horizon {
                self.queue.schedule(t, Event::ControllerStatsPoll);
                t += interval;
            }
        }

        // Crash plane: arm the switch's epoch/liveness machinery and
        // pre-plan crash / restart / takeover orchestration from the
        // fault windows. Everything stays off (and runs byte-identical)
        // without `crash=` windows in the plan.
        if self.config.faults.has_crashes() {
            self.switch.arm_crash_plane();
            self.ctrl_epoch = 1;
            self.controller.set_epoch(1);
            let crashes = self.config.faults.crashes.clone();
            let crashes_standby = self.config.faults.crashes_standby.clone();
            let failover = self.config.failover;
            for w in &crashes {
                self.queue
                    .schedule(w.from, Event::ControllerCrash { standby: false });
                if failover.standby {
                    self.queue
                        .schedule(w.from + failover.takeover_delay, Event::FailoverTakeover);
                } else {
                    self.queue
                        .schedule(w.until, Event::ControllerRestart { standby: false });
                }
            }
            for w in &crashes_standby {
                self.queue
                    .schedule(w.from, Event::ControllerCrash { standby: true });
                self.queue
                    .schedule(w.until, Event::ControllerRestart { standby: true });
            }
        }

        while let Some((now, event)) = self.queue.pop() {
            self.clock_end = self.clock_end.max(now);
            self.events_dispatched += 1;
            self.dispatch(now, event);
        }
        self.collect(departures.len() as u64, flows_total)
    }

    fn dispatch(&mut self, now: Nanos, event: Event) {
        match event {
            Event::FrameFromHost { host, packet } => {
                let len = self.pool.get(packet).expect("live frame handle").wire_len();
                if self.faults.data_link_down(now) {
                    self.data_drops += 1;
                    self.pool.release(packet);
                    self.tracer.emit(
                        now,
                        EventKind::LinkDrop {
                            link: if host == 1 { "h1->sw" } else { "h2->sw" },
                            bytes: len,
                        },
                    );
                    return;
                }
                let link = if host == 1 {
                    &mut self.host1_to_sw
                } else {
                    &mut self.host2_to_sw
                };
                match link.enqueue(now, len) {
                    Some(arrival) => self.queue.schedule(
                        arrival,
                        Event::FrameAtSwitch {
                            in_port: PortNo(host),
                            packet,
                        },
                    ),
                    None => {
                        self.data_drops += 1;
                        self.pool.release(packet);
                    }
                }
            }
            Event::FrameAtSwitch { in_port, packet } => {
                let (id, flow) = {
                    let pk = self.pool.get(packet).expect("live frame handle");
                    (packet_id(pk), FlowKey::of(pk))
                };
                if let Some(id) = id {
                    if let Some(rec) = self.records.get_mut(&id) {
                        rec.entered_switch.get_or_insert(now);
                    }
                }
                let pressure = self.faults.pressure_active(now);
                if pressure != self.pressure_on {
                    self.pressure_on = pressure;
                    self.switch.set_buffer_pressure(pressure);
                }
                let outputs = self
                    .switch
                    .handle_frame(now, in_port, packet, &mut self.pool);
                self.process_switch_outputs(outputs, flow);
                self.arm_timer();
            }
            Event::EgressAtSwitch {
                port,
                queue,
                packet,
            } => {
                self.egress_frame(now, port, queue, packet);
            }
            Event::EgressBatch { frames } => {
                // Frames in a batch left the switch at the same instant and
                // were adjacent in the event order; handling them in
                // sequence is observably identical to one event each.
                for (port, queue, packet) in frames {
                    self.egress_frame(now, port, queue, packet);
                }
            }
            Event::FrameAtHost { packet, .. } => {
                let id = self.pool.get(packet).and_then(packet_id);
                if let Some(id) = id {
                    if let Some(rec) = self.records.get_mut(&id) {
                        rec.delivered.get_or_insert(now);
                    }
                }
                // End of the packet's life: drop the last pool reference.
                self.pool.release(packet);
            }
            Event::CtrlFromSwitch { xid, msg } => {
                let (len, label) = {
                    let m = self.msgs.get(msg).expect("live ctrl msg handle");
                    (m.wire_len(), MsgDesc::of(m).label())
                };
                self.trace.record(
                    now,
                    Direction::ToController,
                    xid,
                    self.msgs.get(msg).expect("live ctrl msg handle"),
                );
                if now >= self.data_start {
                    // Metered before the fault plane, like a capture tap on
                    // the sender's NIC: dropped messages were still sent.
                    self.meter_to_controller.record(now, len);
                }
                let effect = self.faults.ctrl_effect(now, ChannelDir::ToController);
                if effect.dropped {
                    self.ctrl_drops += 1;
                    self.msgs.release(msg);
                    self.tracer.emit(
                        now,
                        EventKind::CtrlDrop {
                            dir: ChannelDir::ToController,
                            xid,
                            bytes: len,
                            label,
                        },
                    );
                    return;
                }
                match self.sw_to_ctrl.enqueue(now, len) {
                    Some(arrival) => {
                        let arrival = arrival + effect.extra_delay;
                        self.tracer.emit(
                            now,
                            EventKind::CtrlMsg {
                                dir: ChannelDir::ToController,
                                xid,
                                bytes: len,
                                label,
                                arrive: arrival,
                            },
                        );
                        if effect.duplicate {
                            if let Some(dup_arrival) = self.sw_to_ctrl.enqueue(now, len) {
                                let dup_arrival = dup_arrival + effect.extra_delay;
                                self.tracer.emit(
                                    now,
                                    EventKind::CtrlMsg {
                                        dir: ChannelDir::ToController,
                                        xid,
                                        bytes: len,
                                        label,
                                        arrive: dup_arrival,
                                    },
                                );
                                // The duplicate shares the original's pool
                                // entry: one more reference, no clone.
                                self.msgs.retain(msg);
                                self.queue
                                    .schedule(dup_arrival, Event::CtrlAtController { xid, msg });
                            }
                        }
                        self.queue
                            .schedule(arrival, Event::CtrlAtController { xid, msg })
                    }
                    None => {
                        self.tracer.emit(
                            now,
                            EventKind::CtrlDrop {
                                dir: ChannelDir::ToController,
                                xid,
                                bytes: len,
                                label,
                            },
                        );
                        self.msgs.release(msg);
                        self.ctrl_drops += 1
                    }
                }
            }
            Event::CtrlAtController { xid, msg } => {
                // A dead controller's socket is gone: deliveries during a
                // crash window are lost outright. (A stall, by contrast,
                // parks them — state survives a stall, not a crash.)
                if self.active_ctrl_down() {
                    let (len, label) = {
                        let m = self.msgs.get(msg).expect("live ctrl msg handle");
                        (m.wire_len(), MsgDesc::of(m).label())
                    };
                    self.ctrl_drops += 1;
                    self.msgs.release(msg);
                    self.tracer.emit(
                        now,
                        EventKind::CtrlDrop {
                            dir: ChannelDir::ToController,
                            xid,
                            bytes: len,
                            label,
                        },
                    );
                    return;
                }
                // A stalled controller parks the message until the stall
                // window ends (windows are half-open, so the re-scheduled
                // arrival at `until` is processed normally).
                if let Some(resume) = self.faults.stall_resume(now) {
                    self.queue
                        .schedule(resume, Event::CtrlAtController { xid, msg });
                    return;
                }
                // `take` moves the message out when this is the only
                // reference and clones only when a fault-injected duplicate
                // still shares the entry.
                let msg = self.msgs.take(msg).expect("live ctrl msg handle");
                let outputs = self.active_ctrl_mut().handle_message(now, msg, xid);
                for ControllerOutput::ToSwitch { at, xid, msg } in outputs {
                    if now >= self.data_start {
                        match &msg {
                            OfpMessage::FlowMod(_) => self.flow_mod_count += 1,
                            OfpMessage::PacketOut(_) => self.pkt_out_count += 1,
                            _ => {}
                        }
                    }
                    let msg = self.msgs.insert(msg);
                    self.queue
                        .schedule(at, Event::CtrlFromController { xid, msg });
                }
            }
            Event::CtrlFromController { xid, msg } => {
                let (len, label) = {
                    let m = self.msgs.get(msg).expect("live ctrl msg handle");
                    (m.wire_len(), MsgDesc::of(m).label())
                };
                self.trace.record(
                    now,
                    Direction::ToSwitch,
                    xid,
                    self.msgs.get(msg).expect("live ctrl msg handle"),
                );
                if now >= self.data_start {
                    self.meter_to_switch.record(now, len);
                }
                let effect = self.faults.ctrl_effect(now, ChannelDir::ToSwitch);
                if effect.dropped {
                    self.ctrl_drops += 1;
                    self.msgs.release(msg);
                    self.tracer.emit(
                        now,
                        EventKind::CtrlDrop {
                            dir: ChannelDir::ToSwitch,
                            xid,
                            bytes: len,
                            label,
                        },
                    );
                    return;
                }
                match self.ctrl_to_sw.enqueue(now, len) {
                    Some(arrival) => {
                        let arrival = arrival + effect.extra_delay;
                        self.tracer.emit(
                            now,
                            EventKind::CtrlMsg {
                                dir: ChannelDir::ToSwitch,
                                xid,
                                bytes: len,
                                label,
                                arrive: arrival,
                            },
                        );
                        if effect.duplicate {
                            if let Some(dup_arrival) = self.ctrl_to_sw.enqueue(now, len) {
                                let dup_arrival = dup_arrival + effect.extra_delay;
                                self.tracer.emit(
                                    now,
                                    EventKind::CtrlMsg {
                                        dir: ChannelDir::ToSwitch,
                                        xid,
                                        bytes: len,
                                        label,
                                        arrive: dup_arrival,
                                    },
                                );
                                self.msgs.retain(msg);
                                self.queue
                                    .schedule(dup_arrival, Event::CtrlAtSwitch { xid, msg });
                            }
                        }
                        self.queue
                            .schedule(arrival, Event::CtrlAtSwitch { xid, msg })
                    }
                    None => {
                        self.tracer.emit(
                            now,
                            EventKind::CtrlDrop {
                                dir: ChannelDir::ToSwitch,
                                xid,
                                bytes: len,
                                label,
                            },
                        );
                        self.msgs.release(msg);
                        self.ctrl_drops += 1
                    }
                }
            }
            Event::CtrlAtSwitch { xid, msg } => {
                // Controller delay: pkt_in left the switch -> first
                // response with the same xid arrives back (the paper's
                // t2 - t1).
                if let Some((sent_at, flow)) = self.pkt_in_sent.remove(&xid) {
                    let delay = now.saturating_sub(sent_at);
                    self.controller_delays_ms.push(delay.as_millis_f64());
                    if let Some(flow) = flow {
                        self.controller_delay_of_flow.entry(flow).or_insert(delay);
                    }
                }
                let msg = self.msgs.take(msg).expect("live ctrl msg handle");
                let outputs = self
                    .switch
                    .handle_controller_msg(now, msg, xid, &mut self.pool);
                self.process_switch_outputs(outputs, None);
                self.arm_timer();
            }
            Event::SwitchTimer => {
                if self.timer_armed == Some(now) {
                    self.timer_armed = None;
                }
                if self.switch.next_timer().is_some_and(|t| t <= now) {
                    let outputs = self.switch.on_timer(now, &mut self.pool);
                    self.process_switch_outputs(outputs, None);
                }
                self.arm_timer();
            }
            Event::ControllerKeepalive => {
                // A dead controller originates nothing — skipped probes
                // are what starve the switch's liveness detector.
                if self.active_ctrl_down() {
                    return;
                }
                let ControllerOutput::ToSwitch { at, xid, msg } =
                    self.active_ctrl_mut().keepalive(now);
                let msg = self.msgs.insert(msg);
                self.queue
                    .schedule(at, Event::CtrlFromController { xid, msg });
            }
            Event::ControllerStatsPoll => {
                if self.active_ctrl_down() {
                    return;
                }
                let ControllerOutput::ToSwitch { at, xid, msg } =
                    self.active_ctrl_mut().poll_flow_stats(now);
                let msg = self.msgs.insert(msg);
                self.queue
                    .schedule(at, Event::CtrlFromController { xid, msg });
            }
            Event::ControllerCrash { standby } => {
                // Crashing a controller that is not serving (or is already
                // dead) is a no-op; overlapping windows collapse into one
                // outage.
                if standby != self.active_standby || self.active_ctrl_down() {
                    return;
                }
                if standby {
                    self.standby_dead = true;
                } else {
                    // Checkpoint replication: the standby's warm knowledge
                    // is the primary's state as of the moment it died.
                    if self.config.failover.warm {
                        if let Some(sb) = self.standby.as_mut() {
                            sb.sync_from(&self.controller);
                        }
                    }
                    self.primary_dead = true;
                }
                self.ctrl_crashes += 1;
                self.active_ctrl_mut().crash();
                self.tracer.emit(
                    now,
                    EventKind::CtrlCrash {
                        epoch: self.ctrl_epoch,
                        role: if standby { "standby" } else { "primary" },
                    },
                );
            }
            Event::ControllerRestart { standby } => {
                if standby != self.active_standby {
                    return;
                }
                let dead = if standby {
                    &mut self.standby_dead
                } else {
                    &mut self.primary_dead
                };
                if !*dead {
                    return;
                }
                // Overlapping crash windows: stay dead until the last
                // window covering `now` has closed (its own restart event
                // will revive us).
                let still_down = if standby {
                    self.faults.standby_down(now)
                } else {
                    self.faults.primary_down(now)
                };
                if still_down {
                    return;
                }
                *dead = false;
                self.ctrl_epoch += 1;
                let epoch = self.ctrl_epoch;
                let miss = self.config.switch.miss_send_len;
                self.tracer.emit(
                    now,
                    EventKind::CtrlRestart {
                        epoch,
                        role: if standby { "standby" } else { "primary" },
                    },
                );
                let ctrl = self.active_ctrl_mut();
                ctrl.set_epoch(epoch);
                let outputs = ctrl.initiate_handshake(now, miss);
                for ControllerOutput::ToSwitch { at, xid, msg } in outputs {
                    let msg = self.msgs.insert(msg);
                    self.queue
                        .schedule(at, Event::CtrlFromController { xid, msg });
                }
            }
            Event::FailoverTakeover => {
                // Only the takeover scheduled by the crash that actually
                // killed the serving primary acts.
                if self.active_standby || !self.primary_dead {
                    return;
                }
                self.active_standby = true;
                self.failover_takeovers += 1;
                self.ctrl_epoch += 1;
                let epoch = self.ctrl_epoch;
                let sync = if self.config.failover.warm {
                    "warm"
                } else {
                    "cold"
                };
                let miss = self.config.switch.miss_send_len;
                self.tracer
                    .emit(now, EventKind::FailoverTakeover { epoch, sync });
                let sb = self.standby.as_mut().expect("takeover without a standby");
                sb.set_epoch(epoch);
                let outputs = sb.initiate_handshake(now, miss);
                for ControllerOutput::ToSwitch { at, xid, msg } in outputs {
                    let msg = self.msgs.insert(msg);
                    self.queue
                        .schedule(at, Event::CtrlFromController { xid, msg });
                }
            }
        }
    }

    /// Routes the switch's timed outputs into the event queue.
    /// `originating_flow` is the flow of the packet that triggered them
    /// (known when handling a data frame), used to attribute the pkt_in for
    /// per-flow controller-delay accounting; otherwise the pkt_in's own
    /// payload headers are consulted.
    fn process_switch_outputs(
        &mut self,
        outputs: Vec<SwitchOutput>,
        originating_flow: Option<FlowKey>,
    ) {
        let mut outputs = outputs.into_iter().peekable();
        while let Some(output) = outputs.next() {
            match output {
                SwitchOutput::Forward {
                    at,
                    port,
                    queue,
                    packet,
                } => {
                    // Coalesce a run of Forwards sharing one departure
                    // instant (a flood, a bulk flow release) into a single
                    // scheduled event. The coalesced outputs would have
                    // received consecutive sequence numbers at the same
                    // timestamp, so no other event could pop between them:
                    // batch dispatch is order-identical to one event each.
                    let same_instant = |o: &SwitchOutput| matches!(o, SwitchOutput::Forward { at: next, .. } if *next == at);
                    if outputs.peek().is_some_and(same_instant) {
                        let mut frames = vec![(port, queue, packet)];
                        while outputs.peek().is_some_and(same_instant) {
                            if let Some(SwitchOutput::Forward {
                                port,
                                queue,
                                packet,
                                ..
                            }) = outputs.next()
                            {
                                frames.push((port, queue, packet));
                            }
                        }
                        self.queue.schedule(at, Event::EgressBatch { frames });
                    } else {
                        self.queue.schedule(
                            at,
                            Event::EgressAtSwitch {
                                port,
                                queue,
                                packet,
                            },
                        );
                    }
                }
                SwitchOutput::ToController { at, xid, msg } => {
                    // The warm-up ARPs are plumbing, not measurement
                    // traffic; the paper's capture window starts with the
                    // pktgen run.
                    if let OfpMessage::PacketIn(pin) = &msg {
                        if at >= self.data_start {
                            self.pkt_in_count += 1;
                            let flow = originating_flow.or_else(|| {
                                ParsedHeaders::parse(&pin.data)
                                    .ok()
                                    .and_then(|h| h.flow_key())
                            });
                            self.pkt_in_sent.insert(xid, (at, flow));
                        }
                    }
                    let msg = self.msgs.insert(msg);
                    self.queue.schedule(at, Event::CtrlFromSwitch { xid, msg });
                }
                SwitchOutput::Drop { packet } => {
                    self.data_drops += 1;
                    if let Some(packet) = packet {
                        self.pool.release(packet);
                    }
                }
            }
        }
    }

    /// One frame leaving a switch data port: record it, run the data-link
    /// fault plane, and put it on the egress link. Shared by the single
    /// [`Event::EgressAtSwitch`] path and the coalesced
    /// [`Event::EgressBatch`] path.
    fn egress_frame(&mut self, now: Nanos, port: PortNo, queue: Option<u32>, packet: PacketHandle) {
        let (len, id) = {
            let pk = self.pool.get(packet).expect("live frame handle");
            (pk.wire_len(), packet_id(pk))
        };
        if let Some(id) = id {
            if let Some(rec) = self.records.get_mut(&id) {
                rec.left_switch.get_or_insert(now);
            }
        }
        let (link, host) = match port {
            PortNo(1) => (&mut self.sw_to_host1, 1),
            PortNo(2) => (&mut self.sw_to_host2, 2),
            other => {
                debug_assert!(false, "egress on unknown port {other}");
                self.pool.release(packet);
                return;
            }
        };
        if self.faults.data_link_down(now) {
            self.data_drops += 1;
            self.pool.release(packet);
            self.tracer.emit(
                now,
                EventKind::LinkDrop {
                    link: if host == 1 { "sw->h1" } else { "sw->h2" },
                    bytes: len,
                },
            );
            return;
        }
        match link.enqueue(now, queue, len) {
            Some(arrival) => self
                .queue
                .schedule(arrival, Event::FrameAtHost { host, packet }),
            None => {
                self.data_drops += 1;
                self.pool.release(packet);
            }
        }
    }

    fn arm_timer(&mut self) {
        if let Some(t) = self.switch.next_timer() {
            if self.timer_armed.map_or(true, |armed| t < armed) {
                self.queue.schedule(t, Event::SwitchTimer);
                self.timer_armed = Some(t);
            }
        }
    }

    fn collect(&mut self, packets_sent: u64, flows_total: usize) -> RunResult {
        use sdnbuf_metrics::Summary;
        // The measurement window ends with the last data-driven activity
        // (delivery or control message); the rule-expiry housekeeping that
        // trails for idle-timeout seconds afterwards is not part of the
        // experiment, just as the paper's captures stop when pktgen does.
        let last_delivery = self
            .records
            .values()
            .filter_map(|r| r.delivered)
            .max()
            .unwrap_or(self.data_start);
        let end = last_delivery
            .max(self.meter_to_controller.last_at())
            .max(self.meter_to_switch.last_at());
        let active = end
            .saturating_sub(self.data_start)
            .max(Nanos::from_micros(1));

        // Per-flow delay extraction.
        let mut setup_ms = Vec::new();
        let mut forwarding_ms = Vec::new();
        let mut switch_ms = Vec::new();
        // Per flow: first packet's (enter, left, key), last left time,
        // delivered count, total count.
        type FlowAgg = (Option<(Nanos, Nanos, FlowKey)>, Option<Nanos>, usize, usize);
        let mut per_flow: HashMap<usize, FlowAgg> = HashMap::new();
        for (id, rec) in &self.records {
            let entry = per_flow.entry(rec.flow_index).or_insert((None, None, 0, 0));
            entry.3 += 1;
            if rec.delivered.is_some() {
                entry.2 += 1;
            }
            if rec.seq_in_flow == 0 {
                if let (Some(e), Some(l)) = (rec.entered_switch, rec.left_switch) {
                    entry.0 = Some((e, l, id.0));
                }
            }
            if let Some(l) = rec.left_switch {
                entry.1 = Some(entry.1.map_or(l, |prev: Nanos| prev.max(l)));
            }
        }
        let mut flows_completed = 0usize;
        for (first, last_left, delivered, total) in per_flow.values() {
            if *delivered == *total && *total > 0 {
                flows_completed += 1;
            }
            if let Some((enter, left, key)) = first {
                let setup = left.saturating_sub(*enter);
                setup_ms.push(setup.as_millis_f64());
                if let Some(ctrl) = self.controller_delay_of_flow.get(key) {
                    switch_ms.push(setup.saturating_sub(*ctrl).as_millis_f64());
                }
                if let Some(last) = last_left {
                    forwarding_ms.push(last.saturating_sub(*enter).as_millis_f64());
                }
            }
        }

        let delivered = self
            .records
            .values()
            .filter(|r| r.delivered.is_some())
            .count() as u64;
        let gauge = &self.switch.stats().buffer_occupancy;
        // Rescale the gauge's whole-run mean to the active span.
        let mean_occ = gauge.time_weighted_mean(end) * end.as_secs_f64() / active.as_secs_f64();
        let buf_stats = self.switch.buffer().stats();
        // Echo round trips from whichever controllers served the run.
        let mut echo_rtt = self.controller.stats().echo_rtt.clone();
        if let Some(sb) = &self.standby {
            echo_rtt.merge(&sb.stats().echo_rtt);
        }

        RunResult {
            label: self.config.switch.buffer.label(),
            sending_rate_mbps: 0.0, // set by the experiment driver
            active_span: active,
            ctrl_load_to_controller_mbps: self.meter_to_controller.bytes() as f64 * 8.0
                / active.as_secs_f64()
                / 1e6,
            ctrl_load_to_switch_mbps: self.meter_to_switch.bytes() as f64 * 8.0
                / active.as_secs_f64()
                / 1e6,
            pkt_in_count: self.pkt_in_count,
            ctrl_bytes_to_controller: self.meter_to_controller.bytes(),
            ctrl_bytes_to_switch: self.meter_to_switch.bytes(),
            flow_mod_count: self.flow_mod_count,
            pkt_out_count: self.pkt_out_count,
            controller_cpu_percent: self.controller.cpu_percent(active),
            switch_cpu_percent: self.switch.cpu_percent(active),
            flow_setup_delay: Summary::of(&setup_ms),
            controller_delay: Summary::of(&self.controller_delays_ms),
            switch_delay: Summary::of(&switch_ms),
            flow_forwarding_delay: Summary::of(&forwarding_ms),
            buffer_mean_occupancy: mean_occ,
            buffer_peak_occupancy: buf_stats.peak_occupancy,
            buffer_fallbacks: buf_stats.fallback_full,
            rerequests: buf_stats.rerequests,
            buffer_expired: buf_stats.expired,
            buffer_giveups: buf_stats.giveups,
            stale_releases: buf_stats.stale_releases,
            admission_sheds: self.controller.stats().admission_sheds.get()
                + self
                    .standby
                    .as_ref()
                    .map_or(0, |sb| sb.stats().admission_sheds.get()),
            degraded_entries: self.switch.stats().degraded_entries.get(),
            degraded_exits: self.switch.stats().degraded_exits.get(),
            degraded_sheds: self.switch.stats().degraded_sheds.get(),
            ctrl_crashes: self.ctrl_crashes,
            failover_takeovers: self.failover_takeovers,
            epoch_bumps: self.switch.stats().epoch_bumps.get(),
            stale_epoch_rejects: self.switch.stats().stale_epoch_rejects.get(),
            liveness_suspects: self.switch.stats().liveness_suspects.get(),
            suspect_sheds: self.switch.stats().suspect_sheds.get(),
            reconcile_rerequests: self.switch.stats().reconcile_rerequests.get(),
            echo_rtt_p50_ms: echo_rtt.quantile_ms(0.50),
            echo_rtt_p99_ms: echo_rtt.quantile_ms(0.99),
            echo_rtt_samples: echo_rtt.count(),
            packets_sent,
            packets_delivered: delivered,
            packets_dropped: self.data_drops,
            ctrl_drops: self.ctrl_drops,
            events_dispatched: self.events_dispatched,
            flows_completed,
            flows_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnbuf_sim::BitRate;
    use sdnbuf_switch::BufferChoice;
    use sdnbuf_workload::{single_packet_flows, PktgenConfig};

    fn small_workload(rate_mbps: u64, n: usize) -> Vec<Departure> {
        single_packet_flows(
            &PktgenConfig {
                rate: BitRate::from_mbps(rate_mbps),
                ..PktgenConfig::default()
            },
            n,
            7,
        )
    }

    fn run_with(buffer: BufferChoice, rate: u64, n: usize) -> RunResult {
        let mut tb = Testbed::new(TestbedConfig::with_buffer(buffer));
        tb.run(&small_workload(rate, n))
    }

    #[test]
    fn try_new_returns_typed_errors() {
        assert!(Testbed::try_new(TestbedConfig::default()).is_ok());
        let err = match Testbed::try_new(TestbedConfig::with_buffer(
            BufferChoice::PacketGranularity { capacity: 0 },
        )) {
            Ok(_) => panic!("zero capacity must be rejected"),
            Err(e) => e,
        };
        assert!(err.contains("capacity"), "{err}");
    }

    #[test]
    fn every_packet_is_delivered_no_buffer() {
        let r = run_with(BufferChoice::NoBuffer, 20, 50);
        assert_eq!(r.packets_sent, 50);
        assert_eq!(r.packets_delivered, 50);
        assert_eq!(r.flows_completed, 50);
        assert_eq!(r.packets_dropped, 0);
    }

    #[test]
    fn every_packet_is_delivered_packet_granularity() {
        let r = run_with(BufferChoice::PacketGranularity { capacity: 256 }, 20, 50);
        assert_eq!(r.packets_delivered, 50);
        assert_eq!(r.flows_completed, 50);
    }

    #[test]
    fn every_packet_is_delivered_flow_granularity() {
        let r = run_with(
            BufferChoice::FlowGranularity {
                capacity: 256,
                timeout: Nanos::from_millis(50),
            },
            20,
            50,
        );
        assert_eq!(r.packets_delivered, 50);
        assert_eq!(r.flows_completed, 50);
    }

    #[test]
    fn buffering_shrinks_control_traffic() {
        let no_buf = run_with(BufferChoice::NoBuffer, 20, 100);
        let buffered = run_with(BufferChoice::PacketGranularity { capacity: 256 }, 20, 100);
        assert!(
            buffered.ctrl_bytes_to_controller < no_buf.ctrl_bytes_to_controller / 4,
            "buffered {} vs no-buffer {}",
            buffered.ctrl_bytes_to_controller,
            no_buf.ctrl_bytes_to_controller
        );
        assert!(buffered.ctrl_bytes_to_switch < no_buf.ctrl_bytes_to_switch / 4);
        // Same number of requests, though: packet granularity does not
        // reduce the message count.
        assert_eq!(buffered.pkt_in_count, no_buf.pkt_in_count);
    }

    #[test]
    fn controller_delay_is_measured_and_sane() {
        let r = run_with(BufferChoice::PacketGranularity { capacity: 256 }, 10, 30);
        assert_eq!(r.controller_delay.n, 30);
        // Two 300 us propagation legs bound it from below.
        assert!(r.controller_delay.mean > 0.6, "{}", r.controller_delay);
        assert!(r.controller_delay.mean < 5.0, "{}", r.controller_delay);
        // Setup includes the controller round trip.
        assert!(r.flow_setup_delay.mean >= r.controller_delay.mean * 0.9);
        assert_eq!(r.flow_setup_delay.n, 30);
        assert_eq!(r.switch_delay.n, 30);
    }

    #[test]
    fn warmup_teaches_controller_host_locations() {
        let mut tb = Testbed::new(TestbedConfig::default());
        let r = tb.run(&small_workload(10, 5));
        assert_eq!(r.packets_delivered, 5);
        use sdnbuf_net::MacAddr;
        assert_eq!(
            tb.controller().location_of(MacAddr::from_host_index(2)),
            Some(PortNo(2))
        );
        assert_eq!(
            tb.controller().location_of(MacAddr::from_host_index(1)),
            Some(PortNo(1))
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_with(BufferChoice::NoBuffer, 30, 40);
        let b = run_with(BufferChoice::NoBuffer, 30, 40);
        assert_eq!(a, b);
    }

    /// A crash-plane testbed config: keepalives on (so the switch's
    /// liveness detector has a heartbeat to miss) and a tight liveness
    /// timeout.
    fn crash_config(plan: &str) -> TestbedConfig {
        let mut cfg = TestbedConfig::with_buffer(BufferChoice::PacketGranularity { capacity: 256 });
        cfg.faults = FaultPlan::parse(plan).expect("valid plan");
        cfg.keepalive_interval = Some(Nanos::from_millis(5));
        cfg.switch.liveness_timeout = Nanos::from_millis(15);
        cfg
    }

    #[test]
    fn mid_run_crash_without_standby_recovers() {
        let mut tb = Testbed::new(crash_config("crash=55ms+30ms"));
        let r = tb.run(&small_workload(20, 50));
        assert_eq!(r.ctrl_crashes, 1);
        assert_eq!(r.failover_takeovers, 0);
        // The restart re-handshakes and the switch moves to a new epoch.
        assert!(r.epoch_bumps >= 1, "epoch_bumps = {}", r.epoch_bumps);
        // Every offered packet is delivered or shows up in the loss
        // accounting — a crash may shed, but never silently strands.
        assert_eq!(
            r.packets_delivered + r.packets_dropped,
            r.packets_sent,
            "delivered {} + dropped {} != sent {}",
            r.packets_delivered,
            r.packets_dropped,
            r.packets_sent
        );
        assert!(r.packets_delivered > 0);
        // The outage dropped control messages on the floor.
        assert!(r.ctrl_drops > 0);
    }

    #[test]
    fn warm_standby_takes_over_mid_run() {
        // The primary never restarts: its crash window runs past the
        // workload, so only the standby's takeover keeps service going.
        let mut cfg = crash_config("crash=55ms+10s");
        cfg.failover.standby = true;
        cfg.failover.takeover_delay = Nanos::from_millis(10);
        cfg.failover.warm = true;
        let mut tb = Testbed::new(cfg);
        let r = tb.run(&small_workload(20, 50));
        assert_eq!(r.ctrl_crashes, 1);
        assert_eq!(r.failover_takeovers, 1);
        assert!(tb.standby_active());
        assert!(r.epoch_bumps >= 1);
        assert_eq!(r.packets_delivered + r.packets_dropped, r.packets_sent);
        assert!(r.packets_delivered > 0);
        // Warm sync carried the primary's learned host locations over.
        use sdnbuf_net::MacAddr;
        assert_eq!(
            tb.standby()
                .unwrap()
                .location_of(MacAddr::from_host_index(2)),
            Some(PortNo(2))
        );
    }

    #[test]
    fn crash_runs_are_deterministic() {
        let run = || {
            let mut tb = Testbed::new(crash_config("crash=55ms+30ms"));
            tb.run(&small_workload(20, 50))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn no_crash_windows_leave_the_plane_cold() {
        let r = run_with(BufferChoice::PacketGranularity { capacity: 256 }, 20, 30);
        assert_eq!(r.ctrl_crashes, 0);
        assert_eq!(r.epoch_bumps, 0);
        assert_eq!(r.stale_epoch_rejects, 0);
        assert_eq!(r.liveness_suspects, 0);
        assert_eq!(r.echo_rtt_samples, 0);
    }

    #[test]
    fn keepalives_measure_echo_rtt() {
        let mut cfg = TestbedConfig::with_buffer(BufferChoice::NoBuffer);
        cfg.keepalive_interval = Some(Nanos::from_millis(5));
        let mut tb = Testbed::new(cfg);
        let r = tb.run(&small_workload(20, 30));
        assert!(r.echo_rtt_samples > 0);
        // Two 300 us propagation legs bound the round trip from below.
        assert!(r.echo_rtt_p50_ms > 0.6, "{}", r.echo_rtt_p50_ms);
        assert!(r.echo_rtt_p99_ms >= r.echo_rtt_p50_ms);
    }
}
