//! Property-based tests: every packet the builder can produce round-trips
//! through the wire codec, and decoding never panics on arbitrary bytes.

use proptest::prelude::*;
use sdnbuf_net::{FlowKey, MacAddr, Packet, PacketBuilder, TcpFlags};
use std::net::Ipv4Addr;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

proptest! {
    #[test]
    fn udp_round_trip(
        src in arb_ip(),
        dst in arb_ip(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        frame in 0usize..3000,
    ) {
        let p = PacketBuilder::udp()
            .src_ip(src).dst_ip(dst)
            .src_port(sport).dst_port(dport)
            .frame_size(frame)
            .build();
        let bytes = p.encode();
        prop_assert_eq!(bytes.len(), p.wire_len());
        let back = Packet::decode(&bytes).unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn tcp_round_trip(
        src in arb_ip(),
        dst in arb_ip(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        flags in 0u8..32,
        frame in 0usize..3000,
    ) {
        let p = PacketBuilder::tcp()
            .src_ip(src).dst_ip(dst)
            .src_port(sport).dst_port(dport)
            .tcp_flags(TcpFlags::from_bits(flags))
            .frame_size(frame)
            .build();
        let back = Packet::decode(&p.encode()).unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn arp_round_trip(mac in any::<[u8; 6]>(), ip in arb_ip()) {
        let p = PacketBuilder::gratuitous_arp(MacAddr::new(mac), ip);
        let back = Packet::decode(&p.encode()).unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Must return Ok or Err, never panic.
        let _ = Packet::decode(&bytes);
    }

    #[test]
    fn flow_key_ignores_payload_size(
        sport in any::<u16>(),
        dport in any::<u16>(),
        a in 42usize..1500,
        b in 42usize..1500,
    ) {
        let p1 = PacketBuilder::udp().src_port(sport).dst_port(dport).frame_size(a).build();
        let p2 = PacketBuilder::udp().src_port(sport).dst_port(dport).frame_size(b).build();
        prop_assert_eq!(FlowKey::of(&p1), FlowKey::of(&p2));
    }

    #[test]
    fn flow_key_reversal_is_involution(
        src in arb_ip(),
        dst in arb_ip(),
        sport in any::<u16>(),
        dport in any::<u16>(),
    ) {
        let p = PacketBuilder::udp().src_ip(src).dst_ip(dst).src_port(sport).dst_port(dport).build();
        let k = FlowKey::of(&p).unwrap();
        prop_assert_eq!(k.reversed().reversed(), k);
    }

    #[test]
    fn header_slice_is_prefix(n in 0usize..2000, frame in 42usize..1500) {
        let p = PacketBuilder::udp().frame_size(frame).build();
        let full = p.encode();
        let slice = p.header_slice(n);
        prop_assert_eq!(slice.len(), n.min(full.len()));
        prop_assert_eq!(&full[..slice.len()], &slice[..]);
    }
}
