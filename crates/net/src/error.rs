//! Decode errors shared by all packet codecs.

use std::error::Error;
use std::fmt;

/// An error produced while decoding a packet from wire bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the structure was complete.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// An IPv4 header advertised a version other than 4.
    BadIpVersion(u8),
    /// An IPv4 header advertised an IHL shorter than the minimum 5 words.
    BadIpHeaderLen(u8),
    /// A header checksum did not verify.
    BadChecksum {
        /// Checksum found on the wire.
        found: u16,
        /// Checksum computed over the received bytes.
        computed: u16,
    },
    /// A length field disagreed with the number of bytes present.
    BadLengthField {
        /// Length claimed by the header.
        claimed: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// An ARP packet used an unsupported hardware/protocol combination.
    UnsupportedArp,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, got } => {
                write!(f, "truncated packet: needed {needed} bytes, got {got}")
            }
            DecodeError::BadIpVersion(v) => write!(f, "unsupported IP version {v}"),
            DecodeError::BadIpHeaderLen(ihl) => write!(f, "invalid IPv4 IHL {ihl}"),
            DecodeError::BadChecksum { found, computed } => write!(
                f,
                "checksum mismatch: found {found:#06x}, computed {computed:#06x}"
            ),
            DecodeError::BadLengthField { claimed, actual } => write!(
                f,
                "length field claims {claimed} bytes but {actual} are present"
            ),
            DecodeError::UnsupportedArp => write!(f, "unsupported ARP hardware/protocol type"),
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DecodeError::Truncated { needed: 20, got: 4 };
        assert_eq!(e.to_string(), "truncated packet: needed 20 bytes, got 4");
        let e = DecodeError::BadChecksum {
            found: 0x1234,
            computed: 0xabcd,
        };
        assert!(e.to_string().contains("0x1234"));
        assert!(e.to_string().contains("0xabcd"));
        assert!(DecodeError::BadIpVersion(6).to_string().contains('6'));
        assert!(DecodeError::BadIpHeaderLen(2).to_string().contains('2'));
        assert!(DecodeError::UnsupportedArp.to_string().contains("ARP"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<DecodeError>();
    }
}
