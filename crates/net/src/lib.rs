//! Packet substrate for `sdn-buffer-lab`: Ethernet II, ARP, IPv4, UDP and
//! TCP wire formats with byte-exact encode/decode, plus the 5-tuple
//! [`FlowKey`] the paper's flow-granularity buffer mechanism is keyed on.
//!
//! Every header type round-trips through its wire encoding, and encoded
//! lengths are exact — the evaluation measures control-path load from real
//! message bytes, so sizes must be right.
//!
//! # Example
//!
//! ```
//! use sdnbuf_net::{FlowKey, IpProto, Packet, PacketBuilder};
//! use std::net::Ipv4Addr;
//!
//! let pkt = PacketBuilder::udp()
//!     .src_ip(Ipv4Addr::new(10, 0, 0, 1))
//!     .dst_ip(Ipv4Addr::new(10, 0, 0, 2))
//!     .src_port(5000)
//!     .dst_port(9)
//!     .frame_size(1000)
//!     .build();
//! assert_eq!(pkt.wire_len(), 1000);
//!
//! let bytes = pkt.encode();
//! let back = Packet::decode(&bytes).unwrap();
//! assert_eq!(back, pkt);
//!
//! let key = FlowKey::of(&pkt).unwrap();
//! assert_eq!(key.protocol, IpProto::Udp);
//! assert_eq!(key.src_port, 5000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arp;
mod error;
mod ethernet;
mod flowkey;
mod ipv4;
mod mac;
mod packet;
mod tcp;
mod udp;

pub use arp::{ArpOp, ArpPacket};
pub use error::DecodeError;
pub use ethernet::{EtherType, EthernetHeader, ETHERNET_HEADER_LEN};
pub use flowkey::{FlowKey, IpProto};
pub use ipv4::{Ipv4Header, IPV4_HEADER_LEN};
pub use mac::MacAddr;
pub use packet::{Ipv4Packet, Packet, PacketBuilder, Payload, Transport};
pub use tcp::{TcpFlags, TcpHeader, TCP_HEADER_LEN};
pub use udp::{UdpHeader, UDP_HEADER_LEN};

pub(crate) mod wire {
    //! Minimal big-endian cursor helpers shared by the codecs.

    use crate::DecodeError;

    pub fn get_u8(buf: &[u8], at: usize) -> Result<u8, DecodeError> {
        buf.get(at).copied().ok_or(DecodeError::Truncated {
            needed: at + 1,
            got: buf.len(),
        })
    }

    pub fn get_u16(buf: &[u8], at: usize) -> Result<u16, DecodeError> {
        if buf.len() < at + 2 {
            return Err(DecodeError::Truncated {
                needed: at + 2,
                got: buf.len(),
            });
        }
        Ok(u16::from_be_bytes([buf[at], buf[at + 1]]))
    }

    pub fn get_u32(buf: &[u8], at: usize) -> Result<u32, DecodeError> {
        if buf.len() < at + 4 {
            return Err(DecodeError::Truncated {
                needed: at + 4,
                got: buf.len(),
            });
        }
        Ok(u32::from_be_bytes([
            buf[at],
            buf[at + 1],
            buf[at + 2],
            buf[at + 3],
        ]))
    }

    pub fn need(buf: &[u8], len: usize) -> Result<(), DecodeError> {
        if buf.len() < len {
            Err(DecodeError::Truncated {
                needed: len,
                got: buf.len(),
            })
        } else {
            Ok(())
        }
    }
}
