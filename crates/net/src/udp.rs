//! UDP header.

use crate::wire;
use crate::DecodeError;

/// Wire length of a UDP header: 8 bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP header.
///
/// The checksum is carried verbatim (zero = not computed), matching how
/// `pktgen`-generated traffic typically leaves it.
///
/// # Example
///
/// ```
/// use sdnbuf_net::{UdpHeader, UDP_HEADER_LEN};
/// let h = UdpHeader::new(5000, 9, 100);
/// let mut buf = Vec::new();
/// h.encode_into(&mut buf);
/// assert_eq!(buf.len(), UDP_HEADER_LEN);
/// assert_eq!(UdpHeader::decode(&buf).unwrap(), h);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header plus payload, in bytes.
    pub length: u16,
    /// Checksum (zero when unused).
    pub checksum: u16,
}

impl UdpHeader {
    /// Creates a header for a datagram carrying `payload_len` bytes.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        UdpHeader {
            src_port,
            dst_port,
            length: (UDP_HEADER_LEN + payload_len) as u16,
            checksum: 0,
        }
    }

    /// Appends the 8-byte wire form to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.src_port.to_be_bytes());
        buf.extend_from_slice(&self.dst_port.to_be_bytes());
        buf.extend_from_slice(&self.length.to_be_bytes());
        buf.extend_from_slice(&self.checksum.to_be_bytes());
    }

    /// Decodes from the start of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if fewer than 8 bytes are present.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        wire::need(buf, UDP_HEADER_LEN)?;
        Ok(UdpHeader {
            src_port: wire::get_u16(buf, 0)?,
            dst_port: wire::get_u16(buf, 2)?,
            length: wire::get_u16(buf, 4)?,
            checksum: wire::get_u16(buf, 6)?,
        })
    }

    /// Payload bytes according to the length field.
    pub fn payload_len(&self) -> usize {
        (self.length as usize).saturating_sub(UDP_HEADER_LEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = UdpHeader::new(1234, 80, 500);
        let mut buf = Vec::new();
        h.encode_into(&mut buf);
        assert_eq!(UdpHeader::decode(&buf).unwrap(), h);
        assert_eq!(h.length, 508);
        assert_eq!(h.payload_len(), 500);
    }

    #[test]
    fn wire_layout() {
        let h = UdpHeader::new(0x0102, 0x0304, 0);
        let mut buf = Vec::new();
        h.encode_into(&mut buf);
        assert_eq!(buf, vec![1, 2, 3, 4, 0, 8, 0, 0]);
    }

    #[test]
    fn truncated_fails() {
        assert!(matches!(
            UdpHeader::decode(&[0u8; 7]),
            Err(DecodeError::Truncated { needed: 2, .. }) | Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn bogus_length_clamps_payload() {
        let h = UdpHeader {
            src_port: 1,
            dst_port: 2,
            length: 3, // shorter than the header
            checksum: 0,
        };
        assert_eq!(h.payload_len(), 0);
    }
}
