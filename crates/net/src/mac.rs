//! IEEE 802 MAC addresses.

use std::fmt;

/// A 48-bit Ethernet MAC address.
///
/// # Example
///
/// ```
/// use sdnbuf_net::MacAddr;
/// let m = MacAddr::new([0x02, 0, 0, 0, 0, 0x2a]);
/// assert_eq!(m.to_string(), "02:00:00:00:00:2a");
/// assert!(MacAddr::BROADCAST.is_broadcast());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The all-ones broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zeros address, used as a placeholder in ARP targets.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Derives a locally administered unicast address from a small host
    /// index — handy for generating distinct, valid host MACs in testbeds.
    pub fn from_host_index(index: u32) -> Self {
        let b = index.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// The six octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// `true` for the all-ones broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }

    /// `true` when the group bit (least significant bit of the first octet)
    /// is set — multicast and broadcast frames.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 1 == 1
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

impl From<MacAddr> for [u8; 6] {
    fn from(mac: MacAddr) -> Self {
        mac.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_lowercase_hex() {
        let m = MacAddr::new([0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01]);
        assert_eq!(m.to_string(), "de:ad:be:ef:00:01");
    }

    #[test]
    fn broadcast_and_multicast_flags() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        let unicast = MacAddr::from_host_index(1);
        assert!(!unicast.is_broadcast());
        assert!(!unicast.is_multicast());
        let mcast = MacAddr::new([0x01, 0, 0x5e, 0, 0, 1]);
        assert!(mcast.is_multicast());
        assert!(!mcast.is_broadcast());
    }

    #[test]
    fn host_index_addresses_are_distinct() {
        let a = MacAddr::from_host_index(1);
        let b = MacAddr::from_host_index(2);
        assert_ne!(a, b);
        assert_eq!(a.octets()[0], 0x02);
    }

    #[test]
    fn conversions_round_trip() {
        let raw = [1u8, 2, 3, 4, 5, 6];
        let m: MacAddr = raw.into();
        let back: [u8; 6] = m.into();
        assert_eq!(raw, back);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(MacAddr::default(), MacAddr::ZERO);
    }
}
