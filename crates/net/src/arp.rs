//! ARP over Ethernet/IPv4 — used by the testbed warm-up so the controller
//! can learn host locations, exactly as Floodlight does from real hosts.

use crate::wire;
use crate::{DecodeError, MacAddr};
use std::fmt;
use std::net::Ipv4Addr;

/// Wire length of an Ethernet/IPv4 ARP packet: 28 bytes.
pub const ARP_LEN: usize = 28;

/// The ARP operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArpOp {
    /// Who-has (1).
    Request,
    /// Is-at (2).
    Reply,
    /// Any other opcode, kept verbatim.
    Other(u16),
}

impl ArpOp {
    /// The 16-bit wire value.
    pub fn as_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
            ArpOp::Other(v) => v,
        }
    }
}

impl From<u16> for ArpOp {
    fn from(v: u16) -> Self {
        match v {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            other => ArpOp::Other(other),
        }
    }
}

impl fmt::Display for ArpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArpOp::Request => write!(f, "request"),
            ArpOp::Reply => write!(f, "reply"),
            ArpOp::Other(v) => write!(f, "op{v}"),
        }
    }
}

/// An ARP packet for IPv4 over Ethernet (HTYPE=1, PTYPE=0x0800).
///
/// # Example
///
/// ```
/// use sdnbuf_net::{ArpOp, ArpPacket, MacAddr};
/// use std::net::Ipv4Addr;
///
/// let arp = ArpPacket::gratuitous(MacAddr::from_host_index(1), Ipv4Addr::new(10, 0, 0, 1));
/// assert_eq!(arp.op, ArpOp::Request);
/// let bytes = arp.encode();
/// assert_eq!(ArpPacket::decode(&bytes).unwrap(), arp);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArpPacket {
    /// Operation: request or reply.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Builds a gratuitous ARP request announcing `mac` owns `ip` — the
    /// frame hosts emit at testbed start so the controller's learning table
    /// is populated before measurement traffic begins.
    pub fn gratuitous(mac: MacAddr, ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac: mac,
            sender_ip: ip,
            target_mac: MacAddr::ZERO,
            target_ip: ip,
        }
    }

    /// Encodes to the 28-byte wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(ARP_LEN);
        buf.extend_from_slice(&1u16.to_be_bytes()); // HTYPE: Ethernet
        buf.extend_from_slice(&0x0800u16.to_be_bytes()); // PTYPE: IPv4
        buf.push(6); // HLEN
        buf.push(4); // PLEN
        buf.extend_from_slice(&self.op.as_u16().to_be_bytes());
        buf.extend_from_slice(&self.sender_mac.octets());
        buf.extend_from_slice(&self.sender_ip.octets());
        buf.extend_from_slice(&self.target_mac.octets());
        buf.extend_from_slice(&self.target_ip.octets());
        buf
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input;
    /// [`DecodeError::UnsupportedArp`] for non-Ethernet/IPv4 ARP.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        wire::need(buf, ARP_LEN)?;
        let htype = wire::get_u16(buf, 0)?;
        let ptype = wire::get_u16(buf, 2)?;
        let hlen = wire::get_u8(buf, 4)?;
        let plen = wire::get_u8(buf, 5)?;
        if htype != 1 || ptype != 0x0800 || hlen != 6 || plen != 4 {
            return Err(DecodeError::UnsupportedArp);
        }
        let op = wire::get_u16(buf, 6)?.into();
        let mut sender_mac = [0u8; 6];
        sender_mac.copy_from_slice(&buf[8..14]);
        let sender_ip = Ipv4Addr::new(buf[14], buf[15], buf[16], buf[17]);
        let mut target_mac = [0u8; 6];
        target_mac.copy_from_slice(&buf[18..24]);
        let target_ip = Ipv4Addr::new(buf[24], buf[25], buf[26], buf[27]);
        Ok(ArpPacket {
            op,
            sender_mac: sender_mac.into(),
            sender_ip,
            target_mac: target_mac.into(),
            target_ip,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: MacAddr::new([1, 2, 3, 4, 5, 6]),
            sender_ip: Ipv4Addr::new(10, 0, 0, 1),
            target_mac: MacAddr::new([7, 8, 9, 10, 11, 12]),
            target_ip: Ipv4Addr::new(10, 0, 0, 2),
        }
    }

    #[test]
    fn round_trip() {
        let a = sample();
        let bytes = a.encode();
        assert_eq!(bytes.len(), ARP_LEN);
        assert_eq!(ArpPacket::decode(&bytes).unwrap(), a);
    }

    #[test]
    fn gratuitous_announces_self() {
        let mac = MacAddr::from_host_index(3);
        let ip = Ipv4Addr::new(10, 0, 0, 3);
        let g = ArpPacket::gratuitous(mac, ip);
        assert_eq!(g.sender_ip, g.target_ip);
        assert_eq!(g.sender_mac, mac);
        assert_eq!(g.target_mac, MacAddr::ZERO);
    }

    #[test]
    fn truncated_fails() {
        assert!(matches!(
            ArpPacket::decode(&[0u8; 27]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn non_ethernet_arp_rejected() {
        let mut bytes = sample().encode();
        bytes[1] = 6; // HTYPE = IEEE 802
        assert_eq!(ArpPacket::decode(&bytes), Err(DecodeError::UnsupportedArp));
    }

    #[test]
    fn opcode_conversions() {
        assert_eq!(ArpOp::from(1), ArpOp::Request);
        assert_eq!(ArpOp::from(2), ArpOp::Reply);
        assert_eq!(ArpOp::from(9), ArpOp::Other(9));
        assert_eq!(ArpOp::Other(9).as_u16(), 9);
        assert_eq!(ArpOp::Request.to_string(), "request");
    }
}
