//! TCP header with a typed flags field.

use crate::wire;
use crate::DecodeError;
use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// Wire length of a TCP header without options: 20 bytes.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP control flags, as a typed bit set.
///
/// # Example
///
/// ```
/// use sdnbuf_net::TcpFlags;
/// let synack = TcpFlags::SYN | TcpFlags::ACK;
/// assert!(synack.contains(TcpFlags::SYN));
/// assert!(synack.contains(TcpFlags::ACK));
/// assert!(!synack.contains(TcpFlags::FIN));
/// assert_eq!(synack.to_string(), "SYN|ACK");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TcpFlags(u8);

impl TcpFlags {
    /// No flags set.
    pub const EMPTY: TcpFlags = TcpFlags(0);
    /// FIN.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK.
    pub const ACK: TcpFlags = TcpFlags(0x10);

    /// Creates flags from the raw wire byte.
    pub const fn from_bits(bits: u8) -> Self {
        TcpFlags(bits)
    }

    /// The raw wire byte.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// `true` when every flag in `other` is also set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: [(TcpFlags, &str); 5] = [
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::ACK, "ACK"),
        ];
        let mut first = true;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "(none)")?;
        }
        Ok(())
    }
}

/// A TCP header (no options).
///
/// # Example
///
/// ```
/// use sdnbuf_net::{TcpFlags, TcpHeader, TCP_HEADER_LEN};
/// let h = TcpHeader::new(40000, 80, TcpFlags::SYN);
/// let mut buf = Vec::new();
/// h.encode_into(&mut buf);
/// assert_eq!(buf.len(), TCP_HEADER_LEN);
/// assert_eq!(TcpHeader::decode(&buf).unwrap(), h);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Checksum (carried verbatim).
    pub checksum: u16,
    /// Urgent pointer.
    pub urgent: u16,
}

impl TcpHeader {
    /// Creates a header with a 64 KiB window and zeroed sequence numbers.
    pub fn new(src_port: u16, dst_port: u16, flags: TcpFlags) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            flags,
            window: 0xffff,
            checksum: 0,
            urgent: 0,
        }
    }

    /// Appends the 20-byte wire form to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.src_port.to_be_bytes());
        buf.extend_from_slice(&self.dst_port.to_be_bytes());
        buf.extend_from_slice(&self.seq.to_be_bytes());
        buf.extend_from_slice(&self.ack.to_be_bytes());
        buf.push(5 << 4); // data offset 5 words, reserved 0
        buf.push(self.flags.bits());
        buf.extend_from_slice(&self.window.to_be_bytes());
        buf.extend_from_slice(&self.checksum.to_be_bytes());
        buf.extend_from_slice(&self.urgent.to_be_bytes());
    }

    /// Decodes from the start of `buf`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input;
    /// [`DecodeError::BadLengthField`] when the data offset is below the
    /// 5-word minimum.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        wire::need(buf, TCP_HEADER_LEN)?;
        let offset_words = wire::get_u8(buf, 12)? >> 4;
        if offset_words < 5 {
            return Err(DecodeError::BadLengthField {
                claimed: offset_words as usize * 4,
                actual: TCP_HEADER_LEN,
            });
        }
        Ok(TcpHeader {
            src_port: wire::get_u16(buf, 0)?,
            dst_port: wire::get_u16(buf, 2)?,
            seq: wire::get_u32(buf, 4)?,
            ack: wire::get_u32(buf, 8)?,
            flags: TcpFlags::from_bits(wire::get_u8(buf, 13)?),
            window: wire::get_u16(buf, 14)?,
            checksum: wire::get_u16(buf, 16)?,
            urgent: wire::get_u16(buf, 18)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = TcpHeader {
            src_port: 40000,
            dst_port: 443,
            seq: 0xdead_beef,
            ack: 0x0bad_cafe,
            flags: TcpFlags::PSH | TcpFlags::ACK,
            window: 8192,
            checksum: 0x1234,
            urgent: 0,
        };
        let mut buf = Vec::new();
        h.encode_into(&mut buf);
        assert_eq!(TcpHeader::decode(&buf).unwrap(), h);
    }

    #[test]
    fn truncated_fails() {
        assert!(matches!(
            TcpHeader::decode(&[0u8; 19]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut buf = Vec::new();
        TcpHeader::new(1, 2, TcpFlags::SYN).encode_into(&mut buf);
        buf[12] = 4 << 4;
        assert!(matches!(
            TcpHeader::decode(&buf),
            Err(DecodeError::BadLengthField { .. })
        ));
    }

    #[test]
    fn flags_set_operations() {
        let mut f = TcpFlags::SYN;
        f |= TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN | TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::RST));
        assert_eq!(f.bits(), 0x12);
        assert_eq!(TcpFlags::from_bits(0x12), f);
    }

    #[test]
    fn flags_display() {
        assert_eq!(TcpFlags::EMPTY.to_string(), "(none)");
        assert_eq!((TcpFlags::FIN | TcpFlags::ACK).to_string(), "FIN|ACK");
    }
}
