//! IPv4 header with RFC 1071 checksum.

use crate::wire;
use crate::DecodeError;
use std::net::Ipv4Addr;

/// Wire length of an IPv4 header without options: 20 bytes.
pub const IPV4_HEADER_LEN: usize = 20;

/// An IPv4 header (no options).
///
/// The checksum field is computed on encode and verified on decode, so any
/// corruption introduced between the two is caught.
///
/// # Example
///
/// ```
/// use sdnbuf_net::{Ipv4Header, IPV4_HEADER_LEN};
/// use std::net::Ipv4Addr;
///
/// let h = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 17, 100);
/// let mut buf = Vec::new();
/// h.encode_into(&mut buf);
/// assert_eq!(buf.len(), IPV4_HEADER_LEN);
/// assert_eq!(Ipv4Header::decode(&buf).unwrap(), h);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ipv4Header {
    /// Differentiated services code point + ECN byte.
    pub dscp_ecn: u8,
    /// Total length of the IP packet (header + payload), in bytes.
    pub total_len: u16,
    /// Identification field.
    pub identification: u16,
    /// Flags (3 bits) and fragment offset (13 bits), packed.
    pub flags_fragment: u16,
    /// Time to live.
    pub ttl: u8,
    /// Transport protocol number (6 = TCP, 17 = UDP).
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Creates a header with common defaults (TTL 64, DF set) for a packet
    /// carrying `payload_len` bytes above IP.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, payload_len: usize) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: (IPV4_HEADER_LEN + payload_len) as u16,
            identification: 0,
            flags_fragment: 0x4000, // DF
            ttl: 64,
            protocol,
            src,
            dst,
        }
    }

    /// Appends the 20-byte wire form, with a freshly computed checksum.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        buf.push(0x45); // version 4, IHL 5
        buf.push(self.dscp_ecn);
        buf.extend_from_slice(&self.total_len.to_be_bytes());
        buf.extend_from_slice(&self.identification.to_be_bytes());
        buf.extend_from_slice(&self.flags_fragment.to_be_bytes());
        buf.push(self.ttl);
        buf.push(self.protocol);
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(&self.src.octets());
        buf.extend_from_slice(&self.dst.octets());
        let csum = internet_checksum(&buf[start..start + IPV4_HEADER_LEN]);
        buf[start + 10..start + 12].copy_from_slice(&csum.to_be_bytes());
    }

    /// Decodes and verifies a header from the start of `buf`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`], [`DecodeError::BadIpVersion`],
    /// [`DecodeError::BadIpHeaderLen`] or [`DecodeError::BadChecksum`].
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        wire::need(buf, IPV4_HEADER_LEN)?;
        let vihl = wire::get_u8(buf, 0)?;
        let version = vihl >> 4;
        let ihl = vihl & 0x0f;
        if version != 4 {
            return Err(DecodeError::BadIpVersion(version));
        }
        if ihl != 5 {
            // Options are never emitted by this workspace; reject rather
            // than silently mis-parse.
            return Err(DecodeError::BadIpHeaderLen(ihl));
        }
        let computed = internet_checksum(&buf[..IPV4_HEADER_LEN]);
        if computed != 0 {
            // A valid header sums to zero including its checksum field.
            let found = wire::get_u16(buf, 10)?;
            return Err(DecodeError::BadChecksum { found, computed });
        }
        Ok(Ipv4Header {
            dscp_ecn: wire::get_u8(buf, 1)?,
            total_len: wire::get_u16(buf, 2)?,
            identification: wire::get_u16(buf, 4)?,
            flags_fragment: wire::get_u16(buf, 6)?,
            ttl: wire::get_u8(buf, 8)?,
            protocol: wire::get_u8(buf, 9)?,
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
        })
    }

    /// Payload bytes above the IP header, according to `total_len`.
    pub fn payload_len(&self) -> usize {
        (self.total_len as usize).saturating_sub(IPV4_HEADER_LEN)
    }
}

/// RFC 1071 16-bit one's-complement internet checksum.
pub(crate) fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(192, 168, 1, 10),
            Ipv4Addr::new(192, 168, 1, 20),
            17,
            972,
        )
    }

    #[test]
    fn round_trip() {
        let h = sample();
        let mut buf = Vec::new();
        h.encode_into(&mut buf);
        assert_eq!(Ipv4Header::decode(&buf).unwrap(), h);
    }

    #[test]
    fn checksum_verifies_to_zero() {
        let mut buf = Vec::new();
        sample().encode_into(&mut buf);
        assert_eq!(internet_checksum(&buf), 0);
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = Vec::new();
        sample().encode_into(&mut buf);
        buf[8] ^= 0xff; // flip TTL bits
        assert!(matches!(
            Ipv4Header::decode(&buf),
            Err(DecodeError::BadChecksum { .. })
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        sample().encode_into(&mut buf);
        buf[0] = 0x65; // version 6
        assert_eq!(Ipv4Header::decode(&buf), Err(DecodeError::BadIpVersion(6)));
    }

    #[test]
    fn rejects_options() {
        let mut buf = Vec::new();
        sample().encode_into(&mut buf);
        buf[0] = 0x46; // IHL 6 (with options)
        assert_eq!(
            Ipv4Header::decode(&buf),
            Err(DecodeError::BadIpHeaderLen(6))
        );
    }

    #[test]
    fn truncated_fails() {
        assert!(matches!(
            Ipv4Header::decode(&[0x45; 19]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn payload_len_subtracts_header() {
        assert_eq!(sample().payload_len(), 972);
        let tiny = Ipv4Header {
            total_len: 10, // bogus: shorter than the header itself
            ..sample()
        };
        assert_eq!(tiny.payload_len(), 0);
    }

    #[test]
    fn rfc1071_known_vector() {
        // Example from RFC 1071 section 3: bytes 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn checksum_odd_length() {
        // Odd-length input pads with zero.
        assert_eq!(internet_checksum(&[0xff]), !0xff00);
    }
}
