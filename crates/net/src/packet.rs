//! Full packets: typed layers plus byte-exact encode/decode, and a builder.

use crate::{
    ArpPacket, DecodeError, EtherType, EthernetHeader, Ipv4Header, MacAddr, TcpFlags, TcpHeader,
    UdpHeader, ETHERNET_HEADER_LEN, IPV4_HEADER_LEN, TCP_HEADER_LEN, UDP_HEADER_LEN,
};
use std::net::Ipv4Addr;

/// The transport layer of an IPv4 packet.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Transport {
    /// A UDP datagram: header plus payload bytes.
    Udp(UdpHeader, Vec<u8>),
    /// A TCP segment: header plus payload bytes.
    Tcp(TcpHeader, Vec<u8>),
    /// Any other protocol: the raw bytes above the IP header.
    Other(u8, Vec<u8>),
}

impl Transport {
    /// Encoded length in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            Transport::Udp(_, p) => UDP_HEADER_LEN + p.len(),
            Transport::Tcp(_, p) => TCP_HEADER_LEN + p.len(),
            Transport::Other(_, p) => p.len(),
        }
    }
}

/// An IPv4 packet: header plus transport.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Ipv4Packet {
    /// The IP header. Its `total_len` and `protocol` fields are kept
    /// consistent with `transport` by the constructors in this crate.
    pub header: Ipv4Header,
    /// The transport layer.
    pub transport: Transport,
}

/// The payload of an Ethernet frame.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Payload {
    /// An ARP packet.
    Arp(ArpPacket),
    /// An IPv4 packet.
    Ipv4(Ipv4Packet),
    /// Anything else, kept as raw bytes.
    Raw(Vec<u8>),
}

/// A complete Ethernet frame with typed layers.
///
/// # Example
///
/// ```
/// use sdnbuf_net::{Packet, PacketBuilder};
/// let p = PacketBuilder::udp().frame_size(1000).build();
/// let bytes = p.encode();
/// assert_eq!(bytes.len(), 1000);
/// assert_eq!(Packet::decode(&bytes).unwrap(), p);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Packet {
    /// The Ethernet header.
    pub ethernet: EthernetHeader,
    /// The frame payload.
    pub payload: Payload,
}

impl Packet {
    /// Total encoded length in bytes.
    pub fn wire_len(&self) -> usize {
        ETHERNET_HEADER_LEN
            + match &self.payload {
                Payload::Arp(_) => crate::arp::ARP_LEN,
                Payload::Ipv4(ip) => IPV4_HEADER_LEN + ip.transport.wire_len(),
                Payload::Raw(b) => b.len(),
            }
    }

    /// Encodes the whole frame to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.ethernet.encode_into(&mut buf);
        match &self.payload {
            Payload::Arp(arp) => buf.extend_from_slice(&arp.encode()),
            Payload::Ipv4(ip) => {
                ip.header.encode_into(&mut buf);
                match &ip.transport {
                    Transport::Udp(udp, p) => {
                        udp.encode_into(&mut buf);
                        buf.extend_from_slice(p);
                    }
                    Transport::Tcp(tcp, p) => {
                        tcp.encode_into(&mut buf);
                        buf.extend_from_slice(p);
                    }
                    Transport::Other(_, p) => buf.extend_from_slice(p),
                }
            }
            Payload::Raw(b) => buf.extend_from_slice(b),
        }
        buf
    }

    /// The first `n` bytes of the wire encoding — what a switch puts in a
    /// `packet_in` when `miss_send_len = n` and the packet is buffered.
    pub fn header_slice(&self, n: usize) -> Vec<u8> {
        self.encode_prefix(n)
    }

    /// Encodes at most the first `n` wire bytes without materializing the
    /// rest of the frame. Identical to `encode()` truncated to `n`, but
    /// the payload tail past `n` is never copied — on the buffered-miss
    /// hot path this turns a full-frame serialization (1000 bytes in the
    /// paper's workload) into a `miss_send_len`-sized one.
    pub fn encode_prefix(&self, n: usize) -> Vec<u8> {
        let mut buf = Vec::with_capacity(n.min(self.wire_len()));
        let put = |bytes: &[u8], buf: &mut Vec<u8>| {
            let room = n - buf.len();
            buf.extend_from_slice(&bytes[..bytes.len().min(room)]);
        };
        let mut scratch = Vec::with_capacity(ETHERNET_HEADER_LEN + IPV4_HEADER_LEN);
        self.ethernet.encode_into(&mut scratch);
        put(&scratch, &mut buf);
        if buf.len() == n {
            return buf;
        }
        match &self.payload {
            Payload::Arp(arp) => put(&arp.encode(), &mut buf),
            Payload::Ipv4(ip) => {
                scratch.clear();
                ip.header.encode_into(&mut scratch);
                match &ip.transport {
                    Transport::Udp(udp, p) => {
                        udp.encode_into(&mut scratch);
                        put(&scratch, &mut buf);
                        put(p, &mut buf);
                    }
                    Transport::Tcp(tcp, p) => {
                        tcp.encode_into(&mut scratch);
                        put(&scratch, &mut buf);
                        put(p, &mut buf);
                    }
                    Transport::Other(_, p) => {
                        put(&scratch, &mut buf);
                        put(p, &mut buf);
                    }
                }
            }
            Payload::Raw(b) => put(b, &mut buf),
        }
        buf
    }

    /// Decodes a frame from wire bytes.
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] raised by the layer codecs, including truncation,
    /// checksum failures and inconsistent length fields.
    pub fn decode(buf: &[u8]) -> Result<Packet, DecodeError> {
        let ethernet = EthernetHeader::decode(buf)?;
        let rest = &buf[ETHERNET_HEADER_LEN..];
        let payload = match ethernet.ethertype {
            EtherType::Arp => Payload::Arp(ArpPacket::decode(rest)?),
            EtherType::Ipv4 => {
                let header = Ipv4Header::decode(rest)?;
                let total = header.total_len as usize;
                if total < IPV4_HEADER_LEN || total > rest.len() {
                    return Err(DecodeError::BadLengthField {
                        claimed: total,
                        actual: rest.len(),
                    });
                }
                let body = &rest[IPV4_HEADER_LEN..total];
                let transport = match header.protocol {
                    17 => {
                        let udp = UdpHeader::decode(body)?;
                        let plen = udp.payload_len().min(body.len() - UDP_HEADER_LEN);
                        Transport::Udp(udp, body[UDP_HEADER_LEN..UDP_HEADER_LEN + plen].to_vec())
                    }
                    6 => {
                        let tcp = TcpHeader::decode(body)?;
                        Transport::Tcp(tcp, body[TCP_HEADER_LEN..].to_vec())
                    }
                    other => Transport::Other(other, body.to_vec()),
                };
                Payload::Ipv4(Ipv4Packet { header, transport })
            }
            EtherType::Other(_) => Payload::Raw(rest.to_vec()),
        };
        Ok(Packet { ethernet, payload })
    }
}

/// Minimum UDP frame: Ethernet + IPv4 + UDP headers, no payload.
pub const MIN_UDP_FRAME: usize = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN;
/// Minimum TCP frame: Ethernet + IPv4 + TCP headers, no payload.
pub const MIN_TCP_FRAME: usize = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + TCP_HEADER_LEN;

enum Proto {
    Udp,
    Tcp(TcpFlags),
}

/// A builder for well-formed UDP/TCP test frames.
///
/// Defaults: `host1 (10.0.0.1, MAC 02:00:…:01) → host2 (10.0.0.2,
/// MAC 02:00:…:02)`, ports `1000 → 2000`, 100-byte frame — override what you
/// need. `frame_size` fixes the **total** Ethernet frame length, matching how
/// the paper configures `pktgen` ("Ethernet frame size of 1000 Bytes").
///
/// # Example
///
/// ```
/// use sdnbuf_net::{PacketBuilder, TcpFlags};
/// let syn = PacketBuilder::tcp().tcp_flags(TcpFlags::SYN).frame_size(54).build();
/// assert_eq!(syn.wire_len(), 54); // minimum TCP frame
/// ```
pub struct PacketBuilder {
    proto: Proto,
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    frame_size: usize,
    tos: u8,
}

impl PacketBuilder {
    fn new(proto: Proto) -> Self {
        PacketBuilder {
            proto,
            src_mac: MacAddr::from_host_index(1),
            dst_mac: MacAddr::from_host_index(2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 1000,
            dst_port: 2000,
            frame_size: 100,
            tos: 0,
        }
    }

    /// Starts a UDP frame.
    pub fn udp() -> Self {
        PacketBuilder::new(Proto::Udp)
    }

    /// Starts a TCP frame (no flags; use [`PacketBuilder::tcp_flags`]).
    pub fn tcp() -> Self {
        PacketBuilder::new(Proto::Tcp(TcpFlags::EMPTY))
    }

    /// Builds a broadcast gratuitous-ARP frame for `mac`/`ip` directly.
    pub fn gratuitous_arp(mac: MacAddr, ip: Ipv4Addr) -> Packet {
        Packet {
            ethernet: EthernetHeader {
                dst: MacAddr::BROADCAST,
                src: mac,
                ethertype: EtherType::Arp,
            },
            payload: Payload::Arp(ArpPacket::gratuitous(mac, ip)),
        }
    }

    /// Sets the source MAC.
    pub fn src_mac(mut self, mac: MacAddr) -> Self {
        self.src_mac = mac;
        self
    }

    /// Sets the destination MAC.
    pub fn dst_mac(mut self, mac: MacAddr) -> Self {
        self.dst_mac = mac;
        self
    }

    /// Sets the source IPv4 address.
    pub fn src_ip(mut self, ip: Ipv4Addr) -> Self {
        self.src_ip = ip;
        self
    }

    /// Sets the destination IPv4 address.
    pub fn dst_ip(mut self, ip: Ipv4Addr) -> Self {
        self.dst_ip = ip;
        self
    }

    /// Sets the source transport port.
    pub fn src_port(mut self, port: u16) -> Self {
        self.src_port = port;
        self
    }

    /// Sets the destination transport port.
    pub fn dst_port(mut self, port: u16) -> Self {
        self.dst_port = port;
        self
    }

    /// Sets the IP ToS/DSCP byte (e.g. `0xb8` for EF) — how traffic
    /// declares its QoS class to an egress scheduler.
    pub fn tos(mut self, tos: u8) -> Self {
        self.tos = tos;
        self
    }

    /// Sets the TCP flags (TCP frames only; ignored for UDP).
    pub fn tcp_flags(mut self, flags: TcpFlags) -> Self {
        if let Proto::Tcp(ref mut f) = self.proto {
            *f = flags;
        }
        self
    }

    /// Sets the total Ethernet frame length in bytes. Clamped up to the
    /// protocol's minimum header stack and down to 65 535.
    pub fn frame_size(mut self, bytes: usize) -> Self {
        self.frame_size = bytes.min(65_535);
        self
    }

    /// Builds the frame.
    pub fn build(self) -> Packet {
        let min = match self.proto {
            Proto::Udp => MIN_UDP_FRAME,
            Proto::Tcp(_) => MIN_TCP_FRAME,
        };
        let frame = self.frame_size.max(min);
        let payload_len = frame - min;
        let payload = vec![0u8; payload_len];
        let (protocol, transport) = match self.proto {
            Proto::Udp => (
                17,
                Transport::Udp(
                    UdpHeader::new(self.src_port, self.dst_port, payload_len),
                    payload,
                ),
            ),
            Proto::Tcp(flags) => (
                6,
                Transport::Tcp(TcpHeader::new(self.src_port, self.dst_port, flags), payload),
            ),
        };
        let transport_len = transport.wire_len();
        let mut header = Ipv4Header::new(self.src_ip, self.dst_ip, protocol, transport_len);
        header.dscp_ecn = self.tos;
        Packet {
            ethernet: EthernetHeader {
                dst: self.dst_mac,
                src: self.src_mac,
                ethertype: EtherType::Ipv4,
            },
            payload: Payload::Ipv4(Ipv4Packet { header, transport }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_frame_round_trip() {
        let p = PacketBuilder::udp().frame_size(1000).build();
        assert_eq!(p.wire_len(), 1000);
        let bytes = p.encode();
        assert_eq!(bytes.len(), 1000);
        assert_eq!(Packet::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn tcp_frame_round_trip() {
        let p = PacketBuilder::tcp()
            .tcp_flags(TcpFlags::SYN | TcpFlags::ACK)
            .frame_size(60)
            .build();
        assert_eq!(p.wire_len(), 60);
        assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn arp_frame_round_trip() {
        let p =
            PacketBuilder::gratuitous_arp(MacAddr::from_host_index(7), Ipv4Addr::new(10, 0, 0, 7));
        assert_eq!(p.wire_len(), 42);
        assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn frame_size_clamps_to_minimum() {
        let p = PacketBuilder::udp().frame_size(1).build();
        assert_eq!(p.wire_len(), MIN_UDP_FRAME);
        let p = PacketBuilder::tcp().frame_size(1).build();
        assert_eq!(p.wire_len(), MIN_TCP_FRAME);
    }

    #[test]
    fn frame_size_clamps_to_u16_total_len() {
        let p = PacketBuilder::udp().frame_size(1_000_000).build();
        assert_eq!(p.wire_len(), 65_535);
    }

    #[test]
    fn header_slice_truncates() {
        let p = PacketBuilder::udp().frame_size(1000).build();
        let h = p.header_slice(128);
        assert_eq!(h.len(), 128);
        assert_eq!(&h[..], &p.encode()[..128]);
        // Asking for more than the frame yields the whole frame.
        assert_eq!(p.header_slice(4096).len(), 1000);
    }

    #[test]
    fn encode_prefix_matches_truncated_encode_at_every_boundary() {
        for p in [
            PacketBuilder::udp().frame_size(1000).build(),
            PacketBuilder::tcp().frame_size(200).build(),
            PacketBuilder::gratuitous_arp(MacAddr::from_host_index(3), Ipv4Addr::new(10, 0, 0, 3)),
        ] {
            let full = p.encode();
            for n in [0, 1, 13, 14, 33, 34, 41, 42, 54, 128, full.len(), 4096] {
                assert_eq!(
                    p.encode_prefix(n),
                    &full[..n.min(full.len())],
                    "prefix {n} of {:?}",
                    p.ethernet.ethertype
                );
            }
        }
    }

    #[test]
    fn ip_total_len_consistent_with_transport() {
        let p = PacketBuilder::udp().frame_size(500).build();
        if let Payload::Ipv4(ip) = &p.payload {
            assert_eq!(ip.header.total_len as usize, 500 - ETHERNET_HEADER_LEN);
            assert_eq!(ip.header.protocol, 17);
        } else {
            panic!("expected IPv4");
        }
    }

    #[test]
    fn decode_rejects_inconsistent_ip_length() {
        let p = PacketBuilder::udp().frame_size(100).build();
        let mut bytes = p.encode();
        bytes.truncate(60); // frame shorter than total_len claims
        assert!(matches!(
            Packet::decode(&bytes),
            Err(DecodeError::BadLengthField { .. })
        ));
    }

    #[test]
    fn decode_unknown_ethertype_as_raw() {
        let mut bytes = PacketBuilder::udp().build().encode();
        bytes[12] = 0x86; // EtherType -> 0x86xx (not IPv4/ARP)
        bytes[13] = 0xdd;
        let p = Packet::decode(&bytes).unwrap();
        assert!(matches!(p.payload, Payload::Raw(_)));
        // And it re-encodes to the same bytes.
        assert_eq!(p.encode(), bytes);
    }

    #[test]
    fn decode_other_ip_protocol() {
        let p = PacketBuilder::udp().frame_size(100).build();
        let mut bytes = p.encode();
        // Rewrite the protocol field to ICMP (1) and fix the checksum.
        bytes[ETHERNET_HEADER_LEN + 9] = 1;
        bytes[ETHERNET_HEADER_LEN + 10] = 0;
        bytes[ETHERNET_HEADER_LEN + 11] = 0;
        let csum = crate::ipv4::internet_checksum(
            &bytes[ETHERNET_HEADER_LEN..ETHERNET_HEADER_LEN + IPV4_HEADER_LEN],
        );
        bytes[ETHERNET_HEADER_LEN + 10..ETHERNET_HEADER_LEN + 12]
            .copy_from_slice(&csum.to_be_bytes());
        let decoded = Packet::decode(&bytes).unwrap();
        if let Payload::Ipv4(ip) = &decoded.payload {
            assert!(matches!(ip.transport, Transport::Other(1, _)));
        } else {
            panic!("expected IPv4");
        }
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn builder_setters_apply() {
        let p = PacketBuilder::udp()
            .src_mac(MacAddr::from_host_index(9))
            .dst_mac(MacAddr::from_host_index(10))
            .src_ip(Ipv4Addr::new(1, 1, 1, 1))
            .dst_ip(Ipv4Addr::new(2, 2, 2, 2))
            .src_port(42)
            .dst_port(43)
            .build();
        assert_eq!(p.ethernet.src, MacAddr::from_host_index(9));
        assert_eq!(p.ethernet.dst, MacAddr::from_host_index(10));
        let key = crate::FlowKey::of(&p).unwrap();
        assert_eq!(key.src_ip, Ipv4Addr::new(1, 1, 1, 1));
        assert_eq!(key.dst_port, 43);
    }

    #[test]
    fn tos_is_applied_and_round_trips() {
        let p = PacketBuilder::udp().tos(0xb8).frame_size(100).build();
        if let Payload::Ipv4(ip) = &p.payload {
            assert_eq!(ip.header.dscp_ecn, 0xb8);
        } else {
            panic!("expected IPv4");
        }
        assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn tcp_flags_ignored_on_udp() {
        // Calling tcp_flags on a UDP builder is a no-op, not a panic.
        let p = PacketBuilder::udp().tcp_flags(TcpFlags::SYN).build();
        if let Payload::Ipv4(ip) = &p.payload {
            assert!(matches!(ip.transport, Transport::Udp(..)));
        } else {
            panic!("expected IPv4");
        }
    }
}
