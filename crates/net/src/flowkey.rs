//! The 5-tuple flow identity used by the flow-granularity buffer mechanism.

use crate::{Packet, Payload, Transport};
use std::fmt;
use std::net::Ipv4Addr;

/// An IP transport protocol, as carried in the IPv4 protocol field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IpProto {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Any other protocol number.
    Other(u8),
}

impl IpProto {
    /// The wire protocol number.
    pub fn as_u8(self) -> u8 {
        match self {
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(v) => v,
        }
    }
}

impl From<u8> for IpProto {
    fn from(v: u8) -> Self {
        match v {
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

impl fmt::Display for IpProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProto::Tcp => write!(f, "tcp"),
            IpProto::Udp => write!(f, "udp"),
            IpProto::Other(v) => write!(f, "proto{v}"),
        }
    }
}

/// The (source IP, source port, destination IP, destination port, protocol)
/// tuple that identifies a flow.
///
/// Algorithm 1 of the paper computes the shared `buffer_id` of a flow's
/// miss-match packets "based on the tuple of (src_ip, src_port, dst_ip,
/// dst_port, protocol)"; this type is that tuple.
///
/// # Example
///
/// ```
/// use sdnbuf_net::{FlowKey, PacketBuilder};
/// use std::net::Ipv4Addr;
///
/// let p1 = PacketBuilder::udp().src_port(100).build();
/// let p2 = PacketBuilder::udp().src_port(100).frame_size(1400).build();
/// let p3 = PacketBuilder::udp().src_port(200).build();
/// assert_eq!(FlowKey::of(&p1), FlowKey::of(&p2)); // same flow, different size
/// assert_ne!(FlowKey::of(&p1), FlowKey::of(&p3)); // different flow
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port (zero for non-TCP/UDP).
    pub src_port: u16,
    /// Destination transport port (zero for non-TCP/UDP).
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: IpProto,
}

impl FlowKey {
    /// Extracts the flow key of an IPv4 packet; `None` for non-IP traffic
    /// (e.g. ARP), which has no 5-tuple.
    pub fn of(packet: &Packet) -> Option<FlowKey> {
        let ip = match &packet.payload {
            Payload::Ipv4(ip) => ip,
            _ => return None,
        };
        let (src_port, dst_port, protocol) = match &ip.transport {
            Transport::Udp(udp, _) => (udp.src_port, udp.dst_port, IpProto::Udp),
            Transport::Tcp(tcp, _) => (tcp.src_port, tcp.dst_port, IpProto::Tcp),
            Transport::Other(proto, _) => (0, 0, IpProto::Other(*proto)),
        };
        Some(FlowKey {
            src_ip: ip.header.src,
            dst_ip: ip.header.dst,
            src_port,
            dst_port,
            protocol,
        })
    }

    /// The reverse direction of this flow (addresses and ports swapped).
    pub fn reversed(self) -> FlowKey {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}->{}:{}/{}",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.protocol
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PacketBuilder;

    #[test]
    fn udp_key_extraction() {
        let p = PacketBuilder::udp()
            .src_ip(Ipv4Addr::new(10, 0, 0, 1))
            .dst_ip(Ipv4Addr::new(10, 0, 0, 2))
            .src_port(1111)
            .dst_port(2222)
            .build();
        let k = FlowKey::of(&p).unwrap();
        assert_eq!(k.src_ip, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(k.dst_ip, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(k.src_port, 1111);
        assert_eq!(k.dst_port, 2222);
        assert_eq!(k.protocol, IpProto::Udp);
    }

    #[test]
    fn tcp_key_extraction() {
        let p = PacketBuilder::tcp().src_port(5).dst_port(6).build();
        let k = FlowKey::of(&p).unwrap();
        assert_eq!(k.protocol, IpProto::Tcp);
        assert_eq!((k.src_port, k.dst_port), (5, 6));
    }

    #[test]
    fn arp_has_no_key() {
        let p = PacketBuilder::gratuitous_arp(
            crate::MacAddr::from_host_index(1),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        assert_eq!(FlowKey::of(&p), None);
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let p = PacketBuilder::udp().src_port(1).dst_port(2).build();
        let k = FlowKey::of(&p).unwrap();
        let r = k.reversed();
        assert_eq!(r.src_port, 2);
        assert_eq!(r.dst_port, 1);
        assert_eq!(r.src_ip, k.dst_ip);
        assert_eq!(r.reversed(), k);
    }

    #[test]
    fn proto_conversions() {
        assert_eq!(IpProto::from(6), IpProto::Tcp);
        assert_eq!(IpProto::from(17), IpProto::Udp);
        assert_eq!(IpProto::from(1), IpProto::Other(1));
        assert_eq!(IpProto::Tcp.as_u8(), 6);
        assert_eq!(IpProto::Udp.as_u8(), 17);
        assert_eq!(IpProto::Other(89).as_u8(), 89);
    }

    #[test]
    fn display_is_readable() {
        let p = PacketBuilder::udp()
            .src_ip(Ipv4Addr::new(1, 2, 3, 4))
            .dst_ip(Ipv4Addr::new(5, 6, 7, 8))
            .src_port(9)
            .dst_port(10)
            .build();
        let k = FlowKey::of(&p).unwrap();
        assert_eq!(k.to_string(), "1.2.3.4:9->5.6.7.8:10/udp");
    }
}
