//! Ethernet II framing.

use crate::wire;
use crate::{DecodeError, MacAddr};
use std::fmt;

/// Length of an Ethernet II header (no 802.1Q tag): 14 bytes.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// The EtherType field of an Ethernet II frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (`0x0800`).
    Ipv4,
    /// ARP (`0x0806`).
    Arp,
    /// Any other EtherType, kept verbatim.
    Other(u16),
}

impl EtherType {
    /// The 16-bit wire value.
    pub fn as_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtherType::Ipv4 => write!(f, "IPv4"),
            EtherType::Arp => write!(f, "ARP"),
            EtherType::Other(v) => write!(f, "0x{v:04x}"),
        }
    }
}

/// An Ethernet II header.
///
/// # Example
///
/// ```
/// use sdnbuf_net::{EthernetHeader, EtherType, MacAddr, ETHERNET_HEADER_LEN};
/// let h = EthernetHeader {
///     dst: MacAddr::BROADCAST,
///     src: MacAddr::from_host_index(1),
///     ethertype: EtherType::Arp,
/// };
/// let mut buf = Vec::new();
/// h.encode_into(&mut buf);
/// assert_eq!(buf.len(), ETHERNET_HEADER_LEN);
/// assert_eq!(EthernetHeader::decode(&buf).unwrap(), h);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload EtherType.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Appends the 14-byte wire form to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.dst.octets());
        buf.extend_from_slice(&self.src.octets());
        buf.extend_from_slice(&self.ethertype.as_u16().to_be_bytes());
    }

    /// Decodes a header from the start of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if fewer than 14 bytes are present.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        wire::need(buf, ETHERNET_HEADER_LEN)?;
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        let ethertype = wire::get_u16(buf, 12)?.into();
        Ok(EthernetHeader {
            dst: dst.into(),
            src: src.into(),
            ethertype,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EthernetHeader {
        EthernetHeader {
            dst: MacAddr::new([1, 2, 3, 4, 5, 6]),
            src: MacAddr::new([7, 8, 9, 10, 11, 12]),
            ethertype: EtherType::Ipv4,
        }
    }

    #[test]
    fn round_trip() {
        let h = sample();
        let mut buf = Vec::new();
        h.encode_into(&mut buf);
        assert_eq!(buf.len(), ETHERNET_HEADER_LEN);
        assert_eq!(EthernetHeader::decode(&buf).unwrap(), h);
    }

    #[test]
    fn wire_layout_is_big_endian() {
        let h = sample();
        let mut buf = Vec::new();
        h.encode_into(&mut buf);
        assert_eq!(&buf[0..6], &[1, 2, 3, 4, 5, 6]);
        assert_eq!(&buf[6..12], &[7, 8, 9, 10, 11, 12]);
        assert_eq!(&buf[12..14], &[0x08, 0x00]);
    }

    #[test]
    fn truncated_fails() {
        let err = EthernetHeader::decode(&[0u8; 13]).unwrap_err();
        assert_eq!(
            err,
            DecodeError::Truncated {
                needed: 14,
                got: 13
            }
        );
    }

    #[test]
    fn ethertype_conversions() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from(0x86dd), EtherType::Other(0x86dd));
        assert_eq!(EtherType::Other(0x1234).as_u16(), 0x1234);
        assert_eq!(EtherType::Ipv4.to_string(), "IPv4");
        assert_eq!(EtherType::Arp.to_string(), "ARP");
        assert_eq!(EtherType::Other(0x88cc).to_string(), "0x88cc");
    }

    #[test]
    fn trailing_bytes_are_ignored() {
        let h = sample();
        let mut buf = Vec::new();
        h.encode_into(&mut buf);
        buf.extend_from_slice(&[0xAA; 32]);
        assert_eq!(EthernetHeader::decode(&buf).unwrap(), h);
    }
}
