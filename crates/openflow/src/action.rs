//! OpenFlow 1.0 actions.

use crate::wire;
use crate::{OfpError, PortNo};
use std::fmt;

const OFPAT_OUTPUT: u16 = 0;
const OFPAT_SET_NW_TOS: u16 = 8;
const OFPAT_ENQUEUE: u16 = 11;
const OUTPUT_LEN: usize = 8;
const SET_NW_TOS_LEN: usize = 8;
const ENQUEUE_LEN: usize = 16;

/// An OpenFlow 1.0 action.
///
/// The actions the testbed exercises are implemented: `OUTPUT` (the action
/// every reactive forwarding decision uses), `SET_NW_TOS` and `ENQUEUE`
/// (used by the egress-QoS extension, the paper's stated future work). An
/// empty action list means *drop*.
///
/// # Example
///
/// ```
/// use sdnbuf_openflow::{Action, PortNo};
/// let a = Action::Output { port: PortNo(2), max_len: 0 };
/// let mut buf = Vec::new();
/// a.encode_into(&mut buf);
/// assert_eq!(buf.len(), a.wire_len());
/// let (back, used) = Action::decode(&buf).unwrap();
/// assert_eq!(back, a);
/// assert_eq!(used, 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Action {
    /// Forward out a port. `max_len` caps bytes sent when the port is
    /// `CONTROLLER`.
    Output {
        /// Destination port.
        port: PortNo,
        /// Max bytes to send when outputting to the controller.
        max_len: u16,
    },
    /// Rewrite the IP ToS/DSCP bits.
    SetNwTos(
        /// The new ToS value.
        u8,
    ),
    /// Forward through a specific egress queue of a port (`OFPAT_ENQUEUE`)
    /// — how OpenFlow 1.0 expresses QoS scheduling.
    Enqueue {
        /// Destination port.
        port: PortNo,
        /// Queue on that port.
        queue_id: u32,
    },
}

impl Action {
    /// Convenience constructor for a plain output action.
    pub fn output(port: PortNo) -> Action {
        Action::Output { port, max_len: 0 }
    }

    /// Encoded length in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            Action::Output { .. } => OUTPUT_LEN,
            Action::SetNwTos(_) => SET_NW_TOS_LEN,
            Action::Enqueue { .. } => ENQUEUE_LEN,
        }
    }

    /// Appends the wire form.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Action::Output { port, max_len } => {
                buf.extend_from_slice(&OFPAT_OUTPUT.to_be_bytes());
                buf.extend_from_slice(&(OUTPUT_LEN as u16).to_be_bytes());
                buf.extend_from_slice(&port.as_u16().to_be_bytes());
                buf.extend_from_slice(&max_len.to_be_bytes());
            }
            Action::SetNwTos(tos) => {
                buf.extend_from_slice(&OFPAT_SET_NW_TOS.to_be_bytes());
                buf.extend_from_slice(&(SET_NW_TOS_LEN as u16).to_be_bytes());
                buf.push(*tos);
                buf.extend_from_slice(&[0, 0, 0]); // pad
            }
            Action::Enqueue { port, queue_id } => {
                buf.extend_from_slice(&OFPAT_ENQUEUE.to_be_bytes());
                buf.extend_from_slice(&(ENQUEUE_LEN as u16).to_be_bytes());
                buf.extend_from_slice(&port.as_u16().to_be_bytes());
                buf.extend_from_slice(&[0u8; 6]); // pad
                buf.extend_from_slice(&queue_id.to_be_bytes());
            }
        }
    }

    /// Decodes one action from the start of `buf`; returns the action and
    /// the bytes consumed.
    ///
    /// # Errors
    ///
    /// [`OfpError::Truncated`] or [`OfpError::BadAction`] for unknown types
    /// or inconsistent length fields.
    pub fn decode(buf: &[u8]) -> Result<(Action, usize), OfpError> {
        let kind = wire::get_u16(buf, 0)?;
        let len = wire::get_u16(buf, 2)?;
        match (kind, len as usize) {
            (OFPAT_OUTPUT, OUTPUT_LEN) => {
                wire::need(buf, OUTPUT_LEN)?;
                Ok((
                    Action::Output {
                        port: PortNo(wire::get_u16(buf, 4)?),
                        max_len: wire::get_u16(buf, 6)?,
                    },
                    OUTPUT_LEN,
                ))
            }
            (OFPAT_SET_NW_TOS, SET_NW_TOS_LEN) => {
                wire::need(buf, SET_NW_TOS_LEN)?;
                Ok((Action::SetNwTos(wire::get_u8(buf, 4)?), SET_NW_TOS_LEN))
            }
            (OFPAT_ENQUEUE, ENQUEUE_LEN) => {
                wire::need(buf, ENQUEUE_LEN)?;
                Ok((
                    Action::Enqueue {
                        port: PortNo(wire::get_u16(buf, 4)?),
                        queue_id: wire::get_u32(buf, 12)?,
                    },
                    ENQUEUE_LEN,
                ))
            }
            _ => Err(OfpError::BadAction { kind, len }),
        }
    }

    /// Encodes a whole action list.
    pub fn encode_list(actions: &[Action], buf: &mut Vec<u8>) {
        for a in actions {
            a.encode_into(buf);
        }
    }

    /// Total encoded length of an action list.
    pub fn list_len(actions: &[Action]) -> usize {
        actions.iter().map(Action::wire_len).sum()
    }

    /// Decodes exactly `len` bytes of actions.
    ///
    /// # Errors
    ///
    /// Any per-action decode error, or [`OfpError::Truncated`] if `len`
    /// exceeds the buffer.
    pub fn decode_list(buf: &[u8], len: usize) -> Result<Vec<Action>, OfpError> {
        wire::need(buf, len)?;
        let mut actions = Vec::new();
        let mut at = 0;
        while at < len {
            let (a, used) = Action::decode(&buf[at..len])?;
            actions.push(a);
            at += used;
        }
        Ok(actions)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Output { port, max_len: 0 } => write!(f, "output:{port}"),
            Action::Output { port, max_len } => write!(f, "output:{port}(max {max_len}B)"),
            Action::SetNwTos(tos) => write!(f, "set_tos:{tos}"),
            Action::Enqueue { port, queue_id } => write!(f, "enqueue:{port}:q{queue_id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_round_trip() {
        let a = Action::Output {
            port: PortNo::CONTROLLER,
            max_len: 128,
        };
        let mut buf = Vec::new();
        a.encode_into(&mut buf);
        assert_eq!(buf.len(), 8);
        assert_eq!(Action::decode(&buf).unwrap(), (a, 8));
    }

    #[test]
    fn set_tos_round_trip() {
        let a = Action::SetNwTos(0xb8);
        let mut buf = Vec::new();
        a.encode_into(&mut buf);
        assert_eq!(Action::decode(&buf).unwrap(), (a, 8));
    }

    #[test]
    fn enqueue_round_trip() {
        let a = Action::Enqueue {
            port: PortNo(2),
            queue_id: 7,
        };
        let mut buf = Vec::new();
        a.encode_into(&mut buf);
        assert_eq!(buf.len(), 16);
        assert_eq!(Action::decode(&buf).unwrap(), (a, 16));
        assert_eq!(a.to_string(), "enqueue:port2:q7");
    }

    #[test]
    fn list_round_trip() {
        let actions = vec![
            Action::SetNwTos(4),
            Action::output(PortNo(2)),
            Action::Enqueue {
                port: PortNo(1),
                queue_id: 0,
            },
            Action::output(PortNo::FLOOD),
        ];
        let mut buf = Vec::new();
        Action::encode_list(&actions, &mut buf);
        assert_eq!(buf.len(), Action::list_len(&actions));
        assert_eq!(Action::decode_list(&buf, buf.len()).unwrap(), actions);
    }

    #[test]
    fn empty_list_is_drop() {
        assert_eq!(Action::list_len(&[]), 0);
        assert_eq!(Action::decode_list(&[], 0).unwrap(), vec![]);
    }

    #[test]
    fn unknown_action_rejected() {
        let buf = [0x00, 0x63, 0x00, 0x08, 0, 0, 0, 0]; // type 99
        assert_eq!(
            Action::decode(&buf),
            Err(OfpError::BadAction { kind: 99, len: 8 })
        );
    }

    #[test]
    fn bad_length_rejected() {
        let buf = [0x00, 0x00, 0x00, 0x04, 0, 0, 0, 0]; // output with len 4
        assert!(matches!(
            Action::decode(&buf),
            Err(OfpError::BadAction { kind: 0, len: 4 })
        ));
    }

    #[test]
    fn truncated_list_rejected() {
        let a = Action::output(PortNo(1));
        let mut buf = Vec::new();
        a.encode_into(&mut buf);
        assert!(Action::decode_list(&buf, 16).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Action::output(PortNo(2)).to_string(), "output:port2");
        assert_eq!(
            Action::Output {
                port: PortNo::CONTROLLER,
                max_len: 64
            }
            .to_string(),
            "output:CONTROLLER(max 64B)"
        );
        assert_eq!(Action::SetNwTos(8).to_string(), "set_tos:8");
    }
}
