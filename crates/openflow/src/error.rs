//! Codec errors.

use std::error::Error;
use std::fmt;

/// An error produced while decoding an OpenFlow message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OfpError {
    /// The buffer ended before the message was complete.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The version byte was not OpenFlow 1.0 (`0x01`).
    BadVersion(u8),
    /// An unknown message type code.
    UnknownMsgType(u8),
    /// The header length field disagrees with the bytes present.
    BadLength {
        /// Length claimed by the header.
        claimed: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// An action entry was malformed (unknown type or bad length).
    BadAction {
        /// Action type code found.
        kind: u16,
        /// Action length field found.
        len: u16,
    },
    /// A stats message used an unsupported stats type.
    UnknownStatsType(u16),
    /// A vendor/experimenter payload was malformed.
    BadVendorPayload,
}

impl fmt::Display for OfpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfpError::Truncated { needed, got } => {
                write!(f, "truncated message: needed {needed} bytes, got {got}")
            }
            OfpError::BadVersion(v) => write!(f, "unsupported OpenFlow version {v:#04x}"),
            OfpError::UnknownMsgType(t) => write!(f, "unknown message type {t}"),
            OfpError::BadLength { claimed, actual } => write!(
                f,
                "header length {claimed} disagrees with {actual} bytes present"
            ),
            OfpError::BadAction { kind, len } => {
                write!(f, "malformed action: type {kind}, length {len}")
            }
            OfpError::UnknownStatsType(t) => write!(f, "unknown stats type {t}"),
            OfpError::BadVendorPayload => write!(f, "malformed vendor payload"),
        }
    }
}

impl Error for OfpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(OfpError::Truncated { needed: 8, got: 3 }
            .to_string()
            .contains("needed 8"));
        assert!(OfpError::BadVersion(4).to_string().contains("0x04"));
        assert!(OfpError::UnknownMsgType(99).to_string().contains("99"));
        assert!(OfpError::BadLength {
            claimed: 100,
            actual: 50
        }
        .to_string()
        .contains("100"));
        assert!(OfpError::BadAction { kind: 7, len: 3 }
            .to_string()
            .contains("7"));
        assert!(OfpError::UnknownStatsType(5).to_string().contains("5"));
        assert!(!OfpError::BadVendorPayload.to_string().is_empty());
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<OfpError>();
    }
}
