//! OpenFlow 1.0 port numbers.

use std::fmt;

/// An OpenFlow 1.0 port number (16 bits), including the reserved virtual
/// ports.
///
/// # Example
///
/// ```
/// use sdnbuf_openflow::PortNo;
/// assert!(PortNo(1).is_physical());
/// assert!(!PortNo::FLOOD.is_physical());
/// assert_eq!(PortNo::CONTROLLER.to_string(), "CONTROLLER");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortNo(pub u16);

impl PortNo {
    /// Maximum physical port number (`OFPP_MAX`).
    pub const MAX: PortNo = PortNo(0xff00);
    /// Send back out the input port (`OFPP_IN_PORT`).
    pub const IN_PORT: PortNo = PortNo(0xfff8);
    /// Submit to the flow table (`OFPP_TABLE`).
    pub const TABLE: PortNo = PortNo(0xfff9);
    /// Process with normal L2/L3 switching (`OFPP_NORMAL`).
    pub const NORMAL: PortNo = PortNo(0xfffa);
    /// All physical ports except input and those disabled (`OFPP_FLOOD`).
    pub const FLOOD: PortNo = PortNo(0xfffb);
    /// All physical ports except input (`OFPP_ALL`).
    pub const ALL: PortNo = PortNo(0xfffc);
    /// Send to controller (`OFPP_CONTROLLER`).
    pub const CONTROLLER: PortNo = PortNo(0xfffd);
    /// Local openflow "port" (`OFPP_LOCAL`).
    pub const LOCAL: PortNo = PortNo(0xfffe);
    /// Not associated with any port (`OFPP_NONE`).
    pub const NONE: PortNo = PortNo(0xffff);

    /// `true` for real, addressable switch ports.
    pub fn is_physical(self) -> bool {
        self.0 >= 1 && self <= PortNo::MAX
    }

    /// The raw 16-bit value.
    pub const fn as_u16(self) -> u16 {
        self.0
    }
}

impl From<u16> for PortNo {
    fn from(v: u16) -> Self {
        PortNo(v)
    }
}

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PortNo::IN_PORT => write!(f, "IN_PORT"),
            PortNo::TABLE => write!(f, "TABLE"),
            PortNo::NORMAL => write!(f, "NORMAL"),
            PortNo::FLOOD => write!(f, "FLOOD"),
            PortNo::ALL => write!(f, "ALL"),
            PortNo::CONTROLLER => write!(f, "CONTROLLER"),
            PortNo::LOCAL => write!(f, "LOCAL"),
            PortNo::NONE => write!(f, "NONE"),
            PortNo(n) => write!(f, "port{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physicality() {
        assert!(PortNo(1).is_physical());
        assert!(PortNo::MAX.is_physical());
        assert!(!PortNo(0).is_physical());
        assert!(!PortNo::FLOOD.is_physical());
        assert!(!PortNo::CONTROLLER.is_physical());
        assert!(!PortNo::NONE.is_physical());
    }

    #[test]
    fn display_names() {
        assert_eq!(PortNo(3).to_string(), "port3");
        assert_eq!(PortNo::FLOOD.to_string(), "FLOOD");
        assert_eq!(PortNo::NONE.to_string(), "NONE");
    }

    #[test]
    fn from_u16_round_trips() {
        let p: PortNo = 7u16.into();
        assert_eq!(p.as_u16(), 7);
    }
}
