//! Big-endian cursor helpers shared by the message codecs.

use crate::OfpError;

pub fn get_u8(buf: &[u8], at: usize) -> Result<u8, OfpError> {
    buf.get(at).copied().ok_or(OfpError::Truncated {
        needed: at + 1,
        got: buf.len(),
    })
}

pub fn get_u16(buf: &[u8], at: usize) -> Result<u16, OfpError> {
    need(buf, at + 2)?;
    Ok(u16::from_be_bytes([buf[at], buf[at + 1]]))
}

pub fn get_u32(buf: &[u8], at: usize) -> Result<u32, OfpError> {
    need(buf, at + 4)?;
    Ok(u32::from_be_bytes([
        buf[at],
        buf[at + 1],
        buf[at + 2],
        buf[at + 3],
    ]))
}

pub fn get_u64(buf: &[u8], at: usize) -> Result<u64, OfpError> {
    need(buf, at + 8)?;
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    Ok(u64::from_be_bytes(b))
}

pub fn need(buf: &[u8], len: usize) -> Result<(), OfpError> {
    if buf.len() < len {
        Err(OfpError::Truncated {
            needed: len,
            got: buf.len(),
        })
    } else {
        Ok(())
    }
}
