//! The vendor/experimenter extension carrying the paper's flow-granularity
//! buffer mechanism negotiation.
//!
//! Section V of the paper notes the proposed mechanism "requires to extend
//! the OpenFlow protocol". OpenFlow's sanctioned extension point in v1.0 is
//! the `OFPT_VENDOR` message; this module defines the payloads a switch and
//! controller exchange to negotiate flow-granularity buffering:
//!
//! * [`FlowBufferExt::Announce`] — switch → controller: "I support
//!   flow-granularity buffering with this capacity and re-request timeout."
//! * [`FlowBufferExt::Configure`] — controller → switch: enable or disable
//!   the mechanism and set the timeout of Algorithm 1, line 12.

use crate::wire;
use crate::OfpError;

/// Vendor/experimenter id used by this reproduction's extension messages.
pub const FLOW_BUFFER_VENDOR_ID: u32 = 0x00C0_FFEE;

const SUBTYPE_ANNOUNCE: u16 = 1;
const SUBTYPE_CONFIGURE: u16 = 2;
const PAYLOAD_LEN: usize = 12;

/// Payload of a flow-granularity-buffer vendor message.
///
/// # Example
///
/// ```
/// use sdnbuf_openflow::{FlowBufferExt, OfpMessage};
///
/// let msg = OfpMessage::from(FlowBufferExt::Announce {
///     capacity: 256,
///     timeout_ms: 50,
/// });
/// let bytes = msg.encode(1);
/// let (back, _) = OfpMessage::decode(&bytes).unwrap();
/// let ext = FlowBufferExt::from_message(&back).unwrap().unwrap();
/// assert_eq!(ext, FlowBufferExt::Announce { capacity: 256, timeout_ms: 50 });
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlowBufferExt {
    /// Switch → controller capability announcement.
    Announce {
        /// Total buffer units available.
        capacity: u32,
        /// Re-request timeout (Algorithm 1, line 12) in milliseconds.
        timeout_ms: u32,
    },
    /// Controller → switch configuration.
    Configure {
        /// Whether flow-granularity buffering is enabled.
        enabled: bool,
        /// Re-request timeout in milliseconds.
        timeout_ms: u32,
    },
}

impl FlowBufferExt {
    /// Encodes the vendor-message payload (excluding the vendor id).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(PAYLOAD_LEN);
        match *self {
            FlowBufferExt::Announce {
                capacity,
                timeout_ms,
            } => {
                buf.extend_from_slice(&SUBTYPE_ANNOUNCE.to_be_bytes());
                buf.extend_from_slice(&[0, 0]); // pad
                buf.extend_from_slice(&capacity.to_be_bytes());
                buf.extend_from_slice(&timeout_ms.to_be_bytes());
            }
            FlowBufferExt::Configure {
                enabled,
                timeout_ms,
            } => {
                buf.extend_from_slice(&SUBTYPE_CONFIGURE.to_be_bytes());
                buf.extend_from_slice(&[0, 0]); // pad
                buf.extend_from_slice(&u32::from(enabled).to_be_bytes());
                buf.extend_from_slice(&timeout_ms.to_be_bytes());
            }
        }
        buf
    }

    /// Decodes a vendor-message payload.
    ///
    /// # Errors
    ///
    /// [`OfpError::BadVendorPayload`] for unknown subtypes or wrong sizes.
    pub fn decode_payload(data: &[u8]) -> Result<FlowBufferExt, OfpError> {
        if data.len() != PAYLOAD_LEN {
            return Err(OfpError::BadVendorPayload);
        }
        let subtype = wire::get_u16(data, 0)?;
        match subtype {
            SUBTYPE_ANNOUNCE => Ok(FlowBufferExt::Announce {
                capacity: wire::get_u32(data, 4)?,
                timeout_ms: wire::get_u32(data, 8)?,
            }),
            SUBTYPE_CONFIGURE => {
                let raw = wire::get_u32(data, 4)?;
                if raw > 1 {
                    return Err(OfpError::BadVendorPayload);
                }
                Ok(FlowBufferExt::Configure {
                    enabled: raw == 1,
                    timeout_ms: wire::get_u32(data, 8)?,
                })
            }
            _ => Err(OfpError::BadVendorPayload),
        }
    }

    /// Extracts a flow-buffer extension from a decoded message.
    ///
    /// Returns `None` for messages that are not flow-buffer vendor messages;
    /// `Some(Err(_))` when the message claims to be one but is malformed.
    pub fn from_message(msg: &crate::OfpMessage) -> Option<Result<FlowBufferExt, OfpError>> {
        match msg {
            crate::OfpMessage::Vendor(v) if v.vendor == FLOW_BUFFER_VENDOR_ID => {
                Some(FlowBufferExt::decode_payload(&v.data))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn announce_round_trip() {
        let e = FlowBufferExt::Announce {
            capacity: 256,
            timeout_ms: 50,
        };
        assert_eq!(FlowBufferExt::decode_payload(&e.encode_payload()), Ok(e));
    }

    #[test]
    fn configure_round_trip() {
        for enabled in [true, false] {
            let e = FlowBufferExt::Configure {
                enabled,
                timeout_ms: 10,
            };
            assert_eq!(FlowBufferExt::decode_payload(&e.encode_payload()), Ok(e));
        }
    }

    #[test]
    fn rejects_wrong_size() {
        assert_eq!(
            FlowBufferExt::decode_payload(&[0; 11]),
            Err(OfpError::BadVendorPayload)
        );
        assert_eq!(
            FlowBufferExt::decode_payload(&[0; 13]),
            Err(OfpError::BadVendorPayload)
        );
    }

    #[test]
    fn rejects_unknown_subtype() {
        let mut p = FlowBufferExt::Announce {
            capacity: 1,
            timeout_ms: 1,
        }
        .encode_payload();
        p[1] = 9;
        assert_eq!(
            FlowBufferExt::decode_payload(&p),
            Err(OfpError::BadVendorPayload)
        );
    }

    #[test]
    fn rejects_non_boolean_enable() {
        let mut p = FlowBufferExt::Configure {
            enabled: true,
            timeout_ms: 1,
        }
        .encode_payload();
        p[7] = 2;
        assert_eq!(
            FlowBufferExt::decode_payload(&p),
            Err(OfpError::BadVendorPayload)
        );
    }
}
