//! The common `ofp_header` and message type codes.

use crate::wire;
use crate::{OfpError, OFP_HEADER_LEN, OFP_VERSION};
use std::fmt;

/// OpenFlow 1.0 message type codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // names mirror the specification 1:1
pub enum MsgType {
    Hello = 0,
    Error = 1,
    EchoRequest = 2,
    EchoReply = 3,
    Vendor = 4,
    FeaturesRequest = 5,
    FeaturesReply = 6,
    GetConfigRequest = 7,
    GetConfigReply = 8,
    SetConfig = 9,
    PacketIn = 10,
    FlowRemoved = 11,
    PortStatus = 12,
    PacketOut = 13,
    FlowMod = 14,
    PortMod = 15,
    StatsRequest = 16,
    StatsReply = 17,
    BarrierRequest = 18,
    BarrierReply = 19,
    QueueGetConfigRequest = 20,
    QueueGetConfigReply = 21,
}

impl MsgType {
    /// Parses a wire type code.
    ///
    /// # Errors
    ///
    /// [`OfpError::UnknownMsgType`] for codes this implementation does not
    /// speak.
    pub fn from_u8(v: u8) -> Result<MsgType, OfpError> {
        use MsgType::*;
        Ok(match v {
            0 => Hello,
            1 => Error,
            2 => EchoRequest,
            3 => EchoReply,
            4 => Vendor,
            5 => FeaturesRequest,
            6 => FeaturesReply,
            7 => GetConfigRequest,
            8 => GetConfigReply,
            9 => SetConfig,
            10 => PacketIn,
            11 => FlowRemoved,
            12 => PortStatus,
            13 => PacketOut,
            14 => FlowMod,
            15 => PortMod,
            16 => StatsRequest,
            17 => StatsReply,
            18 => BarrierRequest,
            19 => BarrierReply,
            20 => QueueGetConfigRequest,
            21 => QueueGetConfigReply,
            other => return Err(OfpError::UnknownMsgType(other)),
        })
    }
}

impl fmt::Display for MsgType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The 8-byte common header at the front of every OpenFlow message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OfpHeader {
    /// Message type.
    pub msg_type: MsgType,
    /// Total message length including this header.
    pub length: u16,
    /// Transaction id echoed between request and reply.
    pub xid: u32,
}

impl OfpHeader {
    /// Appends the 8-byte wire form. The length field must already include
    /// the header itself.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.push(OFP_VERSION);
        buf.push(self.msg_type as u8);
        buf.extend_from_slice(&self.length.to_be_bytes());
        buf.extend_from_slice(&self.xid.to_be_bytes());
    }

    /// Decodes and validates the header from the start of `buf`.
    ///
    /// # Errors
    ///
    /// [`OfpError::Truncated`] on short input, [`OfpError::BadVersion`] for
    /// non-1.0 messages, [`OfpError::UnknownMsgType`], and
    /// [`OfpError::BadLength`] when the length field exceeds the bytes
    /// available or is shorter than the header itself.
    pub fn decode(buf: &[u8]) -> Result<OfpHeader, OfpError> {
        wire::need(buf, OFP_HEADER_LEN)?;
        let version = buf[0];
        if version != OFP_VERSION {
            return Err(OfpError::BadVersion(version));
        }
        let msg_type = MsgType::from_u8(buf[1])?;
        let length = wire::get_u16(buf, 2)?;
        if (length as usize) < OFP_HEADER_LEN || length as usize > buf.len() {
            return Err(OfpError::BadLength {
                claimed: length as usize,
                actual: buf.len(),
            });
        }
        let xid = wire::get_u32(buf, 4)?;
        Ok(OfpHeader {
            msg_type,
            length,
            xid,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = OfpHeader {
            msg_type: MsgType::PacketIn,
            length: 100,
            xid: 0xdeadbeef,
        };
        let mut buf = Vec::new();
        h.encode_into(&mut buf);
        buf.resize(100, 0);
        assert_eq!(OfpHeader::decode(&buf).unwrap(), h);
    }

    #[test]
    fn all_types_round_trip() {
        for code in 0u8..=21 {
            let t = MsgType::from_u8(code).unwrap();
            assert_eq!(t as u8, code);
        }
        assert_eq!(MsgType::from_u8(22), Err(OfpError::UnknownMsgType(22)));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = vec![0x04, 0, 0, 8, 0, 0, 0, 0];
        assert_eq!(OfpHeader::decode(&buf), Err(OfpError::BadVersion(4)));
        buf[0] = OFP_VERSION;
        assert!(OfpHeader::decode(&buf).is_ok());
    }

    #[test]
    fn rejects_bad_lengths() {
        // Length field larger than the buffer.
        let buf = vec![OFP_VERSION, 0, 0, 16, 0, 0, 0, 0];
        assert_eq!(
            OfpHeader::decode(&buf),
            Err(OfpError::BadLength {
                claimed: 16,
                actual: 8
            })
        );
        // Length field shorter than the header.
        let buf = vec![OFP_VERSION, 0, 0, 4, 0, 0, 0, 0];
        assert!(matches!(
            OfpHeader::decode(&buf),
            Err(OfpError::BadLength { claimed: 4, .. })
        ));
    }

    #[test]
    fn truncated_fails() {
        assert!(matches!(
            OfpHeader::decode(&[1, 0, 0]),
            Err(OfpError::Truncated { .. })
        ));
    }

    #[test]
    fn display_is_debug_name() {
        assert_eq!(MsgType::PacketIn.to_string(), "PacketIn");
    }
}
