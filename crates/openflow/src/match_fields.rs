//! The OpenFlow 1.0 `ofp_match` structure, its wildcards, and packet-field
//! extraction for matching.

use crate::wire;
use crate::{OfpError, PortNo, OFP_MATCH_LEN};
use sdnbuf_net::{EtherType, FlowKey, MacAddr, Packet, Payload, Transport};
use std::fmt;
use std::net::Ipv4Addr;

/// `OFP_VLAN_NONE`: no VLAN tag present.
const OFP_VLAN_NONE: u16 = 0xffff;

/// The OpenFlow 1.0 wildcard bitmap.
///
/// Bits 0–7 and 20–21 wildcard whole fields; bits 8–13 and 14–19 hold
/// "ignore the N least-significant bits" counts for the IPv4 source and
/// destination addresses respectively (N ≥ 32 wildcards the whole address).
///
/// # Example
///
/// ```
/// use sdnbuf_openflow::Wildcards;
/// let w = Wildcards::ALL.without(Wildcards::NW_PROTO);
/// assert!(!w.is_wildcarded(Wildcards::NW_PROTO));
/// assert!(w.is_wildcarded(Wildcards::IN_PORT));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Wildcards(u32);

impl Wildcards {
    /// Wildcard the ingress port.
    pub const IN_PORT: Wildcards = Wildcards(1 << 0);
    /// Wildcard the VLAN id.
    pub const DL_VLAN: Wildcards = Wildcards(1 << 1);
    /// Wildcard the Ethernet source.
    pub const DL_SRC: Wildcards = Wildcards(1 << 2);
    /// Wildcard the Ethernet destination.
    pub const DL_DST: Wildcards = Wildcards(1 << 3);
    /// Wildcard the EtherType.
    pub const DL_TYPE: Wildcards = Wildcards(1 << 4);
    /// Wildcard the IP protocol.
    pub const NW_PROTO: Wildcards = Wildcards(1 << 5);
    /// Wildcard the transport source port.
    pub const TP_SRC: Wildcards = Wildcards(1 << 6);
    /// Wildcard the transport destination port.
    pub const TP_DST: Wildcards = Wildcards(1 << 7);
    /// Wildcard the VLAN priority.
    pub const DL_VLAN_PCP: Wildcards = Wildcards(1 << 20);
    /// Wildcard the IP ToS.
    pub const NW_TOS: Wildcards = Wildcards(1 << 21);
    /// Everything wildcarded (`OFPFW_ALL`).
    pub const ALL: Wildcards = Wildcards((1 << 22) - 1);
    /// Nothing wildcarded: a fully exact match.
    pub const NONE: Wildcards = Wildcards(0);

    const NW_SRC_SHIFT: u32 = 8;
    const NW_DST_SHIFT: u32 = 14;

    /// Creates a bitmap from the raw wire value (masked to defined bits).
    pub fn from_bits(bits: u32) -> Self {
        Wildcards(bits & Wildcards::ALL.0)
    }

    /// The raw wire value.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Returns this bitmap with the given whole-field wildcard(s) added.
    #[must_use]
    pub fn with(self, other: Wildcards) -> Wildcards {
        Wildcards(self.0 | other.0)
    }

    /// Returns this bitmap with the given whole-field wildcard(s) removed.
    #[must_use]
    pub fn without(self, other: Wildcards) -> Wildcards {
        Wildcards(self.0 & !other.0)
    }

    /// `true` when all bits in `flag` are set.
    pub fn is_wildcarded(self, flag: Wildcards) -> bool {
        self.0 & flag.0 == flag.0
    }

    /// Number of wildcarded low bits of the IPv4 source (0–63 on the wire;
    /// ≥ 32 means fully wildcarded).
    pub fn nw_src_bits(self) -> u32 {
        (self.0 >> Self::NW_SRC_SHIFT) & 0x3f
    }

    /// Number of wildcarded low bits of the IPv4 destination.
    pub fn nw_dst_bits(self) -> u32 {
        (self.0 >> Self::NW_DST_SHIFT) & 0x3f
    }

    /// Returns this bitmap with the IPv4-source wildcard bit count set.
    #[must_use]
    pub fn with_nw_src_bits(self, bits: u32) -> Wildcards {
        let b = bits.min(63);
        Wildcards((self.0 & !(0x3f << Self::NW_SRC_SHIFT)) | (b << Self::NW_SRC_SHIFT))
    }

    /// Returns this bitmap with the IPv4-destination wildcard bit count set.
    #[must_use]
    pub fn with_nw_dst_bits(self, bits: u32) -> Wildcards {
        let b = bits.min(63);
        Wildcards((self.0 & !(0x3f << Self::NW_DST_SHIFT)) | (b << Self::NW_DST_SHIFT))
    }
}

fn prefix_mask(wildcarded_bits: u32) -> u32 {
    if wildcarded_bits >= 32 {
        0
    } else {
        u32::MAX << wildcarded_bits
    }
}

/// The fields of a packet relevant to flow matching, pre-extracted.
///
/// This is the "parsed header" view a switch datapath computes once per
/// packet and then compares against every candidate rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MatchView {
    /// Ingress port.
    pub in_port: PortNo,
    /// Ethernet source.
    pub dl_src: MacAddr,
    /// Ethernet destination.
    pub dl_dst: MacAddr,
    /// EtherType.
    pub dl_type: u16,
    /// IPv4 source (or ARP SPA), zero otherwise.
    pub nw_src: u32,
    /// IPv4 destination (or ARP TPA), zero otherwise.
    pub nw_dst: u32,
    /// IP ToS (upper 6 bits of DSCP/ECN), zero for non-IP.
    pub nw_tos: u8,
    /// IP protocol (or ARP opcode low byte), zero otherwise.
    pub nw_proto: u8,
    /// Transport source port, zero for non-TCP/UDP.
    pub tp_src: u16,
    /// Transport destination port, zero for non-TCP/UDP.
    pub tp_dst: u16,
}

impl MatchView {
    /// Extracts the match fields of `packet` as received on `in_port`,
    /// following the OpenFlow 1.0 field-extraction rules (including the ARP
    /// convention: `nw_src`/`nw_dst` carry the ARP addresses and `nw_proto`
    /// the opcode).
    pub fn of(in_port: PortNo, packet: &Packet) -> MatchView {
        let mut view = MatchView {
            in_port,
            dl_src: packet.ethernet.src,
            dl_dst: packet.ethernet.dst,
            dl_type: packet.ethernet.ethertype.as_u16(),
            nw_src: 0,
            nw_dst: 0,
            nw_tos: 0,
            nw_proto: 0,
            tp_src: 0,
            tp_dst: 0,
        };
        match &packet.payload {
            Payload::Ipv4(ip) => {
                view.nw_src = u32::from(ip.header.src);
                view.nw_dst = u32::from(ip.header.dst);
                view.nw_tos = ip.header.dscp_ecn & 0xfc;
                view.nw_proto = ip.header.protocol;
                match &ip.transport {
                    Transport::Udp(udp, _) => {
                        view.tp_src = udp.src_port;
                        view.tp_dst = udp.dst_port;
                    }
                    Transport::Tcp(tcp, _) => {
                        view.tp_src = tcp.src_port;
                        view.tp_dst = tcp.dst_port;
                    }
                    Transport::Other(..) => {}
                }
            }
            Payload::Arp(arp) => {
                view.nw_src = u32::from(arp.sender_ip);
                view.nw_dst = u32::from(arp.target_ip);
                view.nw_proto = (arp.op.as_u16() & 0xff) as u8;
            }
            Payload::Raw(_) => {}
        }
        view
    }
}

/// The OpenFlow 1.0 `ofp_match` structure (40 bytes on the wire).
///
/// # Example
///
/// ```
/// use sdnbuf_openflow::{Match, MatchView, PortNo};
/// use sdnbuf_net::{FlowKey, PacketBuilder};
///
/// let pkt = PacketBuilder::udp().build();
/// let key = FlowKey::of(&pkt).unwrap();
/// let m = Match::from_flow_key(&key);       // 5-tuple match
/// let view = MatchView::of(PortNo(1), &pkt);
/// assert!(m.matches(&view));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Match {
    /// Which fields are wildcarded.
    pub wildcards: Wildcards,
    /// Ingress port.
    pub in_port: PortNo,
    /// Ethernet source.
    pub dl_src: MacAddr,
    /// Ethernet destination.
    pub dl_dst: MacAddr,
    /// VLAN id (`0xffff` = untagged).
    pub dl_vlan: u16,
    /// VLAN priority.
    pub dl_vlan_pcp: u8,
    /// EtherType.
    pub dl_type: u16,
    /// IP ToS.
    pub nw_tos: u8,
    /// IP protocol / ARP opcode.
    pub nw_proto: u8,
    /// IPv4 source.
    pub nw_src: Ipv4Addr,
    /// IPv4 destination.
    pub nw_dst: Ipv4Addr,
    /// Transport source port.
    pub tp_src: u16,
    /// Transport destination port.
    pub tp_dst: u16,
}

impl Match {
    /// A match with every field wildcarded — matches all packets.
    pub fn any() -> Match {
        Match {
            wildcards: Wildcards::ALL.with_nw_src_bits(63).with_nw_dst_bits(63),
            in_port: PortNo(0),
            dl_src: MacAddr::ZERO,
            dl_dst: MacAddr::ZERO,
            dl_vlan: OFP_VLAN_NONE,
            dl_vlan_pcp: 0,
            dl_type: 0,
            nw_tos: 0,
            nw_proto: 0,
            nw_src: Ipv4Addr::UNSPECIFIED,
            nw_dst: Ipv4Addr::UNSPECIFIED,
            tp_src: 0,
            tp_dst: 0,
        }
    }

    /// An exact match on every field of `packet` as seen on `in_port` —
    /// what a reactive controller installs for a miss-match packet.
    pub fn exact_from_packet(in_port: PortNo, packet: &Packet) -> Match {
        let v = MatchView::of(in_port, packet);
        Match {
            wildcards: Wildcards::NONE,
            in_port,
            dl_src: v.dl_src,
            dl_dst: v.dl_dst,
            dl_vlan: OFP_VLAN_NONE,
            dl_vlan_pcp: 0,
            dl_type: v.dl_type,
            nw_tos: v.nw_tos,
            nw_proto: v.nw_proto,
            nw_src: Ipv4Addr::from(v.nw_src),
            nw_dst: Ipv4Addr::from(v.nw_dst),
            tp_src: v.tp_src,
            tp_dst: v.tp_dst,
        }
        .with_vlan_wildcarded()
    }

    /// A match on the transport 5-tuple only (the flow identity the paper's
    /// mechanism uses); link-layer fields and ingress port are wildcarded.
    pub fn from_flow_key(key: &FlowKey) -> Match {
        let mut m = Match::any();
        m.wildcards = m
            .wildcards
            .without(Wildcards::DL_TYPE)
            .without(Wildcards::NW_PROTO)
            .without(Wildcards::TP_SRC)
            .without(Wildcards::TP_DST)
            .with_nw_src_bits(0)
            .with_nw_dst_bits(0);
        m.dl_type = EtherType::Ipv4.as_u16();
        m.nw_proto = key.protocol.as_u8();
        m.nw_src = key.src_ip;
        m.nw_dst = key.dst_ip;
        m.tp_src = key.src_port;
        m.tp_dst = key.dst_port;
        m
    }

    fn with_vlan_wildcarded(mut self) -> Match {
        self.wildcards = self
            .wildcards
            .with(Wildcards::DL_VLAN)
            .with(Wildcards::DL_VLAN_PCP);
        self
    }

    /// Whether this match covers the given packet-field view.
    pub fn matches(&self, v: &MatchView) -> bool {
        let w = self.wildcards;
        if !w.is_wildcarded(Wildcards::IN_PORT) && self.in_port != v.in_port {
            return false;
        }
        if !w.is_wildcarded(Wildcards::DL_SRC) && self.dl_src != v.dl_src {
            return false;
        }
        if !w.is_wildcarded(Wildcards::DL_DST) && self.dl_dst != v.dl_dst {
            return false;
        }
        if !w.is_wildcarded(Wildcards::DL_TYPE) && self.dl_type != v.dl_type {
            return false;
        }
        if !w.is_wildcarded(Wildcards::NW_TOS) && self.nw_tos != v.nw_tos {
            return false;
        }
        if !w.is_wildcarded(Wildcards::NW_PROTO) && self.nw_proto != v.nw_proto {
            return false;
        }
        let src_mask = prefix_mask(w.nw_src_bits());
        if u32::from(self.nw_src) & src_mask != v.nw_src & src_mask {
            return false;
        }
        let dst_mask = prefix_mask(w.nw_dst_bits());
        if u32::from(self.nw_dst) & dst_mask != v.nw_dst & dst_mask {
            return false;
        }
        if !w.is_wildcarded(Wildcards::TP_SRC) && self.tp_src != v.tp_src {
            return false;
        }
        if !w.is_wildcarded(Wildcards::TP_DST) && self.tp_dst != v.tp_dst {
            return false;
        }
        true
    }

    /// `true` when this match is equal to or more general than `other`:
    /// every packet `other` matches, `self` matches too. This is the
    /// OpenFlow 1.0 non-strict `flow_mod` delete criterion.
    pub fn subsumes(&self, other: &Match) -> bool {
        let w = self.wildcards;
        let ow = other.wildcards;
        // A field constrained in self must be equally constrained (and
        // equal) in other.
        let field = |flag: Wildcards, eq: bool| -> bool {
            w.is_wildcarded(flag) || (!ow.is_wildcarded(flag) && eq)
        };
        if !field(Wildcards::IN_PORT, self.in_port == other.in_port) {
            return false;
        }
        if !field(Wildcards::DL_SRC, self.dl_src == other.dl_src) {
            return false;
        }
        if !field(Wildcards::DL_DST, self.dl_dst == other.dl_dst) {
            return false;
        }
        if !field(Wildcards::DL_TYPE, self.dl_type == other.dl_type) {
            return false;
        }
        if !field(Wildcards::NW_TOS, self.nw_tos == other.nw_tos) {
            return false;
        }
        if !field(Wildcards::NW_PROTO, self.nw_proto == other.nw_proto) {
            return false;
        }
        if !field(Wildcards::TP_SRC, self.tp_src == other.tp_src) {
            return false;
        }
        if !field(Wildcards::TP_DST, self.tp_dst == other.tp_dst) {
            return false;
        }
        // Address prefixes: self's prefix must be no longer than other's
        // and agree on the shared bits.
        let src_ok = {
            let my_mask = prefix_mask(w.nw_src_bits());
            let other_mask = prefix_mask(ow.nw_src_bits());
            (my_mask & other_mask) == my_mask
                && (u32::from(self.nw_src) & my_mask) == (u32::from(other.nw_src) & my_mask)
        };
        let dst_ok = {
            let my_mask = prefix_mask(w.nw_dst_bits());
            let other_mask = prefix_mask(ow.nw_dst_bits());
            (my_mask & other_mask) == my_mask
                && (u32::from(self.nw_dst) & my_mask) == (u32::from(other.nw_dst) & my_mask)
        };
        src_ok && dst_ok
    }

    /// `true` when no field is wildcarded (an exact-match rule).
    pub fn is_exact(&self) -> bool {
        // VLAN fields are always wildcarded by this workspace's
        // constructors; "exact" means exact on every modeled field.
        let w = self
            .wildcards
            .without(Wildcards::DL_VLAN)
            .without(Wildcards::DL_VLAN_PCP);
        w.bits() == 0
    }

    /// Appends the 40-byte wire form.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.wildcards.bits().to_be_bytes());
        buf.extend_from_slice(&self.in_port.as_u16().to_be_bytes());
        buf.extend_from_slice(&self.dl_src.octets());
        buf.extend_from_slice(&self.dl_dst.octets());
        buf.extend_from_slice(&self.dl_vlan.to_be_bytes());
        buf.push(self.dl_vlan_pcp);
        buf.push(0); // pad
        buf.extend_from_slice(&self.dl_type.to_be_bytes());
        buf.push(self.nw_tos);
        buf.push(self.nw_proto);
        buf.extend_from_slice(&[0, 0]); // pad
        buf.extend_from_slice(&self.nw_src.octets());
        buf.extend_from_slice(&self.nw_dst.octets());
        buf.extend_from_slice(&self.tp_src.to_be_bytes());
        buf.extend_from_slice(&self.tp_dst.to_be_bytes());
    }

    /// Decodes the 40-byte wire form from the start of `buf`.
    ///
    /// # Errors
    ///
    /// [`OfpError::Truncated`] if fewer than 40 bytes are present.
    pub fn decode(buf: &[u8]) -> Result<Match, OfpError> {
        wire::need(buf, OFP_MATCH_LEN)?;
        let mut dl_src = [0u8; 6];
        let mut dl_dst = [0u8; 6];
        dl_src.copy_from_slice(&buf[6..12]);
        dl_dst.copy_from_slice(&buf[12..18]);
        Ok(Match {
            wildcards: Wildcards::from_bits(wire::get_u32(buf, 0)?),
            in_port: PortNo(wire::get_u16(buf, 4)?),
            dl_src: dl_src.into(),
            dl_dst: dl_dst.into(),
            dl_vlan: wire::get_u16(buf, 18)?,
            dl_vlan_pcp: wire::get_u8(buf, 20)?,
            dl_type: wire::get_u16(buf, 22)?,
            nw_tos: wire::get_u8(buf, 24)?,
            nw_proto: wire::get_u8(buf, 25)?,
            nw_src: Ipv4Addr::new(buf[28], buf[29], buf[30], buf[31]),
            nw_dst: Ipv4Addr::new(buf[32], buf[33], buf[34], buf[35]),
            tp_src: wire::get_u16(buf, 36)?,
            tp_dst: wire::get_u16(buf, 38)?,
        })
    }
}

impl fmt::Display for Match {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.wildcards == Wildcards::ALL.with_nw_src_bits(63).with_nw_dst_bits(63) {
            return write!(f, "match(*)");
        }
        write!(
            f,
            "match({}:{} -> {}:{} proto {})",
            self.nw_src, self.tp_src, self.nw_dst, self.tp_dst, self.nw_proto
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnbuf_net::PacketBuilder;

    #[test]
    fn match_wire_len_is_40() {
        let mut buf = Vec::new();
        Match::any().encode_into(&mut buf);
        assert_eq!(buf.len(), OFP_MATCH_LEN);
    }

    #[test]
    fn round_trip_exact() {
        let pkt = PacketBuilder::udp().frame_size(200).build();
        let m = Match::exact_from_packet(PortNo(3), &pkt);
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        assert_eq!(Match::decode(&buf).unwrap(), m);
    }

    #[test]
    fn any_matches_everything() {
        let m = Match::any();
        for frame in [64usize, 1000] {
            let pkt = PacketBuilder::udp().frame_size(frame).build();
            assert!(m.matches(&MatchView::of(PortNo(1), &pkt)));
            let tcp = PacketBuilder::tcp().build();
            assert!(m.matches(&MatchView::of(PortNo(9), &tcp)));
        }
    }

    #[test]
    fn exact_match_requires_same_packet_and_port() {
        let pkt = PacketBuilder::udp().src_port(100).build();
        let m = Match::exact_from_packet(PortNo(1), &pkt);
        assert!(m.matches(&MatchView::of(PortNo(1), &pkt)));
        // Different ingress port: no match.
        assert!(!m.matches(&MatchView::of(PortNo(2), &pkt)));
        // Different source port: no match.
        let other = PacketBuilder::udp().src_port(101).build();
        assert!(!m.matches(&MatchView::of(PortNo(1), &other)));
        // Same 5-tuple but bigger payload: still matches.
        let bigger = PacketBuilder::udp().src_port(100).frame_size(1400).build();
        assert!(m.matches(&MatchView::of(PortNo(1), &bigger)));
    }

    #[test]
    fn flow_key_match_ignores_port_and_macs() {
        let pkt = PacketBuilder::udp().src_port(5).dst_port(6).build();
        let key = FlowKey::of(&pkt).unwrap();
        let m = Match::from_flow_key(&key);
        assert!(m.matches(&MatchView::of(PortNo(1), &pkt)));
        assert!(m.matches(&MatchView::of(PortNo(7), &pkt)));
        let othermac = PacketBuilder::udp()
            .src_port(5)
            .dst_port(6)
            .src_mac(MacAddr::from_host_index(77))
            .build();
        assert!(m.matches(&MatchView::of(PortNo(1), &othermac)));
        let otherflow = PacketBuilder::udp().src_port(5).dst_port(7).build();
        assert!(!m.matches(&MatchView::of(PortNo(1), &otherflow)));
    }

    #[test]
    fn tcp_packets_do_not_match_udp_flow_rules() {
        let udp = PacketBuilder::udp().src_port(5).dst_port(6).build();
        let tcp = PacketBuilder::tcp().src_port(5).dst_port(6).build();
        let m = Match::from_flow_key(&FlowKey::of(&udp).unwrap());
        assert!(!m.matches(&MatchView::of(PortNo(1), &tcp)));
    }

    #[test]
    fn nw_prefix_wildcards() {
        let pkt = PacketBuilder::udp()
            .src_ip(Ipv4Addr::new(10, 0, 1, 200))
            .build();
        let mut m = Match::from_flow_key(&FlowKey::of(&pkt).unwrap());
        // Wildcard the low 8 bits of the source: 10.0.1.0/24.
        m.wildcards = m.wildcards.with_nw_src_bits(8);
        m.nw_src = Ipv4Addr::new(10, 0, 1, 0);
        assert!(m.matches(&MatchView::of(PortNo(1), &pkt)));
        let outside = PacketBuilder::udp()
            .src_ip(Ipv4Addr::new(10, 0, 2, 200))
            .build();
        assert!(!m.matches(&MatchView::of(PortNo(1), &outside)));
    }

    #[test]
    fn arp_fields_follow_of10_convention() {
        let arp =
            PacketBuilder::gratuitous_arp(MacAddr::from_host_index(1), Ipv4Addr::new(10, 0, 0, 1));
        let v = MatchView::of(PortNo(2), &arp);
        assert_eq!(v.dl_type, 0x0806);
        assert_eq!(v.nw_src, u32::from(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(v.nw_proto, 1); // ARP request opcode
        assert_eq!(v.tp_src, 0);
    }

    #[test]
    fn wildcard_bit_arithmetic() {
        let w = Wildcards::NONE.with_nw_src_bits(24).with_nw_dst_bits(63);
        assert_eq!(w.nw_src_bits(), 24);
        assert_eq!(w.nw_dst_bits(), 63);
        assert_eq!(prefix_mask(0), u32::MAX);
        assert_eq!(prefix_mask(8), 0xffff_ff00);
        assert_eq!(prefix_mask(32), 0);
        assert_eq!(prefix_mask(63), 0);
        // Counts clamp at 63.
        assert_eq!(Wildcards::NONE.with_nw_src_bits(200).nw_src_bits(), 63);
    }

    #[test]
    fn is_exact_classification() {
        let pkt = PacketBuilder::udp().build();
        assert!(Match::exact_from_packet(PortNo(1), &pkt).is_exact());
        assert!(!Match::any().is_exact());
        assert!(!Match::from_flow_key(&FlowKey::of(&pkt).unwrap()).is_exact());
    }

    #[test]
    fn display_forms() {
        let pkt = PacketBuilder::udp().build();
        assert_eq!(Match::any().to_string(), "match(*)");
        let m = Match::exact_from_packet(PortNo(1), &pkt);
        assert!(m.to_string().contains("10.0.0.1"));
    }

    #[test]
    fn subsumption_semantics() {
        let pkt = PacketBuilder::udp().src_port(5).dst_port(6).build();
        let exact = Match::exact_from_packet(PortNo(1), &pkt);
        let tuple = Match::from_flow_key(&FlowKey::of(&pkt).unwrap());
        let any = Match::any();
        // any >= tuple >= exact; each subsumes itself.
        assert!(any.subsumes(&any));
        assert!(any.subsumes(&tuple));
        assert!(any.subsumes(&exact));
        assert!(tuple.subsumes(&tuple));
        assert!(tuple.subsumes(&exact));
        assert!(exact.subsumes(&exact));
        // Not the other way around.
        assert!(!exact.subsumes(&tuple));
        assert!(!exact.subsumes(&any));
        assert!(!tuple.subsumes(&any));
        // A different flow's tuple is not subsumed.
        let other = PacketBuilder::udp().src_port(7).dst_port(6).build();
        let other_tuple = Match::from_flow_key(&FlowKey::of(&other).unwrap());
        assert!(!tuple.subsumes(&other_tuple));
        assert!(!other_tuple.subsumes(&tuple));
    }

    #[test]
    fn prefix_subsumption() {
        let pkt = PacketBuilder::udp()
            .src_ip(Ipv4Addr::new(10, 0, 1, 5))
            .build();
        let mut slash24 = Match::from_flow_key(&FlowKey::of(&pkt).unwrap());
        slash24.wildcards = slash24.wildcards.with_nw_src_bits(8);
        slash24.nw_src = Ipv4Addr::new(10, 0, 1, 0);
        let mut slash16 = slash24;
        slash16.wildcards = slash16.wildcards.with_nw_src_bits(16);
        slash16.nw_src = Ipv4Addr::new(10, 0, 0, 0);
        assert!(slash16.subsumes(&slash24), "/16 covers /24");
        assert!(!slash24.subsumes(&slash16), "/24 cannot cover /16");
        // Disjoint /24s do not subsume each other.
        let mut other24 = slash24;
        other24.nw_src = Ipv4Addr::new(10, 0, 2, 0);
        assert!(!other24.subsumes(&slash24));
    }

    #[test]
    fn decode_truncated_fails() {
        assert!(matches!(
            Match::decode(&[0u8; 39]),
            Err(OfpError::Truncated { .. })
        ));
    }
}
