//! OpenFlow 1.0 messages and their binary wire codec.
//!
//! Every variant of [`OfpMessage`] encodes to the exact byte layout of the
//! OpenFlow 1.0.0 specification and decodes back losslessly. Encoded lengths
//! drive the paper's control-path-load measurements, so they are asserted
//! against the spec's struct sizes in this module's tests.

use crate::wire;
use crate::{
    consts, Action, BufferId, FlowBufferExt, Match, MsgType, OfpError, OfpHeader, PortNo,
    FLOW_BUFFER_VENDOR_ID, OFP_HEADER_LEN, OFP_MATCH_LEN,
};
use sdnbuf_net::MacAddr;
use std::fmt;

/// Why a `packet_in` was sent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketInReason {
    /// No matching flow (table miss) — the case the whole paper is about.
    NoMatch,
    /// An explicit `output:CONTROLLER` action.
    Action,
}

impl PacketInReason {
    fn as_u8(self) -> u8 {
        match self {
            PacketInReason::NoMatch => 0,
            PacketInReason::Action => 1,
        }
    }

    fn from_u8(v: u8) -> Self {
        if v == 1 {
            PacketInReason::Action
        } else {
            PacketInReason::NoMatch
        }
    }
}

/// A `packet_in` message: the switch's request to the controller for a
/// forwarding decision (the paper's `pkt_in`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PacketIn {
    /// Id of the buffered packet, or [`BufferId::NO_BUFFER`] when the full
    /// packet is in `data`.
    pub buffer_id: BufferId,
    /// Full length of the original frame.
    pub total_len: u16,
    /// Ingress port.
    pub in_port: PortNo,
    /// Why the packet was sent up.
    pub reason: PacketInReason,
    /// Packet bytes: the whole frame without buffering, or the first
    /// `miss_send_len` bytes when buffered.
    pub data: Vec<u8>,
}

/// A `packet_out` message: the controller instructing the switch to emit a
/// packet (the paper's `pkt_out`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PacketOut {
    /// The buffered packet to release, or [`BufferId::NO_BUFFER`] when the
    /// packet rides in `data`.
    pub buffer_id: BufferId,
    /// The port the packet originally arrived on (`NONE` if generated).
    pub in_port: PortNo,
    /// Actions to apply; empty list drops.
    pub actions: Vec<Action>,
    /// The full packet, only when `buffer_id` is `NO_BUFFER`.
    pub data: Vec<u8>,
}

/// `flow_mod` commands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names mirror the specification
pub enum FlowModCommand {
    Add,
    Modify,
    ModifyStrict,
    Delete,
    DeleteStrict,
}

impl FlowModCommand {
    fn as_u16(self) -> u16 {
        match self {
            FlowModCommand::Add => 0,
            FlowModCommand::Modify => 1,
            FlowModCommand::ModifyStrict => 2,
            FlowModCommand::Delete => 3,
            FlowModCommand::DeleteStrict => 4,
        }
    }

    fn from_u16(v: u16) -> Self {
        match v {
            1 => FlowModCommand::Modify,
            2 => FlowModCommand::ModifyStrict,
            3 => FlowModCommand::Delete,
            4 => FlowModCommand::DeleteStrict,
            _ => FlowModCommand::Add,
        }
    }
}

/// Send a `flow_removed` when the rule expires (`OFPFF_SEND_FLOW_REM`).
pub const OFPFF_SEND_FLOW_REM: u16 = 1 << 0;

/// A `flow_mod` message: installs, modifies or deletes a flow rule.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FlowMod {
    /// Fields to match.
    pub match_fields: Match,
    /// Opaque controller cookie.
    pub cookie: u64,
    /// What to do.
    pub command: FlowModCommand,
    /// Idle timeout in seconds (0 = none).
    pub idle_timeout: u16,
    /// Hard timeout in seconds (0 = none).
    pub hard_timeout: u16,
    /// Rule priority (higher wins).
    pub priority: u16,
    /// If valid, apply this rule's actions to that buffered packet too.
    pub buffer_id: BufferId,
    /// For delete commands: restrict to rules outputting here.
    pub out_port: PortNo,
    /// `OFPFF_*` flags.
    pub flags: u16,
    /// Actions of the rule.
    pub actions: Vec<Action>,
}

/// Why a flow rule was removed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FlowRemovedReason {
    IdleTimeout,
    HardTimeout,
    Delete,
}

impl FlowRemovedReason {
    fn as_u8(self) -> u8 {
        match self {
            FlowRemovedReason::IdleTimeout => 0,
            FlowRemovedReason::HardTimeout => 1,
            FlowRemovedReason::Delete => 2,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => FlowRemovedReason::HardTimeout,
            2 => FlowRemovedReason::Delete,
            _ => FlowRemovedReason::IdleTimeout,
        }
    }
}

/// A `flow_removed` message: the switch notifying rule expiry.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FlowRemoved {
    /// The rule's match.
    pub match_fields: Match,
    /// The rule's cookie.
    pub cookie: u64,
    /// The rule's priority.
    pub priority: u16,
    /// Why it was removed.
    pub reason: FlowRemovedReason,
    /// Rule lifetime, seconds part.
    pub duration_sec: u32,
    /// Rule lifetime, nanoseconds part.
    pub duration_nsec: u32,
    /// The rule's idle timeout.
    pub idle_timeout: u16,
    /// Packets matched over the rule's lifetime.
    pub packet_count: u64,
    /// Bytes matched over the rule's lifetime.
    pub byte_count: u64,
}

/// A physical port description in `features_reply`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PhyPort {
    /// Port number.
    pub port_no: PortNo,
    /// MAC address of the port.
    pub hw_addr: MacAddr,
    /// Human-readable name (at most 15 bytes + NUL on the wire).
    pub name: String,
}

/// A `features_reply`: the switch describing itself.
///
/// `n_buffers` is where a real switch advertises how many packets it can
/// buffer — the very resource the paper studies.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FeaturesReply {
    /// Datapath id.
    pub datapath_id: u64,
    /// Max packets the switch can buffer at once.
    pub n_buffers: u32,
    /// Number of flow tables.
    pub n_tables: u8,
    /// Capability bitmap.
    pub capabilities: u32,
    /// Supported-actions bitmap.
    pub actions: u32,
    /// Physical ports.
    pub ports: Vec<PhyPort>,
}

/// Switch configuration (`get_config_reply` / `set_config` body).
///
/// `miss_send_len` is the knob the paper turns: how many bytes of a buffered
/// miss-match packet are sent to the controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SwitchConfig {
    /// Fragment-handling flags (unused by the testbed).
    pub flags: u16,
    /// Bytes of each buffered miss-match packet copied into `packet_in`.
    pub miss_send_len: u16,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            flags: 0,
            miss_send_len: consts::OFP_DEFAULT_MISS_SEND_LEN,
        }
    }
}

/// Why a `port_status` was sent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum PortReason {
    Add,
    Delete,
    Modify,
}

impl PortReason {
    fn as_u8(self) -> u8 {
        match self {
            PortReason::Add => 0,
            PortReason::Delete => 1,
            PortReason::Modify => 2,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => PortReason::Delete,
            2 => PortReason::Modify,
            _ => PortReason::Add,
        }
    }
}

/// A `port_status` message: the switch announcing a port change.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PortStatus {
    /// What happened to the port.
    pub reason: PortReason,
    /// The port's description.
    pub port: PhyPort,
}

/// A `port_mod` message: the controller changing a port's behaviour.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PortMod {
    /// The port to modify.
    pub port_no: PortNo,
    /// Its MAC address (sanity check against misdirected mods).
    pub hw_addr: MacAddr,
    /// New config bits.
    pub config: u32,
    /// Which config bits to change.
    pub mask: u32,
    /// Features to advertise (0 = unchanged).
    pub advertise: u32,
}

/// One egress queue in a `queue_get_config_reply` — the structure the QoS
/// extension's shaped queues are advertised through. Only the `MIN_RATE`
/// property is modeled (the rate in 1/10 of a percent of the port speed,
/// as the specification defines it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PacketQueue {
    /// Queue id, as selected by the `ENQUEUE` action.
    pub queue_id: u32,
    /// Guaranteed minimum rate in 1/10 % of the port speed (`0xffff` =
    /// disabled).
    pub min_rate_tenths_percent: u16,
}

/// An `error` message.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ErrorMsg {
    /// High-level error type.
    pub err_type: u16,
    /// Type-specific code.
    pub code: u16,
    /// At least 64 bytes of the offending request.
    pub data: Vec<u8>,
}

/// A vendor/experimenter message.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Vendor {
    /// Vendor id.
    pub vendor: u32,
    /// Opaque vendor payload.
    pub data: Vec<u8>,
}

/// Switch description strings (`OFPST_DESC` reply).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DescStats {
    /// Manufacturer description.
    pub mfr_desc: String,
    /// Hardware description.
    pub hw_desc: String,
    /// Software description.
    pub sw_desc: String,
    /// Serial number.
    pub serial_num: String,
    /// Human-readable datapath description.
    pub dp_desc: String,
}

/// One table's statistics (`OFPST_TABLE` reply entry).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TableStatsEntry {
    /// Table id.
    pub table_id: u8,
    /// Table name.
    pub name: String,
    /// Wildcards the table supports.
    pub wildcards: u32,
    /// Capacity in rules.
    pub max_entries: u32,
    /// Rules currently installed.
    pub active_count: u32,
    /// Packets looked up.
    pub lookup_count: u64,
    /// Packets that hit a rule.
    pub matched_count: u64,
}

/// One port's statistics (`OFPST_PORT` reply entry). Error counters the
/// model cannot produce are carried as zero, as real switches do for
/// counters they do not support.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct PortStatsEntry {
    /// The port.
    pub port_no: PortNo,
    /// Packets received on the port.
    pub rx_packets: u64,
    /// Packets transmitted out the port.
    pub tx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Packets dropped on receive.
    pub rx_dropped: u64,
    /// Packets dropped on transmit.
    pub tx_dropped: u64,
}

/// Body of a `stats_request`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum StatsRequest {
    /// Switch description strings.
    Desc,
    /// Per-table statistics.
    Table,
    /// Per-port statistics (`PortNo::NONE` = all ports).
    Port {
        /// Port to report, or `NONE` for all.
        port_no: PortNo,
    },
    /// Per-flow statistics matching a pattern.
    Flow {
        /// Flows to report.
        match_fields: Match,
        /// Table to read (0xff = all).
        table_id: u8,
        /// Restrict to flows outputting here (`NONE` = no restriction).
        out_port: PortNo,
    },
    /// Aggregate statistics over matching flows.
    Aggregate {
        /// Flows to aggregate.
        match_fields: Match,
        /// Table to read (0xff = all).
        table_id: u8,
        /// Restrict to flows outputting here.
        out_port: PortNo,
    },
}

/// One entry of a flow-stats reply.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FlowStatsEntry {
    /// Table holding the rule.
    pub table_id: u8,
    /// The rule's match.
    pub match_fields: Match,
    /// Rule lifetime, seconds part.
    pub duration_sec: u32,
    /// Rule lifetime, nanoseconds part.
    pub duration_nsec: u32,
    /// The rule's priority.
    pub priority: u16,
    /// The rule's idle timeout.
    pub idle_timeout: u16,
    /// The rule's hard timeout.
    pub hard_timeout: u16,
    /// The rule's cookie.
    pub cookie: u64,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// The rule's actions.
    pub actions: Vec<Action>,
}

/// Body of a `stats_reply`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum StatsReply {
    /// Switch description.
    Desc(
        /// The description strings.
        DescStats,
    ),
    /// Per-table statistics.
    Table(
        /// One entry per table.
        Vec<TableStatsEntry>,
    ),
    /// Per-port statistics.
    Port(
        /// One entry per reported port.
        Vec<PortStatsEntry>,
    ),
    /// Per-flow statistics.
    Flow(
        /// One entry per matching rule.
        Vec<FlowStatsEntry>,
    ),
    /// Aggregate statistics.
    Aggregate {
        /// Total packets across matching flows.
        packet_count: u64,
        /// Total bytes across matching flows.
        byte_count: u64,
        /// Number of matching flows.
        flow_count: u32,
    },
}

const OFPST_DESC: u16 = 0;
const OFPST_FLOW: u16 = 1;
const OFPST_AGGREGATE: u16 = 2;
const OFPST_TABLE: u16 = 3;
const OFPST_PORT: u16 = 4;
const FLOW_STATS_REQ_BODY: usize = 44;
const FLOW_STATS_ENTRY_FIXED: usize = 88;
const AGG_STATS_REPLY_BODY: usize = 24;
const DESC_STATS_LEN: usize = 256 * 4 + 32;
const TABLE_STATS_ENTRY_LEN: usize = 64;
const PORT_STATS_ENTRY_LEN: usize = 104;
const PORT_STATS_REQ_BODY: usize = 8;

/// Any OpenFlow 1.0 message this implementation speaks.
///
/// # Example
///
/// ```
/// use sdnbuf_openflow::OfpMessage;
/// let bytes = OfpMessage::Hello.encode(1);
/// assert_eq!(bytes.len(), 8);
/// assert_eq!(OfpMessage::decode(&bytes).unwrap(), (OfpMessage::Hello, 1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names mirror the specification message names
pub enum OfpMessage {
    Hello,
    Error(ErrorMsg),
    EchoRequest(Vec<u8>),
    EchoReply(Vec<u8>),
    Vendor(Vendor),
    FeaturesRequest,
    FeaturesReply(FeaturesReply),
    GetConfigRequest,
    GetConfigReply(SwitchConfig),
    SetConfig(SwitchConfig),
    PacketIn(PacketIn),
    FlowRemoved(FlowRemoved),
    PacketOut(PacketOut),
    FlowMod(FlowMod),
    StatsRequest(StatsRequest),
    StatsReply(StatsReply),
    BarrierRequest,
    BarrierReply,
    PortStatus(PortStatus),
    PortMod(PortMod),
    QueueGetConfigRequest(PortNo),
    QueueGetConfigReply {
        /// The port whose queues are described.
        port: PortNo,
        /// Its configured queues.
        queues: Vec<PacketQueue>,
    },
}

impl From<FlowBufferExt> for OfpMessage {
    fn from(ext: FlowBufferExt) -> Self {
        OfpMessage::Vendor(Vendor {
            vendor: FLOW_BUFFER_VENDOR_ID,
            data: ext.encode_payload(),
        })
    }
}

impl OfpMessage {
    /// The message type code of this message.
    pub fn msg_type(&self) -> MsgType {
        match self {
            OfpMessage::Hello => MsgType::Hello,
            OfpMessage::Error(_) => MsgType::Error,
            OfpMessage::EchoRequest(_) => MsgType::EchoRequest,
            OfpMessage::EchoReply(_) => MsgType::EchoReply,
            OfpMessage::Vendor(_) => MsgType::Vendor,
            OfpMessage::FeaturesRequest => MsgType::FeaturesRequest,
            OfpMessage::FeaturesReply(_) => MsgType::FeaturesReply,
            OfpMessage::GetConfigRequest => MsgType::GetConfigRequest,
            OfpMessage::GetConfigReply(_) => MsgType::GetConfigReply,
            OfpMessage::SetConfig(_) => MsgType::SetConfig,
            OfpMessage::PacketIn(_) => MsgType::PacketIn,
            OfpMessage::FlowRemoved(_) => MsgType::FlowRemoved,
            OfpMessage::PacketOut(_) => MsgType::PacketOut,
            OfpMessage::FlowMod(_) => MsgType::FlowMod,
            OfpMessage::StatsRequest(_) => MsgType::StatsRequest,
            OfpMessage::StatsReply(_) => MsgType::StatsReply,
            OfpMessage::BarrierRequest => MsgType::BarrierRequest,
            OfpMessage::BarrierReply => MsgType::BarrierReply,
            OfpMessage::PortStatus(_) => MsgType::PortStatus,
            OfpMessage::PortMod(_) => MsgType::PortMod,
            OfpMessage::QueueGetConfigRequest(_) => MsgType::QueueGetConfigRequest,
            OfpMessage::QueueGetConfigReply { .. } => MsgType::QueueGetConfigReply,
        }
    }

    /// The exact wire length in bytes, without encoding.
    ///
    /// The simulation meters control-path load from this, so it must equal
    /// `self.encode(x).len()` — a property the tests enforce.
    pub fn wire_len(&self) -> usize {
        OFP_HEADER_LEN
            + match self {
                OfpMessage::Hello
                | OfpMessage::FeaturesRequest
                | OfpMessage::GetConfigRequest
                | OfpMessage::BarrierRequest
                | OfpMessage::BarrierReply => 0,
                OfpMessage::Error(e) => 4 + e.data.len(),
                OfpMessage::EchoRequest(d) | OfpMessage::EchoReply(d) => d.len(),
                OfpMessage::Vendor(v) => 4 + v.data.len(),
                OfpMessage::FeaturesReply(f) => 24 + f.ports.len() * consts::OFP_PHY_PORT_LEN,
                OfpMessage::GetConfigReply(_) | OfpMessage::SetConfig(_) => 4,
                OfpMessage::PacketIn(p) => 10 + p.data.len(),
                OfpMessage::FlowRemoved(_) => consts::OFP_FLOW_REMOVED_LEN - OFP_HEADER_LEN,
                OfpMessage::PacketOut(p) => 8 + Action::list_len(&p.actions) + p.data.len(),
                OfpMessage::FlowMod(f) => 64 + Action::list_len(&f.actions),
                OfpMessage::StatsRequest(r) => {
                    4 + match r {
                        StatsRequest::Desc | StatsRequest::Table => 0,
                        StatsRequest::Port { .. } => PORT_STATS_REQ_BODY,
                        StatsRequest::Flow { .. } | StatsRequest::Aggregate { .. } => {
                            FLOW_STATS_REQ_BODY
                        }
                    }
                }
                OfpMessage::PortStatus(_) => 8 + consts::OFP_PHY_PORT_LEN,
                OfpMessage::PortMod(_) => 24,
                OfpMessage::QueueGetConfigRequest(_) => 4,
                // Reply: port(2)+pad(6) then per queue: 8-byte queue header
                // + one 16-byte MIN_RATE property.
                OfpMessage::QueueGetConfigReply { queues, .. } => 8 + queues.len() * 24,
                OfpMessage::StatsReply(r) => {
                    4 + match r {
                        StatsReply::Desc(_) => DESC_STATS_LEN,
                        StatsReply::Table(entries) => entries.len() * TABLE_STATS_ENTRY_LEN,
                        StatsReply::Port(entries) => entries.len() * PORT_STATS_ENTRY_LEN,
                        StatsReply::Flow(entries) => entries
                            .iter()
                            .map(|e| FLOW_STATS_ENTRY_FIXED + Action::list_len(&e.actions))
                            .sum(),
                        StatsReply::Aggregate { .. } => AGG_STATS_REPLY_BODY,
                    }
                }
            }
    }

    /// Encodes this message with the given transaction id.
    pub fn encode(&self, xid: u32) -> Vec<u8> {
        let length = self.wire_len();
        let mut buf = Vec::with_capacity(length);
        OfpHeader {
            msg_type: self.msg_type(),
            length: length as u16,
            xid,
        }
        .encode_into(&mut buf);
        match self {
            OfpMessage::Hello
            | OfpMessage::FeaturesRequest
            | OfpMessage::GetConfigRequest
            | OfpMessage::BarrierRequest
            | OfpMessage::BarrierReply => {}
            OfpMessage::Error(e) => {
                buf.extend_from_slice(&e.err_type.to_be_bytes());
                buf.extend_from_slice(&e.code.to_be_bytes());
                buf.extend_from_slice(&e.data);
            }
            OfpMessage::EchoRequest(d) | OfpMessage::EchoReply(d) => buf.extend_from_slice(d),
            OfpMessage::Vendor(v) => {
                buf.extend_from_slice(&v.vendor.to_be_bytes());
                buf.extend_from_slice(&v.data);
            }
            OfpMessage::FeaturesReply(f) => {
                buf.extend_from_slice(&f.datapath_id.to_be_bytes());
                buf.extend_from_slice(&f.n_buffers.to_be_bytes());
                buf.push(f.n_tables);
                buf.extend_from_slice(&[0, 0, 0]); // pad
                buf.extend_from_slice(&f.capabilities.to_be_bytes());
                buf.extend_from_slice(&f.actions.to_be_bytes());
                for p in &f.ports {
                    encode_phy_port(&mut buf, p);
                }
            }
            OfpMessage::GetConfigReply(c) | OfpMessage::SetConfig(c) => {
                buf.extend_from_slice(&c.flags.to_be_bytes());
                buf.extend_from_slice(&c.miss_send_len.to_be_bytes());
            }
            OfpMessage::PacketIn(p) => {
                buf.extend_from_slice(&p.buffer_id.as_u32().to_be_bytes());
                buf.extend_from_slice(&p.total_len.to_be_bytes());
                buf.extend_from_slice(&p.in_port.as_u16().to_be_bytes());
                buf.push(p.reason.as_u8());
                buf.push(0); // pad
                buf.extend_from_slice(&p.data);
            }
            OfpMessage::FlowRemoved(fr) => {
                fr.match_fields.encode_into(&mut buf);
                buf.extend_from_slice(&fr.cookie.to_be_bytes());
                buf.extend_from_slice(&fr.priority.to_be_bytes());
                buf.push(fr.reason.as_u8());
                buf.push(0); // pad
                buf.extend_from_slice(&fr.duration_sec.to_be_bytes());
                buf.extend_from_slice(&fr.duration_nsec.to_be_bytes());
                buf.extend_from_slice(&fr.idle_timeout.to_be_bytes());
                buf.extend_from_slice(&[0, 0]); // pad
                buf.extend_from_slice(&fr.packet_count.to_be_bytes());
                buf.extend_from_slice(&fr.byte_count.to_be_bytes());
            }
            OfpMessage::PacketOut(p) => {
                buf.extend_from_slice(&p.buffer_id.as_u32().to_be_bytes());
                buf.extend_from_slice(&p.in_port.as_u16().to_be_bytes());
                buf.extend_from_slice(&(Action::list_len(&p.actions) as u16).to_be_bytes());
                Action::encode_list(&p.actions, &mut buf);
                buf.extend_from_slice(&p.data);
            }
            OfpMessage::FlowMod(f) => {
                f.match_fields.encode_into(&mut buf);
                buf.extend_from_slice(&f.cookie.to_be_bytes());
                buf.extend_from_slice(&f.command.as_u16().to_be_bytes());
                buf.extend_from_slice(&f.idle_timeout.to_be_bytes());
                buf.extend_from_slice(&f.hard_timeout.to_be_bytes());
                buf.extend_from_slice(&f.priority.to_be_bytes());
                buf.extend_from_slice(&f.buffer_id.as_u32().to_be_bytes());
                buf.extend_from_slice(&f.out_port.as_u16().to_be_bytes());
                buf.extend_from_slice(&f.flags.to_be_bytes());
                Action::encode_list(&f.actions, &mut buf);
            }
            OfpMessage::StatsRequest(r) => match r {
                StatsRequest::Desc => {
                    buf.extend_from_slice(&OFPST_DESC.to_be_bytes());
                    buf.extend_from_slice(&[0, 0]); // flags
                }
                StatsRequest::Table => {
                    buf.extend_from_slice(&OFPST_TABLE.to_be_bytes());
                    buf.extend_from_slice(&[0, 0]); // flags
                }
                StatsRequest::Port { port_no } => {
                    buf.extend_from_slice(&OFPST_PORT.to_be_bytes());
                    buf.extend_from_slice(&[0, 0]); // flags
                    buf.extend_from_slice(&port_no.as_u16().to_be_bytes());
                    buf.extend_from_slice(&[0u8; 6]); // pad
                }
                StatsRequest::Flow {
                    match_fields,
                    table_id,
                    out_port,
                }
                | StatsRequest::Aggregate {
                    match_fields,
                    table_id,
                    out_port,
                } => {
                    let kind = if matches!(r, StatsRequest::Flow { .. }) {
                        OFPST_FLOW
                    } else {
                        OFPST_AGGREGATE
                    };
                    buf.extend_from_slice(&kind.to_be_bytes());
                    buf.extend_from_slice(&[0, 0]); // flags
                    match_fields.encode_into(&mut buf);
                    buf.push(*table_id);
                    buf.push(0); // pad
                    buf.extend_from_slice(&out_port.as_u16().to_be_bytes());
                }
            },
            OfpMessage::StatsReply(r) => match r {
                StatsReply::Desc(d) => {
                    buf.extend_from_slice(&OFPST_DESC.to_be_bytes());
                    buf.extend_from_slice(&[0, 0]); // flags
                    for (text, width) in [
                        (&d.mfr_desc, 256usize),
                        (&d.hw_desc, 256),
                        (&d.sw_desc, 256),
                        (&d.serial_num, 32),
                        (&d.dp_desc, 256),
                    ] {
                        let mut field = vec![0u8; width];
                        let n = text.len().min(width - 1);
                        field[..n].copy_from_slice(&text.as_bytes()[..n]);
                        buf.extend_from_slice(&field);
                    }
                }
                StatsReply::Table(entries) => {
                    buf.extend_from_slice(&OFPST_TABLE.to_be_bytes());
                    buf.extend_from_slice(&[0, 0]); // flags
                    for e in entries {
                        buf.push(e.table_id);
                        buf.extend_from_slice(&[0, 0, 0]); // pad
                        let mut name = [0u8; 32];
                        let n = e.name.len().min(31);
                        name[..n].copy_from_slice(&e.name.as_bytes()[..n]);
                        buf.extend_from_slice(&name);
                        buf.extend_from_slice(&e.wildcards.to_be_bytes());
                        buf.extend_from_slice(&e.max_entries.to_be_bytes());
                        buf.extend_from_slice(&e.active_count.to_be_bytes());
                        buf.extend_from_slice(&e.lookup_count.to_be_bytes());
                        buf.extend_from_slice(&e.matched_count.to_be_bytes());
                    }
                }
                StatsReply::Port(entries) => {
                    buf.extend_from_slice(&OFPST_PORT.to_be_bytes());
                    buf.extend_from_slice(&[0, 0]); // flags
                    for e in entries {
                        buf.extend_from_slice(&e.port_no.as_u16().to_be_bytes());
                        buf.extend_from_slice(&[0u8; 6]); // pad
                        for v in [
                            e.rx_packets,
                            e.tx_packets,
                            e.rx_bytes,
                            e.tx_bytes,
                            e.rx_dropped,
                            e.tx_dropped,
                        ] {
                            buf.extend_from_slice(&v.to_be_bytes());
                        }
                        // rx_errors..collisions: unsupported counters are
                        // all-ones per the spec convention? The 1.0 spec
                        // uses -1 for unsupported; we emit 0 for "no
                        // errors observed" on the first two and -1 for the
                        // physical-layer counters the model cannot know.
                        buf.extend_from_slice(&0u64.to_be_bytes()); // rx_errors
                        buf.extend_from_slice(&0u64.to_be_bytes()); // tx_errors
                        for _ in 0..3 {
                            buf.extend_from_slice(&u64::MAX.to_be_bytes());
                        }
                        buf.extend_from_slice(&0u64.to_be_bytes()); // collisions
                    }
                }
                StatsReply::Flow(entries) => {
                    buf.extend_from_slice(&OFPST_FLOW.to_be_bytes());
                    buf.extend_from_slice(&[0, 0]); // flags
                    for e in entries {
                        let len = FLOW_STATS_ENTRY_FIXED + Action::list_len(&e.actions);
                        buf.extend_from_slice(&(len as u16).to_be_bytes());
                        buf.push(e.table_id);
                        buf.push(0); // pad
                        e.match_fields.encode_into(&mut buf);
                        buf.extend_from_slice(&e.duration_sec.to_be_bytes());
                        buf.extend_from_slice(&e.duration_nsec.to_be_bytes());
                        buf.extend_from_slice(&e.priority.to_be_bytes());
                        buf.extend_from_slice(&e.idle_timeout.to_be_bytes());
                        buf.extend_from_slice(&e.hard_timeout.to_be_bytes());
                        buf.extend_from_slice(&[0u8; 6]); // pad
                        buf.extend_from_slice(&e.cookie.to_be_bytes());
                        buf.extend_from_slice(&e.packet_count.to_be_bytes());
                        buf.extend_from_slice(&e.byte_count.to_be_bytes());
                        Action::encode_list(&e.actions, &mut buf);
                    }
                }
                StatsReply::Aggregate {
                    packet_count,
                    byte_count,
                    flow_count,
                } => {
                    buf.extend_from_slice(&OFPST_AGGREGATE.to_be_bytes());
                    buf.extend_from_slice(&[0, 0]); // flags
                    buf.extend_from_slice(&packet_count.to_be_bytes());
                    buf.extend_from_slice(&byte_count.to_be_bytes());
                    buf.extend_from_slice(&flow_count.to_be_bytes());
                    buf.extend_from_slice(&[0, 0, 0, 0]); // pad
                }
            },
            OfpMessage::PortStatus(ps) => {
                buf.push(ps.reason.as_u8());
                buf.extend_from_slice(&[0u8; 7]); // pad
                encode_phy_port(&mut buf, &ps.port);
            }
            OfpMessage::PortMod(pm) => {
                buf.extend_from_slice(&pm.port_no.as_u16().to_be_bytes());
                buf.extend_from_slice(&pm.hw_addr.octets());
                buf.extend_from_slice(&pm.config.to_be_bytes());
                buf.extend_from_slice(&pm.mask.to_be_bytes());
                buf.extend_from_slice(&pm.advertise.to_be_bytes());
                buf.extend_from_slice(&[0u8; 4]); // pad
            }
            OfpMessage::QueueGetConfigRequest(port) => {
                buf.extend_from_slice(&port.as_u16().to_be_bytes());
                buf.extend_from_slice(&[0, 0]); // pad
            }
            OfpMessage::QueueGetConfigReply { port, queues } => {
                buf.extend_from_slice(&port.as_u16().to_be_bytes());
                buf.extend_from_slice(&[0u8; 6]); // pad
                for q in queues {
                    buf.extend_from_slice(&q.queue_id.to_be_bytes());
                    buf.extend_from_slice(&24u16.to_be_bytes()); // queue len
                    buf.extend_from_slice(&[0, 0]); // pad
                                                    // OFPQT_MIN_RATE property.
                    buf.extend_from_slice(&1u16.to_be_bytes());
                    buf.extend_from_slice(&16u16.to_be_bytes());
                    buf.extend_from_slice(&[0u8; 4]); // pad
                    buf.extend_from_slice(&q.min_rate_tenths_percent.to_be_bytes());
                    buf.extend_from_slice(&[0u8; 6]); // pad
                }
            }
        }
        debug_assert_eq!(buf.len(), length, "wire_len disagrees with encoding");
        buf
    }

    /// Decodes one message; returns it with its transaction id. Trailing
    /// bytes beyond the header's length field are ignored.
    ///
    /// # Errors
    ///
    /// Any [`OfpError`] raised by the header or body codecs.
    pub fn decode(buf: &[u8]) -> Result<(OfpMessage, u32), OfpError> {
        let header = OfpHeader::decode(buf)?;
        let body = &buf[OFP_HEADER_LEN..header.length as usize];
        let msg = match header.msg_type {
            MsgType::Hello => OfpMessage::Hello,
            MsgType::Error => OfpMessage::Error(ErrorMsg {
                err_type: wire::get_u16(body, 0)?,
                code: wire::get_u16(body, 2)?,
                data: body[4.min(body.len())..].to_vec(),
            }),
            MsgType::EchoRequest => OfpMessage::EchoRequest(body.to_vec()),
            MsgType::EchoReply => OfpMessage::EchoReply(body.to_vec()),
            MsgType::Vendor => OfpMessage::Vendor(Vendor {
                vendor: wire::get_u32(body, 0)?,
                data: body[4..].to_vec(),
            }),
            MsgType::FeaturesRequest => OfpMessage::FeaturesRequest,
            MsgType::FeaturesReply => {
                wire::need(body, 24)?;
                let n_ports = (body.len() - 24) / consts::OFP_PHY_PORT_LEN;
                let mut ports = Vec::with_capacity(n_ports);
                for i in 0..n_ports {
                    let at = 24 + i * consts::OFP_PHY_PORT_LEN;
                    ports.push(decode_phy_port(&body[at..])?);
                }
                OfpMessage::FeaturesReply(FeaturesReply {
                    datapath_id: wire::get_u64(body, 0)?,
                    n_buffers: wire::get_u32(body, 8)?,
                    n_tables: wire::get_u8(body, 12)?,
                    capabilities: wire::get_u32(body, 16)?,
                    actions: wire::get_u32(body, 20)?,
                    ports,
                })
            }
            MsgType::GetConfigRequest => OfpMessage::GetConfigRequest,
            MsgType::GetConfigReply | MsgType::SetConfig => {
                let c = SwitchConfig {
                    flags: wire::get_u16(body, 0)?,
                    miss_send_len: wire::get_u16(body, 2)?,
                };
                if header.msg_type == MsgType::SetConfig {
                    OfpMessage::SetConfig(c)
                } else {
                    OfpMessage::GetConfigReply(c)
                }
            }
            MsgType::PacketIn => {
                wire::need(body, 10)?;
                OfpMessage::PacketIn(PacketIn {
                    buffer_id: BufferId::from_wire(wire::get_u32(body, 0)?),
                    total_len: wire::get_u16(body, 4)?,
                    in_port: PortNo(wire::get_u16(body, 6)?),
                    reason: PacketInReason::from_u8(wire::get_u8(body, 8)?),
                    data: body[10..].to_vec(),
                })
            }
            MsgType::FlowRemoved => {
                wire::need(body, consts::OFP_FLOW_REMOVED_LEN - OFP_HEADER_LEN)?;
                OfpMessage::FlowRemoved(FlowRemoved {
                    match_fields: Match::decode(body)?,
                    cookie: wire::get_u64(body, 40)?,
                    priority: wire::get_u16(body, 48)?,
                    reason: FlowRemovedReason::from_u8(wire::get_u8(body, 50)?),
                    duration_sec: wire::get_u32(body, 52)?,
                    duration_nsec: wire::get_u32(body, 56)?,
                    idle_timeout: wire::get_u16(body, 60)?,
                    packet_count: wire::get_u64(body, 64)?,
                    byte_count: wire::get_u64(body, 72)?,
                })
            }
            MsgType::PacketOut => {
                wire::need(body, 8)?;
                let actions_len = wire::get_u16(body, 6)? as usize;
                let actions = Action::decode_list(&body[8..], actions_len)?;
                OfpMessage::PacketOut(PacketOut {
                    buffer_id: BufferId::from_wire(wire::get_u32(body, 0)?),
                    in_port: PortNo(wire::get_u16(body, 4)?),
                    actions,
                    data: body[8 + actions_len..].to_vec(),
                })
            }
            MsgType::FlowMod => {
                wire::need(body, 64)?;
                let actions = Action::decode_list(&body[64..], body.len() - 64)?;
                OfpMessage::FlowMod(FlowMod {
                    match_fields: Match::decode(body)?,
                    cookie: wire::get_u64(body, OFP_MATCH_LEN)?,
                    command: FlowModCommand::from_u16(wire::get_u16(body, 48)?),
                    idle_timeout: wire::get_u16(body, 50)?,
                    hard_timeout: wire::get_u16(body, 52)?,
                    priority: wire::get_u16(body, 54)?,
                    buffer_id: BufferId::from_wire(wire::get_u32(body, 56)?),
                    out_port: PortNo(wire::get_u16(body, 60)?),
                    flags: wire::get_u16(body, 62)?,
                    actions,
                })
            }
            MsgType::StatsRequest => {
                let kind = wire::get_u16(body, 0)?;
                match kind {
                    OFPST_DESC => OfpMessage::StatsRequest(StatsRequest::Desc),
                    OFPST_TABLE => OfpMessage::StatsRequest(StatsRequest::Table),
                    OFPST_PORT => {
                        wire::need(body, 4 + PORT_STATS_REQ_BODY)?;
                        OfpMessage::StatsRequest(StatsRequest::Port {
                            port_no: PortNo(wire::get_u16(body, 4)?),
                        })
                    }
                    OFPST_FLOW | OFPST_AGGREGATE => {
                        wire::need(body, 4 + FLOW_STATS_REQ_BODY)?;
                        let match_fields = Match::decode(&body[4..])?;
                        let table_id = wire::get_u8(body, 4 + 40)?;
                        let out_port = PortNo(wire::get_u16(body, 4 + 42)?);
                        if kind == OFPST_FLOW {
                            OfpMessage::StatsRequest(StatsRequest::Flow {
                                match_fields,
                                table_id,
                                out_port,
                            })
                        } else {
                            OfpMessage::StatsRequest(StatsRequest::Aggregate {
                                match_fields,
                                table_id,
                                out_port,
                            })
                        }
                    }
                    other => return Err(OfpError::UnknownStatsType(other)),
                }
            }
            MsgType::StatsReply => {
                let kind = wire::get_u16(body, 0)?;
                match kind {
                    OFPST_DESC => {
                        wire::need(body, 4 + DESC_STATS_LEN)?;
                        let field = |at: usize, width: usize| -> String {
                            let raw = &body[4 + at..4 + at + width];
                            let end = raw.iter().position(|&b| b == 0).unwrap_or(width);
                            String::from_utf8_lossy(&raw[..end]).into_owned()
                        };
                        OfpMessage::StatsReply(StatsReply::Desc(DescStats {
                            mfr_desc: field(0, 256),
                            hw_desc: field(256, 256),
                            sw_desc: field(512, 256),
                            serial_num: field(768, 32),
                            dp_desc: field(800, 256),
                        }))
                    }
                    OFPST_TABLE => {
                        let n = (body.len() - 4) / TABLE_STATS_ENTRY_LEN;
                        let mut entries = Vec::with_capacity(n);
                        for i in 0..n {
                            let at = 4 + i * TABLE_STATS_ENTRY_LEN;
                            let raw_name = &body[at + 4..at + 36];
                            let end = raw_name.iter().position(|&b| b == 0).unwrap_or(32);
                            entries.push(TableStatsEntry {
                                table_id: wire::get_u8(body, at)?,
                                name: String::from_utf8_lossy(&raw_name[..end]).into_owned(),
                                wildcards: wire::get_u32(body, at + 36)?,
                                max_entries: wire::get_u32(body, at + 40)?,
                                active_count: wire::get_u32(body, at + 44)?,
                                lookup_count: wire::get_u64(body, at + 48)?,
                                matched_count: wire::get_u64(body, at + 56)?,
                            });
                        }
                        OfpMessage::StatsReply(StatsReply::Table(entries))
                    }
                    OFPST_PORT => {
                        let n = (body.len() - 4) / PORT_STATS_ENTRY_LEN;
                        let mut entries = Vec::with_capacity(n);
                        for i in 0..n {
                            let at = 4 + i * PORT_STATS_ENTRY_LEN;
                            wire::need(body, at + PORT_STATS_ENTRY_LEN)?;
                            entries.push(PortStatsEntry {
                                port_no: PortNo(wire::get_u16(body, at)?),
                                rx_packets: wire::get_u64(body, at + 8)?,
                                tx_packets: wire::get_u64(body, at + 16)?,
                                rx_bytes: wire::get_u64(body, at + 24)?,
                                tx_bytes: wire::get_u64(body, at + 32)?,
                                rx_dropped: wire::get_u64(body, at + 40)?,
                                tx_dropped: wire::get_u64(body, at + 48)?,
                            });
                        }
                        OfpMessage::StatsReply(StatsReply::Port(entries))
                    }
                    OFPST_FLOW => {
                        let mut entries = Vec::new();
                        let mut at = 4;
                        while at < body.len() {
                            let len = wire::get_u16(body, at)? as usize;
                            if len < FLOW_STATS_ENTRY_FIXED || at + len > body.len() {
                                return Err(OfpError::BadLength {
                                    claimed: len,
                                    actual: body.len() - at,
                                });
                            }
                            let e = &body[at..at + len];
                            entries.push(FlowStatsEntry {
                                table_id: wire::get_u8(e, 2)?,
                                match_fields: Match::decode(&e[4..])?,
                                duration_sec: wire::get_u32(e, 44)?,
                                duration_nsec: wire::get_u32(e, 48)?,
                                priority: wire::get_u16(e, 52)?,
                                idle_timeout: wire::get_u16(e, 54)?,
                                hard_timeout: wire::get_u16(e, 56)?,
                                cookie: wire::get_u64(e, 64)?,
                                packet_count: wire::get_u64(e, 72)?,
                                byte_count: wire::get_u64(e, 80)?,
                                actions: Action::decode_list(
                                    &e[FLOW_STATS_ENTRY_FIXED..],
                                    len - FLOW_STATS_ENTRY_FIXED,
                                )?,
                            });
                            at += len;
                        }
                        OfpMessage::StatsReply(StatsReply::Flow(entries))
                    }
                    OFPST_AGGREGATE => {
                        wire::need(body, 4 + AGG_STATS_REPLY_BODY)?;
                        OfpMessage::StatsReply(StatsReply::Aggregate {
                            packet_count: wire::get_u64(body, 4)?,
                            byte_count: wire::get_u64(body, 12)?,
                            flow_count: wire::get_u32(body, 20)?,
                        })
                    }
                    other => return Err(OfpError::UnknownStatsType(other)),
                }
            }
            MsgType::BarrierRequest => OfpMessage::BarrierRequest,
            MsgType::BarrierReply => OfpMessage::BarrierReply,
            MsgType::PortStatus => {
                wire::need(body, 8 + consts::OFP_PHY_PORT_LEN)?;
                OfpMessage::PortStatus(PortStatus {
                    reason: PortReason::from_u8(wire::get_u8(body, 0)?),
                    port: decode_phy_port(&body[8..])?,
                })
            }
            MsgType::PortMod => {
                wire::need(body, 24)?;
                let mut hw = [0u8; 6];
                hw.copy_from_slice(&body[2..8]);
                OfpMessage::PortMod(PortMod {
                    port_no: PortNo(wire::get_u16(body, 0)?),
                    hw_addr: hw.into(),
                    config: wire::get_u32(body, 8)?,
                    mask: wire::get_u32(body, 12)?,
                    advertise: wire::get_u32(body, 16)?,
                })
            }
            MsgType::QueueGetConfigRequest => {
                OfpMessage::QueueGetConfigRequest(PortNo(wire::get_u16(body, 0)?))
            }
            MsgType::QueueGetConfigReply => {
                wire::need(body, 8)?;
                let port = PortNo(wire::get_u16(body, 0)?);
                let mut queues = Vec::new();
                let mut at = 8;
                while at < body.len() {
                    let queue_id = wire::get_u32(body, at)?;
                    let len = wire::get_u16(body, at + 4)? as usize;
                    if len < 8 || at + len > body.len() {
                        return Err(OfpError::BadLength {
                            claimed: len,
                            actual: body.len() - at,
                        });
                    }
                    // Scan properties for MIN_RATE; ignore others.
                    let mut min_rate = 0xffff;
                    let mut p = at + 8;
                    while p + 8 <= at + len {
                        let ptype = wire::get_u16(body, p)?;
                        let plen = wire::get_u16(body, p + 2)? as usize;
                        if plen < 8 || p + plen > at + len {
                            return Err(OfpError::BadLength {
                                claimed: plen,
                                actual: at + len - p,
                            });
                        }
                        if ptype == 1 && plen >= 16 {
                            min_rate = wire::get_u16(body, p + 8)?;
                        }
                        p += plen;
                    }
                    queues.push(PacketQueue {
                        queue_id,
                        min_rate_tenths_percent: min_rate,
                    });
                    at += len;
                }
                OfpMessage::QueueGetConfigReply { port, queues }
            }
        };
        Ok((msg, header.xid))
    }
}

fn encode_phy_port(buf: &mut Vec<u8>, p: &PhyPort) {
    buf.extend_from_slice(&p.port_no.as_u16().to_be_bytes());
    buf.extend_from_slice(&p.hw_addr.octets());
    let mut name = [0u8; 16];
    let n = p.name.len().min(15);
    name[..n].copy_from_slice(&p.name.as_bytes()[..n]);
    buf.extend_from_slice(&name);
    buf.extend_from_slice(&[0u8; 24]); // config..peer, unused
}

fn decode_phy_port(body: &[u8]) -> Result<PhyPort, OfpError> {
    wire::need(body, consts::OFP_PHY_PORT_LEN)?;
    let mut hw = [0u8; 6];
    hw.copy_from_slice(&body[2..8]);
    let raw_name = &body[8..24];
    let name_end = raw_name.iter().position(|&b| b == 0).unwrap_or(16);
    Ok(PhyPort {
        port_no: PortNo(wire::get_u16(body, 0)?),
        hw_addr: hw.into(),
        name: String::from_utf8_lossy(&raw_name[..name_end]).into_owned(),
    })
}

impl fmt::Display for OfpMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfpMessage::PacketIn(p) => write!(
                f,
                "packet_in({}, {}B of {}B, {})",
                p.buffer_id,
                p.data.len(),
                p.total_len,
                p.in_port
            ),
            OfpMessage::PacketOut(p) => {
                write!(f, "packet_out({}, {} actions", p.buffer_id, p.actions.len())?;
                if !p.data.is_empty() {
                    write!(f, ", {}B data", p.data.len())?;
                }
                write!(f, ")")
            }
            OfpMessage::FlowMod(m) => {
                write!(f, "flow_mod({:?}, {})", m.command, m.match_fields)
            }
            other => write!(f, "{}", other.msg_type()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnbuf_net::PacketBuilder;

    fn sample_match() -> Match {
        let pkt = PacketBuilder::udp().src_port(7).build();
        Match::exact_from_packet(PortNo(1), &pkt)
    }

    fn round_trip(msg: OfpMessage) {
        let bytes = msg.encode(0x1234_5678);
        assert_eq!(bytes.len(), msg.wire_len(), "wire_len mismatch for {msg}");
        let (back, xid) = OfpMessage::decode(&bytes).unwrap();
        assert_eq!(back, msg);
        assert_eq!(xid, 0x1234_5678);
    }

    #[test]
    fn hello_and_barriers_are_bare_headers() {
        for msg in [
            OfpMessage::Hello,
            OfpMessage::FeaturesRequest,
            OfpMessage::GetConfigRequest,
            OfpMessage::BarrierRequest,
            OfpMessage::BarrierReply,
        ] {
            assert_eq!(msg.wire_len(), 8);
            round_trip(msg);
        }
    }

    #[test]
    fn echo_round_trip() {
        round_trip(OfpMessage::EchoRequest(vec![1, 2, 3]));
        round_trip(OfpMessage::EchoReply(vec![]));
    }

    #[test]
    fn error_round_trip() {
        round_trip(OfpMessage::Error(ErrorMsg {
            err_type: 3,
            code: 1,
            data: vec![0xab; 64],
        }));
    }

    #[test]
    fn vendor_round_trip() {
        round_trip(OfpMessage::Vendor(Vendor {
            vendor: FLOW_BUFFER_VENDOR_ID,
            data: FlowBufferExt::Announce {
                capacity: 256,
                timeout_ms: 50,
            }
            .encode_payload(),
        }));
    }

    #[test]
    fn features_reply_round_trip_and_size() {
        let msg = OfpMessage::FeaturesReply(FeaturesReply {
            datapath_id: 0x00_00_00_00_00_00_00_01,
            n_buffers: 256,
            n_tables: 1,
            capabilities: 0,
            actions: 0xfff,
            ports: vec![
                PhyPort {
                    port_no: PortNo(1),
                    hw_addr: MacAddr::from_host_index(1),
                    name: "eth1".to_owned(),
                },
                PhyPort {
                    port_no: PortNo(2),
                    hw_addr: MacAddr::from_host_index(2),
                    name: "eth2".to_owned(),
                },
            ],
        });
        // ofp_switch_features is 32 bytes + 48 per port.
        assert_eq!(msg.wire_len(), 32 + 2 * 48);
        round_trip(msg);
    }

    #[test]
    fn long_port_names_are_truncated_not_lost() {
        let msg = OfpMessage::FeaturesReply(FeaturesReply {
            datapath_id: 1,
            n_buffers: 0,
            n_tables: 1,
            capabilities: 0,
            actions: 0,
            ports: vec![PhyPort {
                port_no: PortNo(1),
                hw_addr: MacAddr::ZERO,
                name: "a-very-long-interface-name".to_owned(),
            }],
        });
        let (back, _) = OfpMessage::decode(&msg.encode(0)).unwrap();
        if let OfpMessage::FeaturesReply(f) = back {
            assert_eq!(f.ports[0].name, "a-very-long-int"); // 15 bytes + NUL
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn switch_config_round_trip_and_size() {
        let c = SwitchConfig {
            flags: 0,
            miss_send_len: 128,
        };
        let msg = OfpMessage::SetConfig(c);
        assert_eq!(msg.wire_len(), consts::OFP_SWITCH_CONFIG_LEN);
        round_trip(msg);
        round_trip(OfpMessage::GetConfigReply(c));
        assert_eq!(SwitchConfig::default().miss_send_len, 128);
    }

    #[test]
    fn packet_in_sizes_match_spec() {
        // Without buffering: full 1000-byte frame rides along -> 1018 bytes.
        let pkt = PacketBuilder::udp().frame_size(1000).build();
        let full = OfpMessage::PacketIn(PacketIn {
            buffer_id: BufferId::NO_BUFFER,
            total_len: 1000,
            in_port: PortNo(1),
            reason: PacketInReason::NoMatch,
            data: pkt.encode(),
        });
        assert_eq!(full.wire_len(), 1018);
        round_trip(full);

        // With buffering: only 128 header bytes -> 146 bytes.
        let buffered = OfpMessage::PacketIn(PacketIn {
            buffer_id: BufferId::new(9),
            total_len: 1000,
            in_port: PortNo(1),
            reason: PacketInReason::NoMatch,
            data: pkt.header_slice(128),
        });
        assert_eq!(buffered.wire_len(), 146);
        round_trip(buffered);
    }

    #[test]
    fn packet_out_sizes_match_spec() {
        let pkt = PacketBuilder::udp().frame_size(1000).build();
        // Buffered: no data, one output action -> 16 + 8 = 24 bytes.
        let buffered = OfpMessage::PacketOut(PacketOut {
            buffer_id: BufferId::new(9),
            in_port: PortNo(1),
            actions: vec![Action::output(PortNo(2))],
            data: vec![],
        });
        assert_eq!(buffered.wire_len(), 24);
        round_trip(buffered);

        // Unbuffered: whole frame rides along -> 24 + 1000.
        let full = OfpMessage::PacketOut(PacketOut {
            buffer_id: BufferId::NO_BUFFER,
            in_port: PortNo(1),
            actions: vec![Action::output(PortNo(2))],
            data: pkt.encode(),
        });
        assert_eq!(full.wire_len(), 1024);
        round_trip(full);
    }

    #[test]
    fn flow_mod_size_matches_spec() {
        let msg = OfpMessage::FlowMod(FlowMod {
            match_fields: sample_match(),
            cookie: 42,
            command: FlowModCommand::Add,
            idle_timeout: 5,
            hard_timeout: 0,
            priority: 100,
            buffer_id: BufferId::NO_BUFFER,
            out_port: PortNo::NONE,
            flags: OFPFF_SEND_FLOW_REM,
            actions: vec![Action::output(PortNo(2))],
        });
        // ofp_flow_mod is 72 bytes + 8 per output action.
        assert_eq!(msg.wire_len(), 80);
        round_trip(msg);
    }

    #[test]
    fn flow_mod_commands_round_trip() {
        for cmd in [
            FlowModCommand::Add,
            FlowModCommand::Modify,
            FlowModCommand::ModifyStrict,
            FlowModCommand::Delete,
            FlowModCommand::DeleteStrict,
        ] {
            round_trip(OfpMessage::FlowMod(FlowMod {
                match_fields: Match::any(),
                cookie: 0,
                command: cmd,
                idle_timeout: 0,
                hard_timeout: 0,
                priority: 0,
                buffer_id: BufferId::NO_BUFFER,
                out_port: PortNo::NONE,
                flags: 0,
                actions: vec![],
            }));
        }
    }

    #[test]
    fn flow_removed_round_trip_and_size() {
        let msg = OfpMessage::FlowRemoved(FlowRemoved {
            match_fields: sample_match(),
            cookie: 7,
            priority: 10,
            reason: FlowRemovedReason::IdleTimeout,
            duration_sec: 30,
            duration_nsec: 500,
            idle_timeout: 5,
            packet_count: 1000,
            byte_count: 1_000_000,
        });
        assert_eq!(msg.wire_len(), consts::OFP_FLOW_REMOVED_LEN);
        round_trip(msg);
        for reason in [
            FlowRemovedReason::IdleTimeout,
            FlowRemovedReason::HardTimeout,
            FlowRemovedReason::Delete,
        ] {
            let _ = reason.as_u8();
            assert_eq!(FlowRemovedReason::from_u8(reason.as_u8()), reason);
        }
    }

    #[test]
    fn stats_round_trips() {
        round_trip(OfpMessage::StatsRequest(StatsRequest::Flow {
            match_fields: Match::any(),
            table_id: 0xff,
            out_port: PortNo::NONE,
        }));
        round_trip(OfpMessage::StatsRequest(StatsRequest::Aggregate {
            match_fields: sample_match(),
            table_id: 0,
            out_port: PortNo(2),
        }));
        round_trip(OfpMessage::StatsReply(StatsReply::Aggregate {
            packet_count: 10,
            byte_count: 10_000,
            flow_count: 3,
        }));
        round_trip(OfpMessage::StatsReply(StatsReply::Flow(vec![
            FlowStatsEntry {
                table_id: 0,
                match_fields: sample_match(),
                duration_sec: 1,
                duration_nsec: 2,
                priority: 3,
                idle_timeout: 4,
                hard_timeout: 5,
                cookie: 6,
                packet_count: 7,
                byte_count: 8,
                actions: vec![Action::output(PortNo(2))],
            },
            FlowStatsEntry {
                table_id: 0,
                match_fields: Match::any(),
                duration_sec: 0,
                duration_nsec: 0,
                priority: 0,
                idle_timeout: 0,
                hard_timeout: 0,
                cookie: 0,
                packet_count: 0,
                byte_count: 0,
                actions: vec![],
            },
        ])));
    }

    #[test]
    fn desc_table_port_stats_round_trip() {
        round_trip(OfpMessage::StatsRequest(StatsRequest::Desc));
        round_trip(OfpMessage::StatsRequest(StatsRequest::Table));
        round_trip(OfpMessage::StatsRequest(StatsRequest::Port {
            port_no: PortNo::NONE,
        }));
        let desc = OfpMessage::StatsReply(StatsReply::Desc(DescStats {
            mfr_desc: "sdn-buffer-lab".to_owned(),
            hw_desc: "discrete-event model".to_owned(),
            sw_desc: "sdnbuf-switch".to_owned(),
            serial_num: "0001".to_owned(),
            dp_desc: "fig1 testbed switch".to_owned(),
        }));
        // ofp_desc_stats is 1056 bytes.
        assert_eq!(desc.wire_len(), 8 + 4 + 1056);
        round_trip(desc);
        let table = OfpMessage::StatsReply(StatsReply::Table(vec![TableStatsEntry {
            table_id: 0,
            name: "main".to_owned(),
            wildcards: 0x3f_ffff,
            max_entries: 4096,
            active_count: 12,
            lookup_count: 1000,
            matched_count: 900,
        }]));
        assert_eq!(table.wire_len(), 8 + 4 + 64);
        round_trip(table);
        let port = OfpMessage::StatsReply(StatsReply::Port(vec![
            PortStatsEntry {
                port_no: PortNo(1),
                rx_packets: 1000,
                tx_packets: 10,
                rx_bytes: 1_000_000,
                tx_bytes: 10_000,
                rx_dropped: 0,
                tx_dropped: 2,
            },
            PortStatsEntry::default(),
        ]));
        assert_eq!(port.wire_len(), 8 + 4 + 2 * 104);
        round_trip(port);
    }

    #[test]
    fn unknown_stats_type_rejected() {
        let mut bytes = OfpMessage::StatsRequest(StatsRequest::Flow {
            match_fields: Match::any(),
            table_id: 0,
            out_port: PortNo::NONE,
        })
        .encode(0);
        bytes[9] = 9; // stats type -> 9
        assert_eq!(
            OfpMessage::decode(&bytes),
            Err(OfpError::UnknownStatsType(9))
        );
    }

    #[test]
    fn port_status_round_trip_and_size() {
        for reason in [PortReason::Add, PortReason::Delete, PortReason::Modify] {
            let msg = OfpMessage::PortStatus(PortStatus {
                reason,
                port: PhyPort {
                    port_no: PortNo(3),
                    hw_addr: MacAddr::from_host_index(3),
                    name: "eth3".to_owned(),
                },
            });
            // ofp_port_status is 64 bytes.
            assert_eq!(msg.wire_len(), 64);
            round_trip(msg);
        }
    }

    #[test]
    fn port_mod_round_trip_and_size() {
        let msg = OfpMessage::PortMod(PortMod {
            port_no: PortNo(1),
            hw_addr: MacAddr::from_host_index(1),
            config: 0x1,
            mask: 0x1,
            advertise: 0,
        });
        // ofp_port_mod is 32 bytes.
        assert_eq!(msg.wire_len(), 32);
        round_trip(msg);
    }

    #[test]
    fn queue_config_round_trip() {
        round_trip(OfpMessage::QueueGetConfigRequest(PortNo(2)));
        let msg = OfpMessage::QueueGetConfigReply {
            port: PortNo(2),
            queues: vec![
                PacketQueue {
                    queue_id: 0,
                    min_rate_tenths_percent: 200, // 20 % reserved
                },
                PacketQueue {
                    queue_id: 1,
                    min_rate_tenths_percent: 800,
                },
            ],
        };
        assert_eq!(msg.wire_len(), 8 + 8 + 2 * 24);
        round_trip(msg);
    }

    #[test]
    fn truncated_queue_reply_rejected() {
        let msg = OfpMessage::QueueGetConfigReply {
            port: PortNo(2),
            queues: vec![PacketQueue {
                queue_id: 0,
                min_rate_tenths_percent: 100,
            }],
        };
        let mut bytes = msg.encode(1);
        // Corrupt the per-queue length field to overrun.
        bytes[8 + 8 + 4] = 0;
        bytes[8 + 8 + 5] = 200;
        assert!(matches!(
            OfpMessage::decode(&bytes),
            Err(OfpError::BadLength { .. })
        ));
    }

    #[test]
    fn packet_in_reason_codes() {
        assert_eq!(PacketInReason::from_u8(0), PacketInReason::NoMatch);
        assert_eq!(PacketInReason::from_u8(1), PacketInReason::Action);
        assert_eq!(PacketInReason::NoMatch.as_u8(), 0);
        assert_eq!(PacketInReason::Action.as_u8(), 1);
    }

    #[test]
    fn display_forms() {
        let pin = OfpMessage::PacketIn(PacketIn {
            buffer_id: BufferId::new(4),
            total_len: 1000,
            in_port: PortNo(1),
            reason: PacketInReason::NoMatch,
            data: vec![0; 128],
        });
        assert_eq!(pin.to_string(), "packet_in(buf#4, 128B of 1000B, port1)");
        assert_eq!(OfpMessage::Hello.to_string(), "Hello");
        let pout = OfpMessage::PacketOut(PacketOut {
            buffer_id: BufferId::new(4),
            in_port: PortNo(1),
            actions: vec![Action::output(PortNo(2))],
            data: vec![],
        });
        assert_eq!(pout.to_string(), "packet_out(buf#4, 1 actions)");
    }

    #[test]
    fn from_flow_buffer_ext_builds_vendor() {
        let msg = OfpMessage::from(FlowBufferExt::Configure {
            enabled: true,
            timeout_ms: 25,
        });
        assert_eq!(msg.msg_type(), MsgType::Vendor);
        let ext = FlowBufferExt::from_message(&msg).unwrap().unwrap();
        assert_eq!(
            ext,
            FlowBufferExt::Configure {
                enabled: true,
                timeout_ms: 25
            }
        );
        assert_eq!(FlowBufferExt::from_message(&OfpMessage::Hello), None);
    }

    #[test]
    fn trailing_bytes_ignored() {
        let mut bytes = OfpMessage::Hello.encode(5);
        bytes.extend_from_slice(&[9u8; 10]);
        assert_eq!(OfpMessage::decode(&bytes).unwrap(), (OfpMessage::Hello, 5));
    }
}
