//! An OpenFlow 1.0-style control protocol with a byte-accurate binary wire
//! codec, for `sdn-buffer-lab`.
//!
//! The paper's evaluation measures **control-path load in wire bytes**
//! (`packet_in` messages switch→controller; `flow_mod`/`packet_out`
//! controller→switch), so this crate implements the real OpenFlow 1.0
//! message layouts: an 8-byte common header, the 40-byte match structure,
//! 8-byte output actions, the 18-byte `packet_in` preamble, and so on.
//! Every message encodes to, and decodes from, the exact byte layout of the
//! OpenFlow 1.0.0 specification (the protocol generation Open vSwitch and
//! Floodlight spoke at the time of the paper).
//!
//! Buffer semantics reproduced here:
//!
//! * [`BufferId`] — the opaque id naming a packet parked in switch buffer
//!   memory, with the distinguished [`BufferId::NO_BUFFER`] value
//!   (`0xffff_ffff`) meaning "the full packet travels in the message".
//! * `miss_send_len` ([`SwitchConfig`]) — how many bytes of a buffered
//!   miss-match packet are copied into the `packet_in`.
//! * The [`msg::Vendor`] message carries this reproduction's protocol
//!   extension for the paper's flow-granularity buffer mechanism
//!   ([`FlowBufferExt`]), since Section V notes the mechanism "requires to
//!   extend the OpenFlow protocol".
//!
//! # Example
//!
//! ```
//! use sdnbuf_openflow::{msg, BufferId, Match, OfpMessage, PortNo};
//! use sdnbuf_net::PacketBuilder;
//!
//! let pkt = PacketBuilder::udp().frame_size(1000).build();
//! let pin = OfpMessage::PacketIn(msg::PacketIn {
//!     buffer_id: BufferId::new(7),
//!     total_len: pkt.wire_len() as u16,
//!     in_port: PortNo(1),
//!     reason: msg::PacketInReason::NoMatch,
//!     data: pkt.header_slice(128),
//! });
//! let bytes = pin.encode(42);
//! assert_eq!(bytes.len(), 18 + 128); // ofp_packet_in is 18 bytes + data
//! let (back, xid) = OfpMessage::decode(&bytes).unwrap();
//! assert_eq!(xid, 42);
//! assert_eq!(back, pin);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod buffer_id;
mod consts;
mod error;
mod ext;
mod header;
mod match_fields;
pub mod msg;
mod port;
pub(crate) mod wire;

pub use action::Action;
pub use buffer_id::BufferId;
pub use consts::{
    OFP_DEFAULT_MISS_SEND_LEN, OFP_FEATURES_REPLY_LEN, OFP_FLOW_MOD_LEN, OFP_FLOW_REMOVED_LEN,
    OFP_HEADER_LEN, OFP_MATCH_LEN, OFP_PACKET_IN_LEN, OFP_PACKET_OUT_LEN, OFP_PHY_PORT_LEN,
    OFP_SWITCH_CONFIG_LEN, OFP_VERSION,
};
pub use error::OfpError;
pub use ext::{FlowBufferExt, FLOW_BUFFER_VENDOR_ID};
pub use header::{MsgType, OfpHeader};
pub use match_fields::{Match, MatchView, Wildcards};
pub use msg::{OfpMessage, SwitchConfig};
pub use port::PortNo;
