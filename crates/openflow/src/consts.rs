//! Protocol constants from the OpenFlow 1.0.0 specification.

/// Wire protocol version: OpenFlow 1.0.
pub const OFP_VERSION: u8 = 0x01;

/// Length of the common message header (`ofp_header`).
pub const OFP_HEADER_LEN: usize = 8;

/// Length of the OpenFlow 1.0 match structure (`ofp_match`).
pub const OFP_MATCH_LEN: usize = 40;

/// Default number of bytes of a buffered miss-match packet copied into a
/// `packet_in` message (`OFP_DEFAULT_MISS_SEND_LEN`).
pub const OFP_DEFAULT_MISS_SEND_LEN: u16 = 128;

/// Fixed part of a `packet_in` message: header + buffer_id + total_len +
/// in_port + reason + pad.
pub const OFP_PACKET_IN_LEN: usize = 18;

/// Fixed part of a `packet_out` message: header + buffer_id + in_port +
/// actions_len.
pub const OFP_PACKET_OUT_LEN: usize = 16;

/// Fixed length of a `flow_mod` message without actions.
pub const OFP_FLOW_MOD_LEN: usize = 72;

/// Length of a `flow_removed` message.
pub const OFP_FLOW_REMOVED_LEN: usize = 88;

/// Length of an `ofp_phy_port` structure in `features_reply`.
pub const OFP_PHY_PORT_LEN: usize = 48;

/// Fixed part of `features_reply` without ports.
pub const OFP_FEATURES_REPLY_LEN: usize = 32;

/// Length of `get_config_reply` / `set_config`.
pub const OFP_SWITCH_CONFIG_LEN: usize = 12;
