//! The opaque id of a packet parked in switch buffer memory.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Identifies a packet buffered at the switch, carried in `packet_in`,
/// `packet_out` and `flow_mod` messages.
///
/// Quoting the paper (Section V.A): *"In the OpenFlow specification,
/// `buffer_id` is used to identify a packet buffered at the switch and sent
/// to the controller by a `pkt_in` message. A `pkt_out` message including a
/// valid `buffer_id` removes the corresponding packet from the buffer and
/// processes the packet by the actions of the message."*
///
/// The distinguished value [`BufferId::NO_BUFFER`] (`0xffff_ffff`) means no
/// packet is buffered and the full packet travels inside the message.
///
/// # Generation tags (ABA safety)
///
/// Only the 32-bit raw id travels on the wire, and raw ids are recycled —
/// so a *stale* `packet_out` (delayed or fault-duplicated) can name a slot
/// that has since been freed and re-occupied, silently draining the wrong
/// packet. To catch that, ids allocated by the buffer mechanisms carry an
/// out-of-band **generation** tag ([`BufferId::tagged`]): a monotonic
/// allocation counter the mechanism checks at release time. The generation
/// is simulator metadata, *not* wire state:
///
/// * equality, ordering and hashing compare the **raw id only**, so a
///   tagged id and its wire-reconstructed counterpart are interchangeable
///   as map keys and in comparisons;
/// * generation `0` means "untagged" — ids built from the wire
///   ([`BufferId::from_wire`], [`BufferId::new`]) carry it and are accepted
///   against any occupant, preserving the OpenFlow-spec semantics.
///
/// ## Wrap contract
///
/// Generations are drawn from a **wrapping `u32` counter that skips `0`**
/// (the untagged sentinel): after `u32::MAX` the next generation is `1`,
/// never `0`. Both buffer mechanisms advance the counter per *allocation*
/// (not per slot), so a collision — a stale id whose generation happens to
/// equal the slot's current occupant's — needs the same slot to be re-used
/// exactly `k · (2³² − 1)` allocations apart while the stale message is
/// still in flight. Sub-ranges wrap the same way: a release is rejected
/// whenever the generations *differ*, so the guarantee holds at every wrap
/// boundary, including the 8-bit one exercised by the regression test in
/// `crates/switchbuf` (256 reuses of a single slot).
///
/// # Session epochs (controller crash safety)
///
/// Orthogonal to the generation, an id can carry the **session epoch** it
/// was minted under ([`BufferId::with_epoch`]). Epochs number the
/// controller↔switch sessions: the switch bumps its epoch on every
/// (re-)handshake, and a buffer release minted under a dead epoch is
/// rejected even if raw id *and* generation still match — a freshly
/// restarted controller must never drain state it has no knowledge of.
/// Like the generation, the epoch is out-of-band simulator metadata:
/// invisible to equality/ordering/hashing, and `0` means "unarmed" (the
/// crash plane is off; releases are accepted regardless of occupant epoch,
/// preserving pre-crash-plane semantics byte for byte).
///
/// # Example
///
/// ```
/// use sdnbuf_openflow::BufferId;
/// let id = BufferId::new(5);
/// assert!(id.is_buffered());
/// assert!(!BufferId::NO_BUFFER.is_buffered());
/// assert_eq!(id.to_string(), "buf#5");
/// assert_eq!(BufferId::NO_BUFFER.to_string(), "no-buffer");
///
/// // Generations are invisible to equality: the wire round-trip matches.
/// let tagged = BufferId::tagged(5, 3);
/// assert_eq!(tagged, id);
/// assert_eq!(tagged.generation(), 3);
/// assert_eq!(id.generation(), 0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BufferId {
    raw: u32,
    generation: u32,
    epoch: u32,
}

impl BufferId {
    /// "No packet is buffered": `0xffff_ffff` (`OFP_NO_BUFFER`).
    pub const NO_BUFFER: BufferId = BufferId {
        raw: 0xffff_ffff,
        generation: 0,
        epoch: 0,
    };

    /// Creates an untagged buffer id from its raw value.
    ///
    /// # Panics
    ///
    /// Panics if `id` equals the reserved `OFP_NO_BUFFER` value; use
    /// [`BufferId::NO_BUFFER`] for that.
    pub fn new(id: u32) -> Self {
        assert_ne!(id, 0xffff_ffff, "0xffffffff is reserved for NO_BUFFER");
        BufferId {
            raw: id,
            generation: 0,
            epoch: 0,
        }
    }

    /// Creates a generation-tagged buffer id (allocation-side only; the
    /// tag never travels on the wire).
    ///
    /// # Panics
    ///
    /// Panics if `id` equals the reserved `OFP_NO_BUFFER` value.
    pub fn tagged(id: u32, generation: u32) -> Self {
        assert_ne!(id, 0xffff_ffff, "0xffffffff is reserved for NO_BUFFER");
        BufferId {
            raw: id,
            generation,
            epoch: 0,
        }
    }

    /// Reconstructs a buffer id from the wire, allowing the reserved value.
    /// Wire ids are untagged (generation 0, epoch 0).
    pub const fn from_wire(id: u32) -> Self {
        BufferId {
            raw: id,
            generation: 0,
            epoch: 0,
        }
    }

    /// This id stamped with the session epoch it was minted under. Epoch
    /// `0` means "unarmed" (see the type-level docs); the raw value and
    /// generation are unchanged.
    pub const fn with_epoch(self, epoch: u32) -> Self {
        BufferId {
            raw: self.raw,
            generation: self.generation,
            epoch,
        }
    }

    /// The raw 32-bit value as carried on the wire.
    pub const fn as_u32(self) -> u32 {
        self.raw
    }

    /// The allocation generation; `0` for untagged / wire-reconstructed
    /// ids.
    pub const fn generation(self) -> u32 {
        self.generation
    }

    /// The session epoch this id was minted under; `0` for unarmed /
    /// wire-reconstructed ids.
    pub const fn epoch(self) -> u32 {
        self.epoch
    }

    /// `true` unless this is [`BufferId::NO_BUFFER`].
    pub fn is_buffered(self) -> bool {
        self != BufferId::NO_BUFFER
    }
}

// Equality, ordering and hashing deliberately ignore the generation and
// the epoch: both are out-of-band allocator/session metadata, and a
// wire-reconstructed id must compare equal to the tagged id it names.
impl PartialEq for BufferId {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}

impl Eq for BufferId {}

impl PartialOrd for BufferId {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BufferId {
    fn cmp(&self, other: &Self) -> Ordering {
        self.raw.cmp(&other.raw)
    }
}

impl Hash for BufferId {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}

impl Default for BufferId {
    fn default() -> Self {
        BufferId::NO_BUFFER
    }
}

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_buffered() {
            write!(f, "buf#{}", self.raw)
        } else {
            write!(f, "no-buffer")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    #[test]
    fn no_buffer_is_reserved() {
        assert_eq!(BufferId::NO_BUFFER.as_u32(), 0xffff_ffff);
        assert!(!BufferId::NO_BUFFER.is_buffered());
        assert_eq!(BufferId::default(), BufferId::NO_BUFFER);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn new_rejects_reserved_value() {
        let _ = BufferId::new(0xffff_ffff);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn tagged_rejects_reserved_value() {
        let _ = BufferId::tagged(0xffff_ffff, 1);
    }

    #[test]
    fn from_wire_allows_reserved_value() {
        assert_eq!(BufferId::from_wire(0xffff_ffff), BufferId::NO_BUFFER);
        assert_eq!(BufferId::from_wire(3), BufferId::new(3));
    }

    #[test]
    fn ordinary_ids_are_buffered() {
        assert!(BufferId::new(0).is_buffered());
        assert!(BufferId::new(12345).is_buffered());
    }

    #[test]
    fn generation_is_invisible_to_eq_ord_and_hash() {
        let wire = BufferId::new(7);
        let tagged = BufferId::tagged(7, 9);
        assert_eq!(wire, tagged);
        assert_eq!(wire.cmp(&tagged), Ordering::Equal);
        let hash = |id: BufferId| {
            let mut h = DefaultHasher::new();
            id.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(wire), hash(tagged));
        // But the tag itself is observable where it matters.
        assert_eq!(tagged.generation(), 9);
        assert_eq!(wire.generation(), 0);
    }

    #[test]
    fn ordering_follows_the_raw_id() {
        assert!(BufferId::tagged(1, 99) < BufferId::new(2));
    }

    #[test]
    fn epoch_is_out_of_band_like_the_generation() {
        let id = BufferId::tagged(7, 3).with_epoch(5);
        assert_eq!(id.epoch(), 5);
        assert_eq!(id.generation(), 3);
        assert_eq!(id.as_u32(), 7);
        // Invisible to equality/ordering/hashing: the wire round-trip
        // still matches.
        assert_eq!(id, BufferId::from_wire(7));
        assert_eq!(BufferId::from_wire(7).epoch(), 0);
        let hash = |id: BufferId| {
            let mut h = DefaultHasher::new();
            id.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(id), hash(BufferId::new(7)));
        // NO_BUFFER stays unarmed whatever is stamped onto copies of it.
        assert_eq!(BufferId::NO_BUFFER.epoch(), 0);
    }
}
