//! The opaque id of a packet parked in switch buffer memory.

use std::fmt;

/// Identifies a packet buffered at the switch, carried in `packet_in`,
/// `packet_out` and `flow_mod` messages.
///
/// Quoting the paper (Section V.A): *"In the OpenFlow specification,
/// `buffer_id` is used to identify a packet buffered at the switch and sent
/// to the controller by a `pkt_in` message. A `pkt_out` message including a
/// valid `buffer_id` removes the corresponding packet from the buffer and
/// processes the packet by the actions of the message."*
///
/// The distinguished value [`BufferId::NO_BUFFER`] (`0xffff_ffff`) means no
/// packet is buffered and the full packet travels inside the message.
///
/// # Example
///
/// ```
/// use sdnbuf_openflow::BufferId;
/// let id = BufferId::new(5);
/// assert!(id.is_buffered());
/// assert!(!BufferId::NO_BUFFER.is_buffered());
/// assert_eq!(id.to_string(), "buf#5");
/// assert_eq!(BufferId::NO_BUFFER.to_string(), "no-buffer");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(u32);

impl BufferId {
    /// "No packet is buffered": `0xffff_ffff` (`OFP_NO_BUFFER`).
    pub const NO_BUFFER: BufferId = BufferId(0xffff_ffff);

    /// Creates a buffer id from its raw value.
    ///
    /// # Panics
    ///
    /// Panics if `id` equals the reserved `OFP_NO_BUFFER` value; use
    /// [`BufferId::NO_BUFFER`] for that.
    pub fn new(id: u32) -> Self {
        assert_ne!(id, 0xffff_ffff, "0xffffffff is reserved for NO_BUFFER");
        BufferId(id)
    }

    /// Reconstructs a buffer id from the wire, allowing the reserved value.
    pub const fn from_wire(id: u32) -> Self {
        BufferId(id)
    }

    /// The raw 32-bit value as carried on the wire.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// `true` unless this is [`BufferId::NO_BUFFER`].
    pub fn is_buffered(self) -> bool {
        self != BufferId::NO_BUFFER
    }
}

impl Default for BufferId {
    fn default() -> Self {
        BufferId::NO_BUFFER
    }
}

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_buffered() {
            write!(f, "buf#{}", self.0)
        } else {
            write!(f, "no-buffer")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_buffer_is_reserved() {
        assert_eq!(BufferId::NO_BUFFER.as_u32(), 0xffff_ffff);
        assert!(!BufferId::NO_BUFFER.is_buffered());
        assert_eq!(BufferId::default(), BufferId::NO_BUFFER);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn new_rejects_reserved_value() {
        let _ = BufferId::new(0xffff_ffff);
    }

    #[test]
    fn from_wire_allows_reserved_value() {
        assert_eq!(BufferId::from_wire(0xffff_ffff), BufferId::NO_BUFFER);
        assert_eq!(BufferId::from_wire(3), BufferId::new(3));
    }

    #[test]
    fn ordinary_ids_are_buffered() {
        assert!(BufferId::new(0).is_buffered());
        assert!(BufferId::new(12345).is_buffered());
    }
}
