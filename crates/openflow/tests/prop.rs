//! Property-based tests for the OpenFlow wire codec: arbitrary messages
//! round-trip losslessly, `wire_len` always equals the encoded length, and
//! the decoder never panics on arbitrary bytes.

use proptest::prelude::*;
use sdnbuf_net::MacAddr;
use sdnbuf_openflow::{
    msg::{
        ErrorMsg, FlowMod, FlowModCommand, FlowRemoved, FlowRemovedReason, PacketIn,
        PacketInReason, PacketOut, StatsReply, Vendor,
    },
    Action, BufferId, Match, OfpMessage, PortNo, Wildcards,
};
use std::net::Ipv4Addr;

fn arb_buffer_id() -> impl Strategy<Value = BufferId> {
    any::<u32>().prop_map(BufferId::from_wire)
}

fn arb_action() -> BoxedStrategy<Action> {
    prop_oneof![
        (any::<u16>(), any::<u16>()).prop_map(|(p, m)| Action::Output {
            port: PortNo(p),
            max_len: m
        }),
        any::<u8>().prop_map(Action::SetNwTos),
        (any::<u16>(), any::<u32>()).prop_map(|(p, q)| Action::Enqueue {
            port: PortNo(p),
            queue_id: q
        }),
    ]
    .boxed()
}

fn arb_match() -> impl Strategy<Value = Match> {
    (
        (
            any::<u32>(),
            any::<u16>(),
            any::<[u8; 6]>(),
            any::<[u8; 6]>(),
        ),
        (
            any::<u16>(),
            any::<u8>(),
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
        ),
        (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>()),
    )
        .prop_map(
            |((w, inp, src, dst), (vlan, pcp, dlt, tos, proto), (nws, nwd, tps, tpd))| Match {
                wildcards: Wildcards::from_bits(w),
                in_port: PortNo(inp),
                dl_src: MacAddr::new(src),
                dl_dst: MacAddr::new(dst),
                dl_vlan: vlan,
                dl_vlan_pcp: pcp,
                dl_type: dlt,
                nw_tos: tos,
                nw_proto: proto,
                nw_src: Ipv4Addr::from(nws),
                nw_dst: Ipv4Addr::from(nwd),
                tp_src: tps,
                tp_dst: tpd,
            },
        )
}

fn arb_message() -> impl Strategy<Value = OfpMessage> {
    let data = proptest::collection::vec(any::<u8>(), 0..256);
    let actions = proptest::collection::vec(arb_action(), 0..4);
    prop_oneof![
        Just(OfpMessage::Hello),
        Just(OfpMessage::FeaturesRequest),
        Just(OfpMessage::BarrierRequest),
        Just(OfpMessage::BarrierReply),
        data.clone().prop_map(OfpMessage::EchoRequest),
        data.clone().prop_map(OfpMessage::EchoReply),
        (any::<u16>(), any::<u16>(), data.clone()).prop_map(|(t, c, d)| OfpMessage::Error(
            ErrorMsg {
                err_type: t,
                code: c,
                data: d
            }
        )),
        (any::<u32>(), data.clone())
            .prop_map(|(v, d)| OfpMessage::Vendor(Vendor { vendor: v, data: d })),
        (arb_buffer_id(), any::<u16>(), any::<u16>(), data.clone()).prop_map(|(b, t, p, d)| {
            OfpMessage::PacketIn(PacketIn {
                buffer_id: b,
                total_len: t,
                in_port: PortNo(p),
                reason: PacketInReason::NoMatch,
                data: d,
            })
        }),
        (arb_buffer_id(), any::<u16>(), actions.clone()).prop_map(|(b, p, a)| {
            // Data only rides along when unbuffered (spec semantics).
            let data = if b == BufferId::NO_BUFFER {
                vec![0xEE; 100]
            } else {
                vec![]
            };
            OfpMessage::PacketOut(PacketOut {
                buffer_id: b,
                in_port: PortNo(p),
                actions: a,
                data,
            })
        }),
        (
            arb_match(),
            any::<u64>(),
            0u16..5,
            any::<u16>(),
            any::<u16>(),
            any::<u16>(),
            arb_buffer_id(),
            any::<u16>(),
            any::<u16>(),
            actions
        )
            .prop_map(
                |(m, ck, cmd, it, ht, pr, b, op, fl, a)| OfpMessage::FlowMod(FlowMod {
                    match_fields: m,
                    cookie: ck,
                    command: match cmd {
                        1 => FlowModCommand::Modify,
                        2 => FlowModCommand::ModifyStrict,
                        3 => FlowModCommand::Delete,
                        4 => FlowModCommand::DeleteStrict,
                        _ => FlowModCommand::Add,
                    },
                    idle_timeout: it,
                    hard_timeout: ht,
                    priority: pr,
                    buffer_id: b,
                    out_port: PortNo(op),
                    flags: fl,
                    actions: a,
                })
            ),
        (arb_match(), any::<u64>(), any::<u16>()).prop_map(|(m, ck, pr)| {
            OfpMessage::FlowRemoved(FlowRemoved {
                match_fields: m,
                cookie: ck,
                priority: pr,
                reason: FlowRemovedReason::IdleTimeout,
                duration_sec: 1,
                duration_nsec: 2,
                idle_timeout: 3,
                packet_count: 4,
                byte_count: 5,
            })
        }),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(p, b, f)| {
            OfpMessage::StatsReply(StatsReply::Aggregate {
                packet_count: p,
                byte_count: b,
                flow_count: f,
            })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn message_round_trip(msg in arb_message(), xid in any::<u32>()) {
        let bytes = msg.encode(xid);
        prop_assert_eq!(bytes.len(), msg.wire_len());
        let (back, back_xid) = OfpMessage::decode(&bytes).unwrap();
        prop_assert_eq!(back, msg);
        prop_assert_eq!(back_xid, xid);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = OfpMessage::decode(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutated_valid_messages(
        msg in arb_message(),
        flip_at in any::<prop::sample::Index>(),
        flip_bits in 1u8..=255,
    ) {
        let mut bytes = msg.encode(7);
        let i = flip_at.index(bytes.len());
        bytes[i] ^= flip_bits;
        let _ = OfpMessage::decode(&bytes);
    }

    #[test]
    fn match_round_trip(m in arb_match()) {
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        prop_assert_eq!(Match::decode(&buf).unwrap(), m);
    }

    #[test]
    fn exact_matches_are_self_consistent(
        sport in any::<u16>(),
        dport in any::<u16>(),
        src in any::<u32>(),
        dst in any::<u32>(),
        port in 1u16..100,
    ) {
        use sdnbuf_net::PacketBuilder;
        use sdnbuf_openflow::MatchView;
        let pkt = PacketBuilder::udp()
            .src_ip(Ipv4Addr::from(src)).dst_ip(Ipv4Addr::from(dst))
            .src_port(sport).dst_port(dport)
            .build();
        let m = Match::exact_from_packet(PortNo(port), &pkt);
        prop_assert!(m.matches(&MatchView::of(PortNo(port), &pkt)));
    }
}
