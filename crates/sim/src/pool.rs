//! A slab pool with generation-tagged handles and reference counts.
//!
//! The simulator's hot path used to move (and clone) owned packet and
//! message payloads through every hop of the event graph. The pool
//! replaces those owned values with a copyable 8-byte [`PoolHandle`]:
//! payloads are inserted once, passed around by handle, shared across
//! fan-out (flood, duplication faults) by bumping a reference count, and
//! reclaimed in place — the slot's backing allocation is reused by the
//! next occupant via the free list.
//!
//! Generation tags make stale handles harmless: releasing the last
//! reference bumps the slot's generation, so a handle that outlives its
//! value can never observe (or free) the slot's next occupant. This is
//! the same defense the flow-granularity buffer uses for recycled
//! OpenFlow buffer ids.

/// A copyable reference to a value in a [`Pool`].
///
/// Handles are 8 bytes and `Copy`; the pool validates the generation tag
/// on every access, so a stale handle (kept past the last release of its
/// slot) yields `None` rather than aliasing the slot's next occupant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PoolHandle {
    slot: u32,
    gen: u32,
}

impl PoolHandle {
    /// A handle that matches no slot in any pool (generation 0 is never
    /// live). Useful as a sentinel in tests.
    pub const DANGLING: PoolHandle = PoolHandle {
        slot: u32::MAX,
        gen: 0,
    };
}

#[derive(Debug)]
struct Slot<T> {
    /// Odd while occupied, even while free; bumped on every transition.
    gen: u32,
    /// Live references to the current occupant (0 while free).
    refs: u32,
    val: Option<T>,
}

/// Running counters of a pool's traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Values ever inserted.
    pub inserted: u64,
    /// Values fully reclaimed (last reference released).
    pub reclaimed: u64,
    /// Accesses or releases that presented a stale handle.
    pub stale: u64,
    /// Highest number of simultaneously live values.
    pub peak_live: usize,
}

/// A generational slab pool.
///
/// ```
/// use sdnbuf_sim::Pool;
/// let mut pool: Pool<Vec<u8>> = Pool::new();
/// let h = pool.insert(vec![1, 2, 3]);
/// assert_eq!(pool.get(h).unwrap().len(), 3);
/// pool.retain(h); // share across a fan-out
/// assert_eq!(pool.release(h), None); // one reference still out
/// assert_eq!(pool.release(h), Some(vec![1, 2, 3])); // last one frees
/// assert!(pool.get(h).is_none(), "handle is now stale");
/// ```
#[derive(Debug)]
pub struct Pool<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
    stats: PoolStats,
}

impl<T> Pool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Pool {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            stats: PoolStats::default(),
        }
    }

    /// Creates an empty pool with room for `cap` values before growing.
    pub fn with_capacity(cap: usize) -> Self {
        Pool {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
            stats: PoolStats::default(),
        }
    }

    /// Stores `val` and returns its handle (reference count 1).
    pub fn insert(&mut self, val: T) -> PoolHandle {
        self.stats.inserted += 1;
        self.live += 1;
        self.stats.peak_live = self.stats.peak_live.max(self.live);
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            s.gen = s.gen.wrapping_add(1); // even -> odd: occupied
            s.refs = 1;
            s.val = Some(val);
            PoolHandle { slot, gen: s.gen }
        } else {
            let slot = u32::try_from(self.slots.len()).expect("pool overflow");
            self.slots.push(Slot {
                gen: 1,
                refs: 1,
                val: Some(val),
            });
            PoolHandle { slot, gen: 1 }
        }
    }

    fn slot_of(&self, h: PoolHandle) -> Option<&Slot<T>> {
        self.slots.get(h.slot as usize).filter(|s| s.gen == h.gen)
    }

    /// The value behind `h`, or `None` if the handle is stale.
    pub fn get(&self, h: PoolHandle) -> Option<&T> {
        self.slot_of(h).and_then(|s| s.val.as_ref())
    }

    /// Mutable access to the value behind `h`. The caller is responsible
    /// for not mutating a value that is shared across live references.
    pub fn get_mut(&mut self, h: PoolHandle) -> Option<&mut T> {
        self.slots
            .get_mut(h.slot as usize)
            .filter(|s| s.gen == h.gen)
            .and_then(|s| s.val.as_mut())
    }

    /// Adds a reference to the value behind `h` (fan-out sharing).
    /// Returns `false` (and does nothing) if the handle is stale.
    pub fn retain(&mut self, h: PoolHandle) -> bool {
        match self
            .slots
            .get_mut(h.slot as usize)
            .filter(|s| s.gen == h.gen)
        {
            Some(s) => {
                s.refs += 1;
                true
            }
            None => {
                self.stats.stale += 1;
                false
            }
        }
    }

    /// Drops one reference. Returns the value when this was the last
    /// reference (the slot is reclaimed and `h` becomes stale); `None`
    /// while other references remain or if the handle is already stale.
    pub fn release(&mut self, h: PoolHandle) -> Option<T> {
        let s = match self
            .slots
            .get_mut(h.slot as usize)
            .filter(|s| s.gen == h.gen)
        {
            Some(s) => s,
            None => {
                self.stats.stale += 1;
                return None;
            }
        };
        s.refs -= 1;
        if s.refs > 0 {
            return None;
        }
        s.gen = s.gen.wrapping_add(1); // odd -> even: free
        let val = s.val.take();
        self.free.push(h.slot);
        self.live -= 1;
        self.stats.reclaimed += 1;
        val
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no values are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Running traffic counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

impl<T: Clone> Pool<T> {
    /// Takes an owned copy of the value behind `h`, consuming one
    /// reference: moves the value out when `h` holds the last reference,
    /// clones it when the value is still shared. `None` if stale.
    pub fn take(&mut self, h: PoolHandle) -> Option<T> {
        let shared = match self.slot_of(h) {
            Some(s) => s.refs > 1,
            None => {
                self.stats.stale += 1;
                return None;
            }
        };
        if shared {
            let cloned = self.get(h).cloned();
            self.release(h);
            cloned
        } else {
            self.release(h)
        }
    }
}

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_release_roundtrip() {
        let mut p = Pool::new();
        let h = p.insert("x");
        assert_eq!(p.get(h), Some(&"x"));
        assert_eq!(p.len(), 1);
        assert_eq!(p.release(h), Some("x"));
        assert!(p.is_empty());
        assert_eq!(p.get(h), None, "released handle is stale");
    }

    #[test]
    fn slots_are_reused_and_generations_fence_stale_handles() {
        let mut p = Pool::new();
        let h1 = p.insert(1u32);
        p.release(h1);
        let h2 = p.insert(2u32);
        // Same slot, new generation.
        assert_eq!(p.get(h2), Some(&2));
        assert_eq!(p.get(h1), None, "old handle must not see new occupant");
        assert_eq!(p.release(h1), None, "stale release reclaims nothing");
        assert_eq!(p.get(h2), Some(&2), "new occupant survives stale release");
        assert_eq!(p.stats().stale, 1, "the stale release was counted");
    }

    #[test]
    fn refcount_shares_across_fanout() {
        let mut p = Pool::new();
        let h = p.insert(vec![9u8; 100]);
        assert!(p.retain(h));
        assert!(p.retain(h));
        assert_eq!(p.release(h), None);
        assert_eq!(p.release(h), None);
        assert_eq!(p.release(h).map(|v| v.len()), Some(100));
        assert!(p.is_empty());
    }

    #[test]
    fn take_moves_when_unique_and_clones_when_shared() {
        let mut p = Pool::new();
        let h = p.insert(vec![7u8; 4]);
        p.retain(h);
        let first = p.take(h).unwrap();
        assert_eq!(first, vec![7u8; 4]);
        assert_eq!(p.len(), 1, "one reference still live");
        let second = p.take(h).unwrap();
        assert_eq!(second, vec![7u8; 4]);
        assert!(p.is_empty());
        assert_eq!(p.take(h), None, "now stale");
    }

    #[test]
    fn dangling_matches_nothing() {
        let mut p: Pool<u8> = Pool::new();
        let _ = p.insert(1);
        assert_eq!(p.get(PoolHandle::DANGLING), None);
        assert!(!p.retain(PoolHandle::DANGLING));
    }

    #[test]
    fn stats_track_traffic_and_peak() {
        let mut p = Pool::new();
        let a = p.insert(1);
        let b = p.insert(2);
        p.release(a);
        let c = p.insert(3);
        let s = p.stats();
        assert_eq!(s.inserted, 3);
        assert_eq!(s.reclaimed, 1);
        assert_eq!(s.peak_live, 2);
        p.release(b);
        p.release(c);
        assert_eq!(p.stats().reclaimed, 3);
    }
}
