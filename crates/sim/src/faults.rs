//! Deterministic fault-injection plans for the control and data planes.
//!
//! A [`FaultPlan`] is a declarative description of everything that may go
//! wrong during a run: per-direction control-channel loss (deterministic
//! every-Nth or seeded-probabilistic), added delay and jitter, duplication,
//! reordering, controller processing stalls, data-link flaps, and
//! buffer-capacity pressure windows. The runtime side, [`FaultState`],
//! answers per-message queries using the engine's own [`SimRng`], so a run
//! under any plan remains a **pure function of `(config, seed)`** — the
//! property the chaos harness's one-command replay rests on.
//!
//! Plans serialize to a compact `key=value` spec string
//! ([`FaultPlan::to_spec`] / [`FaultPlan::parse`]) that round-trips exactly,
//! so a failing scenario can be reproduced byte-identically from one line.

use crate::events::ChannelDir;
use crate::rng::SimRng;
use crate::time::Nanos;

/// How messages are selected for loss on one control-channel direction.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum LossModel {
    /// No loss.
    #[default]
    None,
    /// Drop every `n`-th message (deterministic, counter-based).
    EveryNth(u64),
    /// Drop each message independently with probability `p`, drawn from
    /// the plan's seeded RNG.
    Probabilistic(f64),
}

impl LossModel {
    /// `true` when no message can be dropped.
    pub fn is_none(&self) -> bool {
        matches!(self, LossModel::None) || matches!(self, LossModel::Probabilistic(p) if *p <= 0.0)
    }

    fn validate(&self) -> Result<(), String> {
        match *self {
            LossModel::None => Ok(()),
            LossModel::EveryNth(n) if n < 2 => Err(format!(
                "every-nth loss requires n >= 2 (got {n}: n = 0 has no \
                 meaning and n = 1 drops every message, so the \
                 flow-granularity re-request loop could never terminate)"
            )),
            LossModel::EveryNth(_) => Ok(()),
            LossModel::Probabilistic(p) if !(0.0..1.0).contains(&p) => Err(format!(
                "loss probability must be in [0, 1) (got {p}; 1.0 would \
                 drop every message)"
            )),
            LossModel::Probabilistic(_) => Ok(()),
        }
    }
}

/// Faults applied to one direction of the control channel.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChannelFaults {
    /// Message loss.
    pub loss: LossModel,
    /// Fixed extra one-way delay added after the link's own
    /// serialization + propagation.
    pub delay: Nanos,
    /// Uniform random extra delay in `[0, jitter]`, drawn per message.
    pub jitter: Nanos,
    /// Probability that a delivered message is duplicated (the copy takes
    /// a second trip over the link).
    pub duplicate: f64,
    /// Probability that a delivered message is held back by
    /// [`ChannelFaults::reorder_by`], letting later messages overtake it.
    pub reorder: f64,
    /// How long a reordered message is held back.
    pub reorder_by: Nanos,
}

impl ChannelFaults {
    /// `true` when this direction is completely clean.
    pub fn is_clean(&self) -> bool {
        self.loss.is_none()
            && self.delay == Nanos::ZERO
            && self.jitter == Nanos::ZERO
            && self.duplicate <= 0.0
            && self.reorder <= 0.0
    }

    fn validate(&self, dir: &str) -> Result<(), String> {
        self.loss.validate().map_err(|e| format!("{dir}: {e}"))?;
        for (name, p) in [("duplicate", self.duplicate), ("reorder", self.reorder)] {
            if !(0.0..1.0).contains(&p) {
                return Err(format!(
                    "{dir}: {name} probability must be in [0, 1), got {p}"
                ));
            }
        }
        if self.reorder > 0.0 && self.reorder_by == Nanos::ZERO {
            return Err(format!(
                "{dir}: reorder probability is set but reorder_by is zero \
                 (a zero hold-back cannot reorder anything)"
            ));
        }
        Ok(())
    }
}

/// A half-open time window `[from, until)` during which a fault is active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// When the fault switches on.
    pub from: Nanos,
    /// When it switches off (exclusive).
    pub until: Nanos,
}

impl Window {
    /// The window `[from, until)`.
    pub fn new(from: Nanos, until: Nanos) -> Window {
        Window { from, until }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: Nanos) -> bool {
        self.from <= t && t < self.until
    }

    fn validate(&self, what: &str) -> Result<(), String> {
        if self.until <= self.from {
            return Err(format!(
                "{what} window must end after it starts (got [{}, {}))",
                self.from, self.until
            ));
        }
        Ok(())
    }
}

/// A complete, composable fault-injection plan — the testbed's only
/// loss-injection API.
///
/// The default plan injects nothing and costs one branch per potential
/// fault site. All randomized choices come from a dedicated [`SimRng`]
/// stream seeded by [`FaultPlan::seed`], independent of the workload seed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault RNG stream (probabilistic loss, jitter,
    /// duplication, reordering draws).
    pub seed: u64,
    /// Channel faults only apply at or after this instant. Useful to keep
    /// the OpenFlow handshake and ARP warm-up clean while still battering
    /// the measurement window.
    pub active_from: Nanos,
    /// Faults on switch → controller messages.
    pub to_controller: ChannelFaults,
    /// Faults on controller → switch messages.
    pub to_switch: ChannelFaults,
    /// Controller processing stalls: messages arriving inside a window are
    /// not handled until it ends (they burst out at `until`).
    pub stalls: Vec<Window>,
    /// Data-link flaps: data frames entering any host↔switch link inside a
    /// window are dropped.
    pub flaps: Vec<Window>,
    /// Buffer-capacity pressure: while active, the switch's buffer
    /// mechanism refuses new units and falls back to full-packet
    /// `packet_in`s, as if the buffer memory were exhausted.
    pub pressure: Vec<Window>,
    /// Controller crashes: at a window's start the **primary** controller
    /// dies and drops *all* volatile state (pending `packet_in`s, the
    /// admission queue, partially computed rules) — unlike a stall, which
    /// parks messages and preserves state. Messages addressed to a dead
    /// controller are lost. At the window's end the controller restarts,
    /// bumps its session epoch, and re-runs the OpenFlow handshake (unless
    /// a warm standby already took over).
    pub crashes: Vec<Window>,
    /// Crashes of the **standby** controller. Only observable after a
    /// failover made the standby active; it restarts (with another epoch
    /// bump) at the window's end.
    pub crashes_standby: Vec<Window>,
}

impl FaultPlan {
    /// The legacy knob's semantics on the new plane: drop every `n`-th
    /// message, counted per direction.
    pub fn every_nth_loss(n: u64) -> FaultPlan {
        FaultPlan {
            to_controller: ChannelFaults {
                loss: LossModel::EveryNth(n),
                ..ChannelFaults::default()
            },
            to_switch: ChannelFaults {
                loss: LossModel::EveryNth(n),
                ..ChannelFaults::default()
            },
            ..FaultPlan::default()
        }
    }

    /// `true` when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.to_controller.is_clean()
            && self.to_switch.is_clean()
            && self.stalls.is_empty()
            && self.flaps.is_empty()
            && self.pressure.is_empty()
            && self.crashes.is_empty()
            && self.crashes_standby.is_empty()
    }

    /// `true` when the plan contains controller crash windows (primary or
    /// standby) — the signal that arms the crash/failover plane.
    pub fn has_crashes(&self) -> bool {
        !self.crashes.is_empty() || !self.crashes_standby.is_empty()
    }

    /// `true` when the plan can destroy data packets outside the control
    /// channel (link flaps) or force unbuffered full-packet `packet_in`s
    /// (pressure). When `false`, the flow-granularity mechanism's
    /// re-request timeout guarantees eventual delivery for any loss < 100%
    /// — the chaos harness's sharpest invariant.
    pub fn disturbs_data(&self) -> bool {
        !self.flaps.is_empty() || !self.pressure.is_empty()
    }

    /// Checks every knob for consistency. Called by the testbed at
    /// construction; invalid plans never run.
    pub fn validate(&self) -> Result<(), String> {
        self.to_controller.validate("to_controller")?;
        self.to_switch.validate("to_switch")?;
        for w in &self.stalls {
            w.validate("stall")?;
        }
        for w in &self.flaps {
            w.validate("flap")?;
        }
        for w in &self.pressure {
            w.validate("pressure")?;
        }
        for w in &self.crashes {
            w.validate("crash")?;
        }
        for w in &self.crashes_standby {
            w.validate("crash_standby")?;
        }
        Ok(())
    }

    /// Serializes the plan to its compact spec string (empty for the
    /// default plan). [`FaultPlan::parse`] round-trips it exactly.
    pub fn to_spec(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if self.seed != 0 {
            parts.push(format!("fseed={}", self.seed));
        }
        if self.active_from != Nanos::ZERO {
            parts.push(format!("from={}", fmt_dur(self.active_from)));
        }
        channel_spec("c", &self.to_controller, &mut parts);
        channel_spec("s", &self.to_switch, &mut parts);
        for (key, windows) in [
            ("stall", &self.stalls),
            ("flap", &self.flaps),
            ("press", &self.pressure),
            ("crash", &self.crashes),
            ("crash_standby", &self.crashes_standby),
        ] {
            for w in windows {
                parts.push(format!(
                    "{key}={}+{}",
                    fmt_dur(w.from),
                    fmt_dur(w.until - w.from)
                ));
            }
        }
        parts.join(",")
    }

    /// Parses a spec string produced by [`FaultPlan::to_spec`].
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{part}'"))?;
            if !plan.apply_kv(key, value)? {
                return Err(format!("unknown fault-plan key '{key}'"));
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Applies one `key=value` pair from a spec string; returns `false`
    /// when the key does not belong to the fault plan (so callers that
    /// embed plan specs in larger specs can dispatch their own keys).
    pub fn apply_kv(&mut self, key: &str, value: &str) -> Result<bool, String> {
        match key {
            "fseed" => {
                self.seed = value.parse().map_err(|_| format!("bad fseed '{value}'"))?;
            }
            "from" => self.active_from = parse_dur(value)?,
            "stall" => self.stalls.push(parse_window(value)?),
            "flap" => self.flaps.push(parse_window(value)?),
            "press" => self.pressure.push(parse_window(value)?),
            "crash" => self.crashes.push(parse_window(value)?),
            "crash_standby" => self.crashes_standby.push(parse_window(value)?),
            _ => {
                let (dir, field) = key
                    .split_once('.')
                    .ok_or(())
                    .map_err(|()| format!("unknown fault-plan key '{key}'"))
                    .or(Err(format!("unknown fault-plan key '{key}'")))?;
                let ch = match dir {
                    "c" => &mut self.to_controller,
                    "s" => &mut self.to_switch,
                    _ => return Ok(false),
                };
                match field {
                    "loss" => ch.loss = parse_loss(value)?,
                    "delay" => ch.delay = parse_dur(value)?,
                    "jitter" => ch.jitter = parse_dur(value)?,
                    "dup" => {
                        ch.duplicate = value.parse().map_err(|_| format!("bad dup '{value}'"))?;
                    }
                    "reorder" => {
                        let (p, by) = value
                            .split_once(':')
                            .ok_or_else(|| format!("expected reorder=<p>:<dur>, got '{value}'"))?;
                        ch.reorder = p
                            .parse()
                            .map_err(|_| format!("bad reorder probability '{p}'"))?;
                        ch.reorder_by = parse_dur(by)?;
                    }
                    _ => return Ok(false),
                }
            }
        }
        Ok(true)
    }
}

fn channel_spec(prefix: &str, f: &ChannelFaults, parts: &mut Vec<String>) {
    match f.loss {
        LossModel::None => {}
        LossModel::EveryNth(n) => parts.push(format!("{prefix}.loss=nth:{n}")),
        LossModel::Probabilistic(p) => parts.push(format!("{prefix}.loss=p:{p}")),
    }
    if f.delay != Nanos::ZERO {
        parts.push(format!("{prefix}.delay={}", fmt_dur(f.delay)));
    }
    if f.jitter != Nanos::ZERO {
        parts.push(format!("{prefix}.jitter={}", fmt_dur(f.jitter)));
    }
    if f.duplicate > 0.0 {
        parts.push(format!("{prefix}.dup={}", f.duplicate));
    }
    if f.reorder > 0.0 {
        parts.push(format!(
            "{prefix}.reorder={}:{}",
            f.reorder,
            fmt_dur(f.reorder_by)
        ));
    }
}

fn parse_loss(s: &str) -> Result<LossModel, String> {
    if let Some(n) = s.strip_prefix("nth:") {
        return n
            .parse()
            .map(LossModel::EveryNth)
            .map_err(|_| format!("bad every-nth count '{n}'"));
    }
    if let Some(p) = s.strip_prefix("p:") {
        return p
            .parse()
            .map(LossModel::Probabilistic)
            .map_err(|_| format!("bad loss probability '{p}'"));
    }
    if s == "none" {
        return Ok(LossModel::None);
    }
    Err(format!("bad loss model '{s}' (expected nth:<n> or p:<f>)"))
}

fn parse_window(s: &str) -> Result<Window, String> {
    let (from, dur) = s
        .split_once('+')
        .ok_or_else(|| format!("expected <start>+<duration>, got '{s}'"))?;
    let from = parse_dur(from)?;
    let dur = parse_dur(dur)?;
    Ok(Window::new(from, from + dur))
}

/// Formats a duration with the largest unit that divides it exactly, so
/// [`parse_dur`] round-trips the value bit-for-bit.
pub fn fmt_dur(d: Nanos) -> String {
    let ns = d.as_nanos();
    if ns == 0 {
        "0ms".to_owned()
    } else if ns % 1_000_000_000 == 0 {
        format!("{}s", ns / 1_000_000_000)
    } else if ns % 1_000_000 == 0 {
        format!("{}ms", ns / 1_000_000)
    } else if ns % 1_000 == 0 {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// Parses `10ms` / `500us` / `2s` / `7ns`; plain numbers are milliseconds.
pub fn parse_dur(s: &str) -> Result<Nanos, String> {
    let s = s.trim();
    let split = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    let (num, unit) = s.split_at(split);
    let v: u64 = num.parse().map_err(|_| format!("bad duration '{s}'"))?;
    match unit {
        "" | "ms" => Ok(Nanos::from_millis(v)),
        "us" => Ok(Nanos::from_micros(v)),
        "ns" => Ok(Nanos::from_nanos(v)),
        "s" => Ok(Nanos::from_secs(v)),
        _ => Err(format!("bad duration unit in '{s}'")),
    }
}

/// What the fault plane decided for one control message.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CtrlEffect {
    /// The message is dropped before entering the link.
    pub dropped: bool,
    /// Extra delay added after the link's own arrival time (fixed delay +
    /// jitter + reorder hold-back).
    pub extra_delay: Nanos,
    /// A duplicate copy must take a second trip over the link.
    pub duplicate: bool,
}

/// The runtime of a [`FaultPlan`]: per-direction loss counters and the
/// seeded RNG stream. One per testbed, rebuilt per run.
///
/// Draw order per message is fixed (loss → jitter → duplicate → reorder)
/// and knobs left at their defaults consume **no** randomness, so adding a
/// fault never perturbs the draws of unrelated ones.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    rng: SimRng,
    nth_to_controller: u64,
    nth_to_switch: u64,
}

impl FaultState {
    /// Builds the runtime for a (validated) plan.
    pub fn new(plan: FaultPlan) -> FaultState {
        let rng = SimRng::seed_from(plan.seed);
        FaultState {
            plan,
            rng,
            nth_to_controller: 0,
            nth_to_switch: 0,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of one control message sent at `now` in direction
    /// `dir`. Deterministic: the decision stream is a pure function of the
    /// plan and the message order.
    pub fn ctrl_effect(&mut self, now: Nanos, dir: ChannelDir) -> CtrlEffect {
        if now < self.plan.active_from {
            return CtrlEffect::default();
        }
        let f = match dir {
            ChannelDir::ToController => self.plan.to_controller,
            ChannelDir::ToSwitch => self.plan.to_switch,
        };
        match f.loss {
            LossModel::None => {}
            LossModel::EveryNth(n) => {
                let counter = match dir {
                    ChannelDir::ToController => &mut self.nth_to_controller,
                    ChannelDir::ToSwitch => &mut self.nth_to_switch,
                };
                *counter += 1;
                if *counter % n == 0 {
                    return CtrlEffect {
                        dropped: true,
                        ..CtrlEffect::default()
                    };
                }
            }
            LossModel::Probabilistic(p) => {
                if self.rng.next_f64() < p {
                    return CtrlEffect {
                        dropped: true,
                        ..CtrlEffect::default()
                    };
                }
            }
        }
        let mut extra = f.delay;
        if f.jitter > Nanos::ZERO {
            extra += Nanos::from_nanos(self.rng.gen_range(f.jitter.as_nanos() + 1));
        }
        let duplicate = f.duplicate > 0.0 && self.rng.next_f64() < f.duplicate;
        if f.reorder > 0.0 && self.rng.next_f64() < f.reorder {
            extra += f.reorder_by;
        }
        CtrlEffect {
            dropped: false,
            extra_delay: extra,
            duplicate,
        }
    }

    /// If the controller is stalled at `now`, when it resumes; `None`
    /// when it is processing normally.
    pub fn stall_resume(&self, now: Nanos) -> Option<Nanos> {
        self.plan
            .stalls
            .iter()
            .find(|w| w.contains(now))
            .map(|w| w.until)
    }

    /// Whether the data links are flapped (dropping frames) at `now`.
    pub fn data_link_down(&self, now: Nanos) -> bool {
        self.plan.flaps.iter().any(|w| w.contains(now))
    }

    /// Whether a buffer-pressure window is active at `now`.
    pub fn pressure_active(&self, now: Nanos) -> bool {
        self.plan.pressure.iter().any(|w| w.contains(now))
    }

    /// Whether a primary-controller crash window is active at `now`.
    pub fn primary_down(&self, now: Nanos) -> bool {
        self.plan.crashes.iter().any(|w| w.contains(now))
    }

    /// Whether a standby-controller crash window is active at `now`.
    pub fn standby_down(&self, now: Nanos) -> bool {
        self.plan.crashes_standby.iter().any(|w| w.contains(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn default_plan_is_empty_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(!plan.disturbs_data());
        assert!(plan.validate().is_ok());
        assert_eq!(plan.to_spec(), "");
        assert_eq!(FaultPlan::parse("").unwrap(), plan);
    }

    #[test]
    fn every_nth_drops_exactly_every_nth_per_direction() {
        let mut state = FaultState::new(FaultPlan::every_nth_loss(3));
        let drops: Vec<bool> = (0..9)
            .map(|_| state.ctrl_effect(ms(1), ChannelDir::ToController).dropped)
            .collect();
        assert_eq!(
            drops,
            [false, false, true, false, false, true, false, false, true]
        );
        // The other direction has its own counter.
        assert!(!state.ctrl_effect(ms(1), ChannelDir::ToSwitch).dropped);
        assert!(!state.ctrl_effect(ms(1), ChannelDir::ToSwitch).dropped);
        assert!(state.ctrl_effect(ms(1), ChannelDir::ToSwitch).dropped);
    }

    #[test]
    fn probabilistic_loss_is_deterministic_and_near_rate() {
        let plan = FaultPlan {
            seed: 99,
            to_controller: ChannelFaults {
                loss: LossModel::Probabilistic(0.25),
                ..ChannelFaults::default()
            },
            ..FaultPlan::default()
        };
        let run = |mut s: FaultState| -> Vec<bool> {
            (0..4000)
                .map(|_| s.ctrl_effect(ms(1), ChannelDir::ToController).dropped)
                .collect()
        };
        let a = run(FaultState::new(plan.clone()));
        let b = run(FaultState::new(plan));
        assert_eq!(a, b, "same plan, same decision stream");
        let rate = a.iter().filter(|&&d| d).count() as f64 / a.len() as f64;
        assert!((rate - 0.25).abs() < 0.03, "observed rate {rate}");
    }

    #[test]
    fn faults_respect_active_from() {
        let mut plan = FaultPlan::every_nth_loss(2);
        plan.active_from = ms(10);
        let mut state = FaultState::new(plan);
        for _ in 0..8 {
            assert!(!state.ctrl_effect(ms(1), ChannelDir::ToController).dropped);
        }
        assert!(!state.ctrl_effect(ms(10), ChannelDir::ToController).dropped);
        assert!(state.ctrl_effect(ms(10), ChannelDir::ToController).dropped);
    }

    #[test]
    fn delay_jitter_and_reorder_extend_arrival() {
        let plan = FaultPlan {
            seed: 7,
            to_switch: ChannelFaults {
                delay: Nanos::from_micros(500),
                jitter: Nanos::from_micros(100),
                reorder: 1.0 - f64::EPSILON,
                reorder_by: ms(2),
                ..ChannelFaults::default()
            },
            ..FaultPlan::default()
        };
        assert!(plan.validate().is_ok());
        let mut state = FaultState::new(plan);
        let e = state.ctrl_effect(ms(1), ChannelDir::ToSwitch);
        assert!(!e.dropped);
        assert!(e.extra_delay >= Nanos::from_micros(500) + ms(2));
        assert!(e.extra_delay <= Nanos::from_micros(600) + ms(2));
    }

    #[test]
    fn duplication_happens_at_configured_rate() {
        let plan = FaultPlan {
            seed: 3,
            to_controller: ChannelFaults {
                duplicate: 0.5,
                ..ChannelFaults::default()
            },
            ..FaultPlan::default()
        };
        let mut state = FaultState::new(plan);
        let dups = (0..2000)
            .filter(|_| state.ctrl_effect(ms(1), ChannelDir::ToController).duplicate)
            .count();
        assert!((900..1100).contains(&dups), "dups = {dups}");
    }

    #[test]
    fn windows_are_half_open() {
        let plan = FaultPlan {
            stalls: vec![Window::new(ms(10), ms(20))],
            flaps: vec![Window::new(ms(30), ms(31))],
            pressure: vec![Window::new(ms(40), ms(45))],
            ..FaultPlan::default()
        };
        let state = FaultState::new(plan);
        assert_eq!(state.stall_resume(ms(9)), None);
        assert_eq!(state.stall_resume(ms(10)), Some(ms(20)));
        assert_eq!(state.stall_resume(ms(19)), Some(ms(20)));
        assert_eq!(state.stall_resume(ms(20)), None);
        assert!(!state.data_link_down(ms(29)));
        assert!(state.data_link_down(ms(30)));
        assert!(!state.data_link_down(ms(31)));
        assert!(state.pressure_active(ms(44)));
        assert!(!state.pressure_active(ms(45)));
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        for bad in [
            FaultPlan::every_nth_loss(0),
            FaultPlan::every_nth_loss(1),
            FaultPlan {
                to_controller: ChannelFaults {
                    loss: LossModel::Probabilistic(1.0),
                    ..ChannelFaults::default()
                },
                ..FaultPlan::default()
            },
            FaultPlan {
                to_switch: ChannelFaults {
                    duplicate: 1.5,
                    ..ChannelFaults::default()
                },
                ..FaultPlan::default()
            },
            FaultPlan {
                to_switch: ChannelFaults {
                    reorder: 0.5,
                    reorder_by: Nanos::ZERO,
                    ..ChannelFaults::default()
                },
                ..FaultPlan::default()
            },
            FaultPlan {
                stalls: vec![Window::new(ms(5), ms(5))],
                ..FaultPlan::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn spec_round_trips_every_knob() {
        let plan = FaultPlan {
            seed: 12345,
            active_from: ms(2),
            to_controller: ChannelFaults {
                loss: LossModel::EveryNth(10),
                delay: Nanos::from_micros(300),
                jitter: Nanos::from_micros(150),
                duplicate: 0.125,
                reorder: 0.25,
                reorder_by: Nanos::from_micros(700),
            },
            to_switch: ChannelFaults {
                loss: LossModel::Probabilistic(0.0625),
                ..ChannelFaults::default()
            },
            stalls: vec![Window::new(ms(50), ms(60)), Window::new(ms(70), ms(71))],
            flaps: vec![Window::new(ms(55), ms(56))],
            pressure: vec![Window::new(ms(52), ms(54))],
            crashes: vec![Window::new(ms(60), ms(80))],
            crashes_standby: vec![Window::new(ms(90), ms(95))],
        };
        let spec = plan.to_spec();
        assert_eq!(FaultPlan::parse(&spec).unwrap(), plan, "spec: {spec}");
    }

    #[test]
    fn crash_windows_parse_validate_and_query() {
        let plan = FaultPlan::parse("crash=50ms+20ms,crash_standby=90ms+5ms").unwrap();
        assert!(plan.has_crashes());
        assert!(!plan.is_empty());
        let state = FaultState::new(plan);
        assert!(!state.primary_down(ms(49)));
        assert!(state.primary_down(ms(50)));
        assert!(state.primary_down(ms(69)));
        assert!(!state.primary_down(ms(70)));
        assert!(state.standby_down(ms(92)));
        assert!(!state.standby_down(ms(95)));
        // Zero-length crash windows are rejected like every other window.
        assert!(FaultPlan::parse("crash=50ms+0ms").is_err());
    }

    #[test]
    fn spec_round_trips_awkward_probabilities() {
        // Rust's shortest-round-trip float formatting must survive the trip.
        let plan = FaultPlan {
            seed: 1,
            to_controller: ChannelFaults {
                loss: LossModel::Probabilistic(0.1 + 0.2 * 0.3317),
                duplicate: 1.0 / 3.0,
                ..ChannelFaults::default()
            },
            ..FaultPlan::default()
        };
        assert_eq!(FaultPlan::parse(&plan.to_spec()).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("wat=1").is_err());
        assert!(FaultPlan::parse("c.loss=sometimes").is_err());
        assert!(FaultPlan::parse("c.loss=nth:1").is_err()); // fails validate
        assert!(FaultPlan::parse("stall=10ms").is_err()); // missing duration
        assert!(FaultPlan::parse("c.reorder=0.5").is_err()); // missing hold-back
    }

    #[test]
    fn unconfigured_knobs_consume_no_randomness() {
        // A plan with only every-nth loss must not touch the RNG, so its
        // decision stream is independent of the seed.
        let mut a = FaultState::new(FaultPlan::every_nth_loss(4));
        let mut b = FaultState::new(FaultPlan {
            seed: 999,
            ..FaultPlan::every_nth_loss(4)
        });
        for _ in 0..32 {
            assert_eq!(
                a.ctrl_effect(ms(1), ChannelDir::ToController),
                b.ctrl_effect(ms(1), ChannelDir::ToController)
            );
        }
    }
}
